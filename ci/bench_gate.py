#!/usr/bin/env python3
"""Perf-regression gate over the bench records.

Two checks, run by the `bench-gate` CI job:

1. The committed full record (`BENCH_engine.json`) must parse as bench
   schema v8 — the ckserve probe-service revision — with the
   forced-worker thread axis present, its sequential/parallel
   bit-identity flags set, the serve block's closed-loop client rows
   present (verdicts bit-identical to direct sessions, p50/p99 job
   latency recorded per row), and its own recorded acceptance gates
   passing. The full record is regenerated only on real bench runs;
   this check pins it against bitrot and against committing a record
   that fails its own gates.

2. A fresh `bench_engine --smoke` run must keep every optimized-over-
   reference ratio above its family's floor. Both the numerator and the
   denominator of each ratio are measured in the same fresh run on the
   same machine, so the check is machine-independent by construction.
   (An earlier revision instead required fresh ratios within 15% of the
   committed smoke baseline's ratios — flaky, because the baseline was
   measured on a different box and sub-millisecond smoke timings drift
   across runner generations far more than any sane band.) The floors
   sit well below the observed smoke ratios (soa-over-boxed ~1.5x,
   arena-over-legacy >= 1.2x, batch-over-loop >= 1.5x on the bench box
   with the smoke sample budget of avg-of-8 / best-of-20 runs): they
   catch an optimization becoming a slowdown — bitrot, an accidental
   layout regression — while the real performance bars live in the full
   record's own acceptance gates, checked in (1).

The committed smoke record is also read: it must parse as schema v8 and
carry the same ratio families (pinning the smoke measurement surface
against bitrot); fresh-vs-committed drift is printed as information,
never gated.

Usage: bench_gate.py FRESH_SMOKE COMMITTED_SMOKE COMMITTED_FULL
"""

import json
import sys

# Same-run ratio floors, per family. A ratio below its floor means the
# optimized path lost to the reference path it replaced, measured in
# one process on one machine — a real regression, not machine drift.
FLOORS = {
    "arena_over_legacy": 1.0,
    # Honest expectation for sharded rows on a 1-core runner is parity
    # (spawn overhead, no parallelism), so the batch floor leaves room
    # below 1.0-adjacent outcomes while still catching collapses.
    "batch_over_loop": 0.9,
    # The SoA layout must beat the boxed reference even at smoke n;
    # observed ~1.5x best-of-20. The full-record bar (>= 1.2x at
    # n = 1e5) is enforced by the record's own acceptance gates.
    "soa_over_boxed": 1.1,
}
THREAD_AXIS = [1, 2, 4, 8]


def ratios(record):
    """All (family, case) -> ratio rows of a record, one flat map."""
    out = {}
    for row in record["speedups"]:
        out[("arena_over_legacy", row["case"])] = row["arena_over_legacy"]
    for row in record["batch"]["speedups"]:
        out[("batch_over_loop", row["case"])] = row["batch_over_loop"]
    for row in record["soa"]["speedups"]:
        out[("soa_over_boxed", row["case"])] = row["soa_over_boxed"]
    return out


def ungated_batch_cases(record):
    """Batch rows the record itself declines to gate — the binary marks
    sharded rows ungated when the sharded strategy isn't actually
    parallel on the measuring host (1-core runner: the row times thread
    spawn overhead, not the batch path). The gate honors the same
    judgment rather than re-deciding it from a different machine."""
    return {c["case"] for c in record["acceptance"]["batch_cases"] if not c["gated"]}


def check_serve(record, who):
    """The serve block invariants shared by the full and smoke records:
    closed-loop rows at every client count, bit-identity declared,
    job conservation (jobs_total == sum over rows), and ordered latency
    quantiles. The serve rows are wall-clock measurements of a live
    multi-threaded service, so no ratio floor applies — the binary's own
    in-run asserts (verdict bit-identity, zero lost jobs, clean drain)
    are the gate, and this check pins their recorded outcome."""
    serve = record["serve"]
    assert serve["bit_identical"] is True, f"{who}: serve rows not verdict-identical"
    clients = [e["clients"] for e in serve["entries"]]
    assert clients == [1, 2, 4], f"{who}: serve client axis rows missing: {clients}"
    driven = sum(e["clients"] * e["jobs_per_client"] for e in serve["entries"])
    assert serve["jobs_total"] == driven, f"{who}: serve jobs_total != jobs driven"
    for e in serve["entries"]:
        assert e["jobs_per_sec"] > 0, f"{who}: {e}"
        assert e["p50_us"] <= e["p99_us"], f"{who}: serve quantiles inverted: {e}"
    acc = record["acceptance"]
    assert acc["serve_pass"] is True, f"{who}: serve rows fail their gate"
    gated = [c for c in acc["serve_cases"] if c["gated"]]
    assert gated, f"{who}: no gated serve cases"
    for case in gated:
        assert case["pass"] is True, f"{who}: {case}"


def check_full(full):
    assert full["schema"] == "ck-bench/engine/v8", full["schema"]
    acc = full["acceptance"]
    assert acc["pass"] is True, "committed bench record fails its own acceptance gate"
    soa = full["soa"]
    assert soa["thread_axis"] == THREAD_AXIS, soa["thread_axis"]
    assert soa["bit_identical"] is True, "committed soa rows not verdict-identical"
    workers = {e["workers"] for e in soa["entries"]}
    assert set(THREAD_AXIS) | {0} <= workers, f"threads axis rows missing: {workers}"
    assert acc["soa_pass"] is True, "committed soa rows fail their gate"
    gates = acc["soa_gates"]
    floor = gates["required_soa_over_boxed"]
    gated = [c for c in acc["soa_cases"] if c["gated"] and "soa_over_boxed" in c]
    assert gated, "no gated soa-over-boxed cases in committed record"
    for case in gated:
        assert case["soa_over_boxed"] >= floor, case
    check_serve(full, "committed full record")


def main():
    fresh = json.load(open(sys.argv[1]))
    baseline = json.load(open(sys.argv[2]))
    full = json.load(open(sys.argv[3]))

    check_full(full)

    assert fresh["schema"] == "ck-bench/engine/v8", fresh["schema"]
    assert fresh["acceptance"]["pass"] is True, "fresh smoke failed its own structure gates"
    check_serve(fresh, "fresh smoke")
    # The committed smoke record pins the measurement surface: same
    # schema, same ratio families. Its timings are from another box and
    # are never gated against.
    assert baseline["schema"] == "ck-bench/engine/v8", baseline["schema"]
    check_serve(baseline, "committed smoke")
    base, now = ratios(baseline), ratios(fresh)
    missing = sorted(set(base) - set(now))
    assert not missing, f"fresh smoke lost ratio rows the committed record has: {missing}"

    ungated = ungated_batch_cases(fresh)
    failed = []
    for (family, case), value in sorted(now.items()):
        floor = FLOORS[family]
        drift = f" (committed-box value {base[(family, case)]})" if (family, case) in base else ""
        line = f"{family} {case}: {value} vs floor {floor}{drift}"
        if family == "batch_over_loop" and case in ungated:
            print(f"info (ungated on this host) {line}")
        elif value < floor:
            failed.append(line)
            print(f"REGRESSED {line}")
        else:
            print(f"ok {line}")
    if failed:
        sys.exit(1)
    print(
        f"bench-gate: {len(now)} same-run ratios above their family floors; "
        "committed full record is schema v8 with the threads axis and the "
        "serve block, and passes its gates"
    )


if __name__ == "__main__":
    main()
