#!/usr/bin/env bash
# Hard-timeout wrapper for test invocations in CI.
#
# A hung test binary — a worker that never acks a barrier, a socket
# read with no deadline — would otherwise stall the job until the
# runner's own six-hour kill, burning the queue and hiding *which*
# binary hung. This wrapper gives every invocation a hard wall-clock
# budget: on expiry the process group gets SIGTERM, then SIGKILL ten
# seconds later, and the job fails immediately with the offending
# command named in the log.
#
# usage: WATCHDOG_SECS=900 ci/watchdog.sh <command> [args...]
set -u

LIMIT="${WATCHDOG_SECS:-900}"

if [ "$#" -eq 0 ]; then
    echo "watchdog: no command given" >&2
    exit 2
fi

timeout --signal=TERM --kill-after=10 "$LIMIT" "$@"
status=$?

# GNU timeout reports 124 for TERM-after-expiry and 137 (128+9) when
# the KILL escalation was needed.
if [ "$status" -eq 124 ] || [ "$status" -eq 137 ]; then
    echo "watchdog: command exceeded the ${LIMIT}s hard timeout: $*" >&2
    # Name any survivors of the process group for the post-mortem —
    # a leaked net-worker here means the coordinator lost track of a
    # child it spawned.
    pgrep -af 'ckprobe|net-worker' >&2 || true
    exit 124
fi
exit "$status"
