//! The candidate-collision C4 tester (Fraigniaud et al., DISC 2016 —
//! reference \[20\] of the paper).
//!
//! Per repetition (two rounds): every node samples a uniform random
//! neighbor and broadcasts its ID. A receiver `u` that hears the *same*
//! candidate `w ∉ {u}` from two distinct neighbors `x ≠ y` certifies the
//! 4-cycle `(u, x, w, y)` — all four edges are vouched for (`u–x`, `u–y`
//! receiving links; `x–w`, `y–w` sampled), so the tester is 1-sided.
//!
//! Together with [`crate::triangle`] this covers the `H`-freeness testers
//! for 4-node patterns that the paper generalizes past; \[20\] proved this
//! sampling style cannot give constant-round testers for `Ck`, `k ≥ 5`.

use ck_congest::engine::{EngineConfig, EngineError, RunOutcome};
use ck_congest::graph::{Graph, NodeId};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};
use ck_congest::rngs::{derived_rng, labels};
use ck_congest::session::Session;
use rand::rngs::StdRng;
use rand::RngExt;

/// Verdict of the C4 tester at one node.
#[derive(Clone, Debug, Default)]
pub struct C4Verdict {
    /// True if this node certified a C4.
    pub reject: bool,
    /// The 4-cycle's IDs `(u, x, w, y)` when rejecting.
    pub witness: Option<(NodeId, NodeId, NodeId, NodeId)>,
}

/// Repetition schedule, `Θ(1/ε²)` as in \[20\].
pub fn c4_repetitions(eps: f64) -> u32 {
    assert!(eps > 0.0 && eps < 1.0);
    (4.0 / (eps * eps)).ceil() as u32
}

/// One node of the C4 tester.
pub struct C4Tester {
    myid: NodeId,
    neighbor_ids: Vec<NodeId>,
    reps_total: u32,
    rng: StdRng,
    verdict: C4Verdict,
}

impl C4Tester {
    pub fn new(init: &NodeInit, reps: u32, seed: u64) -> Self {
        C4Tester {
            myid: init.id,
            neighbor_ids: init.neighbor_ids.to_vec(),
            reps_total: reps,
            rng: derived_rng(seed, labels::C4_COINS, init.id, 0),
            verdict: C4Verdict::default(),
        }
    }
}

impl Program for C4Tester {
    type Msg = u64;
    type Verdict = C4Verdict;

    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        let rep = round / 2;
        let local = round % 2;
        if local == 0 {
            if !self.neighbor_ids.is_empty() {
                let pick = self.rng.random_range(0..self.neighbor_ids.len());
                out.broadcast(self.neighbor_ids[pick]);
            }
            return Status::Running;
        }
        if !self.verdict.reject {
            // Look for two distinct senders announcing the same candidate.
            for (i, a) in inbox.iter().enumerate() {
                if *a.msg == self.myid {
                    continue;
                }
                let x = self.neighbor_ids[a.port as usize];
                if *a.msg == x {
                    continue;
                }
                for b in inbox.iter().skip(i + 1) {
                    let y = self.neighbor_ids[b.port as usize];
                    if b.msg == a.msg && y != x && *b.msg != y {
                        self.verdict.reject = true;
                        self.verdict.witness = Some((self.myid, x, *a.msg, y));
                        break;
                    }
                }
                if self.verdict.reject {
                    break;
                }
            }
        }
        if rep + 1 == self.reps_total {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn verdict(&self) -> C4Verdict {
        self.verdict.clone()
    }
}

/// Network-level C4 test.
pub fn test_c4_freeness(
    g: &Graph,
    eps: f64,
    seed: u64,
    reps_override: Option<u32>,
) -> Result<(bool, RunOutcome<C4Verdict>), EngineError> {
    let reps = reps_override.unwrap_or_else(|| c4_repetitions(eps));
    let cfg = EngineConfig { max_rounds: reps * 2, ..EngineConfig::default() };
    let outcome =
        Session::builder(g).config(cfg).build().run(|init| C4Tester::new(&init, reps, seed))?;
    let reject = outcome.verdicts.iter().any(|v| v.reject);
    Ok((reject, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{complete_bipartite, cycle, petersen};
    use ck_graphgen::planted::eps_far_instance;

    #[test]
    fn accepts_c4_free_graphs_always() {
        for seed in 0..6 {
            let (rej, _) = test_c4_freeness(&petersen(), 0.2, seed, Some(10)).unwrap();
            assert!(!rej, "Petersen has girth 5: no C4");
            let (rej, _) = test_c4_freeness(&cycle(7), 0.2, seed, Some(10)).unwrap();
            assert!(!rej);
        }
    }

    #[test]
    fn rejects_dense_c4s_and_witnesses_are_real() {
        let g = complete_bipartite(5, 5);
        let (rej, out) = test_c4_freeness(&g, 0.3, 3, Some(6)).unwrap();
        assert!(rej, "K_{{5,5}} brims with C4s");
        for v in &out.verdicts {
            if let Some((u, x, w, y)) = v.witness {
                let f = |id| g.index_of(id).unwrap();
                assert!(g.has_edge(f(u), f(x)) && g.has_edge(f(x), f(w)));
                assert!(g.has_edge(f(w), f(y)) && g.has_edge(f(y), f(u)));
                assert_ne!(x, y);
                assert_ne!(u, w);
            }
        }
    }

    #[test]
    fn far_instances_detected_with_good_rate() {
        let inst = eps_far_instance(60, 4, 0.1, 0);
        let mut rejects = 0;
        let trials = 10;
        for seed in 0..trials {
            if test_c4_freeness(&inst.graph, 0.1, seed, None).unwrap().0 {
                rejects += 1;
            }
        }
        assert!(rejects * 3 >= trials * 2, "rate {rejects}/{trials}");
    }
}
