//! Centralized reference testers.
//!
//! Ground-truth comparators for the experiment harness: an exact
//! decision procedure (wrapping the `ck-graphgen` oracles) and a
//! query-bounded sequential property tester in the sparse-model style
//! (sample edges uniformly, search a `Ck` through each) whose success
//! profile on ε-far instances mirrors the `εm`-edges-on-disjoint-copies
//! argument of Lemma 4.

use ck_congest::graph::Graph;
use ck_congest::rngs::{derived_rng, labels};
use ck_graphgen::farness::{contains_ck, has_ck_through_edge};
use rand::RngExt;

/// Exact centralized decision: does `g` contain a `Ck`?
pub fn exact_contains_ck(g: &Graph, k: usize) -> bool {
    contains_ck(g, k)
}

/// Result of the sampling tester.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplingOutcome {
    /// True when a `Ck` was found through a sampled edge.
    pub reject: bool,
    /// Edge queries spent.
    pub queries: usize,
}

/// Sparse-model sequential tester: sample `⌈(e²/ε)·ln 3⌉` uniform edges
/// and check each for a `Ck` through it. 1-sided; on ε-far inputs each
/// sample hits one of the ≥ `εm` edges on edge-disjoint copies with
/// probability ≥ ε, giving the usual 2/3 detection bound.
pub fn sampling_tester(g: &Graph, k: usize, eps: f64, seed: u64) -> SamplingOutcome {
    assert!(eps > 0.0 && eps < 1.0);
    let mut rng = derived_rng(seed, labels::NAIVE_SAMPLER, 0xC0DE, 0);
    let samples = ((std::f64::consts::E.powi(2) / eps) * 3f64.ln()).ceil() as usize;
    let m = g.m();
    if m == 0 {
        return SamplingOutcome { reject: false, queries: 0 };
    }
    for q in 1..=samples {
        let e = g.edges()[rng.random_range(0..m)];
        if has_ck_through_edge(g, k, e) {
            return SamplingOutcome { reject: true, queries: q };
        }
    }
    SamplingOutcome { reject: false, queries: samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{cycle, petersen};
    use ck_graphgen::planted::{eps_far_instance, matched_free_instance};

    #[test]
    fn exact_decision_matches_oracle() {
        assert!(exact_contains_ck(&cycle(6), 6));
        assert!(!exact_contains_ck(&cycle(6), 5));
        assert!(exact_contains_ck(&petersen(), 5));
        assert!(!exact_contains_ck(&petersen(), 4));
    }

    #[test]
    fn sampler_is_one_sided() {
        let free = matched_free_instance(48, 5);
        for seed in 0..8 {
            assert!(!sampling_tester(&free, 5, 0.1, seed).reject);
        }
    }

    #[test]
    fn sampler_detects_far_instances() {
        let inst = eps_far_instance(60, 4, 0.08, 0);
        let trials = 10;
        let hits = (0..trials).filter(|&s| sampling_tester(&inst.graph, 4, 0.08, s).reject).count();
        assert!(hits * 3 >= trials as usize * 2, "{hits}/{trials}");
    }
}
