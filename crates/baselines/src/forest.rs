//! Distributed cycle-freeness (forest) detection.
//!
//! The paper's related work (\[7\]) tests *cycle-freeness* — any cycle, of
//! any length — in `O(1/ε · log n)` rounds. As a deterministic companion
//! baseline we implement the classical exact protocol: build a BFS
//! forest from the minimum-ID node(s) and flag any non-tree edge; a
//! connected graph is a tree iff `m = n − 1`, and locally, an edge
//! between two nodes neither of which is the other's BFS parent closes a
//! cycle. Runs in `O(D)` rounds with `O(log n)`-bit messages.
//!
//! Contrast with the paper's problem: `Ck`-freeness for one *fixed*
//! length is strictly harder locally — a non-tree edge certifies *some*
//! cycle but says nothing about its length, which is exactly why
//! Algorithm 1 needs the sequence machinery.

use ck_congest::engine::{EngineConfig, EngineError, RunOutcome};
use ck_congest::graph::{Graph, NodeId};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};
use ck_congest::session::Session;

/// Per-node verdict of the forest test.
#[derive(Clone, Debug, Default)]
pub struct ForestVerdict {
    /// True if this node certified a cycle (saw a non-tree edge).
    pub cycle_found: bool,
}

/// Protocol phases: flood (distance, root) waves; once stable, an edge
/// where neither endpoint adopted the other as parent is a non-tree
/// edge. We detect it with a final parent-announcement round.
pub struct ForestTest {
    myid: NodeId,
    neighbor_ids: Vec<NodeId>,
    /// (root, dist) adopted so far — lexicographically minimal root wins.
    root: NodeId,
    dist: u32,
    parent_port: Option<u32>,
    rounds_total: u32,
    verdict: ForestVerdict,
}

/// Message: `(root, dist, parent_announcement_port_id)` — during the
/// flood phase `announce` is `None`; in the final round nodes announce
/// the ID of their parent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForestMsg {
    Wave { root: NodeId, dist: u32 },
    Parent { parent: Option<NodeId> },
}

impl ck_congest::message::WireMessage for ForestMsg {
    fn wire_bits(&self, params: &ck_congest::message::WireParams) -> u64 {
        match self {
            ForestMsg::Wave { .. } => {
                1 + u64::from(params.id_bits)
                    + u64::from(ck_congest::message::bits_for(params.n as u64))
            }
            ForestMsg::Parent { .. } => 2 + u64::from(params.id_bits),
        }
    }
}

impl ForestTest {
    pub fn new(init: &NodeInit, rounds_total: u32) -> Self {
        ForestTest {
            myid: init.id,
            neighbor_ids: init.neighbor_ids.to_vec(),
            root: init.id,
            dist: 0,
            parent_port: None,
            rounds_total,
            verdict: ForestVerdict::default(),
        }
    }
}

impl Program for ForestTest {
    type Msg = ForestMsg;
    type Verdict = ForestVerdict;

    fn step(
        &mut self,
        round: u32,
        inbox: Inbox<'_, ForestMsg>,
        out: &mut Outbox<ForestMsg>,
    ) -> Status {
        let flood_rounds = self.rounds_total - 2;
        if round < flood_rounds {
            let mut improved = round == 0;
            for inc in inbox.iter() {
                if let ForestMsg::Wave { root, dist } = *inc.msg {
                    if (root, dist + 1) < (self.root, self.dist) {
                        self.root = root;
                        self.dist = dist + 1;
                        self.parent_port = Some(inc.port);
                        improved = true;
                    }
                }
            }
            if improved {
                out.broadcast(ForestMsg::Wave { root: self.root, dist: self.dist });
            }
            return Status::Running;
        }
        if round == flood_rounds {
            // Announce the parent so both endpoints can classify edges.
            let parent = self.parent_port.map(|p| self.neighbor_ids[p as usize]);
            out.broadcast(ForestMsg::Parent { parent });
            return Status::Running;
        }
        // Classification round: an edge {me, w} is a tree edge iff I am
        // w's parent or w is mine; otherwise it closes a cycle.
        for inc in inbox.iter() {
            if let ForestMsg::Parent { parent } = inc.msg {
                let w = self.neighbor_ids[inc.port as usize];
                let my_parent = self.parent_port.map(|p| self.neighbor_ids[p as usize]);
                let tree_edge = *parent == Some(self.myid) || my_parent == Some(w);
                if !tree_edge {
                    self.verdict.cycle_found = true;
                }
            }
        }
        Status::Halted
    }

    fn verdict(&self) -> ForestVerdict {
        self.verdict.clone()
    }
}

/// Runs the exact forest test: returns true iff a cycle was certified.
pub fn test_cycle_freeness(
    g: &Graph,
    config: &EngineConfig,
) -> Result<(bool, RunOutcome<ForestVerdict>), EngineError> {
    let rounds_total = g.n() as u32 + 3; // flood to quiescence + 2
    let mut cfg = config.clone();
    cfg.max_rounds = rounds_total;
    let outcome =
        Session::builder(g).config(cfg).build().run(|init| ForestTest::new(&init, rounds_total))?;
    let cyclic = outcome.verdicts.iter().any(|v| v.cycle_found);
    Ok((cyclic, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{cycle, grid, star};
    use ck_graphgen::random::{connected_gnm, random_tree};

    fn is_cyclic(g: &Graph) -> bool {
        test_cycle_freeness(g, &EngineConfig::default()).unwrap().0
    }

    #[test]
    fn trees_are_accepted() {
        for seed in 0..6 {
            assert!(!is_cyclic(&random_tree(30, seed)), "seed {seed}");
        }
        assert!(!is_cyclic(&star(10)));
    }

    #[test]
    fn cycles_are_rejected() {
        for k in 3..10 {
            assert!(is_cyclic(&cycle(k)), "C{k}");
        }
        assert!(is_cyclic(&grid(3, 3)));
    }

    #[test]
    fn exactness_on_random_connected_graphs() {
        for seed in 0..8 {
            let n = 24;
            // n-1 edges = tree, anything more is cyclic.
            let tree = connected_gnm(n, n - 1, seed);
            assert!(!is_cyclic(&tree));
            let plus = connected_gnm(n, n + 3, seed);
            assert!(is_cyclic(&plus));
        }
    }

    #[test]
    fn disconnected_forests_are_accepted() {
        use ck_congest::graph::GraphBuilder;
        let g = GraphBuilder::new(6).edges([(0, 1), (2, 3), (4, 5)]).build().unwrap();
        assert!(!is_cyclic(&g));
        let g2 = GraphBuilder::new(6).edges([(0, 1), (1, 2), (0, 2), (4, 5)]).build().unwrap();
        assert!(is_cyclic(&g2));
    }
}
