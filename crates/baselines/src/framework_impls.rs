//! [`DistributedTester`] adapters for the baselines, so the CLI and the
//! harness drive every tester through one interface.

use ck_congest::engine::EngineConfig;
use ck_congest::graph::Graph;
use ck_congest::metrics::RunReport;
use ck_core::framework::{DistributedTester, ProbeOutcome};

fn outcome_from(reject: bool, report: &RunReport) -> ProbeOutcome {
    ProbeOutcome {
        reject,
        rounds: report.rounds,
        messages: report.total_messages(),
        bits: report.total_bits(),
        max_link_bits: report.max_link_bits(),
    }
}

/// The \[7\]-style triangle tester behind the common interface.
pub struct TriangleBaseline {
    pub eps: f64,
    pub repetitions: Option<u32>,
}

impl DistributedTester for TriangleBaseline {
    fn name(&self) -> &'static str {
        "triangle"
    }

    fn property(&self) -> String {
        format!("triangle-freeness (ε = {}, neighbor sampling)", self.eps)
    }

    fn probe(&self, g: &Graph, seed: u64) -> ProbeOutcome {
        let (reject, run) =
            crate::triangle::test_triangle_freeness(g, self.eps, seed, self.repetitions)
                .expect("engine run");
        outcome_from(reject, &run.report)
    }
}

/// The \[20\]-style C4 tester behind the common interface.
pub struct C4Baseline {
    pub eps: f64,
    pub repetitions: Option<u32>,
}

impl DistributedTester for C4Baseline {
    fn name(&self) -> &'static str {
        "c4"
    }

    fn property(&self) -> String {
        format!("C4-freeness (ε = {}, candidate collision)", self.eps)
    }

    fn probe(&self, g: &Graph, seed: u64) -> ProbeOutcome {
        let (reject, run) =
            crate::c4::test_c4_freeness(g, self.eps, seed, self.repetitions).expect("engine run");
        outcome_from(reject, &run.report)
    }
}

/// The exact forest (cycle-freeness) test behind the common interface.
/// Deterministic: the seed is ignored.
pub struct ForestBaseline;

impl DistributedTester for ForestBaseline {
    fn name(&self) -> &'static str {
        "forest"
    }

    fn property(&self) -> String {
        "cycle-freeness (exact BFS-forest test)".into()
    }

    fn probe(&self, g: &Graph, _seed: u64) -> ProbeOutcome {
        let (reject, run) =
            crate::forest::test_cycle_freeness(g, &EngineConfig::default()).expect("engine run");
        outcome_from(reject, &run.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_core::framework::amplify;
    use ck_graphgen::basic::{complete, cycle, petersen};

    #[test]
    fn all_baselines_implement_the_trait() {
        let testers: Vec<Box<dyn DistributedTester>> = vec![
            Box::new(TriangleBaseline { eps: 0.2, repetitions: Some(10) }),
            Box::new(C4Baseline { eps: 0.2, repetitions: Some(10) }),
            Box::new(ForestBaseline),
        ];
        let free = cycle(7); // triangle-free, C4-free, but cyclic
        let expect_reject = [false, false, true];
        for (t, &want) in testers.iter().zip(&expect_reject) {
            let out = t.probe(&free, 3);
            assert_eq!(out.reject, want, "{} on C7", t.name());
            assert!(!t.property().is_empty());
        }
    }

    #[test]
    fn amplified_triangle_baseline_catches_k6() {
        let t = TriangleBaseline { eps: 0.3, repetitions: Some(2) };
        let amp = amplify(&t, &complete(6), 5, 5);
        assert!(amp.reject);
        let amp = amplify(&t, &petersen(), 5, 5);
        assert!(!amp.reject, "Petersen is triangle-free");
    }
}
