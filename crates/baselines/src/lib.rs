//! # ck-baselines — comparators for the SPAA 2017 cycle-detection tester
//!
//! Everything the paper's algorithm is measured against:
//!
//! * [`naive`] — unpruned append-and-forward, with configurable drop
//!   policies reproducing both failure modes the pruning rule fixes
//!   (link-load blow-up and arbitrarily-dropped witnesses);
//! * [`triangle`] — the neighbor-sampling triangle tester of
//!   Censor-Hillel et al. (the paper's reference \[7\], `k = 3`);
//! * [`c4`] — the candidate-collision C4 tester in the style of
//!   Fraigniaud et al. (reference \[20\], `k = 4`);
//! * [`centralized`] — exact and query-bounded sequential testers
//!   (sparse-model ground truth).

pub mod c4;
pub mod centralized;
pub mod forest;
pub mod framework_impls;
pub mod naive;
pub mod triangle;

pub use c4::{test_c4_freeness, C4Tester, C4Verdict};
pub use centralized::{exact_contains_ck, sampling_tester, SamplingOutcome};
pub use naive::{naive_detect_through_edge, DropPolicy, NaiveRun, NaiveVerdict};
pub use triangle::{test_triangle_freeness, TriangleTester, TriangleVerdict};
