//! Naive append-and-forward: Phase 2 *without* the pruning rule.
//!
//! The paper introduces Algorithm 1's pruning precisely because the
//! obvious protocol — forward every received sequence with your ID
//! appended — either floods links (a node connected to the edge's
//! endpoints via many vertex-disjoint same-length routes must forward all
//! of them, violating CONGEST bandwidth) or, if sequences are dropped
//! arbitrarily to fit a cap, silently loses the only witnesses (the
//! Figure-1 pitfall: if `x` and `y` both keep only their `u`-side
//! sequence, `z` can never assemble the C5).
//!
//! Three drop policies make both failure modes measurable:
//!
//! * [`DropPolicy::KeepAll`] — exact detection, unbounded link load
//!   (baseline for experiment E11's congestion blow-up);
//! * [`DropPolicy::TruncateDeterministic`] — keep the first `cap`
//!   sequences in canonical order (the deterministic Figure-1 failure);
//! * [`DropPolicy::SampleRandom`] — keep `cap` uniform sequences (the
//!   "random sampling" flavor of prior-technique generalizations that
//!   provably cannot reach constant rounds for `k ≥ 5`).

use ck_congest::engine::{EngineConfig, EngineError, RunOutcome};
use ck_congest::graph::{Edge, Graph, NodeId};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};
use ck_congest::rngs::{derived_rng, labels};
use ck_congest::session::Session;
use ck_core::decide::decide_reject;
use ck_core::msg::SeqBundle;
use ck_core::seq::{IdSeq, MAX_K};
use rand::rngs::StdRng;
use rand::RngExt;

/// How the naive forwarder sheds load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Forward everything (exact, congesting).
    KeepAll,
    /// Keep the first `cap` sequences in canonical (sorted) order.
    TruncateDeterministic { cap: usize },
    /// Keep `cap` sequences sampled uniformly without replacement.
    SampleRandom { cap: usize, seed: u64 },
}

/// Per-node verdict of the naive detector.
#[derive(Clone, Debug, Default)]
pub struct NaiveVerdict {
    /// True if this node assembled a `Ck`.
    pub reject: bool,
    /// Largest sequence count this node ever wanted to forward in one
    /// round (before dropping) — the congestion indicator.
    pub max_offered: usize,
}

/// Unpruned `DetectCk(u, v)` for one node.
pub struct NaiveSingle {
    k: usize,
    half_k: u32,
    myid: NodeId,
    u_id: NodeId,
    v_id: NodeId,
    policy: DropPolicy,
    rng: StdRng,
    own_sent: Vec<IdSeq>,
    verdict: NaiveVerdict,
}

impl NaiveSingle {
    pub fn new(k: usize, init: &NodeInit, edge_ids: (NodeId, NodeId), policy: DropPolicy) -> Self {
        assert!((3..=MAX_K).contains(&k));
        let seed = match policy {
            DropPolicy::SampleRandom { seed, .. } => seed,
            _ => 0,
        };
        NaiveSingle {
            k,
            half_k: (k / 2) as u32,
            myid: init.id,
            u_id: edge_ids.0,
            v_id: edge_ids.1,
            policy,
            rng: derived_rng(seed, labels::NAIVE_SAMPLER, init.id, 0),
            own_sent: Vec::new(),
            verdict: NaiveVerdict::default(),
        }
    }

    fn collect(inbox: Inbox<'_, SeqBundle>) -> Vec<IdSeq> {
        let mut r: Vec<IdSeq> = inbox.iter().flat_map(|m| m.msg.0.iter().copied()).collect();
        r.sort_unstable();
        r.dedup();
        r
    }

    fn shed(&mut self, mut seqs: Vec<IdSeq>) -> Vec<IdSeq> {
        self.verdict.max_offered = self.verdict.max_offered.max(seqs.len());
        match self.policy {
            DropPolicy::KeepAll => seqs,
            DropPolicy::TruncateDeterministic { cap } => {
                seqs.truncate(cap);
                seqs
            }
            DropPolicy::SampleRandom { cap, .. } => {
                // Partial Fisher–Yates for a uniform cap-subset.
                let take = cap.min(seqs.len());
                for i in 0..take {
                    let j = self.rng.random_range(i..seqs.len());
                    seqs.swap(i, j);
                }
                seqs.truncate(take);
                seqs
            }
        }
    }
}

impl Program for NaiveSingle {
    type Msg = SeqBundle;
    type Verdict = NaiveVerdict;

    fn step(
        &mut self,
        round: u32,
        inbox: Inbox<'_, SeqBundle>,
        out: &mut Outbox<SeqBundle>,
    ) -> Status {
        if round == 0 {
            if self.myid == self.u_id || self.myid == self.v_id {
                let seed = vec![IdSeq::single(self.myid)];
                if self.half_k == 1 {
                    self.own_sent = seed.clone();
                }
                out.broadcast(SeqBundle(seed));
            }
            return Status::Running;
        }
        if round < self.half_k {
            let received = Self::collect(inbox);
            let appended: Vec<IdSeq> = received
                .iter()
                .filter(|s| !s.contains(self.myid))
                .map(|s| s.appended(self.myid))
                .collect();
            let send = self.shed(appended);
            if !send.is_empty() {
                self.own_sent = send.clone();
                out.broadcast(SeqBundle(send));
            } else if round + 1 == self.half_k {
                self.own_sent.clear();
            }
            return Status::Running;
        }
        let received = Self::collect(inbox);
        if let Some(w) = decide_reject(self.k, self.myid, &self.own_sent, &received) {
            let _ = w;
            self.verdict.reject = true;
        }
        Status::Halted
    }

    fn verdict(&self) -> NaiveVerdict {
        self.verdict.clone()
    }
}

/// Network-level outcome of a naive run.
#[derive(Clone, Debug)]
pub struct NaiveRun {
    pub reject: bool,
    /// Largest per-node offered load across the run.
    pub max_offered: usize,
    pub outcome: RunOutcome<NaiveVerdict>,
}

/// Runs the naive detector for edge `e`.
pub fn naive_detect_through_edge(
    g: &Graph,
    k: usize,
    e: Edge,
    policy: DropPolicy,
    config: &EngineConfig,
) -> Result<NaiveRun, EngineError> {
    assert!(g.has_edge(e.a, e.b));
    let ids = (g.id(e.a), g.id(e.b));
    let mut cfg = config.clone();
    cfg.max_rounds = (k / 2) as u32 + 1;
    let outcome = Session::builder(g)
        .config(cfg)
        .build()
        .run(|init| NaiveSingle::new(k, &init, ids, policy))?;
    let reject = outcome.verdicts.iter().any(|v| v.reject);
    let max_offered = outcome.verdicts.iter().map(|v| v.max_offered).max().unwrap_or(0);
    Ok(NaiveRun { reject, max_offered, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{cycle, fan, figure1, spindle};

    #[test]
    fn keep_all_is_exact_on_small_graphs() {
        for k in 3..=8 {
            let g = cycle(k);
            for &e in g.edges() {
                let out = naive_detect_through_edge(
                    &g,
                    k,
                    e,
                    DropPolicy::KeepAll,
                    &EngineConfig::default(),
                )
                .unwrap();
                assert!(out.reject, "C{k} edge {e:?}");
            }
        }
    }

    #[test]
    fn figure1_truncation_misses_the_cycle() {
        // The paper's own example: with cap 1 and deterministic order,
        // both x and y keep the u-side sequence and z never sees a
        // disjoint pair.
        let g = figure1();
        let e = Edge::new(0, 1);
        let full =
            naive_detect_through_edge(&g, 5, e, DropPolicy::KeepAll, &EngineConfig::default())
                .unwrap();
        assert!(full.reject);
        let capped = naive_detect_through_edge(
            &g,
            5,
            e,
            DropPolicy::TruncateDeterministic { cap: 1 },
            &EngineConfig::default(),
        )
        .unwrap();
        assert!(!capped.reject, "cap-1 truncation must lose the witness");
    }

    #[test]
    fn offered_load_explodes_on_spindle() {
        // spindle(p, 2): the first middle node receives p same-length
        // route prefixes and must offer all of them.
        let g = spindle(12, 2);
        let e = Edge::new(0, 1);
        let out =
            naive_detect_through_edge(&g, 6, e, DropPolicy::KeepAll, &EngineConfig::default())
                .unwrap();
        assert!(out.reject);
        assert!(out.max_offered >= 12, "offered {} must scale with p", out.max_offered);
    }

    #[test]
    fn random_sampling_sometimes_misses() {
        // fan(2) = Figure 1: each middle node keeps one of its two
        // received seeds at random; with probability 1/2 both keep the
        // same hub and the apex misses. Over 20 seeds expect both
        // outcomes.
        let g = fan(2);
        let e = Edge::new(0, 1);
        let mut hits = 0;
        let mut misses = 0;
        for seed in 0..20 {
            let out = naive_detect_through_edge(
                &g,
                5,
                e,
                DropPolicy::SampleRandom { cap: 1, seed },
                &EngineConfig::default(),
            )
            .unwrap();
            if out.reject {
                hits += 1;
            } else {
                misses += 1;
            }
        }
        assert!(misses > 0, "cap-1 sampling should miss sometimes");
        assert!(hits > 0, "cap-1 sampling should hit sometimes");
    }
}
