//! The neighbor-sampling triangle tester (Censor-Hillel et al., DISC
//! 2016 — reference \[7\] of the paper).
//!
//! Per repetition (two rounds): every node draws a uniform random
//! neighbor `w` and broadcasts `ID(w)`; a receiver `u` that got `ID(w)`
//! from neighbor `v` rejects when `w ≠ u` and `w ∈ N(u)` — then
//! `{u, v, w}` is a genuine triangle (1-sided by construction: the
//! adjacency `u–v` is the receiving link, `v–w` was sampled by `v`,
//! `u–w` is checked against `u`'s neighbor table).
//!
//! Round complexity `O(1/ε²)` on ε-far-from-triangle-free inputs. This
//! is the technique the paper's introduction credits for `k = 3` and
//! that provably does not generalize to `k ≥ 5`.

use ck_congest::engine::{EngineConfig, EngineError, RunOutcome};
use ck_congest::graph::{Graph, NodeId};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};
use ck_congest::rngs::{derived_rng, labels};
use ck_congest::session::Session;
use rand::rngs::StdRng;
use rand::RngExt;

/// Verdict of the triangle tester at one node.
#[derive(Clone, Debug, Default)]
pub struct TriangleVerdict {
    /// True if this node certified a triangle.
    pub reject: bool,
    /// The triangle's IDs `(u, v, w)` when rejecting.
    pub witness: Option<(NodeId, NodeId, NodeId)>,
}

/// Number of repetitions for parameter `eps`, `Θ(1/ε²)` as in \[7\].
pub fn triangle_repetitions(eps: f64) -> u32 {
    assert!(eps > 0.0 && eps < 1.0);
    (4.0 / (eps * eps)).ceil() as u32
}

/// One node of the triangle tester.
pub struct TriangleTester {
    myid: NodeId,
    neighbor_ids: Vec<NodeId>,
    reps_total: u32,
    rng: StdRng,
    verdict: TriangleVerdict,
}

impl TriangleTester {
    pub fn new(init: &NodeInit, reps: u32, seed: u64) -> Self {
        TriangleTester {
            myid: init.id,
            neighbor_ids: init.neighbor_ids.to_vec(),
            reps_total: reps,
            rng: derived_rng(seed, labels::TRIANGLE_COINS, init.id, 0),
            verdict: TriangleVerdict::default(),
        }
    }
}

impl Program for TriangleTester {
    type Msg = u64;
    type Verdict = TriangleVerdict;

    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        let rep = round / 2;
        let local = round % 2;
        if local == 0 {
            if !self.neighbor_ids.is_empty() {
                let pick = self.rng.random_range(0..self.neighbor_ids.len());
                out.broadcast(self.neighbor_ids[pick]);
            }
            return Status::Running;
        }
        // Check round.
        if !self.verdict.reject {
            for inc in inbox.iter() {
                let w = *inc.msg;
                let v = self.neighbor_ids[inc.port as usize];
                if w != self.myid && w != v && self.neighbor_ids.contains(&w) {
                    self.verdict.reject = true;
                    self.verdict.witness = Some((self.myid, v, w));
                    break;
                }
            }
        }
        if rep + 1 == self.reps_total {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn verdict(&self) -> TriangleVerdict {
        self.verdict.clone()
    }
}

/// Network-level triangle test.
pub fn test_triangle_freeness(
    g: &Graph,
    eps: f64,
    seed: u64,
    reps_override: Option<u32>,
) -> Result<(bool, RunOutcome<TriangleVerdict>), EngineError> {
    let reps = reps_override.unwrap_or_else(|| triangle_repetitions(eps));
    let cfg = EngineConfig { max_rounds: reps * 2, ..EngineConfig::default() };
    let outcome = Session::builder(g)
        .config(cfg)
        .build()
        .run(|init| TriangleTester::new(&init, reps, seed))?;
    let reject = outcome.verdicts.iter().any(|v| v.reject);
    Ok((reject, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{complete, cycle, petersen};
    use ck_graphgen::planted::eps_far_instance;

    #[test]
    fn accepts_triangle_free_graphs_always() {
        for seed in 0..6 {
            let (rej, _) = test_triangle_freeness(&petersen(), 0.2, seed, Some(8)).unwrap();
            assert!(!rej, "Petersen is triangle-free");
            let (rej, _) = test_triangle_freeness(&cycle(7), 0.2, seed, Some(8)).unwrap();
            assert!(!rej);
        }
    }

    #[test]
    fn rejects_dense_triangles_fast() {
        // K6: every sample closes a triangle.
        let (rej, out) = test_triangle_freeness(&complete(6), 0.3, 1, Some(2)).unwrap();
        assert!(rej);
        // Witness is a real triangle.
        let g = complete(6);
        for v in &out.verdicts {
            if let Some((a, b, c)) = v.witness {
                let (a, b, c) =
                    (g.index_of(a).unwrap(), g.index_of(b).unwrap(), g.index_of(c).unwrap());
                assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
            }
        }
    }

    #[test]
    fn far_instances_detected_with_good_rate() {
        let inst = eps_far_instance(60, 3, 0.1, 0);
        let mut rejects = 0;
        let trials = 10;
        for seed in 0..trials {
            if test_triangle_freeness(&inst.graph, 0.1, seed, None).unwrap().0 {
                rejects += 1;
            }
        }
        assert!(rejects * 3 >= trials * 2, "rate {rejects}/{trials}");
    }

    #[test]
    fn repetition_schedule_is_quadratic() {
        assert_eq!(triangle_repetitions(0.1), 400);
        assert_eq!(triangle_repetitions(0.2), 100);
    }
}
