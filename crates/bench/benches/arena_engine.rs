//! Arena engine vs the preserved pre-arena engine, small and mid scale.
//!
//! The committed scaling record (including n = 10⁵) lives in
//! `BENCH_engine.json`, produced by the `bench_engine` binary; this
//! criterion bench keeps the comparison runnable interactively via
//! `cargo bench -p ck-bench --bench arena_engine`.

use ck_bench::legacy_engine::run_legacy;
use ck_bench::workloads::MinFlood;
use ck_congest::engine::{run, EngineConfig, Executor};
use ck_graphgen::basic::cycle;
use ck_graphgen::random::gnp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cfg() -> EngineConfig {
    EngineConfig { executor: Executor::Sequential, record_rounds: false, ..EngineConfig::default() }
}

/// `record_rounds: true` routes the arena engine through the CSR lane
/// path with fused wire accounting (vs `cfg`'s counter-free delivery).
fn cfg_accounted() -> EngineConfig {
    EngineConfig { record_rounds: true, ..cfg() }
}

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/minflood-ring");
    for n in [1_000usize, 10_000] {
        let g = cycle(n);
        group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
            b.iter(|| {
                let out =
                    run_legacy(&g, &cfg(), |i| MinFlood::new(&i, 60))
                        .unwrap();
                black_box(out.verdicts[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let out = run(&g, &cfg(), |i| MinFlood::new(&i, 60))
                    .unwrap();
                black_box(out.verdicts[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("legacy-accounted", n), &n, |b, _| {
            b.iter(|| {
                let out = run_legacy(&g, &cfg_accounted(), |i| MinFlood::new(&i, 60))
                    .unwrap();
                black_box(out.report.per_round.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("arena-accounted", n), &n, |b, _| {
            b.iter(|| {
                let out = run(&g, &cfg_accounted(), |i| MinFlood::new(&i, 60))
                    .unwrap();
                black_box(out.report.per_round.len())
            });
        });
    }
    group.finish();
}

fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/minflood-gnp2048-p0.01");
    let g = gnp(2048, 0.01, 9);
    group.bench_function("legacy", |b| {
        b.iter(|| {
            let out = run_legacy(&g, &cfg(), |i| MinFlood::new(&i, 20))
                .unwrap();
            black_box(out.verdicts.len())
        });
    });
    group.bench_function("arena", |b| {
        b.iter(|| {
            let out =
                run(&g, &cfg(), |i| MinFlood::new(&i, 20)).unwrap();
            black_box(out.verdicts.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ring, bench_gnp);
criterion_main!(benches);
