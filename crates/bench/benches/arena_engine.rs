//! Arena engine vs the preserved pre-arena engine, small and mid scale.
//!
//! The committed scaling record (including n = 10⁵) lives in
//! `BENCH_engine.json`, produced by the `bench_engine` binary; this
//! criterion bench keeps the comparison runnable interactively via
//! `cargo bench -p ck-bench --bench arena_engine`.

use ck_bench::legacy_engine::run_legacy;
use ck_bench::workloads::MinFlood;
use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::node::Program;
use ck_congest::session::Session;
use ck_core::rank::total_rounds;
use ck_core::tester::{CkTester, TesterConfig};
use ck_graphgen::basic::cycle;
use ck_graphgen::planted::plant_on_host;
use ck_graphgen::random::{gnp, random_tree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Cold-start session per run — the session-API form of the old `run`
/// free function, keeping the timed unit comparable across schemas.
fn run<'g, P, F>(
    graph: &'g ck_congest::graph::Graph,
    config: &EngineConfig,
    factory: F,
) -> Result<ck_congest::engine::RunOutcome<P::Verdict>, ck_congest::engine::EngineError>
where
    P: Program,
    F: FnMut(ck_congest::node::NodeInit<'g>) -> P,
{
    Session::builder(graph).config(config.clone()).build().run(factory)
}

fn cfg() -> EngineConfig {
    EngineConfig { executor: Executor::Sequential, record_rounds: false, ..EngineConfig::default() }
}

/// `record_rounds: true` routes the arena engine through the CSR lane
/// path with fused wire accounting (vs `cfg`'s counter-free delivery).
fn cfg_accounted() -> EngineConfig {
    EngineConfig { record_rounds: true, ..cfg() }
}

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/minflood-ring");
    for n in [1_000usize, 10_000] {
        let g = cycle(n);
        group.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
            b.iter(|| {
                let out = run_legacy(&g, &cfg(), |i| MinFlood::new(&i, 60)).unwrap();
                black_box(out.verdicts[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("arena", n), &n, |b, _| {
            b.iter(|| {
                let out = run(&g, &cfg(), |i| MinFlood::new(&i, 60)).unwrap();
                black_box(out.verdicts[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("legacy-accounted", n), &n, |b, _| {
            b.iter(|| {
                let out = run_legacy(&g, &cfg_accounted(), |i| MinFlood::new(&i, 60)).unwrap();
                black_box(out.report.per_round.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("arena-accounted", n), &n, |b, _| {
            b.iter(|| {
                let out = run(&g, &cfg_accounted(), |i| MinFlood::new(&i, 60)).unwrap();
                black_box(out.report.per_round.len())
            });
        });
    }
    group.finish();
}

fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/minflood-gnp2048-p0.01");
    let g = gnp(2048, 0.01, 9);
    group.bench_function("legacy", |b| {
        b.iter(|| {
            let out = run_legacy(&g, &cfg(), |i| MinFlood::new(&i, 20)).unwrap();
            black_box(out.verdicts.len())
        });
    });
    group.bench_function("arena", |b| {
        b.iter(|| {
            let out = run(&g, &cfg(), |i| MinFlood::new(&i, 20)).unwrap();
            black_box(out.verdicts.len())
        });
    });
    group.finish();
}

/// The paper's full Ck tester at k = 5 (heavy pooled `SeqBundle`
/// broadcasts through the clone-free slot path), arena vs legacy and
/// sequential vs parallel, in both accounting modes.
fn bench_ck5_tester(c: &mut Criterion) {
    let n = 4000;
    let host = random_tree(n, 7);
    let inst = plant_on_host(&host, 5, n / 40, 7);
    let tcfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(5, 0.1, 42) };
    let mut group = c.benchmark_group("engine/ck5-tester-planted4000");
    for (mode, record) in [("fast", false), ("accounted", true)] {
        let cfg = |exec| EngineConfig {
            executor: exec,
            record_rounds: record,
            max_rounds: total_rounds(5, 2),
            ..EngineConfig::default()
        };
        group.bench_function(BenchmarkId::new("legacy-seq", mode), |b| {
            let cfg = cfg(Executor::Sequential);
            b.iter(|| {
                let out = run_legacy(&inst.graph, &cfg, |i| CkTester::new(&tcfg, &i)).unwrap();
                black_box(out.verdicts.len())
            });
        });
        group.bench_function(BenchmarkId::new("arena-seq", mode), |b| {
            let cfg = cfg(Executor::Sequential);
            b.iter(|| {
                let out = run(&inst.graph, &cfg, |i| CkTester::new(&tcfg, &i)).unwrap();
                black_box(out.verdicts.len())
            });
        });
        group.bench_function(BenchmarkId::new("arena-par", mode), |b| {
            let cfg = cfg(Executor::Parallel);
            b.iter(|| {
                let out = run(&inst.graph, &cfg, |i| CkTester::new(&tcfg, &i)).unwrap();
                black_box(out.verdicts.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ring, bench_gnp, bench_ck5_tester);
criterion_main!(benches);
