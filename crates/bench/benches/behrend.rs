//! E10 timing: detection on Behrend-style spread-cycle instances, where
//! no density signal helps and the pruning rule carries the detection.

use ck_congest::engine::EngineConfig;
use ck_congest::graph::Edge;
use ck_core::prune::PrunerKind;
use ck_core::session::TesterSession;
use ck_core::single::detect_ck_through_edge;
use ck_core::tester::TesterConfig;
use ck_graphgen::behrend::behrend_ck_instance;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Cold-start session per run — the session-API form of the old
/// `run_tester` free function.
fn run_once(
    g: &ck_congest::graph::Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<ck_core::tester::TesterRun, ck_congest::engine::EngineError> {
    TesterSession::from_config(*cfg, engine.clone()).expect("valid config").test(g)
}

fn bench_single_edge(c: &mut Criterion) {
    let mut group = c.benchmark_group("behrend/single-edge");
    for &(k, width) in &[(5usize, 64usize), (6, 48)] {
        let inst = behrend_ck_instance(k, width);
        let copy = &inst.planted[0];
        let e = Edge::new(copy[k - 1], copy[0]);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}-w{width}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    black_box(
                        detect_ck_through_edge(
                            &inst.graph,
                            k,
                            e,
                            PrunerKind::Representative,
                            &EngineConfig::default(),
                        )
                        .unwrap()
                        .reject,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_full_tester(c: &mut Criterion) {
    let mut group = c.benchmark_group("behrend/full-tester");
    group.sample_size(10);
    {
        let &(k, width) = &(5usize, 40usize);
        let inst = behrend_ck_instance(k, width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}-w{width}")),
            &k,
            |b, &k| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    let cfg =
                        TesterConfig { repetitions: Some(20), ..TesterConfig::new(k, 0.05, seed) };
                    black_box(run_once(&inst.graph, &cfg, &EngineConfig::default()).unwrap().reject)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_edge, bench_full_tester);
criterion_main!(benches);
