//! E11 timing: naive keep-all vs Algorithm 1 on widening spindles. The
//! naive detector's work grows with the fan-in width p; the pruned
//! detector's stays flat (Lemma 3).

use ck_baselines::naive::{naive_detect_through_edge, DropPolicy};
use ck_congest::engine::EngineConfig;
use ck_congest::graph::Edge;
use ck_core::prune::PrunerKind;
use ck_core::single::detect_ck_through_edge;
use ck_graphgen::basic::spindle;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_naive_vs_pruned(c: &mut Criterion) {
    for p in [8usize, 32, 64] {
        let g = spindle(p, 2);
        let e = Edge::new(0, 1);
        let mut group = c.benchmark_group(format!("congestion/spindle-p{p}"));
        group.bench_function("naive-keepall", |b| {
            b.iter(|| {
                black_box(
                    naive_detect_through_edge(
                        &g,
                        6,
                        e,
                        DropPolicy::KeepAll,
                        &EngineConfig::default(),
                    )
                    .unwrap()
                    .reject,
                )
            });
        });
        group.bench_function("pruned", |b| {
            b.iter(|| {
                black_box(
                    detect_ck_through_edge(
                        &g,
                        6,
                        e,
                        PrunerKind::Representative,
                        &EngineConfig::default(),
                    )
                    .unwrap()
                    .reject,
                )
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_naive_vs_pruned);
criterion_main!(benches);
