//! E2/E3 timing: full-tester wall time per (k, ε) on certified ε-far
//! instances and on matched Ck-free controls (the accept path).

use ck_congest::engine::EngineConfig;
use ck_core::session::TesterSession;
use ck_core::tester::TesterConfig;
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Cold-start session per run — the session-API form of the old
/// `run_tester` free function.
fn run_once(
    g: &ck_congest::graph::Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
) -> Result<ck_core::tester::TesterRun, ck_congest::engine::EngineError> {
    TesterSession::from_config(*cfg, engine.clone()).expect("valid config").test(g)
}

fn bench_far_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("tester/eps-far");
    for k in [3usize, 5, 7] {
        let eps = 0.1;
        let inst = eps_far_instance(60, k, eps, 0);
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let cfg = TesterConfig::new(k, eps, seed);
                black_box(run_once(&inst.graph, &cfg, &EngineConfig::default()).unwrap().reject)
            });
        });
    }
    group.finish();
}

fn bench_free_accept(c: &mut Criterion) {
    let mut group = c.benchmark_group("tester/ck-free-accept");
    for k in [4usize, 6] {
        let g = matched_free_instance(60, k);
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                let cfg = TesterConfig { repetitions: Some(8), ..TesterConfig::new(k, 0.1, seed) };
                black_box(run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject)
            });
        });
    }
    group.finish();
}

fn bench_eps_sweep(c: &mut Criterion) {
    // Rounds scale as 1/ε; wall time should follow linearly (E3's shape).
    let mut group = c.benchmark_group("tester/eps-sweep-k5");
    let g = matched_free_instance(40, 5);
    for eps in [0.2f64, 0.1, 0.05] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}")),
            &eps,
            |b, &eps| {
                b.iter(|| {
                    let cfg = TesterConfig::new(5, eps, 7);
                    black_box(run_once(&g, &cfg, &EngineConfig::default()).unwrap().reject)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_far_detection, bench_free_accept, bench_eps_sweep);
criterion_main!(benches);
