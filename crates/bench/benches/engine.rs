//! Raw simulator throughput: node-steps per second on structured and
//! random topologies, sequential vs rayon-parallel executors.

use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::node::{Inbox, Outbox, Program, Status};
use ck_congest::session::Session;
use ck_graphgen::basic::torus;
use ck_graphgen::random::gnp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Cold-start session per run — the session-API form of the old `run`
/// free function, keeping the timed unit comparable across schemas.
fn run<'g, P, F>(
    graph: &'g ck_congest::graph::Graph,
    config: &EngineConfig,
    factory: F,
) -> Result<ck_congest::engine::RunOutcome<P::Verdict>, ck_congest::engine::EngineError>
where
    P: Program,
    F: FnMut(ck_congest::node::NodeInit<'g>) -> P,
{
    Session::builder(graph).config(config.clone()).build().run(factory)
}

/// Flood-min protocol: the standard engine stress (every node broadcasts
/// on improvement for `ttl` rounds).
struct MinFlood {
    best: u64,
    ttl: u32,
    changed: bool,
}

impl Program for MinFlood {
    type Msg = u64;
    type Verdict = u64;
    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        for inc in inbox.iter() {
            if *inc.msg < self.best {
                self.best = *inc.msg;
                self.changed = true;
            }
        }
        if round >= self.ttl {
            return Status::Halted;
        }
        if round == 0 || self.changed {
            out.broadcast(self.best);
            self.changed = false;
        }
        Status::Running
    }
    fn verdict(&self) -> u64 {
        self.best
    }
}

fn bench_executors(c: &mut Criterion) {
    let g = torus(40, 40); // 1600 nodes, diameter 40
    for exec in [Executor::Sequential, Executor::Parallel] {
        let name = format!("engine/minflood-torus40/{exec:?}");
        c.bench_function(&name, |b| {
            b.iter(|| {
                let cfg = EngineConfig {
                    executor: exec,
                    record_rounds: false,
                    ..EngineConfig::default()
                };
                let out = run(&g, &cfg, |init| MinFlood { best: init.id, ttl: 80, changed: false })
                    .unwrap();
                black_box(out.verdicts[0])
            });
        });
    }
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/minflood-gnp512");
    for p in [0.01f64, 0.05] {
        let g = gnp(512, p, 3);
        group.bench_with_input(BenchmarkId::from_parameter(format!("p{p}")), &p, |b, _| {
            b.iter(|| {
                let cfg = EngineConfig { record_rounds: false, ..EngineConfig::default() };
                let out = run(&g, &cfg, |init| MinFlood { best: init.id, ttl: 20, changed: false })
                    .unwrap();
                black_box(out.verdicts.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executors, bench_density);
criterion_main!(benches);
