//! E5 timing: single-edge detection cost across k on congestion-heavy
//! topologies (the Lemma 3 regime — message sizes constant in n, growing
//! in k).

use ck_congest::engine::EngineConfig;
use ck_congest::graph::Edge;
use ck_core::prune::PrunerKind;
use ck_core::single::detect_ck_through_edge;
use ck_graphgen::basic::spindle;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_k_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("single-edge/k-scaling-spindle16");
    for k in [5usize, 6, 8, 10] {
        let g = spindle(16, k - 4); // cycle length = mid + 4 = k
        let e = Edge::new(0, 1);
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    detect_ck_through_edge(
                        &g,
                        k,
                        e,
                        PrunerKind::Representative,
                        &EngineConfig::default(),
                    )
                    .unwrap()
                    .reject,
                )
            });
        });
    }
    group.finish();
}

fn bench_width_invariance(c: &mut Criterion) {
    // Lemma 3: per-message load is independent of the fan-in width p.
    let mut group = c.benchmark_group("single-edge/width-sweep-k6");
    for p in [8usize, 32, 128] {
        let g = spindle(p, 2);
        let e = Edge::new(0, 1);
        group.bench_with_input(BenchmarkId::from_parameter(format!("p{p}")), &p, |b, _| {
            b.iter(|| {
                black_box(
                    detect_ck_through_edge(
                        &g,
                        6,
                        e,
                        PrunerKind::Representative,
                        &EngineConfig::default(),
                    )
                    .unwrap()
                    .reject,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k_scaling, bench_width_invariance);
criterion_main!(benches);
