//! Micro-benchmarks of the pruning rule: the representative-family
//! implementation vs the literal subset enumeration, across input shapes
//! (common-prefix floods, disjoint floods).

use ck_core::prune::{prune_literal, prune_representative};
use ck_core::seq::IdSeq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// `count` sequences all sharing the hub id 1: (1, x_i).
fn shared_hub(count: usize) -> Vec<IdSeq> {
    (0..count as u64).map(|i| IdSeq::from_slice(&[1, 10 + i])).collect()
}

/// `count` pairwise-disjoint pairs.
fn disjoint_pairs(count: usize) -> Vec<IdSeq> {
    (0..count as u64).map(|i| IdSeq::from_slice(&[2 * i + 10, 2 * i + 11])).collect()
}

fn bench_representative(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune/representative-k8t3");
    for count in [16usize, 64, 256] {
        let hub = shared_hub(count);
        let disj = disjoint_pairs(count);
        group.bench_with_input(BenchmarkId::new("shared-hub", count), &count, |b, _| {
            b.iter(|| black_box(prune_representative(&hub, 8, 3).len()));
        });
        group.bench_with_input(BenchmarkId::new("disjoint", count), &count, |b, _| {
            b.iter(|| black_box(prune_representative(&disj, 8, 3).len()));
        });
    }
    group.finish();
}

fn bench_literal_vs_representative(c: &mut Criterion) {
    // Small instances where the literal enumeration is feasible.
    let mut group = c.benchmark_group("prune/literal-vs-representative-k6t3");
    let input = disjoint_pairs(8);
    group.bench_function("literal", |b| {
        b.iter(|| black_box(prune_literal(&input, 6, 3).len()));
    });
    group.bench_function("representative", |b| {
        b.iter(|| black_box(prune_representative(&input, 6, 3).len()));
    });
    group.finish();
}

fn bench_deep_rounds(c: &mut Criterion) {
    // Later rounds: longer sequences, deeper transversal search.
    let mut group = c.benchmark_group("prune/representative-depth");
    for (k, t) in [(10usize, 4usize), (12, 5), (14, 6)] {
        let input: Vec<IdSeq> = (0..64u64)
            .map(|i| {
                let ids: Vec<u64> = (0..t as u64 - 1).map(|j| 100 + i * 16 + j).collect();
                IdSeq::from_slice(&ids)
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}t{t}")), &t, |b, _| {
            b.iter(|| black_box(prune_representative(&input, k, t).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_representative, bench_literal_vs_representative, bench_deep_rounds);
criterion_main!(benches);
