//! Emits `BENCH_engine.json`: rounds-per-second of the arena engine vs
//! the preserved pre-arena (legacy) engine, on the workloads the round
//! loop is actually bottlenecked by:
//!
//! * `minflood-ring` — min-ID flooding on a ring of `n` nodes, the pure
//!   engine stress (every node broadcasts every round while the minimum
//!   propagates);
//! * `c4-tester-planted` — the paper's `Ck` tester at `k = 4` on a
//!   random-tree host with planted vertex-disjoint C4 copies, the
//!   protocol workload with structured multi-word messages.
//!
//! Each workload is timed in two modes: `fast` (`record_rounds: false`
//! — the arena engine's counter-free delivery path) and `accounted`
//! (`record_rounds: true` — the double-buffered CSR lane path with wire
//! accounting and bandwidth checks fused into the sends, vs the legacy
//! engine's separate accounting pass with its per-port linear scan).
//! Before timing, each workload's verdicts are checked identical across
//! the two engines in each mode — a benchmark of two engines that
//! disagree would be meaningless. Both engines run the sequential
//! executor so the numbers measure the round loop itself, not
//! thread-pool behaviour.
//!
//! Usage: `cargo run --release -p ck-bench --bin bench_engine [OUT.json]`
//! (default output path: `BENCH_engine.json` in the current directory).

use ck_bench::legacy_engine::run_legacy;
use ck_bench::workloads::MinFlood;
use ck_congest::engine::{run, EngineConfig, Executor, RunOutcome};
use ck_congest::graph::Graph;
use ck_core::tester::{CkTester, TesterConfig};
use ck_core::rank::total_rounds;
use ck_graphgen::basic::cycle;
use ck_graphgen::planted::plant_on_host;
use ck_graphgen::random::random_tree;
use std::fmt::Write as _;
use std::time::Instant;

/// Fixed flood horizon: keeps per-run round counts equal across `n`, so
/// rounds-per-second is comparable along the scaling axis.
const FLOOD_TTL: u32 = 60;
/// Tester repetitions for the C4 workload.
const C4_REPS: u32 = 2;
/// Minimum measured wall-clock per configuration.
const MEASURE_SECS: f64 = 1.0;
/// Cap on timed runs per configuration.
const MAX_RUNS: u32 = 12;

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Legacy,
    Arena,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Legacy => "legacy",
            Engine::Arena => "arena",
        }
    }
}

struct Measurement {
    workload: &'static str,
    n: usize,
    engine: Engine,
    /// `"fast"` (no round recording) or `"accounted"` (recorded rounds:
    /// the arena engine's lane path with fused wire accounting).
    mode: &'static str,
    rounds: u32,
    runs: u32,
    secs_per_run: f64,
    rounds_per_sec: f64,
}

/// The two measured configurations; `record` selects the engine path
/// (`false` → counter-free delivery, `true` → accounted lane writes).
const MODES: [(&str, bool); 2] = [("fast", false), ("accounted", true)];

/// Times `exec` (whole runs) until the measurement budget is spent;
/// returns (runs, secs_per_run, rounds) using the final run's report.
fn time_runs<V>(mut exec: impl FnMut() -> RunOutcome<V>) -> (u32, f64, u32) {
    let mut rounds = exec().report.rounds; // warm-up (also primes allocator)
    let start = Instant::now();
    let mut runs = 0u32;
    while runs < MAX_RUNS {
        rounds = exec().report.rounds;
        runs += 1;
        if start.elapsed().as_secs_f64() >= MEASURE_SECS {
            break;
        }
    }
    (runs, start.elapsed().as_secs_f64() / f64::from(runs), rounds)
}

fn minflood_outcome(g: &Graph, engine: Engine, cfg: &EngineConfig) -> RunOutcome<u64> {
    let mk = |init: ck_congest::node::NodeInit| MinFlood::new(&init, FLOOD_TTL);
    match engine {
        Engine::Legacy => run_legacy(g, cfg, mk).expect("measure policy cannot fail"),
        Engine::Arena => run(g, cfg, mk).expect("measure policy cannot fail"),
    }
}

fn c4_outcome(
    g: &Graph,
    engine: Engine,
    tcfg: &TesterConfig,
    cfg: &EngineConfig,
) -> RunOutcome<ck_core::tester::NodeVerdict> {
    let mk = |init: ck_congest::node::NodeInit| CkTester::new(tcfg, &init);
    match engine {
        Engine::Legacy => run_legacy(g, cfg, mk).expect("measure policy cannot fail"),
        Engine::Arena => run(g, cfg, mk).expect("measure policy cannot fail"),
    }
}

fn bench_engine_config(record: bool) -> EngineConfig {
    EngineConfig {
        executor: Executor::Sequential,
        record_rounds: record,
        ..EngineConfig::default()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_engine.json".into());
    let sizes = [1_000usize, 10_000, 100_000];
    let mut measurements: Vec<Measurement> = Vec::new();

    for &n in &sizes {
        // ---- minflood-ring ------------------------------------------
        let g = cycle(n);
        for (mode, record) in MODES {
            let cfg = bench_engine_config(record);
            // Cross-engine verdict check before timing.
            let legacy_v = minflood_outcome(&g, Engine::Legacy, &cfg).verdicts;
            let arena_v = minflood_outcome(&g, Engine::Arena, &cfg).verdicts;
            assert_eq!(legacy_v, arena_v, "engines disagree on minflood-ring n={n} ({mode})");
            for engine in [Engine::Legacy, Engine::Arena] {
                let (runs, secs, rounds) = time_runs(|| minflood_outcome(&g, engine, &cfg));
                eprintln!(
                    "minflood-ring n={n} {} [{mode}]: {:.4} s/run ({rounds} rounds, {runs} runs)",
                    engine.name(),
                    secs
                );
                measurements.push(Measurement {
                    workload: "minflood-ring",
                    n,
                    engine,
                    mode,
                    rounds,
                    runs,
                    secs_per_run: secs,
                    rounds_per_sec: f64::from(rounds) / secs,
                });
            }
        }

        // ---- c4-tester-planted --------------------------------------
        let host = random_tree(n, 7);
        let inst = plant_on_host(&host, 4, (n / 40).max(1), 7);
        let tcfg = TesterConfig {
            repetitions: Some(C4_REPS),
            ..TesterConfig::new(4, 0.1, 42)
        };
        for (mode, record) in MODES {
            let mut cfg = bench_engine_config(record);
            cfg.max_rounds = total_rounds(4, C4_REPS);
            let legacy_r = c4_outcome(&inst.graph, Engine::Legacy, &tcfg, &cfg);
            let arena_r = c4_outcome(&inst.graph, Engine::Arena, &tcfg, &cfg);
            assert_eq!(
                legacy_r.verdicts.iter().map(|v| v.rejected).collect::<Vec<_>>(),
                arena_r.verdicts.iter().map(|v| v.rejected).collect::<Vec<_>>(),
                "engines disagree on c4-tester-planted n={n} ({mode})"
            );
            assert!(
                legacy_r.verdicts.iter().any(|v| v.rejected),
                "planted C4 instance must be rejected (n={n})"
            );
            for engine in [Engine::Legacy, Engine::Arena] {
                let (runs, secs, rounds) =
                    time_runs(|| c4_outcome(&inst.graph, engine, &tcfg, &cfg));
                eprintln!(
                    "c4-tester-planted n={n} {} [{mode}]: {:.4} s/run ({rounds} rounds, {runs} runs)",
                    engine.name(),
                    secs
                );
                measurements.push(Measurement {
                    workload: "c4-tester-planted",
                    n,
                    engine,
                    mode,
                    rounds,
                    runs,
                    secs_per_run: secs,
                    rounds_per_sec: f64::from(rounds) / secs,
                });
            }
        }
    }

    // ---- render ------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"ck-bench/engine/v1\",\n");
    let _ = writeln!(
        json,
        "  \"description\": \"Round-engine throughput, arena (zero-allocation double-buffered \
         CSR lanes) vs legacy (per-round Vec allocation); sequential executor. Mode 'fast' = \
         record_rounds off (counter-free delivery path); mode 'accounted' = record_rounds on \
         (lane writes with fused wire accounting vs legacy's separate accounting pass).\","
    );
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"entries\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"mode\": \"{}\", \
             \"executor\": \"sequential\", \"rounds\": {}, \"runs\": {}, \
             \"secs_per_run\": {:.6}, \"rounds_per_sec\": {:.2}}}",
            m.workload,
            m.n,
            m.engine.name(),
            m.mode,
            m.rounds,
            m.runs,
            m.secs_per_run,
            m.rounds_per_sec
        );
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"speedups\": [\n");
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &n in &sizes {
        for workload in ["minflood-ring", "c4-tester-planted"] {
            for (mode, _) in MODES {
                let rps = |engine: Engine| {
                    measurements
                        .iter()
                        .find(|m| {
                            m.workload == workload && m.n == n && m.engine == engine && m.mode == mode
                        })
                        .expect("measured")
                        .rounds_per_sec
                };
                let s = rps(Engine::Arena) / rps(Engine::Legacy);
                // The fast-mode key keeps the bare `workload/n` form the
                // acceptance record is keyed on.
                let key = if mode == "fast" {
                    format!("{workload}/{n}")
                } else {
                    format!("{workload}/{n}/{mode}")
                };
                speedups.push((key, s));
            }
        }
    }
    for (i, (key, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "    {{\"case\": \"{key}\", \"arena_over_legacy\": {s:.3}}}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    let headline = speedups
        .iter()
        .find(|(k, _)| k == "minflood-ring/100000")
        .map(|&(_, s)| s)
        .unwrap_or(0.0);
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"case\": \"minflood-ring/100000\", \"speedup\": {headline:.3}, \
         \"required\": 2.0, \"pass\": {}}}",
        headline >= 2.0
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");
    eprintln!("wrote {out_path} (headline speedup {headline:.2}x)");
}
