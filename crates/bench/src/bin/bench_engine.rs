//! Emits `BENCH_engine.json` (schema v8: the id follows this
//! workspace's revision series — v8 is the ckserve probe-service
//! revision, superseding the v5 SoA/threads records): rounds-per-second of the
//! arena engine vs the preserved pre-arena (legacy) engine, on the
//! workloads the round loop is actually bottlenecked by:
//!
//! * `minflood-ring` — min-ID flooding on a ring of `n` nodes, the pure
//!   engine stress (every node broadcasts every round while the minimum
//!   propagates);
//! * `c4-tester-planted` — the paper's `Ck` tester at `k = 4` on a
//!   random-tree host with planted vertex-disjoint C4 copies;
//! * `ck5-tester-planted` — the full tester at `k = 5` (an odd-`k`
//!   Phase 2 with genuine multi-round prune-and-forward) on the same
//!   planted-host family;
//! * `ck5-tester-behrend` — the full tester at `k = 5` on the
//!   Behrend-style layered hard instance (every edge lies on a planted
//!   C5, so Phase-2 traffic is everywhere).
//!
//! Each workload is timed in two modes — `fast` (`record_rounds: false`,
//! the counter-free delivery path) and `accounted` (`record_rounds:
//! true`, fused wire accounting) — and, for the arena engine, under both
//! executors; every entry records its `executor` and `threads` honestly.
//! Before timing, each configuration's verdicts are checked identical
//! across the two engines, and the arena engine's sequential and
//! parallel outputs are asserted **bit-identical** (verdicts and, in
//! accounted mode, the full per-round statistics).
//!
//! The `acceptance` block gates on the same-run arena-over-legacy
//! ratio of every accounted tester case at the largest `n` (the only
//! comparison immune to machine drift between bench days), and
//! additionally reports the absolute comparison against the PR-1 arena
//! numbers from the committed schema-v1 record — with the unchanged
//! legacy engine as the drift control and an explicit
//! `pr1_absolute_speedup_met` verdict.
//!
//! Usage: `cargo run --release -p ck-bench --bin bench_engine
//! [--smoke] [OUT.json]` (default output `BENCH_engine.json`; `--smoke`
//! runs a seconds-long tiny-`n` pass for CI, default output
//! `BENCH_smoke.json`).

use ck_bench::legacy_engine::run_legacy;
use ck_bench::workloads::MinFlood;
use ck_congest::batch::effective_shards;
use ck_congest::engine::{EngineConfig, Executor, RunOutcome};
use ck_congest::graph::Graph;
use ck_congest::net::{ChaosPlan, NetOptions};
use ck_congest::session::Session;
use ck_core::batch::BatchJob;
use ck_core::decide::decide_all_rejects;
use ck_core::rank::total_rounds;
use ck_core::robust::{
    adaptive_vs_fixed, crash_detection_curve, loss_detection_curve, AdaptiveComparison, CrashPoint,
    LossPoint,
};
use ck_core::scan::{decide_all_rejects_scanned, ScanBackend, ScanScratch};
use ck_core::seq::IdSeq;
use ck_core::session::TesterSession;
use ck_core::tester::{CkTester, NodeLayout, NodeVerdict, TesterConfig, TesterRun};
use ck_graphgen::basic::cycle;
use ck_graphgen::behrend::{behrend_ap_free_set, layered_ck};
use ck_graphgen::planted::{eps_far_instance, plant_on_host};
use ck_graphgen::random::random_tree;
use std::fmt::Write as _;
use std::time::Instant;

/// Fixed flood horizon: keeps per-run round counts equal across `n`, so
/// rounds-per-second is comparable along the scaling axis.
const FLOOD_TTL: u32 = 60;
/// Tester repetitions for the `Ck` workloads.
const TESTER_REPS: u32 = 2;

/// PR-1 rounds/sec from the committed schema-v1 `BENCH_engine.json`
/// (same machine class): `(case, arena_rps, legacy_rps)`. The legacy
/// engine is code-identical across PRs, so its drift measures the
/// *machine*, not the code — the absolute PR-1 comparison is reported
/// with that control alongside.
const PR1_BASELINES: [(&str, f64, f64); 2] = [
    ("c4-tester-planted/100000", 13.68, 8.50),
    ("c4-tester-planted/100000/accounted", 13.18, 7.86),
];
/// Required same-run arena-over-legacy ratio on the accounted tester
/// cases at the largest `n` — the clone-free-broadcast acceptance
/// check. (PR-1 recorded 1.2–1.7× here; the broadcast slots and pooled
/// payloads must lift every tester case past 1.5×.)
const REQUIRED_SPEEDUP: f64 = 1.5;

#[derive(Clone, Copy, PartialEq)]
enum Engine {
    Legacy,
    Arena,
}

impl Engine {
    fn name(self) -> &'static str {
        match self {
            Engine::Legacy => "legacy",
            Engine::Arena => "arena",
        }
    }
}

fn exec_name(e: Executor) -> &'static str {
    match e {
        Executor::Sequential => "sequential",
        Executor::Parallel => "parallel",
        Executor::Distributed { .. } => "distributed",
    }
}

fn exec_threads(e: Executor) -> usize {
    match e {
        Executor::Sequential => 1,
        Executor::Parallel => rayon::current_num_threads(),
        Executor::Distributed { workers } => workers.max(1) as usize,
    }
}

struct Measurement {
    workload: &'static str,
    n: usize,
    engine: Engine,
    /// `"fast"` (no round recording) or `"accounted"` (recorded rounds:
    /// fused wire accounting in the send path).
    mode: &'static str,
    executor: Executor,
    threads: usize,
    rounds: u32,
    runs: u32,
    secs_per_run: f64,
    rounds_per_sec: f64,
}

/// The two measured configurations; `record` selects the engine path
/// (`false` → counter-free delivery, `true` → accounted writes).
const MODES: [(&str, bool); 2] = [("fast", false), ("accounted", true)];

/// Engine/executor combinations measured per workload: the legacy
/// baseline (sequential), the arena engine on the same executor, and
/// the arena engine under the parallel executor.
const COMBOS: [(Engine, Executor); 3] = [
    (Engine::Legacy, Executor::Sequential),
    (Engine::Arena, Executor::Sequential),
    (Engine::Arena, Executor::Parallel),
];

#[derive(Clone, Copy)]
struct Budget {
    measure_secs: f64,
    max_runs: u32,
}

/// Round-robin noise-floor timing for the variant sets the gated
/// ratios are computed from: every round runs each variant once, in
/// order, until the shared budget (`measure_secs` per variant) or
/// `max_runs` rounds are spent; each variant's *fastest* run is its
/// estimate. Two noise sources motivate the shape. One-sided per-run
/// noise (scheduler ticks, page-cache state) is handled by the
/// minimum — the standard noise-floor estimator, so one slow outlier
/// cannot flip a gate. Slow machine drift (thermal state, a noisy
/// neighbour on a shared host) is handled by the interleaving: timing
/// each variant in its own contiguous window lands a drift episode
/// entirely on whichever variant owned that window and silently biases
/// the ratio, while round-robin sampling gives every variant the same
/// drift profile, so ratios of these estimates are drift-immune by
/// construction. Returns per-variant `(rounds_of_sampling, best_secs,
/// last_run_rounds)`, parallel to `execs`. Each closure performs one
/// full run and returns the run's executed round count.
fn time_runs_min_interleaved(
    budget: &Budget,
    execs: &mut [Box<dyn FnMut() -> u32 + '_>],
) -> Vec<(u32, f64, u32)> {
    let k = execs.len();
    let mut rounds = vec![0u32; k];
    for (i, e) in execs.iter_mut().enumerate() {
        rounds[i] = e(); // warm-up (also primes allocator state)
    }
    let start = Instant::now();
    let mut best = vec![f64::INFINITY; k];
    let mut runs = 0u32;
    while runs < budget.max_runs {
        for (i, e) in execs.iter_mut().enumerate() {
            let t = Instant::now();
            rounds[i] = e();
            best[i] = best[i].min(t.elapsed().as_secs_f64());
        }
        runs += 1;
        if start.elapsed().as_secs_f64() >= budget.measure_secs * k as f64 {
            break;
        }
    }
    (0..k).map(|i| (runs, best[i], rounds[i])).collect()
}

fn minflood_outcome(g: &Graph, engine: Engine, cfg: &EngineConfig) -> RunOutcome<u64> {
    let mk = |init: ck_congest::node::NodeInit| MinFlood::new(&init, FLOOD_TTL);
    match engine {
        Engine::Legacy => run_legacy(g, cfg, mk).expect("measure policy cannot fail"),
        // A fresh session per run: the timed unit stays cold-start,
        // comparable with every earlier schema's arena rows.
        Engine::Arena => Session::builder(g)
            .config(cfg.clone())
            .build()
            .run(mk)
            .expect("measure policy cannot fail"),
    }
}

fn tester_outcome(
    g: &Graph,
    engine: Engine,
    tcfg: &TesterConfig,
    cfg: &EngineConfig,
) -> RunOutcome<NodeVerdict> {
    let mk = |init| CkTester::new(tcfg, &init);
    match engine {
        Engine::Legacy => run_legacy(g, cfg, mk).expect("measure policy cannot fail"),
        Engine::Arena => Session::builder(g)
            .config(cfg.clone())
            .build()
            .run(mk)
            .expect("measure policy cannot fail"),
    }
}

fn engine_config(record: bool, executor: Executor) -> EngineConfig {
    EngineConfig { executor, record_rounds: record, ..EngineConfig::default() }
}

/// Asserts the arena engine's two executors produce bit-identical
/// outputs on this configuration (verdict projection + full per-round
/// statistics when recorded), and returns the sequential outcome.
fn assert_seq_par_identical<V: PartialEq + std::fmt::Debug>(
    label: &str,
    mut run_with: impl FnMut(Executor) -> RunOutcome<V>,
) -> RunOutcome<V> {
    let seq = run_with(Executor::Sequential);
    let par = run_with(Executor::Parallel);
    assert_eq!(seq.verdicts, par.verdicts, "seq/par verdicts diverge: {label}");
    assert_eq!(seq.report.per_round, par.report.per_round, "seq/par stats diverge: {label}");
    assert_eq!(seq.report.rounds, par.report.rounds, "seq/par rounds diverge: {label}");
    seq
}

struct Workload {
    name: &'static str,
    graph: Graph,
    tester: Option<TesterConfig>,
    max_rounds: u32,
    /// Whether the instance is guaranteed to be rejected (planted/hard
    /// instances) — checked before timing so the benchmark can't
    /// silently measure a trivial accept.
    expect_reject: bool,
}

fn workloads_for(n: usize) -> Vec<Workload> {
    let c4 = TesterConfig { repetitions: Some(TESTER_REPS), ..TesterConfig::new(4, 0.1, 42) };
    let ck5 = TesterConfig { repetitions: Some(TESTER_REPS), ..TesterConfig::new(5, 0.1, 42) };
    let host = random_tree(n, 7);
    // Behrend-style layered C5 instance on ~n nodes. The stride set is
    // capped at 4 so node degrees stay bounded as n scales (the full
    // Behrend set would grow the degree — and the per-round message
    // count — superlinearly, measuring congestion instead of the round
    // loop).
    let width = (n / 5).max(2);
    let strides = behrend_ap_free_set((width as u64) / 10);
    let strides = if strides.is_empty() { vec![1] } else { strides };
    let take = strides.len().min(4);
    let behrend = layered_ck(5, width, &strides[..take]);
    vec![
        Workload {
            name: "minflood-ring",
            graph: cycle(n),
            tester: None,
            max_rounds: FLOOD_TTL + 1,
            expect_reject: false,
        },
        Workload {
            name: "c4-tester-planted",
            graph: plant_on_host(&host, 4, (n / 40).max(1), 7).graph,
            tester: Some(c4),
            max_rounds: total_rounds(4, TESTER_REPS),
            expect_reject: true,
        },
        Workload {
            name: "ck5-tester-planted",
            graph: plant_on_host(&host, 5, (n / 40).max(1), 7).graph,
            tester: Some(ck5),
            max_rounds: total_rounds(5, TESTER_REPS),
            expect_reject: true,
        },
        Workload {
            name: "ck5-tester-behrend",
            graph: behrend.graph,
            tester: Some(ck5),
            max_rounds: total_rounds(5, TESTER_REPS),
            expect_reject: true,
        },
    ]
}

/// One row of the batch sweep: how one execution strategy ran the
/// whole multi-graph family.
struct BatchRow {
    variant: &'static str,
    mode: &'static str,
    /// Shards the strategy used (1 for the loop and batch-seq rows).
    shards: usize,
    threads: usize,
    runs: u32,
    secs_per_sweep: f64,
    jobs_per_sec: f64,
}

/// Measures the batch runner against the one-by-one loop on a
/// `count`-graph planted sweep: per mode, times (a) the plain
/// `run_tester` loop, (b) the batch runner with one shard, and (c) the
/// batch runner sharded across the thread pool — after asserting all
/// three produce bit-identical per-job outputs. Returns the rows plus
/// the sweep's observed batch-over-loop ratios keyed
/// `"<variant>/<mode>"`.
fn batch_sweep(n: usize, count: usize, budget: &Budget) -> (Vec<BatchRow>, Vec<(String, f64)>) {
    use ck_graphgen::planted::plant_on_host;
    let graphs: Vec<Graph> = (0..count)
        .map(|i| {
            let host = random_tree(n, 7 + i as u64);
            plant_on_host(&host, 5, (n / 40).max(1), 7 + i as u64).graph
        })
        .collect();
    let jobs: Vec<BatchJob> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let cfg = TesterConfig {
                repetitions: Some(TESTER_REPS),
                ..TesterConfig::new(5, 0.1, 42 + i as u64)
            };
            BatchJob::labeled(g, cfg, format!("planted/{i}"))
        })
        .collect();
    let digest = |runs: &[TesterRun]| -> Vec<(bool, u32, Vec<NodeVerdict>)> {
        runs.iter()
            .map(|r| (r.reject, r.outcome.report.rounds, r.outcome.verdicts.clone()))
            .collect()
    };
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (mode, record) in MODES {
        let engine = EngineConfig {
            executor: Executor::Sequential,
            record_rounds: record,
            ..EngineConfig::default()
        };
        // The loop baseline pays full session setup per job (the cost
        // the batch runner amortizes); the batch rows go through one
        // session's sharded runner.
        let run_loop = || -> Vec<TesterRun> {
            jobs.iter()
                .map(|j| {
                    TesterSession::from_config(j.cfg, engine.clone())
                        .expect("valid config")
                        .test(j.graph)
                        .expect("measure policy cannot fail")
                })
                .collect()
        };
        let batch_session =
            TesterSession::builder(5, 0.1).engine(engine.clone()).build().expect("valid config");
        let sharded_width = effective_shards(None, jobs.len());
        let run_batch = |shards: Option<usize>| -> Vec<TesterRun> {
            batch_session.test_batch(&jobs, shards).expect("measure policy cannot fail")
        };

        // Bit-identity across all three strategies, before any timing.
        let reference = run_loop();
        assert!(reference.iter().all(|r| r.reject), "planted sweep instance not rejected [{mode}]");
        for (variant, runs) in
            [("batch-seq", run_batch(Some(1))), ("batch-sharded", run_batch(None))]
        {
            assert_eq!(digest(&reference), digest(&runs), "{variant} diverges from loop [{mode}]");
            if record {
                for (a, b) in reference.iter().zip(&runs) {
                    assert_eq!(
                        a.outcome.report.per_round, b.outcome.report.per_round,
                        "{variant} per-round stats diverge [{mode}]"
                    );
                }
            }
        }

        let mut loop_rate = 0.0f64;
        for (variant, shards, threads) in [
            ("loop", 1usize, 1usize),
            ("batch-seq", 1, 1),
            ("batch-sharded", sharded_width, sharded_width),
        ] {
            let time_sweep = |exec: &dyn Fn() -> Vec<TesterRun>| -> (u32, f64) {
                let _warm = exec();
                let start = Instant::now();
                let mut sweeps = 0u32;
                while sweeps < budget.max_runs {
                    let _ = exec();
                    sweeps += 1;
                    if start.elapsed().as_secs_f64() >= budget.measure_secs {
                        break;
                    }
                }
                (sweeps, start.elapsed().as_secs_f64() / f64::from(sweeps))
            };
            let (runs, secs) = match variant {
                "loop" => time_sweep(&run_loop),
                "batch-seq" => time_sweep(&|| run_batch(Some(1))),
                _ => time_sweep(&|| run_batch(None)),
            };
            let rate = jobs.len() as f64 / secs;
            eprintln!(
                "ck5-batch-planted n={n} jobs={} {variant} [{mode}] shards={shards}: \
                 {secs:.4} s/sweep ({runs} sweeps)",
                jobs.len()
            );
            if variant == "loop" {
                loop_rate = rate;
            } else {
                ratios.push((format!("{variant}/{mode}"), rate / loop_rate));
            }
            rows.push(BatchRow {
                variant,
                mode,
                shards,
                threads,
                runs,
                secs_per_sweep: secs,
                jobs_per_sec: rate,
            });
        }
    }
    (rows, ratios)
}

/// One row of the scan sweep: how one collision-scan backend ran the
/// full accounted C5 tester.
struct ScanRow {
    workload: &'static str,
    n: usize,
    backend: &'static str,
    runs: u32,
    secs_per_run: f64,
    rounds_per_sec: f64,
}

/// The schema-v4 scan section: the accounted sequential C5 tester on
/// the committed planted + Behrend sweeps plus a dense-decide layered
/// instance (per-node candidate blocks far past the kernel
/// break-even), once per collision-scan backend — scalar reference,
/// forced portable lane kernels, the size-dispatching hybrid default,
/// and (when compiled) the forced `core::arch` intrinsics — with full
/// verdict and per-round bit-identity asserted across backends before
/// any timing. Returns the rows plus `"workload/n/backend"`-keyed
/// over-scalar ratios.
fn scan_sweep(n: usize, budget: &Budget) -> (Vec<ScanRow>, Vec<(String, f64)>) {
    let mut backends: Vec<(ScanBackend, &'static str)> = vec![
        (ScanBackend::Scalar, "scalar"),
        (ScanBackend::Lanes, "kernel"),
        (ScanBackend::Hybrid, "hybrid"),
    ];
    if ScanBackend::simd_compiled() {
        backends.push((ScanBackend::Simd, "simd"));
    }
    // Per-case `n` is the row's recorded scale: the sweep scale for the
    // committed workloads (matching their main-sweep entries), the
    // instance's true node count for the purpose-built dense case.
    let mut cases: Vec<(&'static str, usize, Graph, TesterConfig, u32)> = workloads_for(n)
        .into_iter()
        .filter_map(|w| {
            let tcfg = w.tester?;
            // The scan section is the C5 sweep.
            (tcfg.k == 5).then_some((w.name, n, w.graph, tcfg, w.max_rounds))
        })
        .collect();
    // Dense-decide case: a layered instance with a large stride set, so
    // every node's final-round candidate block (each neighbor
    // contributes its pruned send set, degree ≈ 2·|strides|) sits far
    // past KERNEL_MIN_SEQS — the workload where the forced kernel's win
    // must survive a full engine run, not just a microbench.
    let dense_width = (n / 25).clamp(40, 4_000);
    let strides = behrend_ap_free_set(dense_width as u64 / 2);
    let strides = if strides.is_empty() { vec![1] } else { strides };
    let take = strides.len().min(12);
    let dense = layered_ck(5, dense_width, &strides[..take]);
    let ck5 = TesterConfig { repetitions: Some(TESTER_REPS), ..TesterConfig::new(5, 0.1, 42) };
    let dense_n = dense.graph.n();
    cases.push(("ck5-dense-decide", dense_n, dense.graph, ck5, total_rounds(5, TESTER_REPS)));
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, case_n, graph, tcfg, max_rounds) in &cases {
        let outcome_of = |scan: ScanBackend| {
            let mut cfg = engine_config(true, Executor::Sequential);
            cfg.max_rounds = *max_rounds;
            let tcfg = TesterConfig { scan, ..*tcfg };
            tester_outcome(graph, Engine::Arena, &tcfg, &cfg)
        };
        // Verdict bit-identity across every backend, before timing.
        let reference = outcome_of(ScanBackend::Scalar);
        assert!(
            reference.verdicts.iter().any(|v| v.rejected),
            "scan sweep instance not rejected: {name}/{case_n}"
        );
        for &(scan, bname) in &backends[1..] {
            let got = outcome_of(scan);
            assert_eq!(reference.verdicts, got.verdicts, "scan verdicts diverge: {bname} {name}");
            assert_eq!(
                reference.report.per_round, got.report.per_round,
                "scan stats diverge: {bname} {name}"
            );
        }
        // All backends sampled round-robin in one shared window (the
        // hybrid never-regress floor gates on the over-scalar ratio of
        // these rows): see `time_runs_min_interleaved`.
        let outcome_of = &outcome_of;
        let mut closures: Vec<Box<dyn FnMut() -> u32 + '_>> = backends
            .iter()
            .map(|&(scan, _)| {
                let b: Box<dyn FnMut() -> u32 + '_> =
                    Box::new(move || outcome_of(scan).report.rounds);
                b
            })
            .collect();
        let stats = time_runs_min_interleaved(budget, &mut closures);
        drop(closures);
        let mut scalar_rate = 0.0f64;
        for (&(_, bname), &(runs, secs, rounds)) in backends.iter().zip(&stats) {
            let rate = f64::from(rounds) / secs;
            eprintln!(
                "{name} n={case_n} scan={bname} [accounted]: {secs:.4} s/run (best of {runs} \
                 interleaved runs)"
            );
            if bname == "scalar" {
                scalar_rate = rate;
            } else {
                ratios.push((format!("{name}/{case_n}/{bname}"), rate / scalar_rate));
            }
            rows.push(ScanRow {
                workload: name,
                n: *case_n,
                backend: bname,
                runs,
                secs_per_run: secs,
                rounds_per_sec: rate,
            });
        }
    }
    // Micro rows: one decide call on a synthetic candidate block of R
    // overlapping sequences — the isolated unit the kernels are built
    // for, and the only stable way to measure them on this box: full
    // tester runs keep per-node blocks under the break-even by design
    // (Lemma 3 pruning caps each neighbor's contribution, rank
    // arbitration activates one check per neighborhood), which is
    // exactly what the ungated full-run kernel rows document. The
    // scalar row times the scalar reference API as protocols would
    // call it; `n` carries R. Witness-list identity is asserted across
    // every backend before timing.
    for r in [16usize, 32, 64] {
        let myid = 1_000_000u64;
        let received: Vec<IdSeq> = (0..r as u64).map(|i| IdSeq::from_slice(&[i, i + 1])).collect();
        let expect = decide_all_rejects(5, myid, &[], &received);
        let mut scratch = ScanScratch::new();
        let mut got = Vec::new();
        for &(scan, bname) in &backends[1..] {
            decide_all_rejects_scanned(scan, 5, myid, &[], &received, &mut scratch, &mut got);
            assert_eq!(got, expect, "micro decide diverges: {bname} R={r}");
        }
        let iters: u32 = if r <= 16 { 4_000 } else { 128_000 / r as u32 };
        let mut scalar_rate = 0.0f64;
        for &(scan, bname) in &backends {
            let start = Instant::now();
            let mut sink = 0usize;
            for _ in 0..iters {
                if scan == ScanBackend::Scalar {
                    sink += decide_all_rejects(5, myid, &[], &received).len();
                } else {
                    decide_all_rejects_scanned(
                        scan,
                        5,
                        myid,
                        &[],
                        &received,
                        &mut scratch,
                        &mut got,
                    );
                    sink += got.len();
                }
            }
            let secs = start.elapsed().as_secs_f64() / f64::from(iters);
            assert!(sink > 0, "micro decide produced no witnesses");
            let rate = 1.0 / secs;
            eprintln!("scan-micro-decide R={r} scan={bname}: {:.1} ns/call", secs * 1e9);
            if bname == "scalar" {
                scalar_rate = rate;
            } else {
                ratios.push((format!("scan-micro-decide/{r}/{bname}"), rate / scalar_rate));
            }
            rows.push(ScanRow {
                workload: "scan-micro-decide",
                n: r,
                backend: bname,
                runs: iters,
                secs_per_run: secs,
                rounds_per_sec: rate,
            });
        }
    }
    (rows, ratios)
}

/// The schema-v6 robustness record: detection-vs-loss and
/// detection-vs-crash curves plus the adaptive (loss-aware inflated
/// schedule) vs fixed (paper schedule) comparison, all on deterministic
/// fault plans so the committed record is reproducible.
struct RobustBlock {
    loss_k: usize,
    loss_eps: f64,
    loss_points: Vec<LossPoint>,
    crash_k: usize,
    crash_eps: f64,
    crash_n: usize,
    crash_points: Vec<CrashPoint>,
    adaptive_k: usize,
    adaptive_eps: f64,
    adaptive: AdaptiveComparison,
}

fn robust_sweep(smoke: bool) -> RobustBlock {
    let (loss_trials, crash_trials, adaptive_trials) = if smoke { (6, 4, 8) } else { (30, 10, 30) };
    // Loss curve: a lone C6 — lossless detection is certain, so the
    // curve isolates what loss alone costs.
    let loss_g = cycle(6);
    let losses = [0.0, 0.05, 0.1, 0.2, 0.4];
    eprintln!("robust: loss curve on C6 ({loss_trials} trials/point)");
    let loss_points = loss_detection_curve(&loss_g, 6, 0.2, &losses, loss_trials, 17);
    // Crash sweep: an ε-far planted instance with 40 nodes; the crashed
    // set rotates per trial.
    let crash_inst = eps_far_instance(40, 4, 0.1, 1);
    let counts = [0usize, 2, 5, 10, 20];
    eprintln!("robust: crash sweep on eps-far n=40 ({crash_trials} trials/point)");
    let crash_points = crash_detection_curve(&crash_inst.graph, 4, 0.1, &counts, crash_trials, 23);
    // Adaptive vs fixed: C4 at 40% i.i.d. loss — the regime where the
    // paper schedule visibly loses the 2/3 floor and the
    // loss_inflation(4, 0.4) = 60× schedule buys it back.
    eprintln!("robust: adaptive-vs-fixed on C4 at loss 0.4 ({adaptive_trials} trials/arm)");
    let adaptive = adaptive_vs_fixed(&cycle(4), 4, 0.3, 0.4, adaptive_trials, 29);
    RobustBlock {
        loss_k: 6,
        loss_eps: 0.2,
        loss_points,
        crash_k: 4,
        crash_eps: 0.1,
        crash_n: crash_inst.graph.n(),
        crash_points,
        adaptive_k: 4,
        adaptive_eps: 0.3,
        adaptive,
    }
}

/// One row of the layout/threads sweep: one (layout, executor, forced
/// worker count) configuration on an accounted tester workload.
struct SoaRow {
    workload: &'static str,
    n: usize,
    /// `"boxed"` (per-node heap buffers, the reference layout) or
    /// `"soa"` (the arena layout, the default).
    layout: &'static str,
    executor: &'static str,
    /// Worker count the parallel shim was forced to (`CK_FORCED_WORKERS`
    /// semantics); 0 = unforced sequential row.
    workers: usize,
    rounds: u32,
    runs: u32,
    secs_per_run: f64,
    rounds_per_sec: f64,
}

/// Repetitions for the soa block. The layout comparison runs a single
/// repetition of Algorithm 1 (vs [`TESTER_REPS`] elsewhere): the two
/// layouts execute the identical round schedule, so extra repetitions
/// only re-run layout-insensitive round work and dilute the
/// setup/teardown costs the cold-session unit exists to measure.
/// Detection probability is irrelevant to these rows — the planted
/// instance is asserted rejected before any timing.
const SOA_REPS: u32 = 1;

/// The schema-v5 soa block: the SoA node-state arena vs the boxed
/// reference layout on the accounted `Ck` testers, plus the threads
/// axis — rounds/sec of the SoA parallel executor at forced worker
/// counts {1, 2, 4, 8}. The timed unit is a cold session per run
/// (layout setup included), matching every other tester row in the
/// record, at a single repetition ([`SOA_REPS`]). Before any timing,
/// the boxed sequential, SoA sequential, and SoA parallel outcomes are
/// asserted bit-identical (verdicts and full per-round statistics) at
/// every forced worker count.
fn soa_sweep(
    sizes: &[usize],
    budget: &Budget,
    thread_axis: &[usize],
) -> (Vec<SoaRow>, Vec<(String, f64)>) {
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for &n in sizes {
        let host = random_tree(n, 7);
        for (name, k) in [("c4-tester-planted", 4usize), ("ck5-tester-planted", 5usize)] {
            let g = plant_on_host(&host, k, (n / 40).max(1), 7).graph;
            let tcfg =
                TesterConfig { repetitions: Some(SOA_REPS), ..TesterConfig::new(k, 0.1, 42) };
            let max_rounds = total_rounds(k, SOA_REPS);
            let outcome_of = |layout: NodeLayout, executor: Executor| -> RunOutcome<NodeVerdict> {
                let mut cfg = engine_config(true, executor);
                cfg.max_rounds = max_rounds;
                let tcfg = TesterConfig { layout, ..tcfg };
                TesterSession::from_config(tcfg, cfg)
                    .expect("valid config")
                    .test(&g)
                    .expect("measure policy cannot fail")
                    .outcome
            };
            // Bit-identity across layouts, executors, and every forced
            // worker count, before any timing.
            let reference = outcome_of(NodeLayout::Boxed, Executor::Sequential);
            assert!(
                reference.verdicts.iter().any(|v| v.rejected),
                "soa sweep instance not rejected: {name}/{n}"
            );
            let check = |label: &str, got: &RunOutcome<NodeVerdict>| {
                assert_eq!(
                    reference.verdicts, got.verdicts,
                    "verdicts diverge: {label} {name}/{n}"
                );
                assert_eq!(
                    reference.report.per_round, got.report.per_round,
                    "round stats diverge: {label} {name}/{n}"
                );
            };
            check("soa/sequential", &outcome_of(NodeLayout::Soa, Executor::Sequential));
            for &w in thread_axis {
                rayon::force_workers_for_tests(w);
                let got = outcome_of(NodeLayout::Soa, Executor::Parallel);
                rayon::force_workers_for_tests(0);
                check(&format!("soa/parallel/w={w}"), &got);
            }
            // Every row of this case — boxed/soa sequential (backing
            // the gated soa-over-boxed ratio) and the full forced-
            // worker threads axis (backing the monotone gate; forcing
            // above the machine's cores measures oversubscription
            // honestly, the `cores` field names the honest prefix) —
            // is sampled round-robin in ONE shared window, so both
            // gates consume drift-immune ratios: see
            // `time_runs_min_interleaved`. Each parallel closure sets
            // its forced worker count for exactly its own run (the run
            // pins its partition at entry, so mid-window changes
            // between runs are safe by the engine's contract).
            let variants: Vec<(&'static str, &'static str, usize)> = {
                let mut v = vec![("boxed", "sequential", 0usize), ("soa", "sequential", 0usize)];
                v.extend(thread_axis.iter().map(|&w| ("soa", "parallel", w)));
                v
            };
            let outcome_of = &outcome_of;
            let mut closures: Vec<Box<dyn FnMut() -> u32 + '_>> = variants
                .iter()
                .map(|&(lname, ename, w)| {
                    let b: Box<dyn FnMut() -> u32 + '_> = match (lname, ename) {
                        ("boxed", _) => Box::new(move || {
                            outcome_of(NodeLayout::Boxed, Executor::Sequential).report.rounds
                        }),
                        (_, "sequential") => Box::new(move || {
                            outcome_of(NodeLayout::Soa, Executor::Sequential).report.rounds
                        }),
                        _ => Box::new(move || {
                            rayon::force_workers_for_tests(w);
                            let o = outcome_of(NodeLayout::Soa, Executor::Parallel);
                            rayon::force_workers_for_tests(0);
                            o.report.rounds
                        }),
                    };
                    b
                })
                .collect();
            let stats = time_runs_min_interleaved(budget, &mut closures);
            drop(closures);
            let mut seq_rates = Vec::new();
            for (&(lname, ename, w), &(runs, secs, rounds)) in variants.iter().zip(&stats) {
                let rate = f64::from(rounds) / secs;
                let wlabel = if ename == "parallel" { format!(" w={w}") } else { String::new() };
                eprintln!(
                    "{name} n={n} layout={lname} {ename}{wlabel} [accounted]: {secs:.4} s/run \
                     (best of {runs} interleaved runs)"
                );
                if ename == "sequential" {
                    seq_rates.push(rate);
                }
                rows.push(SoaRow {
                    workload: name,
                    n,
                    layout: lname,
                    executor: ename,
                    workers: w,
                    rounds,
                    runs,
                    secs_per_run: secs,
                    rounds_per_sec: rate,
                });
            }
            ratios.push((format!("{name}/{n}/accounted"), seq_rates[1] / seq_rates[0]));
        }
    }
    (rows, ratios)
}

/// One row of the net sweep: one executor configuration on the
/// distributed-vs-sequential workload.
struct NetRow {
    executor: &'static str,
    workers: u32,
    runs: u32,
    secs_per_run: f64,
    rounds_per_sec: f64,
}

/// The schema-v7 net block: the distributed executor (thread-mode
/// workers speaking the full wire protocol — length-prefixed CkCodec
/// frames, per-round barriers, heartbeats — over loopback TCP) against
/// the in-process sequential oracle, plus a recovery-latency row where
/// a chaos-injected worker abort mid-run must degrade to the oracle
/// within an explicit deadline budget.
struct NetBlock {
    n: usize,
    k: usize,
    rows: Vec<NetRow>,
    /// Cross-partition frames routed per distributed run (2 workers).
    frames_routed: u64,
    /// Sequential-rerun latency recorded by the degraded run.
    recovery_ms: u64,
    /// Wall time of the whole chaos run, failure detection included.
    recovery_wall_ms: u64,
    /// The hard bound the chaos run must finish within.
    recovery_budget_ms: u64,
    recovery_within_budget: bool,
}

fn net_sweep(smoke: bool, budget: &Budget) -> NetBlock {
    let (n, k) = if smoke { (40usize, 4usize) } else { (240, 4) };
    let inst = eps_far_instance(n, k, 0.15, 7);
    let tcfg = TesterConfig { repetitions: Some(TESTER_REPS), ..TesterConfig::new(k, 0.15, 11) };
    let healthy_net = NetOptions {
        connect_timeout_ms: 10_000,
        round_deadline_ms: 10_000,
        heartbeat_ms: 50,
        ..NetOptions::default()
    };
    let run_with = |executor: Executor, net: NetOptions| -> TesterRun {
        TesterSession::from_config(
            tcfg,
            EngineConfig { executor, net, record_rounds: true, ..EngineConfig::default() },
        )
        .expect("valid config")
        .test(&inst.graph)
        .expect("measure policy cannot fail")
    };
    let oracle = run_with(Executor::Sequential, NetOptions::default());
    assert!(oracle.reject, "net sweep instance not rejected");

    // Bit-identity before any timing: every worker count must
    // reproduce the oracle's verdicts and per-round statistics.
    let mut frames_routed = 0u64;
    for workers in [2u16, 4] {
        let dist = run_with(Executor::Distributed { workers }, healthy_net.clone());
        let nr = dist.outcome.report.net.as_ref().expect("distributed run records a net block");
        assert!(
            nr.completed_distributed(),
            "healthy loopback run degraded [{workers} workers]: {:?}",
            nr.fallback
        );
        assert_eq!(dist.outcome.verdicts, oracle.outcome.verdicts, "net verdicts diverge");
        assert_eq!(
            dist.outcome.report.per_round, oracle.outcome.report.per_round,
            "net round stats diverge"
        );
        if workers == 2 {
            frames_routed = nr.frames_routed;
        }
    }

    let mut rows = Vec::new();
    let time_exec = |executor: Executor, net: &NetOptions| -> (u32, f64, u32) {
        let rounds = run_with(executor, net.clone()).outcome.report.rounds; // warm-up
        let start = Instant::now();
        let mut runs = 0u32;
        while runs < budget.max_runs {
            let _ = run_with(executor, net.clone());
            runs += 1;
            if start.elapsed().as_secs_f64() >= budget.measure_secs {
                break;
            }
        }
        (runs, start.elapsed().as_secs_f64() / f64::from(runs), rounds)
    };
    for (name, executor, workers) in [
        ("sequential", Executor::Sequential, 0u32),
        ("distributed", Executor::Distributed { workers: 2 }, 2),
        ("distributed", Executor::Distributed { workers: 4 }, 4),
    ] {
        let (runs, secs, rounds) = time_exec(executor, &healthy_net);
        eprintln!(
            "net-dist-planted n={n} {name}{} : {secs:.4} s/run ({runs} runs)",
            if workers > 0 { format!(" w={workers}") } else { String::new() },
        );
        rows.push(NetRow {
            executor: name,
            workers,
            runs,
            secs_per_run: secs,
            rounds_per_sec: f64::from(rounds) / secs,
        });
    }

    // Recovery-latency row: worker 0 dies (link drops) when told to
    // run round 1; the coordinator must type the loss within the round
    // deadline and finish via the sequential oracle inside the budget.
    let round_deadline_ms = 2_000u64;
    let chaos_net = NetOptions {
        round_deadline_ms,
        chaos: Some(ChaosPlan { abort_at_round: Some(1), ..ChaosPlan::for_worker(0) }),
        ..healthy_net
    };
    let started = Instant::now();
    let rec = run_with(Executor::Distributed { workers: 2 }, chaos_net.clone());
    let recovery_wall_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    let nr = rec.outcome.report.net.as_ref().expect("degraded run records a net block");
    assert!(nr.fallback.is_some(), "chaos abort not detected");
    let recovery_ms = nr.recovery_ms.expect("degraded run records recovery latency");
    assert_eq!(rec.outcome.verdicts, oracle.outcome.verdicts, "degraded run diverges from oracle");
    // Budget: connect + one tripped deadline + generous slack for the
    // oracle rerun. Blowing this means detection hung, the one
    // forbidden outcome.
    let recovery_budget_ms = chaos_net.connect_timeout_ms + 2 * round_deadline_ms + 15_000;
    let recovery_within_budget = recovery_wall_ms <= recovery_budget_ms;
    assert!(
        recovery_within_budget,
        "recovery took {recovery_wall_ms} ms, budget {recovery_budget_ms} ms"
    );
    eprintln!(
        "net-dist-planted recovery: detected + fell back in {recovery_wall_ms} ms wall \
         (oracle rerun {recovery_ms} ms, budget {recovery_budget_ms} ms)"
    );
    NetBlock {
        n,
        k,
        rows,
        frames_routed,
        recovery_ms,
        recovery_wall_ms,
        recovery_budget_ms,
        recovery_within_budget,
    }
}

/// One closed-loop client row: `clients` threads each driving
/// `jobs_per_client` jobs back-to-back through a live service.
struct ServeRow {
    clients: u32,
    jobs_per_client: u32,
    workers: u32,
    secs_total: f64,
    jobs_per_sec: f64,
    /// Service-side submit-to-result latency quantiles for this row's
    /// jobs (each row runs against a fresh service, so the histogram is
    /// row-scoped).
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// The schema-v8 serve block: the long-running `ckserve` probe service
/// (warm `TesterSession` pool, `ServeMsg` RPC over loopback TCP)
/// driven by closed-loop clients, verdict bit-identity against direct
/// `TesterSession` runs asserted before any timing.
struct ServeBlock {
    n: usize,
    k: usize,
    workers: u32,
    jobs_total: u64,
    rows: Vec<ServeRow>,
}

fn serve_sweep(smoke: bool) -> ServeBlock {
    use ck_serve::{BoundServer, JobRequest, ServeClient, ServeOptions};
    use std::sync::Arc;

    let (n, k, jobs_per_client) = if smoke { (40usize, 4usize, 4u32) } else { (240, 4, 16) };
    let workers = 2u32;
    // The job mix: one warm graph shape, heterogeneous parameters — ε,
    // seed, and repetition count vary job to job, exactly the
    // multi-tenant pattern the session pool's reconfigure path exists
    // for.
    let inst = eps_far_instance(n, k, 0.15, 7);
    let graph = Arc::new(inst.graph);
    let job_for = |client: u32, j: u32| -> JobRequest {
        let i = u64::from(client) * 97 + u64::from(j);
        JobRequest {
            job_id: u64::from(client) * 1_000 + u64::from(j),
            graph: (*graph).clone(),
            k: k as u32,
            eps: if i % 2 == 0 { 0.15 } else { 0.2 },
            seed: 11 + i,
            repetitions: Some(TESTER_REPS),
        }
    };

    // Bit-identity before timing: every distinct job in the sweep is
    // run once through a live service and once directly on a fresh
    // `TesterSession` under the service's own engine template; verdict
    // bit + per-node verdicts must agree exactly.
    let max_clients = 4u32;
    let opts = || ServeOptions { workers: workers as usize, poll_ms: 5, ..ServeOptions::default() };
    {
        let server = BoundServer::bind(opts()).expect("bind serve sweep").spawn();
        let addr = server.addr().to_string();
        let mut client = ServeClient::connect(&addr, 30_000).expect("connect serve sweep");
        for c in 0..max_clients {
            for j in 0..jobs_per_client {
                let job = job_for(c, j);
                let cfg = job.tester_config();
                let direct = TesterSession::from_config(cfg, ck_serve::serve::engine_template())
                    .expect("valid serve-sweep config")
                    .test(&graph)
                    .expect("measure policy cannot fail");
                let res = client.run_job(&job).expect("serve-sweep job");
                let verdict = res.outcome.expect("serve-sweep job refused");
                assert_eq!(verdict.reject, direct.reject, "serve verdict bit diverges");
                assert_eq!(
                    verdict.verdicts, direct.outcome.verdicts,
                    "serve per-node verdicts diverge from the direct session"
                );
            }
        }
        client.shutdown().expect("serve-sweep shutdown");
        let snap = server.join();
        assert_eq!(snap.jobs_completed, u64::from(max_clients * jobs_per_client));
        assert_eq!((snap.in_flight, snap.pool_outstanding), (0, 0));
    }

    // Timed rows: a fresh service per client count, so the service-side
    // latency histogram (and thus p50/p99) is scoped to the row.
    let mut rows = Vec::new();
    let mut jobs_total = 0u64;
    for clients in [1u32, 2, 4] {
        let server = BoundServer::bind(opts()).expect("bind serve row").spawn();
        let addr = server.addr().to_string();
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                let jobs: Vec<JobRequest> = (0..jobs_per_client).map(|j| job_for(c, j)).collect();
                std::thread::spawn(move || {
                    let mut client =
                        ServeClient::connect(&addr, 30_000).expect("connect serve row");
                    for job in &jobs {
                        let res = client.run_job(job).expect("serve row job");
                        let _ = res.outcome.expect("serve row job refused");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("serve row client");
        }
        let secs_total = start.elapsed().as_secs_f64();
        let mut stats_client =
            ServeClient::connect(&addr, 30_000).expect("connect serve row stats");
        let snap = stats_client.stats().expect("serve row stats");
        stats_client.shutdown().expect("serve row shutdown");
        server.join();
        let row_jobs = u64::from(clients * jobs_per_client);
        assert_eq!(snap.jobs_completed, row_jobs, "serve row lost jobs");
        assert_eq!(snap.latency.count, row_jobs);
        jobs_total += row_jobs;
        let jobs_per_sec = row_jobs as f64 / secs_total;
        eprintln!(
            "serve-closed-loop n={n} clients={clients} workers={workers}: \
             {jobs_per_sec:.1} jobs/s (p50 {} µs, p99 {} µs over {row_jobs} jobs)",
            snap.latency.p50_us, snap.latency.p99_us
        );
        rows.push(ServeRow {
            clients,
            jobs_per_client,
            workers,
            secs_total,
            jobs_per_sec,
            p50_us: snap.latency.p50_us,
            p99_us: snap.latency.p99_us,
            max_us: snap.latency.max_us,
        });
    }
    ServeBlock { n, k, workers, jobs_total, rows }
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            "BENCH_smoke.json".into()
        } else {
            "BENCH_engine.json".into()
        }
    });
    // Smoke budgets are sized for the CI bench-gate job: its same-run
    // ratio floors need sub-millisecond n=300 timings to be stable, so
    // smoke rows average over up to 8 runs within a 0.25 s budget
    // (still a few seconds total) instead of the bitrot-only 2 runs
    // earlier revisions used.
    let (sizes, budget): (&[usize], Budget) = if smoke {
        (&[300], Budget { measure_secs: 0.25, max_runs: 8 })
    } else {
        (&[1_000, 10_000, 100_000], Budget { measure_secs: 1.0, max_runs: 12 })
    };

    let mut measurements: Vec<Measurement> = Vec::new();
    for &n in sizes {
        for w in workloads_for(n) {
            for (mode, record) in MODES {
                // Cross-engine verdict check + arena seq-vs-par
                // bit-identity, before any timing.
                let label = format!("{}/{n}/{mode}", w.name);
                match &w.tester {
                    None => {
                        let arena = assert_seq_par_identical(&label, |exec| {
                            minflood_outcome(&w.graph, Engine::Arena, &engine_config(record, exec))
                        });
                        let legacy = minflood_outcome(
                            &w.graph,
                            Engine::Legacy,
                            &engine_config(record, Executor::Sequential),
                        );
                        assert_eq!(legacy.verdicts, arena.verdicts, "engines disagree: {label}");
                    }
                    Some(tcfg) => {
                        let arena = assert_seq_par_identical(&label, |exec| {
                            let mut cfg = engine_config(record, exec);
                            cfg.max_rounds = w.max_rounds;
                            tester_outcome(&w.graph, Engine::Arena, tcfg, &cfg)
                        });
                        let mut cfg = engine_config(record, Executor::Sequential);
                        cfg.max_rounds = w.max_rounds;
                        let legacy = tester_outcome(&w.graph, Engine::Legacy, tcfg, &cfg);
                        let flags = |o: &RunOutcome<NodeVerdict>| {
                            o.verdicts.iter().map(|v| v.rejected).collect::<Vec<_>>()
                        };
                        assert_eq!(flags(&legacy), flags(&arena), "engines disagree: {label}");
                        if w.expect_reject {
                            assert!(
                                arena.verdicts.iter().any(|v| v.rejected),
                                "hard instance not rejected: {label}"
                            );
                        }
                    }
                }
                // All three combos sampled round-robin in one shared
                // window (the arena-over-legacy acceptance gate is a
                // ratio of these rows): see `time_runs_min_interleaved`.
                let graph = &w.graph;
                let tester = w.tester.as_ref();
                let mut closures: Vec<Box<dyn FnMut() -> u32 + '_>> = COMBOS
                    .iter()
                    .map(|&(engine, executor)| {
                        let mut cfg = engine_config(record, executor);
                        cfg.max_rounds = w.max_rounds;
                        let b: Box<dyn FnMut() -> u32 + '_> = match tester {
                            None => Box::new(move || {
                                minflood_outcome(graph, engine, &cfg).report.rounds
                            }),
                            Some(tcfg) => Box::new(move || {
                                tester_outcome(graph, engine, tcfg, &cfg).report.rounds
                            }),
                        };
                        b
                    })
                    .collect();
                let stats = time_runs_min_interleaved(&budget, &mut closures);
                drop(closures);
                for (&(engine, executor), &(runs, secs, rounds)) in COMBOS.iter().zip(&stats) {
                    eprintln!(
                        "{} n={n} {} {} [{mode}]: {:.4} s/run ({rounds} rounds, best of {runs} \
                         interleaved runs)",
                        w.name,
                        engine.name(),
                        exec_name(executor),
                        secs
                    );
                    measurements.push(Measurement {
                        workload: w.name,
                        n,
                        engine,
                        mode,
                        executor,
                        threads: exec_threads(executor),
                        rounds,
                        runs,
                        secs_per_run: secs,
                        rounds_per_sec: f64::from(rounds) / secs,
                    });
                }
            }
        }
    }

    // ---- batch sweep (schema v3) -------------------------------------
    // The multi-graph family workload: batch-over-loop on a planted
    // sweep, sequential and sharded, bit-identity asserted inside.
    let (batch_n, batch_count) = if smoke { (300, 6) } else { (10_000, 24) };
    let (batch_rows, batch_ratios) = batch_sweep(batch_n, batch_count, &budget);

    // ---- collision-scan sweep (schema v4) ----------------------------
    // Scalar vs lane-kernel vs (when compiled) intrinsics on the
    // accounted C5 tester, bit-identity asserted inside.
    let scan_n = sizes.iter().copied().max().unwrap_or(300);
    // The scan rows back gated ratios (micro-kernel wins, the hybrid
    // never-regress floor), so like the soa rows they get a wider
    // noise-floor budget than the informational engine rows: at the
    // full-run scale a tester run costs ~0.3-0.4 s, and best-of-3 under
    // the generic budget leaves the gated hybrid-over-scalar ratio
    // hostage to a single slow sample.
    let scan_budget = if smoke { budget } else { Budget { measure_secs: 4.0, max_runs: 16 } };
    let (scan_rows, scan_ratios) = scan_sweep(scan_n, &scan_budget);

    // ---- layout/threads sweep (schema v5) ----------------------------
    // The SoA node-state arena vs the boxed reference layout, plus the
    // threads axis at forced worker counts, bit-identity asserted
    // inside at every point.
    let thread_axis = [1usize, 2, 4, 8];
    let soa_sizes: &[usize] = if smoke { &[300] } else { &[100_000, 1_000_000] };
    // Wider sample budget than the engine rows: the soa rows back gated
    // best-of-N ratios, so more samples directly tighten the estimator
    // (at n=10⁶ a single run exceeds the budget either way — those rows
    // are ungated and informational). The smoke budget is wider still
    // relative to the row cost (~0.5 ms at n=300): the CI bench-gate
    // job floors the smoke soa-over-boxed ratio, and best-of-20 makes
    // that ratio reproducible across shared CI runners.
    let soa_budget = if smoke {
        Budget { measure_secs: 0.5, max_runs: 20 }
    } else {
        Budget { measure_secs: 10.0, max_runs: 24 }
    };
    let (soa_rows, soa_ratios) = soa_sweep(soa_sizes, &soa_budget, &thread_axis);

    // ---- robustness sweep (schema v6 lineage) ------------------------
    // Loss/crash detection curves and the adaptive-vs-fixed schedule
    // comparison, on deterministic fault plans.
    let robust = robust_sweep(smoke);

    // ---- distributed-executor sweep (schema v7) ----------------------
    // Thread-mode workers over real loopback TCP vs the sequential
    // oracle, bit-identity asserted inside, plus the recovery-latency
    // row under a chaos-injected worker abort.
    let net_block = net_sweep(smoke, &budget);

    // ---- probe-service sweep (schema v8) -----------------------------
    // Closed-loop clients through a live `ckserve` instance (warm
    // TesterSession pool over the ServeMsg RPC), verdicts asserted
    // bit-identical to direct sessions inside, before timing.
    let serve_block = serve_sweep(smoke);

    // ---- render ------------------------------------------------------
    let workload_names =
        ["minflood-ring", "c4-tester-planted", "ck5-tester-planted", "ck5-tester-behrend"];
    let rps_of = |workload: &str, n: usize, engine: Engine, mode: &str, executor: Executor| {
        measurements
            .iter()
            .find(|m| {
                m.workload == workload
                    && m.n == n
                    && m.engine == engine
                    && m.mode == mode
                    && m.executor == executor
            })
            .map(|m| m.rounds_per_sec)
    };
    let case_key = |workload: &str, n: usize, mode: &str| {
        // The fast-mode key keeps the bare `workload/n` form earlier
        // acceptance records were keyed on.
        if mode == "fast" {
            format!("{workload}/{n}")
        } else {
            format!("{workload}/{n}/{mode}")
        }
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"ck-bench/engine/v8\",\n");
    let _ = writeln!(
        json,
        "  \"description\": \"Round-engine throughput, arena (zero-allocation double-buffered \
         CSR lanes + clone-free broadcast slots + pooled tester payloads) vs legacy (per-round \
         Vec allocation, clone-per-port broadcasts). Mode 'fast' = record_rounds off; mode \
         'accounted' = record_rounds on (fused wire accounting). Every entry records its \
         executor and thread count; arena sequential/parallel outputs are asserted \
         bit-identical before timing. acceptance gates on the same-run arena-over-legacy \
         ratio of the accounted tester cases at the largest n (immune to machine drift \
         between bench days); pr1_reference reports the absolute comparison against the \
         committed schema-v1 PR-1 record with the unchanged legacy engine as drift control, \
         and pr1_absolute_speedup_met states plainly whether the raw vs-PR-1 bar is met. \
         v3 adds the batch block: the sharded multi-graph batch runner (one reusable engine \
         workspace + tester scratch per shard) vs the one-by-one run_tester loop on a \
         multi-graph planted sweep, all three strategies asserted bit-identical per job \
         before timing, shards/threads recorded honestly per row. v4 adds the scan block: \
         the accounted sequential C5 tester per collision-scan backend — scalar IdSeq \
         reference vs the forced SeqBlock lane kernels vs the size-dispatching hybrid \
         default vs (when compiled with --features simd) the forced core::arch SSE2/AVX2 \
         variants — on the committed planted/Behrend sweeps, a dense layered case, and \
         synthetic micro decide rows whose candidate blocks sit past the kernel \
         break-even, with verdicts (and witness lists on the micro rows) asserted \
         bit-identical across backends before timing. v6 adds the robust block: \
         detection-rate curves of the full tester under fault-model v2 — i.i.d. loss on a \
         lone C6 and rotating crash-stop sets on an eps-far instance — plus the \
         adaptive-vs-fixed comparison (paper schedule vs the loss_inflation-inflated \
         schedule at 40% loss), all on deterministic fault plans; acceptance gates the \
         loss curve monotone-nonincreasing within noise and the adaptive arm at the \
         paper's 2/3 detection floor. v7 adds the net block: the distributed executor \
         (partitioned graph, thread-mode workers speaking the full wire protocol — \
         length-prefixed CkCodec frames with the seq_len context-word handshake, \
         per-round barriers, heartbeats — over loopback TCP) vs the sequential oracle \
         on a planted instance, verdicts and per-round statistics asserted bit-identical \
         per worker count before timing, plus a recovery-latency row: a chaos-injected \
         worker abort mid-run must be detected within the round deadline and degrade to \
         the sequential oracle inside an explicit wall-clock budget, gated. v5 (the \
         schema id follows this workspace's revision series, not a monotone counter: \
         v5 designates the SoA/threads revision and supersedes the v7-lineage records) \
         adds the soa block: the SoA node-state arena (per-node tester scratch packed \
         into a few large buffers — lane-major CSR port streams, node-major sequence-set \
         headers, chunk-shared prune/scan workspaces) vs the boxed reference layout on \
         the accounted testers, cold session per run at a single repetition (the two \
         layouts run the identical round schedule, so extra repetitions only dilute the \
         setup/teardown costs the cold unit measures; the planted instance is asserted \
         rejected first), best-of-N noise-floor timing per \
         row, plus the threads axis: rounds/sec \
         of the SoA parallel executor at forced worker counts {{1,2,4,8}} (the cores field \
         names the honest prefix; counts past it measure oversubscription). Sequential \
         and parallel outputs are asserted bit-identical at every worker count before \
         timing. acceptance gates soa-over-boxed >= 1.2 on the accounted C4/C5 rows at \
         n=1e5 and the parallel curve monotone non-decreasing over the honest prefix. \
         v8 adds the serve block: the long-running ckserve probe service (one warm \
         TesterSession per worker thread, recycled arena-to-arena across jobs, ServeMsg \
         RPC over length-prefixed loopback-TCP frames) driven by closed-loop clients — \
         each row runs a fresh service at a fixed worker count while N client threads \
         each push their job stream back-to-back (heterogeneous eps/seed per job, the \
         multi-tenant reconfigure pattern), recording end-to-end jobs/sec plus the \
         service-side submit-to-result p50/p99/max latency from the Stats RPC. Every \
         job's verdict (reject bit and per-node verdicts) is asserted bit-identical to \
         a direct TesterSession run under the service's engine template before any \
         timing. acceptance gates verdict bit-identity, zero lost jobs per row (stats \
         completed == driven), and a clean drain (in_flight == pool_outstanding == 0).\","
    );
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    json.push_str("  \"entries\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"n\": {}, \"engine\": \"{}\", \"mode\": \"{}\", \
             \"executor\": \"{}\", \"threads\": {}, \"rounds\": {}, \"runs\": {}, \
             \"secs_per_run\": {:.6}, \"rounds_per_sec\": {:.2}}}",
            m.workload,
            m.n,
            m.engine.name(),
            m.mode,
            exec_name(m.executor),
            m.threads,
            m.rounds,
            m.runs,
            m.secs_per_run,
            m.rounds_per_sec
        );
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"speedups\": [\n");
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &n in sizes {
        for workload in workload_names {
            for (mode, _) in MODES {
                let (Some(arena), Some(legacy)) = (
                    rps_of(workload, n, Engine::Arena, mode, Executor::Sequential),
                    rps_of(workload, n, Engine::Legacy, mode, Executor::Sequential),
                ) else {
                    continue;
                };
                speedups.push((case_key(workload, n, mode), arena / legacy));
            }
        }
    }
    for (i, (key, s)) in speedups.iter().enumerate() {
        let _ = write!(json, "    {{\"case\": \"{key}\", \"arena_over_legacy\": {s:.3}}}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // The v3 batch block: the multi-graph family sweep.
    let _ = writeln!(json, "  \"batch\": {{");
    let _ = writeln!(json, "    \"workload\": \"ck5-batch-planted\",");
    let _ = writeln!(json, "    \"n\": {batch_n},");
    let _ = writeln!(json, "    \"jobs\": {batch_count},");
    let _ = writeln!(json, "    \"bit_identical\": true,");
    json.push_str("    \"entries\": [\n");
    for (i, r) in batch_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"variant\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \"threads\": {}, \
             \"sweeps\": {}, \"secs_per_sweep\": {:.6}, \"jobs_per_sec\": {:.2}}}",
            r.variant, r.mode, r.shards, r.threads, r.runs, r.secs_per_sweep, r.jobs_per_sec
        );
        json.push_str(if i + 1 < batch_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n    \"speedups\": [\n");
    for (i, (case, ratio)) in batch_ratios.iter().enumerate() {
        let _ = write!(json, "      {{\"case\": \"{case}\", \"batch_over_loop\": {ratio:.3}}}");
        json.push_str(if i + 1 < batch_ratios.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");

    // The v4 scan block: collision-scan backends on the C5 sweep.
    let _ = writeln!(json, "  \"scan\": {{");
    let _ = writeln!(json, "    \"mode\": \"accounted\",");
    let _ = writeln!(json, "    \"executor\": \"sequential\",");
    let _ = writeln!(json, "    \"n\": {scan_n},");
    let _ = writeln!(json, "    \"simd_compiled\": {},", ScanBackend::simd_compiled());
    let _ = writeln!(json, "    \"bit_identical\": true,");
    json.push_str("    \"entries\": [\n");
    for (i, r) in scan_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"workload\": \"{}\", \"n\": {}, \"backend\": \"{}\", \"runs\": {}, \
             \"secs_per_run\": {:.6}, \"rounds_per_sec\": {:.2}}}",
            r.workload, r.n, r.backend, r.runs, r.secs_per_run, r.rounds_per_sec
        );
        json.push_str(if i + 1 < scan_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n    \"speedups\": [\n");
    for (i, (case, ratio)) in scan_ratios.iter().enumerate() {
        let _ = write!(json, "      {{\"case\": \"{case}\", \"over_scalar\": {ratio:.3}}}");
        json.push_str(if i + 1 < scan_ratios.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");

    // The v5 soa block: node-state layouts and the threads axis.
    let _ = writeln!(json, "  \"soa\": {{");
    let _ = writeln!(json, "    \"mode\": \"accounted\",");
    let _ = writeln!(json, "    \"repetitions\": {SOA_REPS},");
    let _ = writeln!(
        json,
        "    \"thread_axis\": [{}],",
        thread_axis.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(json, "    \"bit_identical\": true,");
    json.push_str("    \"entries\": [\n");
    for (i, r) in soa_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"workload\": \"{}\", \"n\": {}, \"layout\": \"{}\", \
             \"executor\": \"{}\", \"workers\": {}, \"rounds\": {}, \"runs\": {}, \
             \"secs_per_run\": {:.6}, \"rounds_per_sec\": {:.2}}}",
            r.workload,
            r.n,
            r.layout,
            r.executor,
            r.workers,
            r.rounds,
            r.runs,
            r.secs_per_run,
            r.rounds_per_sec
        );
        json.push_str(if i + 1 < soa_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n    \"speedups\": [\n");
    for (i, (case, ratio)) in soa_ratios.iter().enumerate() {
        let _ = write!(json, "      {{\"case\": \"{case}\", \"soa_over_boxed\": {ratio:.3}}}");
        json.push_str(if i + 1 < soa_ratios.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");

    // The v7 net block: distributed executor vs the sequential oracle.
    let _ = writeln!(json, "  \"net\": {{");
    let _ = writeln!(json, "    \"workload\": \"net-dist-planted\",");
    let _ = writeln!(json, "    \"n\": {},", net_block.n);
    let _ = writeln!(json, "    \"k\": {},", net_block.k);
    let _ = writeln!(json, "    \"transport\": \"loopback-tcp-thread-workers\",");
    let _ = writeln!(json, "    \"bit_identical\": true,");
    let _ = writeln!(json, "    \"frames_routed\": {},", net_block.frames_routed);
    json.push_str("    \"entries\": [\n");
    for (i, r) in net_block.rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"executor\": \"{}\", \"workers\": {}, \"runs\": {}, \
             \"secs_per_run\": {:.6}, \"rounds_per_sec\": {:.2}}}",
            r.executor, r.workers, r.runs, r.secs_per_run, r.rounds_per_sec
        );
        json.push_str(if i + 1 < net_block.rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "    ],\n    \"recovery\": {{\"fault\": \"worker-abort-at-round-1\", \
         \"recovery_ms\": {}, \"wall_ms\": {}, \"budget_ms\": {}, \
         \"within_budget\": {}}}\n  }},",
        net_block.recovery_ms,
        net_block.recovery_wall_ms,
        net_block.recovery_budget_ms,
        net_block.recovery_within_budget
    );

    // The v8 serve block: closed-loop clients through the live probe
    // service.
    let _ = writeln!(json, "  \"serve\": {{");
    let _ = writeln!(json, "    \"workload\": \"serve-closed-loop-planted\",");
    let _ = writeln!(json, "    \"n\": {},", serve_block.n);
    let _ = writeln!(json, "    \"k\": {},", serve_block.k);
    let _ = writeln!(json, "    \"transport\": \"loopback-tcp-servemsg-rpc\",");
    let _ = writeln!(json, "    \"workers\": {},", serve_block.workers);
    let _ = writeln!(json, "    \"jobs_total\": {},", serve_block.jobs_total);
    let _ = writeln!(json, "    \"bit_identical\": true,");
    json.push_str("    \"entries\": [\n");
    for (i, r) in serve_block.rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"clients\": {}, \"jobs_per_client\": {}, \"workers\": {}, \
             \"secs_total\": {:.6}, \"jobs_per_sec\": {:.2}, \"p50_us\": {}, \
             \"p99_us\": {}, \"max_us\": {}}}",
            r.clients,
            r.jobs_per_client,
            r.workers,
            r.secs_total,
            r.jobs_per_sec,
            r.p50_us,
            r.p99_us,
            r.max_us
        );
        json.push_str(if i + 1 < serve_block.rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");

    // The v6 robust block: fault-model v2 degradation curves.
    let _ = writeln!(json, "  \"robust\": {{");
    let _ = writeln!(
        json,
        "    \"loss_curve\": {{\"workload\": \"c6-cycle\", \"k\": {}, \"eps\": {}, \"points\": [",
        robust.loss_k, robust.loss_eps
    );
    for (i, p) in robust.loss_points.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"loss\": {}, \"trials\": {}, \"rejects\": {}, \"rate\": {:.4}}}",
            p.loss,
            p.trials,
            p.rejects,
            p.rate()
        );
        json.push_str(if i + 1 < robust.loss_points.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "    ]}},\n    \"crash_sweep\": {{\"workload\": \"eps-far-planted\", \"n\": {}, \
         \"k\": {}, \"eps\": {}, \"points\": [",
        robust.crash_n, robust.crash_k, robust.crash_eps
    );
    for (i, p) in robust.crash_points.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"crashed\": {}, \"trials\": {}, \"rejects\": {}, \"rate\": {:.4}}}",
            p.crashed,
            p.trials,
            p.rejects,
            p.rate()
        );
        json.push_str(if i + 1 < robust.crash_points.len() { ",\n" } else { "\n" });
    }
    let a = &robust.adaptive;
    let _ = writeln!(
        json,
        "    ]}},\n    \"adaptive\": {{\"workload\": \"c4-cycle\", \"k\": {}, \"eps\": {}, \
         \"loss\": {}, \"trials\": {}, \"inflation\": {}, \"fixed_rejects\": {}, \
         \"fixed_rate\": {:.4}, \"adaptive_rejects\": {}, \"adaptive_rate\": {:.4}}}\n  }},",
        robust.adaptive_k,
        robust.adaptive_eps,
        a.loss,
        a.trials,
        a.inflation,
        a.fixed_rejects,
        a.fixed_rate(),
        a.adaptive_rejects,
        a.adaptive_rate()
    );

    // Acceptance: every *accounted* tester case at the largest measured
    // n must beat the legacy engine by the required ratio in the same
    // run (same machine, same minute — the only comparison that
    // isolates the code from datacenter drift).
    let top_n = sizes.iter().copied().max().unwrap_or(0);
    let mut all_pass = true;
    let mut cases = String::new();
    let mut first = true;
    for workload in workload_names {
        if workload == "minflood-ring" {
            continue;
        }
        let (Some(arena), Some(legacy)) = (
            rps_of(workload, top_n, Engine::Arena, "accounted", Executor::Sequential),
            rps_of(workload, top_n, Engine::Legacy, "accounted", Executor::Sequential),
        ) else {
            continue;
        };
        let ratio = arena / legacy;
        let pass = ratio >= REQUIRED_SPEEDUP;
        all_pass &= pass;
        if !first {
            cases.push_str(",\n");
        }
        first = false;
        let _ = write!(
            cases,
            "      {{\"case\": \"{workload}/{top_n}/accounted\", \"arena_rps\": {arena:.2}, \
             \"legacy_rps\": {legacy:.2}, \"arena_over_legacy\": {ratio:.3}, \"pass\": {pass}}}"
        );
    }
    if first {
        all_pass = false;
    }
    // Batch acceptance: amortized setup must make the batch runner
    // strictly faster than the one-by-one loop (> 1.0×) in every mode.
    // The sharded row is gated only when the machine actually gave it
    // more than one shard — on a 1-core box it degenerates to the
    // sequential path plus scheduling noise, and its honest
    // shards/threads columns say so.
    let sharded_is_parallel =
        batch_rows.iter().any(|r| r.variant == "batch-sharded" && r.shards > 1);
    let mut batch_pass = true;
    let mut batch_cases = String::new();
    for (i, (case, ratio)) in batch_ratios.iter().enumerate() {
        let gated = case.starts_with("batch-seq") || sharded_is_parallel;
        let pass = !gated || *ratio > 1.0;
        batch_pass &= pass;
        let _ = write!(
            batch_cases,
            "      {{\"case\": \"{case}\", \"batch_over_loop\": {ratio:.3}, \
             \"gated\": {gated}, \"pass\": {pass}}}"
        );
        batch_cases.push_str(if i + 1 < batch_ratios.len() { ",\n" } else { "" });
    }
    if batch_ratios.is_empty() {
        batch_pass = false;
    }
    all_pass &= batch_pass;
    // Scan acceptance, two rules. (1) The forced lane kernels must
    // beat the scalar reference on the past-break-even micro decide
    // rows (R ∈ {32, 64}) — the unit the kernels are built for, and
    // the only measurement stable enough to gate on this box: full
    // tester runs keep candidate blocks small by design (Lemma 3
    // pruning + rank arbitration), which the ungated full-run kernel
    // rows document. (2) The hybrid default must never regress the
    // scalar reference beyond noise on ANY case — on the committed
    // sweeps its size dispatch sends nearly every block to the scalar
    // path, so its honest expectation there is parity, not a win.
    const MICRO_KERNEL_MIN: f64 = 1.0;
    const HYBRID_FLOOR: f64 = 0.90;
    let mut scan_pass = true;
    let mut scan_cases = String::new();
    for (i, (case, ratio)) in scan_ratios.iter().enumerate() {
        let micro_kernel = (case.starts_with("scan-micro-decide/32/")
            || case.starts_with("scan-micro-decide/64/"))
            && case.ends_with("/kernel");
        let hybrid = case.ends_with("/hybrid");
        let (gated, pass) = if micro_kernel {
            (true, *ratio > MICRO_KERNEL_MIN)
        } else if hybrid {
            (true, *ratio >= HYBRID_FLOOR)
        } else {
            (false, true)
        };
        scan_pass &= pass;
        let _ = write!(
            scan_cases,
            "      {{\"case\": \"{case}\", \"over_scalar\": {ratio:.3}, \
             \"gated\": {gated}, \"pass\": {pass}}}"
        );
        scan_cases.push_str(if i + 1 < scan_ratios.len() { ",\n" } else { "" });
    }
    if scan_ratios.is_empty() {
        scan_pass = false;
    }
    all_pass &= scan_pass;
    // SoA acceptance, two rules. (1) The arena layout must beat the
    // boxed reference by >= 1.2x on the accounted C4/C5 tester rows at
    // n = 1e5 under the sequential executor — the single-thread
    // improvement the SoA refactor exists for (the n = 1e6 ratios are
    // reported ungated: at that scale the host's memory system, not
    // the layout, is the variable under test). (2) The SoA parallel
    // curve must be monotone non-decreasing, within noise, over the
    // honest thread prefix (forced workers <= physical cores); counts
    // past the prefix measure oversubscription and are never gated.
    const REQUIRED_SOA_OVER_BOXED: f64 = 1.2;
    const THREADS_MONOTONE_NOISE: f64 = 0.08;
    let mut soa_pass = true;
    let mut soa_cases = String::new();
    let mut soa_first = true;
    for (case, ratio) in &soa_ratios {
        let gated = case.contains("/100000/");
        let pass = !gated || *ratio >= REQUIRED_SOA_OVER_BOXED;
        soa_pass &= pass;
        if !soa_first {
            soa_cases.push_str(",\n");
        }
        soa_first = false;
        let _ = write!(
            soa_cases,
            "      {{\"case\": \"{case}/soa-over-boxed\", \"soa_over_boxed\": {ratio:.3}, \
             \"gated\": {gated}, \"pass\": {pass}}}"
        );
    }
    for &n in soa_sizes {
        for workload in ["c4-tester-planted", "ck5-tester-planted"] {
            let honest: Vec<f64> = thread_axis
                .iter()
                .filter(|&&w| w <= cores)
                .filter_map(|&w| {
                    soa_rows
                        .iter()
                        .find(|r| {
                            r.workload == workload
                                && r.n == n
                                && r.executor == "parallel"
                                && r.workers == w
                        })
                        .map(|r| r.rounds_per_sec)
                })
                .collect();
            let pass = honest.windows(2).all(|w| w[1] >= w[0] * (1.0 - THREADS_MONOTONE_NOISE));
            soa_pass &= pass;
            if !soa_first {
                soa_cases.push_str(",\n");
            }
            soa_first = false;
            let _ = write!(
                soa_cases,
                "      {{\"case\": \"{workload}/{n}/threads-monotone\", \
                 \"honest_prefix_rps\": [{}], \"gated\": true, \"pass\": {pass}}}",
                honest.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>().join(", ")
            );
        }
    }
    if soa_first {
        soa_pass = false;
    }
    all_pass &= soa_pass;
    // Robust acceptance, two rules. (1) The loss-detection curve must be
    // monotone non-increasing within sampling noise: more loss can only
    // hurt a fixed schedule, so any later point beating an earlier one
    // by more than the noise margin means the fault injection itself is
    // broken. (2) The adaptive arm — the loss-aware inflated schedule —
    // must recover the paper's 2/3 detection floor on an ε-far instance
    // even at 40% loss; that is the whole point of the degradation
    // layer, so it is gated, not informational.
    const LOSS_CURVE_NOISE: f64 = 0.15;
    let mut loss_monotone = true;
    for w in robust.loss_points.windows(2) {
        loss_monotone &= w[1].rate() <= w[0].rate() + LOSS_CURVE_NOISE;
    }
    let adaptive_floor_met = robust.adaptive.adaptive_rejects * 3 >= robust.adaptive.trials * 2;
    let mut robust_pass = loss_monotone && adaptive_floor_met;
    all_pass &= robust_pass;
    // Net acceptance: the distributed runs were asserted bit-identical
    // to the oracle inside the sweep (reaching here proves it), so the
    // gate is the bounded-time promise — the chaos run finished, typed
    // its worker loss, and recovered within the explicit budget.
    let mut net_pass = net_block.recovery_within_budget;
    all_pass &= net_pass;
    // Serve acceptance: verdict bit-identity, per-row job conservation
    // (stats completed == jobs driven), and the clean drain were all
    // asserted inside the sweep — reaching this line proves them. The
    // rendered gate additionally checks the service-side latency
    // quantiles are ordered sanely per row: p50 <= p99, and p99 no
    // higher than the exact max's own bucket can reach (the histogram
    // quantiles are power-of-two bucket upper bounds, so p99 may sit
    // slightly above the exact max, but never by 2x or more).
    let serve_quantiles_ordered = serve_block
        .rows
        .iter()
        .all(|r| r.p50_us <= r.p99_us && r.p99_us < r.max_us.max(1).saturating_mul(2));
    let mut serve_pass = serve_quantiles_ordered && !serve_block.rows.is_empty();
    all_pass &= serve_pass;
    // Smoke runs exist to catch bitrot, not to measure: tiny-n runs are
    // setup-dominated, so the perf ratio never gates them (reaching
    // this line at all means both engines and executors ran and agreed,
    // and the batch strategies and scan backends were bit-identical).
    if smoke {
        all_pass = true;
        batch_pass = true;
        scan_pass = true;
        soa_pass = true;
        robust_pass = true;
        net_pass = true;
        serve_pass = true;
    }
    // Informational: absolute comparison against the committed PR-1
    // record, with the legacy engine as the machine-drift control (the
    // legacy code is identical across PRs, so legacy_now/legacy_pr1
    // measures the machine, and the drift-normalized column is the
    // code's own movement).
    let mut pr1 = String::new();
    let mut pr1_first = true;
    let mut pr1_absolute_met = true;
    for (case, pr1_arena, pr1_legacy) in PR1_BASELINES {
        let mut parts = case.split('/');
        let workload = parts.next().unwrap_or_default();
        let case_n: usize = parts.next().unwrap_or("0").parse().unwrap_or(0);
        let mode = if case.ends_with("/accounted") { "accounted" } else { "fast" };
        let (Some(arena), Some(legacy)) = (
            rps_of(workload, case_n, Engine::Arena, mode, Executor::Sequential),
            rps_of(workload, case_n, Engine::Legacy, mode, Executor::Sequential),
        ) else {
            continue;
        };
        if !pr1_first {
            pr1.push_str(",\n");
        }
        pr1_first = false;
        pr1_absolute_met &= arena / pr1_arena >= REQUIRED_SPEEDUP;
        let _ = write!(
            pr1,
            "      {{\"case\": \"{case}\", \"pr1_arena_rps\": {pr1_arena:.2}, \
             \"arena_rps\": {arena:.2}, \"speedup_vs_pr1\": {:.3}, \
             \"machine_drift_legacy\": {:.3}, \"drift_normalized_speedup\": {:.3}}}",
            arena / pr1_arena,
            legacy / pr1_legacy,
            (arena / legacy) / (pr1_arena / pr1_legacy)
        );
    }
    if pr1_first {
        pr1_absolute_met = false;
    }
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\n    \"required_arena_over_legacy\": {REQUIRED_SPEEDUP},\n    \
         \"seq_par_bit_identical\": true,\n    \"cases\": [\n{cases}\n    ],\n    \
         \"pr1_reference\": [\n{pr1}\n    ],\n    \
         \"pr1_absolute_speedup_met\": {pr1_absolute_met},\n    \
         \"required_batch_over_loop\": 1.0,\n    \"batch_cases\": [\n{batch_cases}\n    ],\n    \
         \"batch_pass\": {batch_pass},\n    \
         \"scan_gates\": {{\"micro_kernel_over_scalar\": {MICRO_KERNEL_MIN}, \
         \"hybrid_floor_over_scalar\": {HYBRID_FLOOR}}},\n    \
         \"scan_cases\": [\n{scan_cases}\n    ],\n    \
         \"scan_pass\": {scan_pass},\n    \
         \"soa_gates\": {{\"required_soa_over_boxed\": {REQUIRED_SOA_OVER_BOXED}, \
         \"threads_monotone_noise\": {THREADS_MONOTONE_NOISE}, \
         \"honest_thread_prefix\": \"workers <= cores\"}},\n    \
         \"soa_cases\": [\n{soa_cases}\n    ],\n    \
         \"soa_pass\": {soa_pass},\n    \
         \"robust_gates\": {{\"loss_curve_noise\": {LOSS_CURVE_NOISE}, \
         \"adaptive_detection_floor\": \"2/3\"}},\n    \
         \"robust_cases\": [\n      {{\"case\": \"loss-curve-monotone\", \"gated\": true, \
         \"pass\": {loss_monotone}}},\n      {{\"case\": \"adaptive-detection-floor\", \
         \"gated\": true, \"pass\": {adaptive_floor_met}}}\n    ],\n    \
         \"robust_pass\": {robust_pass},\n    \
         \"net_cases\": [\n      {{\"case\": \"distributed-bit-identical\", \"gated\": true, \
         \"pass\": true}},\n      {{\"case\": \"recovery-within-budget\", \"gated\": true, \
         \"pass\": {}}}\n    ],\n    \
         \"net_pass\": {net_pass},\n    \
         \"serve_cases\": [\n      {{\"case\": \"serve-bit-identical\", \"gated\": true, \
         \"pass\": true}},\n      {{\"case\": \"serve-clean-drain\", \"gated\": true, \
         \"pass\": true}},\n      {{\"case\": \"serve-latency-quantiles-ordered\", \
         \"gated\": true, \"pass\": {serve_quantiles_ordered}}}\n    ],\n    \
         \"serve_pass\": {serve_pass},\n    \"pass\": {all_pass}\n  }}",
        net_block.recovery_within_budget
    );
    json.push_str("}\n");

    // Self-check: the record must at least be structurally sound before
    // it is committed or consumed by CI.
    for key in [
        "\"schema\"",
        "\"entries\"",
        "\"speedups\"",
        "\"acceptance\"",
        "\"batch\"",
        "\"scan\"",
        "\"soa\"",
        "\"thread_axis\"",
        "\"robust\"",
        "\"net\"",
        "\"serve\"",
        "\"serve_pass\"",
    ] {
        assert!(json.contains(key), "malformed bench record: missing {key}");
    }
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "malformed bench record: unbalanced braces"
    );

    std::fs::write(&out_path, &json).expect("write bench record");
    eprintln!("wrote {out_path} (acceptance pass: {all_pass})");
}
