//! Experiment runner: regenerates every table/figure of the reproduction.
//!
//! ```text
//! cargo run -p ck-bench --release --bin experiments            # full suite
//! cargo run -p ck-bench --release --bin experiments -- --exp e5
//! cargo run -p ck-bench --release --bin experiments -- --list
//! ```

use ck_bench::experiments::{all_experiments, run_experiment, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }
    let results = if let Some(pos) = args.iter().position(|a| a == "--exp") {
        let id = args.get(pos + 1).map(String::as_str).unwrap_or("");
        match run_experiment(id) {
            Some(Ok(r)) => vec![r],
            Some(Err(e)) => {
                eprintln!("error: {e}");
                std::process::exit(3);
            }
            None => {
                eprintln!("unknown experiment id {id:?}; try --list");
                std::process::exit(2);
            }
        }
    } else {
        match all_experiments() {
            Ok(rs) => rs,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(3);
            }
        }
    };

    println!("# Distributed Detection of Cycles — experiment suite\n");
    let mut failures = 0;
    for r in &results {
        println!("{}", r.render());
        if !r.pass {
            failures += 1;
        }
    }
    println!(
        "---\n{} experiment(s), {} passed, {} failed",
        results.len(),
        results.len() - failures,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
