//! Scale study: tester wall-time and simulator throughput vs network
//! size, sequential vs rayon-parallel executors.
//!
//! ```text
//! cargo run -p ck-bench --release --bin scale            # default sweep
//! cargo run -p ck-bench --release --bin scale -- 200000  # up to n = 200k
//! ```

use ck_congest::engine::{EngineConfig, Executor};
use ck_core::session::TesterSession;
use ck_core::tester::TesterConfig;
use ck_graphgen::planted::cycle_chain;
use std::time::Instant;

fn main() {
    let max_n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let k = 5usize;
    let reps = 8u32;
    println!("Ck tester scale study: k={k}, {reps} repetitions per run\n");
    println!("       n |        m | executor   | wall ms | node-steps/s | messages | verdict");
    println!("---------+----------+------------+---------+--------------+----------+--------");
    let mut n = 1000usize;
    while n <= max_n {
        let inst = cycle_chain(n / k, k);
        for exec in [Executor::Sequential, Executor::Parallel] {
            let engine = EngineConfig { executor: exec, ..EngineConfig::default() };
            let cfg = TesterConfig { repetitions: Some(reps), ..TesterConfig::new(k, 0.1, 42) };
            let mut session = TesterSession::from_config(cfg, engine).expect("valid config");
            let start = Instant::now();
            let run = session.test(&inst.graph).expect("engine run");
            let wall = start.elapsed();
            let steps = inst.graph.n() as u64 * u64::from(run.outcome.report.rounds);
            let rate = steps as f64 / wall.as_secs_f64();
            println!(
                "{:8} | {:8} | {:10} | {:7.1} | {:12.0} | {:8} | {}",
                inst.graph.n(),
                inst.graph.m(),
                format!("{exec:?}"),
                wall.as_secs_f64() * 1e3,
                rate,
                run.outcome.report.total_messages(),
                if run.reject { "reject" } else { "accept" },
            );
            assert!(run.reject, "a chain of C{k}s must be rejected");
        }
        n *= 10;
    }
    println!(
        "\nBoth executors compute identical verdicts; the parallel one exists for wall-clock."
    );
}
