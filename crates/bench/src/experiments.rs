//! The experiment suite (DESIGN.md §4): one function per table/figure of
//! the reproduction, each emitting a markdown table and a pass flag.
//!
//! The paper is a theory paper; its "evaluation" is Theorem 1, Lemmas 1–5
//! and two illustrative figures. Every experiment here measures the
//! corresponding claim on concrete instances. All runs are seeded and
//! deterministic.

use ck_baselines::naive::{naive_detect_through_edge, DropPolicy};
use ck_baselines::{test_c4_freeness, test_triangle_freeness};
use ck_congest::engine::EngineConfig;
use ck_congest::graph::{Edge, Graph};
use ck_congest::message::WireParams;
use ck_core::prune::{build_send_set, lemma3_bound, PrunerKind};
use ck_core::rank::{minimum_is_unique, rank_rng, draw_rank, E_SQUARED};
use ck_core::seq::IdSeq;
use ck_core::single::detect_ck_through_edge;
use ck_core::tester::{run_tester, test_ck_freeness, TesterConfig};
use ck_graphgen::basic::{complete_bipartite, fan, figure1, grid, petersen, spindle, theta};
use ck_graphgen::behrend::behrend_ck_instance;
use ck_graphgen::farness::{greedy_ck_packing, has_ck_through_edge};
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use ck_graphgen::random::{gnp, high_girth, random_tree, randomize_ids};

use crate::table::Table;

/// Output of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`e1`..`e12`).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The paper claim under measurement.
    pub claim: String,
    /// Measured table.
    pub table: Table,
    /// True when the measured data supports the claim.
    pub pass: bool,
    /// Free-form notes (deviations, caveats).
    pub notes: String,
}

impl ExperimentResult {
    /// Renders the full experiment block as markdown.
    pub fn render(&self) -> String {
        format!(
            "## {} — {}\n\n*Claim:* {}\n\n{}\n*Outcome:* **{}**{}\n",
            self.id.to_uppercase(),
            self.title,
            self.claim,
            self.table.render(),
            if self.pass { "PASS" } else { "FAIL" },
            if self.notes.is_empty() { String::new() } else { format!("\n\n{}", self.notes) }
        )
    }
}

fn detect_single(g: &Graph, k: usize, e: Edge) -> ck_core::single::SingleRun {
    detect_ck_through_edge(g, k, e, PrunerKind::Representative, &EngineConfig::default())
        .expect("engine run")
}

/// E1 — Theorem 1, soundness: `Ck`-free graphs are accepted with
/// probability exactly 1 (1-sided error).
pub fn e1_soundness() -> ExperimentResult {
    let mut table = Table::new(["k", "family", "n", "trials", "false rejects"]);
    let mut pass = true;
    let seeds: Vec<u64> = (0..5).collect();
    for k in 3..=8usize {
        let mut families: Vec<(&str, Graph)> = vec![
            ("C(k+1)-cactus", matched_free_instance(48, k)),
            ("random tree", random_tree(48, 7)),
            ("high-girth", high_girth(48, k, 400, 3)),
        ];
        if k % 2 == 1 {
            families.push(("bipartite K6,6", complete_bipartite(6, 6)));
        } else if k == 4 {
            // Petersen is C4-free but contains C6 and C8, so it only
            // serves as the even-k control at k = 4.
            families.push(("petersen", petersen()));
        }
        for (name, g) in families {
            let mut rejects = 0;
            for &s in &seeds {
                let g = randomize_ids(&g, s * 13 + 1);
                let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(k, 0.1, s) };
                if run_tester(&g, &cfg, &EngineConfig::default()).unwrap().reject {
                    rejects += 1;
                }
            }
            pass &= rejects == 0;
            table.row([
                k.to_string(),
                name.to_string(),
                g.n().to_string(),
                seeds.len().to_string(),
                rejects.to_string(),
            ]);
        }
    }
    ExperimentResult {
        id: "e1",
        title: "1-sided error on Ck-free graphs".into(),
        claim: "G is Ck-free ⟹ Pr[every node accepts] = 1 (Theorem 1)".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E2 — Theorem 1, detection: ε-far instances rejected with prob ≥ 2/3.
pub fn e2_detection() -> ExperimentResult {
    let mut table = Table::new(["k", "eps", "n", "m", "reps", "trials", "reject rate", "≥ 2/3"]);
    let mut pass = true;
    let trials = 12u64;
    for k in 3..=6usize {
        for &eps in &[0.10f64, 0.05] {
            let inst = eps_far_instance(60, k, eps, 0);
            // Trials are independent runs: fan them out across cores.
            use rayon::prelude::*;
            let outcomes: Vec<(bool, u32)> = (0..trials)
                .into_par_iter()
                .map(|seed| {
                    let run = test_ck_freeness(&inst.graph, k, eps, seed);
                    (run.reject, run.repetitions)
                })
                .collect();
            let rejects = outcomes.iter().filter(|(r, _)| *r).count();
            let reps = outcomes.first().map(|&(_, r)| r).unwrap_or(0);
            let rate = rejects as f64 / trials as f64;
            let ok = rate >= 2.0 / 3.0;
            pass &= ok;
            table.row([
                k.to_string(),
                format!("{eps:.2}"),
                inst.graph.n().to_string(),
                inst.graph.m().to_string(),
                reps.to_string(),
                trials.to_string(),
                format!("{rate:.2}"),
                if ok { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    ExperimentResult {
        id: "e2",
        title: "detection on ε-far instances".into(),
        claim: "G ε-far from Ck-free ⟹ Pr[some node rejects] ≥ 2/3 (Theorem 1)".into(),
        table,
        pass,
        notes: "Instances: certified ε-far planted cycle chains (packing > εm).".into(),
    }
}

/// E3 — Theorem 1, round complexity: total rounds scale as Θ(1/ε).
pub fn e3_round_complexity() -> ExperimentResult {
    let mut table = Table::new(["k", "eps", "reps", "engine rounds", "rounds × eps"]);
    let mut products = Vec::new();
    let k = 5usize;
    let g = matched_free_instance(40, k);
    for &eps in &[0.20f64, 0.10, 0.05, 0.025] {
        let cfg = TesterConfig::new(k, eps, 1);
        let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        let rounds = run.outcome.report.rounds;
        products.push(f64::from(rounds) * eps);
        table.row([
            k.to_string(),
            format!("{eps:.3}"),
            run.repetitions.to_string(),
            rounds.to_string(),
            format!("{:.1}", f64::from(rounds) * eps),
        ]);
    }
    let (lo, hi) = products
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &p| (lo.min(p), hi.max(p)));
    let pass = hi / lo < 1.5; // linear in 1/ε up to ceiling effects
    ExperimentResult {
        id: "e3",
        title: "O(1/ε) round complexity".into(),
        claim: "the tester runs in O(1/ε) CONGEST rounds; rounds × ε ≈ const".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E4 — Lemma 2: the single-edge detector rejects iff a `Ck` passes
/// through the designated edge (edge-exhaustive oracle comparison).
pub fn e4_single_edge_exactness() -> ExperimentResult {
    let mut table = Table::new(["graph", "n", "m", "k range", "edges×k checks", "mismatches", "positives"]);
    let mut pass = true;
    let graphs: Vec<(&str, Graph)> = vec![
        ("petersen", petersen()),
        ("theta(3,2)", theta(3, 2)),
        ("fan(3)", fan(3)),
        ("grid(4,4)", grid(4, 4)),
        ("gnp(24,0.18)", gnp(24, 0.18, 11)),
    ];
    for (name, g) in graphs {
        let mut checks = 0;
        let mut mismatches = 0;
        let mut positives = 0;
        for k in 3..=8usize {
            for &e in g.edges() {
                let expected = has_ck_through_edge(&g, k, e);
                let got = detect_single(&g, k, e).reject;
                checks += 1;
                if expected {
                    positives += 1;
                }
                if got != expected {
                    mismatches += 1;
                }
            }
        }
        pass &= mismatches == 0;
        table.row([
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            "3..=8".to_string(),
            checks.to_string(),
            mismatches.to_string(),
            positives.to_string(),
        ]);
    }
    ExperimentResult {
        id: "e4",
        title: "single-edge detector exactness (Lemma 2)".into(),
        claim: "DetectCk(u,v): all nodes accept ⟺ no Ck through {u,v}".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E5 — Lemma 3: per-message sequence counts stay within
/// `(k−t+1)^(t−1)`; link loads are constant-factor `O(log n)` after
/// normalization.
pub fn e5_message_bound() -> ExperimentResult {
    let mut table = Table::new([
        "graph",
        "k",
        "max seqs/msg",
        "Lemma 3 worst bound",
        "max link bits",
        "B = 4⌈log n⌉",
        "normalized rounds",
        "wall rounds",
    ]);
    let mut pass = true;
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("spindle(16,2)", spindle(16, 2), 6),
        ("spindle(12,4)", spindle(12, 4), 8),
        ("fan(12)", fan(12), 5),
        ("theta(8,3)", theta(8, 3), 5),
        ("gnp(40,0.12)", gnp(40, 0.12, 5), 6),
    ];
    for (name, g, k) in cases {
        let e = *g.edges().first().expect("nonempty");
        let run = detect_single(&g, k, e);
        let bound = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap_or(1);
        let wp = WireParams::for_graph(&g);
        let b = wp.congest_bandwidth(4);
        let ok = (run.max_sent_seqs() as u128) <= bound;
        pass &= ok;
        table.row([
            name.to_string(),
            k.to_string(),
            run.max_sent_seqs().to_string(),
            bound.to_string(),
            run.outcome.report.max_link_bits().to_string(),
            b.to_string(),
            run.outcome.report.normalized_rounds(b).to_string(),
            run.outcome.report.rounds.to_string(),
        ]);
    }
    ExperimentResult {
        id: "e5",
        title: "message-size bound (Lemma 3)".into(),
        claim: "≤ (k−t+1)^(t−1) sequences per message at round t ⟹ O_k(1) words of O(log n) bits".into(),
        table,
        pass,
        notes: "Normalized rounds charge ⌈link-bits / B⌉ per wall round (constant for fixed k).".into(),
    }
}

/// E6 — Lemma 4: ε-far graphs contain ≥ εm/k edge-disjoint copies.
pub fn e6_packing() -> ExperimentResult {
    let mut table =
        Table::new(["k", "eps", "m", "greedy packing", "Lemma 4 bound εm/k", "packing ≥ bound"]);
    let mut pass = true;
    for k in 3..=6usize {
        for &eps in &[0.05f64, 0.10] {
            let inst = eps_far_instance(72, k, eps, 1);
            let packing = greedy_ck_packing(&inst.graph, k).len();
            let bound = eps * inst.graph.m() as f64 / k as f64;
            let ok = packing as f64 >= bound;
            pass &= ok;
            table.row([
                k.to_string(),
                format!("{eps:.2}"),
                inst.graph.m().to_string(),
                packing.to_string(),
                format!("{bound:.1}"),
                if ok { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    ExperimentResult {
        id: "e6",
        title: "edge-disjoint copies in ε-far graphs (Lemma 4)".into(),
        claim: "ε-far from Ck-free ⟹ ≥ εm/k edge-disjoint Ck copies".into(),
        table,
        pass,
        notes: "Greedy packing is a lower bound on the optimum, so clearing εm/k validates the lemma.".into(),
    }
}

/// E7 — Lemma 5: the minimum rank is unique with probability ≥ 1/e².
pub fn e7_unique_minimum() -> ExperimentResult {
    let mut table = Table::new(["m", "trials", "unique-min rate", "1/e²", "clears bound"]);
    let mut pass = true;
    for &m in &[20usize, 50, 200] {
        let trials = 3000u32;
        let mut unique = 0;
        for t in 0..trials {
            let mut rng = rank_rng(0xBEEF, m as u64, t);
            let ranks: Vec<u64> = (0..m).map(|_| draw_rank(&mut rng, m)).collect();
            if minimum_is_unique(&ranks) {
                unique += 1;
            }
        }
        let rate = f64::from(unique) / f64::from(trials);
        let ok = rate >= 1.0 / E_SQUARED;
        pass &= ok;
        table.row([
            m.to_string(),
            trials.to_string(),
            format!("{rate:.3}"),
            format!("{:.3}", 1.0 / E_SQUARED),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    ExperimentResult {
        id: "e7",
        title: "unique minimum rank (Lemma 5)".into(),
        claim: "Pr[unique min among m ranks from [1, m²]] ≥ 1/e²".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E8 — Figure 1: the C5-through-{u,v} instance where arbitrary sequence
/// dropping loses the only witness while the pruning rule keeps it.
pub fn e8_figure1() -> ExperimentResult {
    let g = figure1();
    let e = Edge::new(0, 1);
    let mut table = Table::new(["detector", "policy", "verdict", "expected"]);
    let ours = detect_single(&g, 5, e);
    table.row(["Algorithm 1", "pruned (Lemma 2)", if ours.reject { "reject" } else { "accept" }, "reject"]);
    let keepall =
        naive_detect_through_edge(&g, 5, e, DropPolicy::KeepAll, &EngineConfig::default()).unwrap();
    table.row(["naive", "keep all", if keepall.reject { "reject" } else { "accept" }, "reject"]);
    let trunc = naive_detect_through_edge(
        &g,
        5,
        e,
        DropPolicy::TruncateDeterministic { cap: 1 },
        &EngineConfig::default(),
    )
    .unwrap();
    table.row(["naive", "truncate cap=1", if trunc.reject { "reject" } else { "accept" }, "accept (miss)"]);
    let seeds = 30u64;
    let hits = (0..seeds)
        .filter(|&s| {
            naive_detect_through_edge(
                &g,
                5,
                e,
                DropPolicy::SampleRandom { cap: 1, seed: s },
                &EngineConfig::default(),
            )
            .unwrap()
            .reject
        })
        .count();
    table.row([
        "naive".to_string(),
        "random cap=1 (30 seeds)".to_string(),
        format!("{hits}/30 reject"),
        "≈ 1/2 (coin flip)".to_string(),
    ]);
    let pass = ours.reject && keepall.reject && !trunc.reject && hits > 0 && hits < 30;
    ExperimentResult {
        id: "e8",
        title: "Figure 1 — dropping sequences loses the cycle".into(),
        claim: "if x and y forward only one side each, z may never assemble the C5; Algorithm 1's pruning always keeps a witness".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E9 — §3.3 worked example: C9 with IDs 1..9 from edge {1,9}; the role
/// of fake IDs at node 3.
pub fn e9_c9_example() -> ExperimentResult {
    let mut table = Table::new(["check", "result", "expected"]);
    // Node 3 receives (1,2) at paper round t=3 and must forward (1,2,3).
    let received = vec![IdSeq::from_slice(&[1, 2])];
    let sent = build_send_set(PrunerKind::Representative, &received, 3, 9, 3);
    let fwd = sent.first().map(|s| format!("{:?}", s.as_slice())).unwrap_or("∅".into());
    table.row(["node 3 forwards at t=3", &fwd, "[1, 2, 3]"]);
    let ok1 = sent.len() == 1 && sent[0].as_slice() == [1, 2, 3];

    // Full run on C9 with IDs 1..9, detection from edge {1,9}.
    let g = ck_graphgen::basic::cycle(9).with_ids((1..=9).collect()).unwrap();
    let e = Edge::new(0, 8); // indices of IDs 1 and 9
    let run = detect_single(&g, 9, e);
    table.row([
        "DetectC9 from {1,9}".to_string(),
        if run.reject { "reject".into() } else { "accept".to_string() },
        "reject".to_string(),
    ]);
    let rejecting: Vec<u64> = run
        .outcome
        .verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.reject)
        .map(|(i, _)| g.id(i as u32))
        .collect();
    table.row([
        "rejecting node (antipodal)".to_string(),
        format!("{rejecting:?}"),
        "[5]".to_string(),
    ]);
    let ok2 = run.reject && rejecting == vec![5];
    ExperimentResult {
        id: "e9",
        title: "§3.3 worked example — fake IDs on the C9".into(),
        claim: "without fake IDs node 3 would drop (1,2); with them it forwards (1,2,3), and the node antipodal to {1,9} rejects at round ⌊k/2⌋".into(),
        table,
        pass: ok1 && ok2,
        notes: String::new(),
    }
}

/// E10 — Behrend-style spread-cycle instances: the hard regime for
/// sampling techniques; Algorithm 1 stays deterministic-exact.
pub fn e10_behrend() -> ExperimentResult {
    let mut table = Table::new([
        "k",
        "width",
        "n",
        "m",
        "planted copies",
        "Alg.1 single-edge",
        "naive random cap=1 (20 seeds)",
        "full tester rate (6 seeds)",
    ]);
    let mut pass = true;
    for &(k, width) in &[(5usize, 40usize), (6, 32)] {
        let inst = behrend_ck_instance(k, width);
        let g = &inst.graph;
        // A closing edge of the first planted copy.
        let copy = &inst.planted[0];
        let e = Edge::new(copy[k - 1], copy[0]);
        let ours = detect_single(g, k, e);
        let naive_hits = (0..20u64)
            .filter(|&s| {
                naive_detect_through_edge(
                    g,
                    k,
                    e,
                    DropPolicy::SampleRandom { cap: 1, seed: s },
                    &EngineConfig::default(),
                )
                .unwrap()
                .reject
            })
            .count();
        let eps = 0.04;
        let full_hits = (0..6u64).filter(|&s| test_ck_freeness(g, k, eps, s).reject).count();
        pass &= ours.reject && full_hits * 3 >= 6 * 2;
        table.row([
            k.to_string(),
            width.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            inst.planted.len().to_string(),
            if ours.reject { "reject".into() } else { "accept".to_string() },
            format!("{naive_hits}/20"),
            format!("{full_hits}/6"),
        ]);
    }
    ExperimentResult {
        id: "e10",
        title: "Behrend-style spread-cycle instances".into(),
        claim: "cycles spread by arithmetic structure (the [20] hard instances for k ≥ 5) are still detected: Phase 2 is exact per edge, and farness (packing = m/k > εm) drives the full tester".into(),
        table,
        pass,
        notes: "Substitution per DESIGN.md: Behrend strides as a workload family, not a lower-bound re-proof.".into(),
    }
}

/// E11 — congestion ablation: naive offered load grows with the spindle
/// width while Algorithm 1 stays at the Lemma-3 constant.
pub fn e11_congestion() -> ExperimentResult {
    let mut table = Table::new([
        "spindle width p",
        "naive max seqs offered",
        "naive max link bits",
        "pruned max seqs/msg",
        "pruned max link bits",
        "Lemma 3 worst bound (k=6)",
    ]);
    let k = 6usize;
    let bound = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap();
    let mut pass = true;
    for &p in &[4usize, 8, 16, 32] {
        let g = spindle(p, 2);
        let e = Edge::new(0, 1);
        let naive =
            naive_detect_through_edge(&g, k, e, DropPolicy::KeepAll, &EngineConfig::default())
                .unwrap();
        let pruned = detect_single(&g, k, e);
        pass &= naive.reject && pruned.reject;
        pass &= naive.max_offered >= p;
        pass &= (pruned.max_sent_seqs() as u128) <= bound;
        table.row([
            p.to_string(),
            naive.max_offered.to_string(),
            naive.outcome.report.max_link_bits().to_string(),
            pruned.max_sent_seqs().to_string(),
            pruned.outcome.report.max_link_bits().to_string(),
            bound.to_string(),
        ]);
    }
    ExperimentResult {
        id: "e11",
        title: "naive vs pruned congestion on spindles".into(),
        claim: "unpruned forwarding needs Ω(p) sequences on one link; Algorithm 1 forwards ≤ (k−t+1)^(t−1) regardless of p".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E12 — prior-work scope: the \[7\]/\[20\]-style testers work for k ∈ {3,4}
/// and our tester covers k ≥ 5 where they have no analog.
pub fn e12_prior_work() -> ExperimentResult {
    let mut table = Table::new(["tester", "target", "instance", "trials", "reject rate", "expected"]);
    let mut pass = true;
    let trials = 10u64;

    let far3 = eps_far_instance(60, 3, 0.1, 0);
    let r3 = (0..trials)
        .filter(|&s| test_triangle_freeness(&far3.graph, 0.1, s, None).unwrap().0)
        .count();
    pass &= r3 * 3 >= trials as usize * 2;
    table.row(["[7] triangle", "k=3", "ε-far (ε=0.1)", "10", &format!("{:.2}", r3 as f64 / 10.0), "≥ 2/3"]);

    let p3 = (0..trials)
        .filter(|&s| test_triangle_freeness(&petersen(), 0.1, s, Some(50)).unwrap().0)
        .count();
    pass &= p3 == 0;
    table.row(["[7] triangle", "k=3", "Petersen (free)", "10", &format!("{:.2}", p3 as f64 / 10.0), "0 (1-sided)"]);

    let far4 = eps_far_instance(60, 4, 0.1, 0);
    let r4 = (0..trials)
        .filter(|&s| test_c4_freeness(&far4.graph, 0.1, s, None).unwrap().0)
        .count();
    pass &= r4 * 3 >= trials as usize * 2;
    table.row(["[20] C4", "k=4", "ε-far (ε=0.1)", "10", &format!("{:.2}", r4 as f64 / 10.0), "≥ 2/3"]);

    let p4 = (0..trials)
        .filter(|&s| test_c4_freeness(&petersen(), 0.1, s, Some(50)).unwrap().0)
        .count();
    pass &= p4 == 0;
    table.row(["[20] C4", "k=4", "Petersen (free)", "10", &format!("{:.2}", p4 as f64 / 10.0), "0 (1-sided)"]);

    let far5 = eps_far_instance(60, 5, 0.1, 0);
    let r5 = (0..trials).filter(|&s| test_ck_freeness(&far5.graph, 5, 0.1, s).reject).count();
    pass &= r5 * 3 >= trials as usize * 2;
    table.row(["this paper", "k=5", "ε-far (ε=0.1)", "10", &format!("{:.2}", r5 as f64 / 10.0), "≥ 2/3"]);

    ExperimentResult {
        id: "e12",
        title: "prior-work testers and where they stop".into(),
        claim: "neighbor-sampling gives constant-round testers for C3/C4 ([7],[20]) but provably not for k ≥ 5; Algorithm 1 covers every k".into(),
        table,
        pass,
        notes: String::new(),
    }
}

/// E13 — §4 conclusion: the pruning is oblivious to chords, so an
/// H-freeness tester (H = chorded k-cycle) built on Algorithm 1 misses H
/// on a deterministic counterexample.
pub fn e13_chord_obliviousness() -> ExperimentResult {
    use ck_core::ablation::probe_chorded_coverage;
    use ck_graphgen::basic::chorded_spindle;
    let mut table = Table::new([
        "fan-in p",
        "chorded C6 exists (oracle)",
        "detector rejects",
        "witnesses",
        "chorded witnesses",
        "H missed",
    ]);
    let mut pass = true;
    for &p in &[5usize, 8, 16] {
        let g = chorded_spindle(p);
        let probe = probe_chorded_coverage(&g, 6, Edge::new(0, 1));
        pass &= probe.misses_chorded_pattern();
        table.row([
            p.to_string(),
            probe.chorded_exists.to_string(),
            probe.detector_rejects.to_string(),
            probe.witnesses.len().to_string(),
            probe.chorded_witnesses.to_string(),
            probe.misses_chorded_pattern().to_string(),
        ]);
    }
    ExperimentResult {
        id: "e13",
        title: "chord obliviousness of the pruning (§4 conclusion)".into(),
        claim: "the pruning \"may well discard the sequence corresponding to the cycle in H, and keep a sequence without a chord\" — so the technique does not extend to chorded patterns".into(),
        table,
        pass,
        notes: "Counterexample: spindle(p,2) + chord (x_big, z2); at p ≥ 5 the pruning at z1 keeps only the 4 smallest (u, x_i) and drops x_big's — the only fan-in node on the chorded copy.".into(),
    }
}

/// E14 — the gap region: instances that contain a `Ck` but are NOT
/// ε-far. The definition permits either answer; we measure where the
/// detection probability actually lands as the copy count shrinks.
pub fn e14_gap_region() -> ExperimentResult {
    use ck_graphgen::mutate::thin_to_few_cycles;
    use ck_graphgen::planted::cycle_chain;
    let k = 5usize;
    let eps = 0.05;
    let mut table = Table::new([
        "surviving copies",
        "m",
        "copies/m",
        "status vs ε=0.05",
        "trials",
        "reject rate",
    ]);
    let base = cycle_chain(14, k);
    let trials = 10u64;
    let mut rates = Vec::new();
    for &keep in &[14usize, 6, 2, 0] {
        let (g, _) = if keep == 14 {
            (base.graph.clone(), 0)
        } else {
            thin_to_few_cycles(&base.graph, k, keep, 3)
        };
        let m = g.m();
        let status = if keep == 0 {
            "Ck-free (accept forced)"
        } else if keep as f64 > eps * m as f64 {
            "certified ε-far (reject ≥ 2/3)"
        } else {
            "gap (either answer legal)"
        };
        let rejects =
            (0..trials).filter(|&s| test_ck_freeness(&g, k, eps, s).reject).count();
        rates.push((keep, rejects));
        table.row([
            keep.to_string(),
            m.to_string(),
            format!("{:.3}", keep as f64 / m as f64),
            status.to_string(),
            trials.to_string(),
            format!("{:.2}", rejects as f64 / trials as f64),
        ]);
    }
    // Pass criteria: far end ≥ 2/3 of trials, free end exactly 0, and
    // monotone non-increasing rejection as copies shrink.
    let far_ok = rates[0].1 * 3 >= trials as usize * 2;
    let free_ok = rates.last().unwrap().1 == 0;
    let monotone = rates.windows(2).all(|w| w[0].1 >= w[1].1);
    ExperimentResult {
        id: "e14",
        title: "the gap region between ε-far and free".into(),
        claim: "\"instances which are nearly satisfying P but not quite — the algorithm can output either ways\"; detection degrades smoothly from the guaranteed ≥2/3 to the forced 0".into(),
        table,
        pass: far_ok && free_ok && monotone,
        notes: "Gap instances built by deleting one edge per surplus copy from a certified ε-far chain.".into(),
    }
}

/// E15 — message-loss resilience (simulator extension; not a paper
/// claim): 1-sidedness survives arbitrary loss, detection degrades
/// gracefully with the per-message loss rate.
pub fn e15_loss_resilience() -> ExperimentResult {
    use ck_core::robust::loss_detection_curve;
    use ck_congest::fault::FaultPlan;
    let mut table = Table::new(["loss rate", "far instance reject rate", "free instance false rejects"]);
    let k = 5usize;
    let eps = 0.08;
    let far = eps_far_instance(50, k, eps, 0);
    let free = matched_free_instance(50, k);
    let losses = [0.0, 0.05, 0.2, 0.5];
    let curve = loss_detection_curve(&far.graph, k, eps, &losses, 6, 17);
    let mut pass = true;
    for point in &curve {
        // Free-side check under the same loss.
        let mut false_rejects = 0;
        for t in 0..4u64 {
            let engine = EngineConfig {
                faults: FaultPlan::none().random_loss(point.loss, 900 + t),
                ..EngineConfig::default()
            };
            let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(k, eps, t) };
            if run_tester(&free, &cfg, &engine).unwrap().reject {
                false_rejects += 1;
            }
        }
        pass &= false_rejects == 0;
        table.row([
            format!("{:.2}", point.loss),
            format!("{:.2}", point.rate()),
            false_rejects.to_string(),
        ]);
    }
    pass &= curve[0].rate() >= 2.0 / 3.0; // lossless meets the bound
    ExperimentResult {
        id: "e15",
        title: "behavior under message loss (extension)".into(),
        claim: "drops can suppress detections but never fabricate them: 1-sidedness is loss-proof, detection degrades with loss".into(),
        table,
        pass,
        notes: "Not a paper claim — the paper assumes reliable links; this characterizes the implementation under the simulator's fault injection.".into(),
    }
}

/// Runs one experiment by id.
pub fn run_experiment(id: &str) -> Option<ExperimentResult> {
    Some(match id {
        "e1" => e1_soundness(),
        "e2" => e2_detection(),
        "e3" => e3_round_complexity(),
        "e4" => e4_single_edge_exactness(),
        "e5" => e5_message_bound(),
        "e6" => e6_packing(),
        "e7" => e7_unique_minimum(),
        "e8" => e8_figure1(),
        "e9" => e9_c9_example(),
        "e10" => e10_behrend(),
        "e11" => e11_congestion(),
        "e12" => e12_prior_work(),
        "e13" => e13_chord_obliviousness(),
        "e14" => e14_gap_region(),
        "e15" => e15_loss_resilience(),
        _ => return None,
    })
}

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
    "e15",
];

/// Runs the full suite.
pub fn all_experiments() -> Vec<ExperimentResult> {
    ALL_IDS.iter().map(|id| run_experiment(id).expect("known id")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cheap experiments run in the unit suite; the full suite runs in
    // the integration test and the binary.
    #[test]
    fn e3_rounds_scale() {
        assert!(e3_round_complexity().pass);
    }

    #[test]
    fn e7_lemma5() {
        assert!(e7_unique_minimum().pass);
    }

    #[test]
    fn e8_figure1_story() {
        assert!(e8_figure1().pass);
    }

    #[test]
    fn e9_c9() {
        assert!(e9_c9_example().pass);
    }

    #[test]
    fn e11_spindles() {
        assert!(e11_congestion().pass);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope").is_none());
    }
}
