//! The experiment suite (DESIGN.md §4): one function per table/figure of
//! the reproduction, each emitting a markdown table and a pass flag.
//!
//! The paper is a theory paper; its "evaluation" is Theorem 1, Lemmas 1–5
//! and two illustrative figures. Every experiment here measures the
//! corresponding claim on concrete instances. All runs are seeded and
//! deterministic.

use ck_baselines::naive::{naive_detect_through_edge, DropPolicy};
use ck_baselines::{test_c4_freeness, test_triangle_freeness};
use ck_congest::engine::{EngineConfig, EngineError};
use ck_congest::graph::{Edge, Graph};
use ck_congest::message::WireParams;
use ck_core::batch::{BatchError, BatchFailure, BatchJob};
use ck_core::prune::{build_send_set, lemma3_bound, PrunerKind};
use ck_core::rank::{draw_rank, minimum_is_unique, rank_rng, E_SQUARED};
use ck_core::seq::IdSeq;
use ck_core::session::TesterSession;
use ck_core::single::detect_ck_through_edge;
use ck_core::tester::{TesterConfig, TesterRun};
use ck_graphgen::basic::{complete_bipartite, fan, figure1, grid, petersen, spindle, theta};
use ck_graphgen::behrend::behrend_ck_instance;
use ck_graphgen::farness::{greedy_ck_packing, has_ck_through_edge};
use ck_graphgen::planted::{eps_far_instance, matched_free_instance};
use ck_graphgen::random::{gnp, high_girth, random_tree, randomize_ids};

use crate::table::Table;

/// Output of one experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Experiment id (`e1`..`e12`).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// The paper claim under measurement.
    pub claim: String,
    /// Measured table.
    pub table: Table,
    /// True when the measured data supports the claim.
    pub pass: bool,
    /// Free-form notes (deviations, caveats).
    pub notes: String,
}

/// A failed experiment run, naming the instance and seed that broke
/// the sweep — one bad graph reports itself instead of panicking
/// mid-table.
#[derive(Clone, Debug)]
pub struct ExperimentError {
    /// Experiment that failed (`e1`…`e15`).
    pub experiment: &'static str,
    /// Which instance/seed failed (graph description, seed, cell).
    pub context: String,
    /// The underlying failure (engine error or out-of-range config).
    pub error: BatchFailure,
}

impl ExperimentError {
    fn from_batch(experiment: &'static str, e: BatchError) -> Self {
        ExperimentError {
            experiment,
            context: format!("{} (job {}, seed {})", e.label, e.job, e.seed),
            error: e.error,
        }
    }

    /// `map_err` adapter for direct engine-run calls inside experiment
    /// loops: tags the failure with the experiment id and instance
    /// context.
    fn tag(
        experiment: &'static str,
        context: impl Into<String>,
    ) -> impl FnOnce(EngineError) -> ExperimentError {
        let context = context.into();
        move |error| ExperimentError { experiment, context, error: BatchFailure::Engine(error) }
    }
}

/// The experiments' batch driver: one throwaway session per job family.
/// Batches are heterogeneous (cells sweep `k`/`ε`/seeds), so each job
/// is governed by its own config — the session contributes only the
/// engine template, and its `(k, ε)` literals below are inert.
fn session_batch(
    experiment: &'static str,
    jobs: &[BatchJob<'_>],
    engine: EngineConfig,
) -> Result<Vec<TesterRun>, ExperimentError> {
    TesterSession::builder(3, 0.5)
        .engine(engine)
        .build()
        .expect("literal session parameters are valid")
        .test_batch(jobs, None)
        .map_err(|e| ExperimentError::from_batch(experiment, e))
}

/// One-shot tester run through a fresh session, tagged with the
/// experiment context on failure.
fn session_test(
    experiment: &'static str,
    context: String,
    g: &Graph,
    cfg: TesterConfig,
    engine: EngineConfig,
) -> Result<TesterRun, ExperimentError> {
    let mut session = TesterSession::from_config(cfg, engine).map_err(|e| ExperimentError {
        experiment,
        context: context.clone(),
        error: BatchFailure::Config(e),
    })?;
    session.test(g).map_err(ExperimentError::tag(experiment, context))
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "experiment {} failed on {}: {}", self.experiment, self.context, self.error)
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl ExperimentResult {
    /// Renders the full experiment block as markdown.
    pub fn render(&self) -> String {
        format!(
            "## {} — {}\n\n*Claim:* {}\n\n{}\n*Outcome:* **{}**{}\n",
            self.id.to_uppercase(),
            self.title,
            self.claim,
            self.table.render(),
            if self.pass { "PASS" } else { "FAIL" },
            if self.notes.is_empty() { String::new() } else { format!("\n\n{}", self.notes) }
        )
    }
}

fn detect_single(g: &Graph, k: usize, e: Edge) -> Result<ck_core::single::SingleRun, EngineError> {
    detect_ck_through_edge(g, k, e, PrunerKind::Representative, &EngineConfig::default())
}

/// E1 — Theorem 1, soundness: `Ck`-free graphs are accepted with
/// probability exactly 1 (1-sided error).
pub fn e1_soundness() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new(["k", "family", "n", "trials", "false rejects"]);
    let mut pass = true;
    let seeds: Vec<u64> = (0..5).collect();
    for k in 3..=8usize {
        let mut families: Vec<(&str, Graph)> = vec![
            ("C(k+1)-cactus", matched_free_instance(48, k)),
            ("random tree", random_tree(48, 7)),
            ("high-girth", high_girth(48, k, 400, 3)),
        ];
        if k % 2 == 1 {
            families.push(("bipartite K6,6", complete_bipartite(6, 6)));
        } else if k == 4 {
            // Petersen is C4-free but contains C6 and C8, so it only
            // serves as the even-k control at k = 4.
            families.push(("petersen", petersen()));
        }
        for (name, g) in families {
            // One batch per (k, family) cell: the seeds' ID-randomized
            // variants are independent instances.
            let variants: Vec<Graph> =
                seeds.iter().map(|&s| randomize_ids(&g, s * 13 + 1)).collect();
            let jobs: Vec<BatchJob> = variants
                .iter()
                .zip(&seeds)
                .map(|(vg, &s)| {
                    let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(k, 0.1, s) };
                    BatchJob::labeled(vg, cfg, format!("e1 {name} k={k} seed={s}"))
                })
                .collect();
            let runs = session_batch("e1", &jobs, EngineConfig::default())?;
            let rejects = runs.iter().filter(|r| r.reject).count();
            pass &= rejects == 0;
            table.row([
                k.to_string(),
                name.to_string(),
                g.n().to_string(),
                seeds.len().to_string(),
                rejects.to_string(),
            ]);
        }
    }
    Ok(ExperimentResult {
        id: "e1",
        title: "1-sided error on Ck-free graphs".into(),
        claim: "G is Ck-free ⟹ Pr[every node accepts] = 1 (Theorem 1)".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E2 — Theorem 1, detection: ε-far instances rejected with prob ≥ 2/3.
pub fn e2_detection() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new(["k", "eps", "n", "m", "reps", "trials", "reject rate", "≥ 2/3"]);
    let mut pass = true;
    let trials = 12u64;
    for k in 3..=6usize {
        for &eps in &[0.10f64, 0.05] {
            let inst = eps_far_instance(60, k, eps, 0);
            // Trials are independent runs: submit the whole cell as one
            // sharded batch (engine arenas and tester scratch are
            // reused per shard instead of rebuilt per trial).
            let jobs: Vec<BatchJob> = (0..trials)
                .map(|seed| {
                    BatchJob::labeled(
                        &inst.graph,
                        TesterConfig::new(k, eps, seed),
                        format!("e2 k={k} eps={eps} seed={seed}"),
                    )
                })
                .collect();
            let runs = session_batch("e2", &jobs, EngineConfig::default())?;
            let rejects = runs.iter().filter(|r| r.reject).count();
            let reps = runs.first().map(|r| r.repetitions).unwrap_or(0);
            let rate = rejects as f64 / trials as f64;
            let ok = rate >= 2.0 / 3.0;
            pass &= ok;
            table.row([
                k.to_string(),
                format!("{eps:.2}"),
                inst.graph.n().to_string(),
                inst.graph.m().to_string(),
                reps.to_string(),
                trials.to_string(),
                format!("{rate:.2}"),
                if ok { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    Ok(ExperimentResult {
        id: "e2",
        title: "detection on ε-far instances".into(),
        claim: "G ε-far from Ck-free ⟹ Pr[some node rejects] ≥ 2/3 (Theorem 1)".into(),
        table,
        pass,
        notes: "Instances: certified ε-far planted cycle chains (packing > εm); each (k, ε) cell runs as one sharded batch.".into(),
    })
}

/// E3 — Theorem 1, round complexity: total rounds scale as Θ(1/ε).
pub fn e3_round_complexity() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new(["k", "eps", "reps", "engine rounds", "rounds × eps"]);
    let mut products = Vec::new();
    let k = 5usize;
    let g = matched_free_instance(40, k);
    for &eps in &[0.20f64, 0.10, 0.05, 0.025] {
        let cfg = TesterConfig::new(k, eps, 1);
        let run = session_test(
            "e3",
            format!("matched-free n=40 k={k} eps={eps}"),
            &g,
            cfg,
            EngineConfig::default(),
        )?;
        let rounds = run.outcome.report.rounds;
        products.push(f64::from(rounds) * eps);
        table.row([
            k.to_string(),
            format!("{eps:.3}"),
            run.repetitions.to_string(),
            rounds.to_string(),
            format!("{:.1}", f64::from(rounds) * eps),
        ]);
    }
    let (lo, hi) =
        products.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &p| (lo.min(p), hi.max(p)));
    let pass = hi / lo < 1.5; // linear in 1/ε up to ceiling effects
    Ok(ExperimentResult {
        id: "e3",
        title: "O(1/ε) round complexity".into(),
        claim: "the tester runs in O(1/ε) CONGEST rounds; rounds × ε ≈ const".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E4 — Lemma 2: the single-edge detector rejects iff a `Ck` passes
/// through the designated edge (edge-exhaustive oracle comparison).
pub fn e4_single_edge_exactness() -> Result<ExperimentResult, ExperimentError> {
    let mut table =
        Table::new(["graph", "n", "m", "k range", "edges×k checks", "mismatches", "positives"]);
    let mut pass = true;
    let graphs: Vec<(&str, Graph)> = vec![
        ("petersen", petersen()),
        ("theta(3,2)", theta(3, 2)),
        ("fan(3)", fan(3)),
        ("grid(4,4)", grid(4, 4)),
        ("gnp(24,0.18)", gnp(24, 0.18, 11)),
    ];
    for (name, g) in graphs {
        let mut checks = 0;
        let mut mismatches = 0;
        let mut positives = 0;
        for k in 3..=8usize {
            for &e in g.edges() {
                let expected = has_ck_through_edge(&g, k, e);
                let got = detect_single(&g, k, e)
                    .map_err(ExperimentError::tag("e4", format!("{name} k={k} edge={e:?}")))?
                    .reject;
                checks += 1;
                if expected {
                    positives += 1;
                }
                if got != expected {
                    mismatches += 1;
                }
            }
        }
        pass &= mismatches == 0;
        table.row([
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            "3..=8".to_string(),
            checks.to_string(),
            mismatches.to_string(),
            positives.to_string(),
        ]);
    }
    Ok(ExperimentResult {
        id: "e4",
        title: "single-edge detector exactness (Lemma 2)".into(),
        claim: "DetectCk(u,v): all nodes accept ⟺ no Ck through {u,v}".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E5 — Lemma 3: per-message sequence counts stay within
/// `(k−t+1)^(t−1)`; link loads are constant-factor `O(log n)` after
/// normalization.
pub fn e5_message_bound() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new([
        "graph",
        "k",
        "max seqs/msg",
        "Lemma 3 worst bound",
        "max link bits",
        "B = 4⌈log n⌉",
        "normalized rounds",
        "wall rounds",
    ]);
    let mut pass = true;
    let cases: Vec<(&str, Graph, usize)> = vec![
        ("spindle(16,2)", spindle(16, 2), 6),
        ("spindle(12,4)", spindle(12, 4), 8),
        ("fan(12)", fan(12), 5),
        ("theta(8,3)", theta(8, 3), 5),
        ("gnp(40,0.12)", gnp(40, 0.12, 5), 6),
    ];
    for (name, g, k) in cases {
        let e = *g.edges().first().expect("nonempty");
        let run =
            detect_single(&g, k, e).map_err(ExperimentError::tag("e5", format!("{name} k={k}")))?;
        let bound = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap_or(1);
        let wp = WireParams::for_graph(&g);
        let b = wp.congest_bandwidth(4);
        let ok = (run.max_sent_seqs() as u128) <= bound;
        pass &= ok;
        table.row([
            name.to_string(),
            k.to_string(),
            run.max_sent_seqs().to_string(),
            bound.to_string(),
            run.outcome.report.max_link_bits().to_string(),
            b.to_string(),
            run.outcome.report.normalized_rounds(b).to_string(),
            run.outcome.report.rounds.to_string(),
        ]);
    }
    Ok(ExperimentResult {
        id: "e5",
        title: "message-size bound (Lemma 3)".into(),
        claim: "≤ (k−t+1)^(t−1) sequences per message at round t ⟹ O_k(1) words of O(log n) bits"
            .into(),
        table,
        pass,
        notes: "Normalized rounds charge ⌈link-bits / B⌉ per wall round (constant for fixed k)."
            .into(),
    })
}

/// E6 — Lemma 4: ε-far graphs contain ≥ εm/k edge-disjoint copies.
pub fn e6_packing() -> Result<ExperimentResult, ExperimentError> {
    let mut table =
        Table::new(["k", "eps", "m", "greedy packing", "Lemma 4 bound εm/k", "packing ≥ bound"]);
    let mut pass = true;
    for k in 3..=6usize {
        for &eps in &[0.05f64, 0.10] {
            let inst = eps_far_instance(72, k, eps, 1);
            let packing = greedy_ck_packing(&inst.graph, k).len();
            let bound = eps * inst.graph.m() as f64 / k as f64;
            let ok = packing as f64 >= bound;
            pass &= ok;
            table.row([
                k.to_string(),
                format!("{eps:.2}"),
                inst.graph.m().to_string(),
                packing.to_string(),
                format!("{bound:.1}"),
                if ok { "yes".into() } else { "NO".to_string() },
            ]);
        }
    }
    Ok(ExperimentResult {
        id: "e6",
        title: "edge-disjoint copies in ε-far graphs (Lemma 4)".into(),
        claim: "ε-far from Ck-free ⟹ ≥ εm/k edge-disjoint Ck copies".into(),
        table,
        pass,
        notes:
            "Greedy packing is a lower bound on the optimum, so clearing εm/k validates the lemma."
                .into(),
    })
}

/// E7 — Lemma 5: the minimum rank is unique with probability ≥ 1/e².
pub fn e7_unique_minimum() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new(["m", "trials", "unique-min rate", "1/e²", "clears bound"]);
    let mut pass = true;
    for &m in &[20usize, 50, 200] {
        let trials = 3000u32;
        let mut unique = 0;
        for t in 0..trials {
            let mut rng = rank_rng(0xBEEF, m as u64, t);
            let ranks: Vec<u64> = (0..m).map(|_| draw_rank(&mut rng, m)).collect();
            if minimum_is_unique(&ranks) {
                unique += 1;
            }
        }
        let rate = f64::from(unique) / f64::from(trials);
        let ok = rate >= 1.0 / E_SQUARED;
        pass &= ok;
        table.row([
            m.to_string(),
            trials.to_string(),
            format!("{rate:.3}"),
            format!("{:.3}", 1.0 / E_SQUARED),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    Ok(ExperimentResult {
        id: "e7",
        title: "unique minimum rank (Lemma 5)".into(),
        claim: "Pr[unique min among m ranks from [1, m²]] ≥ 1/e²".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E8 — Figure 1: the C5-through-{u,v} instance where arbitrary sequence
/// dropping loses the only witness while the pruning rule keeps it.
pub fn e8_figure1() -> Result<ExperimentResult, ExperimentError> {
    let g = figure1();
    let e = Edge::new(0, 1);
    let mut table = Table::new(["detector", "policy", "verdict", "expected"]);
    let ours = detect_single(&g, 5, e).map_err(ExperimentError::tag("e8", "figure1 pruned"))?;
    table.row([
        "Algorithm 1",
        "pruned (Lemma 2)",
        if ours.reject { "reject" } else { "accept" },
        "reject",
    ]);
    let keepall =
        naive_detect_through_edge(&g, 5, e, DropPolicy::KeepAll, &EngineConfig::default())
            .map_err(ExperimentError::tag("e8", "figure1 keep-all"))?;
    table.row(["naive", "keep all", if keepall.reject { "reject" } else { "accept" }, "reject"]);
    let trunc = naive_detect_through_edge(
        &g,
        5,
        e,
        DropPolicy::TruncateDeterministic { cap: 1 },
        &EngineConfig::default(),
    )
    .map_err(ExperimentError::tag("e8", "figure1 truncate"))?;
    table.row([
        "naive",
        "truncate cap=1",
        if trunc.reject { "reject" } else { "accept" },
        "accept (miss)",
    ]);
    let seeds = 30u64;
    let mut hits = 0usize;
    for s in 0..seeds {
        let run = naive_detect_through_edge(
            &g,
            5,
            e,
            DropPolicy::SampleRandom { cap: 1, seed: s },
            &EngineConfig::default(),
        )
        .map_err(ExperimentError::tag("e8", format!("figure1 random seed={s}")))?;
        if run.reject {
            hits += 1;
        }
    }
    table.row([
        "naive".to_string(),
        "random cap=1 (30 seeds)".to_string(),
        format!("{hits}/30 reject"),
        "≈ 1/2 (coin flip)".to_string(),
    ]);
    let pass = ours.reject && keepall.reject && !trunc.reject && hits > 0 && hits < 30;
    Ok(ExperimentResult {
        id: "e8",
        title: "Figure 1 — dropping sequences loses the cycle".into(),
        claim: "if x and y forward only one side each, z may never assemble the C5; Algorithm 1's pruning always keeps a witness".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E9 — §3.3 worked example: C9 with IDs 1..9 from edge {1,9}; the role
/// of fake IDs at node 3.
pub fn e9_c9_example() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new(["check", "result", "expected"]);
    // Node 3 receives (1,2) at paper round t=3 and must forward (1,2,3).
    let received = vec![IdSeq::from_slice(&[1, 2])];
    let sent = build_send_set(PrunerKind::Representative, &received, 3, 9, 3);
    let fwd = sent.first().map(|s| format!("{:?}", s.as_slice())).unwrap_or("∅".into());
    table.row(["node 3 forwards at t=3", &fwd, "[1, 2, 3]"]);
    let ok1 = sent.len() == 1 && sent[0].as_slice() == [1, 2, 3];

    // Full run on C9 with IDs 1..9, detection from edge {1,9}.
    let g = ck_graphgen::basic::cycle(9).with_ids((1..=9).collect()).unwrap();
    let e = Edge::new(0, 8); // indices of IDs 1 and 9
    let run = detect_single(&g, 9, e).map_err(ExperimentError::tag("e9", "C9 from {1,9}"))?;
    table.row([
        "DetectC9 from {1,9}".to_string(),
        if run.reject { "reject".into() } else { "accept".to_string() },
        "reject".to_string(),
    ]);
    let rejecting: Vec<u64> = run
        .outcome
        .verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.reject)
        .map(|(i, _)| g.id(i as u32))
        .collect();
    table.row([
        "rejecting node (antipodal)".to_string(),
        format!("{rejecting:?}"),
        "[5]".to_string(),
    ]);
    let ok2 = run.reject && rejecting == vec![5];
    Ok(ExperimentResult {
        id: "e9",
        title: "§3.3 worked example — fake IDs on the C9".into(),
        claim: "without fake IDs node 3 would drop (1,2); with them it forwards (1,2,3), and the node antipodal to {1,9} rejects at round ⌊k/2⌋".into(),
        table,
        pass: ok1 && ok2,
        notes: String::new(),
    })
}

/// E10 — Behrend-style spread-cycle instances: the hard regime for
/// sampling techniques; Algorithm 1 stays deterministic-exact.
pub fn e10_behrend() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new([
        "k",
        "width",
        "n",
        "m",
        "planted copies",
        "Alg.1 single-edge",
        "naive random cap=1 (20 seeds)",
        "full tester rate (6 seeds)",
    ]);
    let mut pass = true;
    for &(k, width) in &[(5usize, 40usize), (6, 32)] {
        let inst = behrend_ck_instance(k, width);
        let g = &inst.graph;
        // A closing edge of the first planted copy.
        let copy = &inst.planted[0];
        let e = Edge::new(copy[k - 1], copy[0]);
        let ours = detect_single(g, k, e)
            .map_err(ExperimentError::tag("e10", format!("behrend k={k} w={width}")))?;
        let mut naive_hits = 0usize;
        for s in 0..20u64 {
            let run = naive_detect_through_edge(
                g,
                k,
                e,
                DropPolicy::SampleRandom { cap: 1, seed: s },
                &EngineConfig::default(),
            )
            .map_err(ExperimentError::tag("e10", format!("behrend k={k} naive seed={s}")))?;
            if run.reject {
                naive_hits += 1;
            }
        }
        let eps = 0.04;
        // The full-tester sweep runs as one batch over the 6 seeds.
        let jobs: Vec<BatchJob> = (0..6u64)
            .map(|s| {
                BatchJob::labeled(
                    g,
                    TesterConfig::new(k, eps, s),
                    format!("e10 behrend k={k} w={width} seed={s}"),
                )
            })
            .collect();
        let full_hits = session_batch("e10", &jobs, EngineConfig::default())?
            .iter()
            .filter(|r| r.reject)
            .count();
        pass &= ours.reject && full_hits * 3 >= 6 * 2;
        table.row([
            k.to_string(),
            width.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            inst.planted.len().to_string(),
            if ours.reject { "reject".into() } else { "accept".to_string() },
            format!("{naive_hits}/20"),
            format!("{full_hits}/6"),
        ]);
    }
    Ok(ExperimentResult {
        id: "e10",
        title: "Behrend-style spread-cycle instances".into(),
        claim: "cycles spread by arithmetic structure (the [20] hard instances for k ≥ 5) are still detected: Phase 2 is exact per edge, and farness (packing = m/k > εm) drives the full tester".into(),
        table,
        pass,
        notes: "Substitution per DESIGN.md: Behrend strides as a workload family, not a lower-bound re-proof.".into(),
    })
}

/// E11 — congestion ablation: naive offered load grows with the spindle
/// width while Algorithm 1 stays at the Lemma-3 constant.
pub fn e11_congestion() -> Result<ExperimentResult, ExperimentError> {
    let mut table = Table::new([
        "spindle width p",
        "naive max seqs offered",
        "naive max link bits",
        "pruned max seqs/msg",
        "pruned max link bits",
        "Lemma 3 worst bound (k=6)",
    ]);
    let k = 6usize;
    let bound = (2..=k / 2).map(|t| lemma3_bound(k, t)).max().unwrap();
    let mut pass = true;
    for &p in &[4usize, 8, 16, 32] {
        let g = spindle(p, 2);
        let e = Edge::new(0, 1);
        let naive =
            naive_detect_through_edge(&g, k, e, DropPolicy::KeepAll, &EngineConfig::default())
                .map_err(ExperimentError::tag("e11", format!("spindle p={p} naive")))?;
        let pruned = detect_single(&g, k, e)
            .map_err(ExperimentError::tag("e11", format!("spindle p={p} pruned")))?;
        pass &= naive.reject && pruned.reject;
        pass &= naive.max_offered >= p;
        pass &= (pruned.max_sent_seqs() as u128) <= bound;
        table.row([
            p.to_string(),
            naive.max_offered.to_string(),
            naive.outcome.report.max_link_bits().to_string(),
            pruned.max_sent_seqs().to_string(),
            pruned.outcome.report.max_link_bits().to_string(),
            bound.to_string(),
        ]);
    }
    Ok(ExperimentResult {
        id: "e11",
        title: "naive vs pruned congestion on spindles".into(),
        claim: "unpruned forwarding needs Ω(p) sequences on one link; Algorithm 1 forwards ≤ (k−t+1)^(t−1) regardless of p".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E12 — prior-work scope: the \[7\]/\[20\]-style testers work for k ∈ {3,4}
/// and our tester covers k ≥ 5 where they have no analog.
pub fn e12_prior_work() -> Result<ExperimentResult, ExperimentError> {
    let mut table =
        Table::new(["tester", "target", "instance", "trials", "reject rate", "expected"]);
    let mut pass = true;
    let trials = 10u64;
    // Seed-sweep helper over the fallible baseline testers.
    let sweep = |ctx: &str,
                 f: &dyn Fn(u64) -> Result<bool, EngineError>|
     -> Result<usize, ExperimentError> {
        let mut hits = 0;
        for s in 0..trials {
            if f(s).map_err(ExperimentError::tag("e12", format!("{ctx} seed={s}")))? {
                hits += 1;
            }
        }
        Ok(hits)
    };

    let far3 = eps_far_instance(60, 3, 0.1, 0);
    let r3 =
        sweep("triangle far", &|s| test_triangle_freeness(&far3.graph, 0.1, s, None).map(|r| r.0))?;
    pass &= r3 * 3 >= trials as usize * 2;
    table.row([
        "[7] triangle",
        "k=3",
        "ε-far (ε=0.1)",
        "10",
        &format!("{:.2}", r3 as f64 / 10.0),
        "≥ 2/3",
    ]);

    let p3 = sweep("triangle petersen", &|s| {
        test_triangle_freeness(&petersen(), 0.1, s, Some(50)).map(|r| r.0)
    })?;
    pass &= p3 == 0;
    table.row([
        "[7] triangle",
        "k=3",
        "Petersen (free)",
        "10",
        &format!("{:.2}", p3 as f64 / 10.0),
        "0 (1-sided)",
    ]);

    let far4 = eps_far_instance(60, 4, 0.1, 0);
    let r4 = sweep("c4 far", &|s| test_c4_freeness(&far4.graph, 0.1, s, None).map(|r| r.0))?;
    pass &= r4 * 3 >= trials as usize * 2;
    table.row([
        "[20] C4",
        "k=4",
        "ε-far (ε=0.1)",
        "10",
        &format!("{:.2}", r4 as f64 / 10.0),
        "≥ 2/3",
    ]);

    let p4 =
        sweep("c4 petersen", &|s| test_c4_freeness(&petersen(), 0.1, s, Some(50)).map(|r| r.0))?;
    pass &= p4 == 0;
    table.row([
        "[20] C4",
        "k=4",
        "Petersen (free)",
        "10",
        &format!("{:.2}", p4 as f64 / 10.0),
        "0 (1-sided)",
    ]);

    let far5 = eps_far_instance(60, 5, 0.1, 0);
    let jobs: Vec<BatchJob> = (0..trials)
        .map(|s| {
            BatchJob::labeled(&far5.graph, TesterConfig::new(5, 0.1, s), format!("e12 ck seed={s}"))
        })
        .collect();
    let r5 =
        session_batch("e12", &jobs, EngineConfig::default())?.iter().filter(|r| r.reject).count();
    pass &= r5 * 3 >= trials as usize * 2;
    table.row([
        "this paper",
        "k=5",
        "ε-far (ε=0.1)",
        "10",
        &format!("{:.2}", r5 as f64 / 10.0),
        "≥ 2/3",
    ]);

    Ok(ExperimentResult {
        id: "e12",
        title: "prior-work testers and where they stop".into(),
        claim: "neighbor-sampling gives constant-round testers for C3/C4 ([7],[20]) but provably not for k ≥ 5; Algorithm 1 covers every k".into(),
        table,
        pass,
        notes: String::new(),
    })
}

/// E13 — §4 conclusion: the pruning is oblivious to chords, so an
/// H-freeness tester (H = chorded k-cycle) built on Algorithm 1 misses H
/// on a deterministic counterexample.
pub fn e13_chord_obliviousness() -> Result<ExperimentResult, ExperimentError> {
    use ck_core::ablation::probe_chorded_coverage;
    use ck_graphgen::basic::chorded_spindle;
    let mut table = Table::new([
        "fan-in p",
        "chorded C6 exists (oracle)",
        "detector rejects",
        "witnesses",
        "chorded witnesses",
        "H missed",
    ]);
    let mut pass = true;
    for &p in &[5usize, 8, 16] {
        let g = chorded_spindle(p);
        let probe = probe_chorded_coverage(&g, 6, Edge::new(0, 1));
        pass &= probe.misses_chorded_pattern();
        table.row([
            p.to_string(),
            probe.chorded_exists.to_string(),
            probe.detector_rejects.to_string(),
            probe.witnesses.len().to_string(),
            probe.chorded_witnesses.to_string(),
            probe.misses_chorded_pattern().to_string(),
        ]);
    }
    Ok(ExperimentResult {
        id: "e13",
        title: "chord obliviousness of the pruning (§4 conclusion)".into(),
        claim: "the pruning \"may well discard the sequence corresponding to the cycle in H, and keep a sequence without a chord\" — so the technique does not extend to chorded patterns".into(),
        table,
        pass,
        notes: "Counterexample: spindle(p,2) + chord (x_big, z2); at p ≥ 5 the pruning at z1 keeps only the 4 smallest (u, x_i) and drops x_big's — the only fan-in node on the chorded copy.".into(),
    })
}

/// E14 — the gap region: instances that contain a `Ck` but are NOT
/// ε-far. The definition permits either answer; we measure where the
/// detection probability actually lands as the copy count shrinks.
pub fn e14_gap_region() -> Result<ExperimentResult, ExperimentError> {
    use ck_graphgen::mutate::thin_to_few_cycles;
    use ck_graphgen::planted::cycle_chain;
    let k = 5usize;
    let eps = 0.05;
    let mut table = Table::new([
        "surviving copies",
        "m",
        "copies/m",
        "status vs ε=0.05",
        "trials",
        "reject rate",
    ]);
    let base = cycle_chain(14, k);
    let trials = 10u64;
    let mut rates = Vec::new();
    for &keep in &[14usize, 6, 2, 0] {
        let (g, _) = if keep == 14 {
            (base.graph.clone(), 0)
        } else {
            thin_to_few_cycles(&base.graph, k, keep, 3)
        };
        let m = g.m();
        let status = if keep == 0 {
            "Ck-free (accept forced)"
        } else if keep as f64 > eps * m as f64 {
            "certified ε-far (reject ≥ 2/3)"
        } else {
            "gap (either answer legal)"
        };
        // The trial sweep for this thinning level runs as one batch.
        let jobs: Vec<BatchJob> = (0..trials)
            .map(|s| {
                BatchJob::labeled(
                    &g,
                    TesterConfig::new(k, eps, s),
                    format!("e14 keep={keep} seed={s}"),
                )
            })
            .collect();
        let rejects = session_batch("e14", &jobs, EngineConfig::default())?
            .iter()
            .filter(|r| r.reject)
            .count();
        rates.push((keep, rejects));
        table.row([
            keep.to_string(),
            m.to_string(),
            format!("{:.3}", keep as f64 / m as f64),
            status.to_string(),
            trials.to_string(),
            format!("{:.2}", rejects as f64 / trials as f64),
        ]);
    }
    // Pass criteria: far end ≥ 2/3 of trials, free end exactly 0, and
    // monotone non-increasing rejection as copies shrink.
    let far_ok = rates[0].1 * 3 >= trials as usize * 2;
    let free_ok = rates.last().unwrap().1 == 0;
    let monotone = rates.windows(2).all(|w| w[0].1 >= w[1].1);
    Ok(ExperimentResult {
        id: "e14",
        title: "the gap region between ε-far and free".into(),
        claim: "\"instances which are nearly satisfying P but not quite — the algorithm can output either ways\"; detection degrades smoothly from the guaranteed ≥2/3 to the forced 0".into(),
        table,
        pass: far_ok && free_ok && monotone,
        notes: "Gap instances built by deleting one edge per surplus copy from a certified ε-far chain.".into(),
    })
}

/// E15 — message-loss resilience (simulator extension; not a paper
/// claim): 1-sidedness survives arbitrary loss, detection degrades
/// gracefully with the per-message loss rate.
pub fn e15_loss_resilience() -> Result<ExperimentResult, ExperimentError> {
    use ck_congest::fault::FaultPlan;
    use ck_core::robust::loss_detection_curve;
    let mut table =
        Table::new(["loss rate", "far instance reject rate", "free instance false rejects"]);
    let k = 5usize;
    let eps = 0.08;
    let far = eps_far_instance(50, k, eps, 0);
    let free = matched_free_instance(50, k);
    let losses = [0.0, 0.05, 0.2, 0.5];
    let curve = loss_detection_curve(&far.graph, k, eps, &losses, 6, 17);
    let mut pass = true;
    for point in &curve {
        // Free-side check under the same loss.
        let mut false_rejects = 0;
        for t in 0..4u64 {
            let engine = EngineConfig {
                faults: FaultPlan::none().random_loss(point.loss, 900 + t),
                ..EngineConfig::default()
            };
            let cfg = TesterConfig { repetitions: Some(3), ..TesterConfig::new(k, eps, t) };
            let run = session_test(
                "e15",
                format!("free n=50 loss={} seed={t}", point.loss),
                &free,
                cfg,
                engine,
            )?;
            if run.reject {
                false_rejects += 1;
            }
        }
        pass &= false_rejects == 0;
        table.row([
            format!("{:.2}", point.loss),
            format!("{:.2}", point.rate()),
            false_rejects.to_string(),
        ]);
    }
    pass &= curve[0].rate() >= 2.0 / 3.0; // lossless meets the bound
    Ok(ExperimentResult {
        id: "e15",
        title: "behavior under message loss (extension)".into(),
        claim: "drops can suppress detections but never fabricate them: 1-sidedness is loss-proof, detection degrades with loss".into(),
        table,
        pass,
        notes: "Not a paper claim — the paper assumes reliable links; this characterizes the implementation under the simulator's fault injection.".into(),
    })
}

/// Runs one experiment by id (`None` for an unknown id; `Some(Err(_))`
/// when a run inside the experiment failed, naming the instance).
pub fn run_experiment(id: &str) -> Option<Result<ExperimentResult, ExperimentError>> {
    Some(match id {
        "e1" => e1_soundness(),
        "e2" => e2_detection(),
        "e3" => e3_round_complexity(),
        "e4" => e4_single_edge_exactness(),
        "e5" => e5_message_bound(),
        "e6" => e6_packing(),
        "e7" => e7_unique_minimum(),
        "e8" => e8_figure1(),
        "e9" => e9_c9_example(),
        "e10" => e10_behrend(),
        "e11" => e11_congestion(),
        "e12" => e12_prior_work(),
        "e13" => e13_chord_obliviousness(),
        "e14" => e14_gap_region(),
        "e15" => e15_loss_resilience(),
        _ => return None,
    })
}

/// All experiment ids, in order.
pub const ALL_IDS: [&str; 15] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

/// Runs the full suite, stopping at the first failed experiment.
pub fn all_experiments() -> Result<Vec<ExperimentResult>, ExperimentError> {
    ALL_IDS.iter().map(|id| run_experiment(id).expect("known id")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cheap experiments run in the unit suite; the full suite runs in
    // the integration test and the binary.
    #[test]
    fn e3_rounds_scale() {
        assert!(e3_round_complexity().unwrap().pass);
    }

    #[test]
    fn e7_lemma5() {
        assert!(e7_unique_minimum().unwrap().pass);
    }

    #[test]
    fn e8_figure1_story() {
        assert!(e8_figure1().unwrap().pass);
    }

    #[test]
    fn e9_c9() {
        assert!(e9_c9_example().unwrap().pass);
    }

    #[test]
    fn e11_spindles() {
        assert!(e11_congestion().unwrap().pass);
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope").is_none());
    }

    /// The batch-driven experiments must report which instance failed
    /// instead of panicking: the error display names experiment,
    /// label, and seed.
    #[test]
    fn experiment_errors_name_the_instance() {
        use ck_congest::engine::BandwidthPolicy;
        use ck_graphgen::basic::cycle;
        let g = cycle(6);
        let jobs: Vec<BatchJob> = (0..2)
            .map(|s| {
                let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(6, 0.1, s) };
                BatchJob::labeled(&g, cfg, format!("e2 k=6 seed={s}"))
            })
            .collect();
        let engine = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: 1 },
            ..EngineConfig::default()
        };
        let err = session_batch("e2", &jobs, engine).unwrap_err();
        assert_eq!(err.experiment, "e2");
        let msg = err.to_string();
        assert!(msg.contains("e2 k=6 seed=0") && msg.contains("seed 0"), "{msg}");
    }
}
