//! The pre-arena round engine, preserved verbatim as a benchmark
//! baseline.
//!
//! This is the engine the workspace shipped before the zero-allocation
//! arena rewrite in `ck_congest::engine`: it allocates a fresh outbox
//! and inbox `Vec` for every node every round, counts active nodes with
//! an O(n) scan, and accumulates per-link loads with an O(ports²)
//! linear `find`. It is kept (out of the library's hot path, inside the
//! bench crate) so `BENCH_engine.json` and the `arena_engine` bench can
//! keep measuring the arena engine against the exact code it replaced —
//! the "before" column stays honest forever instead of relying on a
//! one-off measurement.
//!
//! Semantics match the arena engine — same delivery order, same
//! statistics, same fault handling — with one documented exception:
//! when several ports of one node exceed an enforced bandwidth budget
//! in the same round, `BandwidthExceeded` may name a different port
//! (this engine scans per-port aggregates in first-use order; the
//! arena engine reports the first lane to cross the budget as it
//! happens). Round and node always agree. The equivalence is asserted
//! by this module's tests and exploited by the benchmarks, which check
//! the two engines' verdicts against each other before timing them.

use ck_congest::engine::{BandwidthPolicy, EngineConfig, EngineError, Executor, RunOutcome};
use ck_congest::graph::{Graph, NodeIndex};
use ck_congest::message::{WireMessage, WireParams};
use ck_congest::metrics::{RoundStats, RunReport};
use ck_congest::node::{InboxBuf, NodeInit, Outbox, Program, Status};
use rayon::prelude::*;

struct Slot<P: Program> {
    prog: P,
    inbox: InboxBuf<P::Msg>,
    status: Status,
    degree: u32,
}

/// Runs `factory`-instantiated programs with the pre-arena engine.
/// Signature-compatible with [`ck_congest::engine::run`].
pub fn run_legacy<'g, P, F>(
    graph: &'g Graph,
    config: &EngineConfig,
    mut factory: F,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
{
    let params = WireParams::for_graph(graph);
    let n = graph.n();
    let mut slots: Vec<Slot<P>> = (0..n)
        .map(|v| {
            let v = v as NodeIndex;
            let init = NodeInit {
                index: v,
                id: graph.id(v),
                neighbor_ids: graph.neighbor_ids(v),
                ports_by_id: graph.ports_sorted_by_id(v),
                n,
                m: graph.m(),
            };
            let degree = init.degree() as u32;
            Slot { prog: factory(init), inbox: InboxBuf::new(), status: Status::Running, degree }
        })
        .collect();

    let mut report = RunReport::default();
    let mut round = 0u32;
    let mut all_halted = false;

    while round < config.max_rounds {
        // O(n) active scan — the arena engine replaced this with a
        // maintained counter.
        let active = slots.iter().filter(|s| s.status == Status::Running).count();
        if active == 0 {
            all_halted = true;
            break;
        }

        // Step phase: a fresh outbox Vec per node per round; the inbox
        // buffer is viewed in place and cleared afterwards for delivery.
        let step_one = |s: &mut Slot<P>, round: u32| -> Vec<(u32, P::Msg)> {
            if s.status != Status::Running {
                s.inbox.clear();
                return Vec::new();
            }
            let mut out = Outbox::for_harness(s.degree);
            s.status = s.prog.step(round, s.inbox.view(), &mut out);
            s.inbox.clear();
            out.take_sends()
        };
        let outboxes: Vec<Vec<(u32, P::Msg)>> = match config.executor {
            // The legacy baseline has no transport layer; Distributed
            // steps like the sequential oracle it is measured against.
            Executor::Sequential | Executor::Distributed { .. } => {
                slots.iter_mut().map(|s| step_one(s, round)).collect()
            }
            Executor::Parallel => slots.par_iter_mut().map(|s| step_one(s, round)).collect(),
        };

        // Accounting phase: per-port loads via linear find — O(ports²)
        // per node in the worst case.
        let mut stats = RoundStats { round, active_nodes: active, ..RoundStats::default() };
        for (v, sends) in outboxes.iter().enumerate() {
            let mut port_bits: Vec<(u32, u64, u64)> = Vec::new(); // (port, bits, msgs)
            for (port, msg) in sends {
                let b = msg.wire_bits(&params);
                stats.messages += 1;
                stats.bits += b;
                stats.max_message_bits = stats.max_message_bits.max(b);
                match port_bits.iter_mut().find(|e| e.0 == *port) {
                    Some(e) => {
                        e.1 += b;
                        e.2 += 1;
                    }
                    None => port_bits.push((*port, b, 1)),
                }
            }
            for (port, bits, msgs) in port_bits {
                stats.max_link_bits = stats.max_link_bits.max(bits);
                stats.max_link_messages = stats.max_link_messages.max(msgs);
                if let BandwidthPolicy::Enforce { bits: limit } = config.bandwidth {
                    if bits > limit {
                        return Err(EngineError::BandwidthExceeded {
                            round,
                            node: v as NodeIndex,
                            port,
                            bits,
                            limit,
                        });
                    }
                }
            }
        }

        // Delivery phase: sequential pushes into per-receiver inboxes.
        let check_faults = !config.faults.is_trivial();
        for (v, sends) in outboxes.into_iter().enumerate() {
            let v = v as NodeIndex;
            for (port, msg) in sends {
                let w = graph.neighbor_at(v, port);
                let payload = if check_faults {
                    match config.faults.decide(round, v, w, port) {
                        ck_congest::fault::FaultDecision::Drop(_) => continue,
                        ck_congest::fault::FaultDecision::Corrupt { entropy } => {
                            match msg.corrupt_frame(&params, entropy) {
                                Some(garbled) => garbled,
                                None => continue,
                            }
                        }
                        ck_congest::fault::FaultDecision::Deliver => msg,
                    }
                } else {
                    msg
                };
                let q = graph.reverse_port(v, port);
                slots[w as usize].inbox.push(q, payload);
            }
        }

        if config.record_rounds {
            report.per_round.push(stats);
        }
        round += 1;
    }

    if !all_halted {
        all_halted = slots.iter().all(|s| s.status == Status::Halted);
    }
    report.rounds = round;
    report.all_halted = all_halted;
    report.executor = match config.executor {
        Executor::Sequential => "sequential",
        Executor::Parallel => "parallel",
        Executor::Distributed { .. } => "distributed",
    };
    report.threads = match config.executor {
        Executor::Sequential => 1,
        Executor::Parallel => rayon::current_num_threads(),
        Executor::Distributed { workers } => workers.max(1) as usize,
    };

    let verdicts = slots.iter().map(|s| s.prog.verdict()).collect();
    Ok(RunOutcome { report, verdicts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_congest::fault::FaultPlan;
    use ck_congest::session::Session;
    use ck_graphgen::random::gnp;

    /// Broadcast a round counter for `rounds` rounds; count receipts.
    struct Echo {
        rounds: u32,
        received: u64,
    }

    impl Program for Echo {
        type Msg = u64;
        type Verdict = u64;
        fn step(
            &mut self,
            round: u32,
            inbox: ck_congest::node::Inbox<'_, u64>,
            out: &mut Outbox<u64>,
        ) -> Status {
            self.received += inbox.len() as u64;
            if round < self.rounds {
                out.broadcast(u64::from(round));
                Status::Running
            } else {
                Status::Halted
            }
        }
        fn verdict(&self) -> u64 {
            self.received
        }
    }

    /// The legacy engine is the semantic reference: the arena engine
    /// must reproduce its verdicts, reports, and fault behaviour.
    #[test]
    fn arena_engine_matches_legacy_reference() {
        for seed in 0..4u64 {
            let g = gnp(40, 0.15, seed);
            for faults in [FaultPlan::none(), FaultPlan::none().random_loss(0.2, 11)] {
                let cfg = EngineConfig {
                    executor: Executor::Sequential,
                    faults,
                    ..EngineConfig::default()
                };
                let legacy = run_legacy(&g, &cfg, |_| Echo { rounds: 4, received: 0 }).unwrap();
                let arena = Session::builder(&g)
                    .config(cfg.clone())
                    .build()
                    .run(|_| Echo { rounds: 4, received: 0 })
                    .unwrap();
                assert_eq!(legacy.verdicts, arena.verdicts, "seed {seed}");
                assert_eq!(legacy.report.per_round, arena.report.per_round, "seed {seed}");
                assert_eq!(legacy.report.rounds, arena.report.rounds);
                assert_eq!(legacy.report.all_halted, arena.report.all_halted);
            }
        }
    }

    #[test]
    fn enforcement_trips_identically() {
        let g = gnp(24, 0.2, 3);
        let params = WireParams::for_graph(&g);
        let bits = 0u64.wire_bits(&params);
        let cfg = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: bits.saturating_sub(1) },
            executor: Executor::Sequential,
            ..EngineConfig::default()
        };
        let a = run_legacy(&g, &cfg, |_| Echo { rounds: 2, received: 0 }).unwrap_err();
        let b = Session::builder(&g)
            .config(cfg.clone())
            .build()
            .run(|_| Echo { rounds: 2, received: 0 })
            .unwrap_err();
        // Same offending round and node; the reported port may differ in
        // tie-breaking (legacy scans ports in first-use order, the arena
        // engine reports the first lane to cross the budget).
        let (
            EngineError::BandwidthExceeded { round: ra, node: na, .. },
            EngineError::BandwidthExceeded { round: rb, node: nb, .. },
        ) = (&a, &b)
        else {
            panic!("expected BandwidthExceeded from both engines, got {a:?} / {b:?}");
        };
        assert_eq!(ra, rb);
        assert_eq!(na, nb);
    }
}
