//! # ck-bench — experiment harness
//!
//! One function per experiment of DESIGN.md §4 (E1–E12). Each returns a
//! rendered markdown table plus a machine-checkable pass flag; the
//! `experiments` binary prints them, and `EXPERIMENTS.md` records the
//! paper-vs-measured comparison. Criterion benches in `benches/` reuse
//! the same workloads for timing-shaped measurements.

pub mod experiments;
pub mod legacy_engine;
pub mod table;
pub mod workloads;

pub use experiments::{all_experiments, run_experiment, ExperimentResult};
pub use legacy_engine::run_legacy;
pub use table::Table;
