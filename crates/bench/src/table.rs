//! Minimal markdown table rendering for experiment output.

/// A column-aligned markdown table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as column-aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(width).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &width));
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &width));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["k", "rate"]);
        t.row(["3", "1.00"]).row(["10", "0.95"]);
        let s = t.render();
        assert!(s.contains("| k  | rate |"));
        assert!(s.contains("| 10 | 0.95 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
