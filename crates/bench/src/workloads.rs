//! Shared benchmark workloads, defined once so every measurement
//! surface (`bench_engine`, the criterion benches) times the same
//! protocol.

use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};

/// Min-ID flooding with a fixed horizon: every node broadcasts on
/// improvement for `ttl` rounds — the standard pure-engine stress
/// (steady all-to-neighbors traffic, trivial per-node compute).
pub struct MinFlood {
    best: u64,
    ttl: u32,
    changed: bool,
}

impl MinFlood {
    /// Builds the program for one node; use as the engine factory:
    /// `|init| MinFlood::new(&init, ttl)`.
    pub fn new(init: &NodeInit<'_>, ttl: u32) -> Self {
        MinFlood { best: init.id, ttl, changed: false }
    }
}

impl Program for MinFlood {
    type Msg = u64;
    type Verdict = u64;

    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        for inc in inbox.iter() {
            if *inc.msg < self.best {
                self.best = *inc.msg;
                self.changed = true;
            }
        }
        if round >= self.ttl {
            return Status::Halted;
        }
        if round == 0 || self.changed {
            out.broadcast(self.best);
            self.changed = false;
        }
        Status::Running
    }

    fn verdict(&self) -> u64 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_congest::session::Session;
    use ck_graphgen::basic::cycle;

    #[test]
    fn floods_the_minimum_within_ttl() {
        let g = cycle(16);
        let out = Session::new(&g).run(|i| MinFlood::new(&i, 16)).unwrap();
        assert!(out.verdicts.iter().all(|&v| v == 0));
        assert!(out.report.all_halted);
    }
}
