//! # ck-cli — the `ckprobe` command-line tool
//!
//! One binary to generate or load a graph, run any of the distributed
//! testers on it, and print verdicts with CONGEST cost accounting:
//!
//! ```text
//! ckprobe --graph petersen --tester ck --k 5 --eps 0.1
//! ckprobe --graph gnp:100:0.05 --tester triangle --trials 5
//! ckprobe --graph file:instance.col --tester forest
//! ckprobe --graph eps-far:60:5:0.05 --tester ck --k 5 --trials 10
//! ckprobe --batch graphs.txt --k 5 --eps 0.1 --trials 4 --shards 8
//! ```
//!
//! The library half hosts the spec parsers (unit-tested); `main.rs` is a
//! thin shell around them.

use ck_baselines::framework_impls::{C4Baseline, ForestBaseline, TriangleBaseline};
use ck_congest::graph::Graph;
use ck_core::framework::{CkFreenessTester, DistributedTester};
use ck_core::rank::try_repetitions_for;
use ck_graphgen::{basic, behrend, families, planted, random};

/// Parsed command-line request.
pub struct Request {
    pub graph: Graph,
    pub graph_desc: String,
    pub tester: Box<dyn DistributedTester>,
    pub trials: u32,
    pub seed: u64,
    /// `ck` tester parameters, re-exposed for the detailed run path
    /// (`--workers` / `--verbose`), which drives sessions directly.
    pub k: usize,
    pub eps: f64,
    pub repetitions: Option<u32>,
    /// `--workers N`: run the ck tester on the distributed executor
    /// with `N` spawned worker processes.
    pub workers: Option<u16>,
    /// `--verbose`: print per-trial fault/network report summaries.
    pub verbose: bool,
}

/// A `--batch` request: every spec in the batch file runs through the
/// sharded batch runner (`ck` tester only), fanned out `trials` times
/// with derived seeds.
pub struct BatchRequest {
    pub path: String,
    pub k: usize,
    pub eps: f64,
    pub trials: u32,
    pub seed: u64,
    pub repetitions: Option<u32>,
    pub shards: Option<usize>,
}

/// A `serve` request: run the long-lived probe service until a client
/// sends Shutdown.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    pub addr: String,
    pub workers: usize,
    pub max_nodes: usize,
    pub inflight_budget: u32,
    pub idle_reclaim_ms: u64,
    pub max_conns: usize,
}

impl Default for ServeRequest {
    fn default() -> Self {
        ServeRequest {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_nodes: 1 << 20,
            inflight_budget: 256,
            idle_reclaim_ms: 30_000,
            max_conns: 1024,
        }
    }
}

/// A `submit` request: one client interaction with a running service —
/// optionally a job, optionally a stats fetch, optionally a shutdown,
/// in that order on one connection.
#[derive(Clone, Debug)]
pub struct SubmitRequest {
    pub addr: String,
    /// Graph spec to submit as a job, if any. Parameter validation is
    /// deliberately NOT done client-side: admission control at the
    /// service is the contract under test, and `ckprobe submit --k 99`
    /// must exercise the typed refusal frame, not a local usage error.
    pub graph_spec: Option<String>,
    pub k: usize,
    pub eps: f64,
    pub seed: u64,
    pub repetitions: Option<u32>,
    pub job_id: u64,
    pub stats: bool,
    pub shutdown: bool,
    pub timeout_ms: u64,
}

/// What one `ckprobe` invocation asks for.
pub enum Invocation {
    /// One graph, one tester (possibly amplified over trials). Boxed:
    /// the request embeds the built graph, which dwarfs the batch
    /// variant.
    Single(Box<Request>),
    /// A batch file of graph specs through the batch runner.
    Batch(BatchRequest),
    /// `net-worker ADDR INDEX`: serve one distributed-executor worker —
    /// the argv a coordinator spawns per partition.
    Worker { addr: String, index: u32 },
    /// `serve [flags]`: run the probe service.
    Serve(ServeRequest),
    /// `submit ADDR [flags]`: talk to a running probe service.
    Submit(SubmitRequest),
}

/// Builds a graph from a spec string (see [`graph_spec_help`]).
pub fn parse_graph_spec(spec: &str) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let usize_arg = |i: usize, what: &str| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or(format!("{what}: missing argument {i}"))?
            .parse()
            .map_err(|e| format!("{what}: bad argument {i}: {e}"))
    };
    let f64_arg = |i: usize, what: &str| -> Result<f64, String> {
        parts
            .get(i)
            .ok_or(format!("{what}: missing argument {i}"))?
            .parse()
            .map_err(|e| format!("{what}: bad argument {i}: {e}"))
    };
    // Seeds are optional (default 0), but a *malformed* seed is an
    // error: `gnp:100:0.05:abc` must not silently run with seed 0.
    let seed_arg = |i: usize, what: &str| -> Result<u64, String> {
        match parts.get(i) {
            None => Ok(0),
            Some(s) => s.parse().map_err(|e| format!("{what}: bad seed argument {i}: {e}")),
        }
    };
    // ε parameters must lie in (0,1) — downstream repetition schedules
    // assert on it, and a CLI user should see an error, not a backtrace.
    let eps_arg = |i: usize, what: &str| -> Result<f64, String> {
        let eps = f64_arg(i, what)?;
        if !(eps > 0.0 && eps < 1.0) {
            return Err(format!("{what}: ε must lie in (0,1), got {eps}"));
        }
        Ok(eps)
    };
    // ck-lint: allow(index-literal, reason = "str::split always yields at least one piece, so parts[0] exists")
    match parts[0] {
        "cycle" => Ok(basic::cycle(usize_arg(1, "cycle")?)),
        "path" => Ok(basic::path(usize_arg(1, "path")?)),
        "complete" => Ok(basic::complete(usize_arg(1, "complete")?)),
        "grid" => Ok(basic::grid(usize_arg(1, "grid")?, usize_arg(2, "grid")?)),
        "torus" => Ok(basic::torus(usize_arg(1, "torus")?, usize_arg(2, "torus")?)),
        "hypercube" => Ok(basic::hypercube(usize_arg(1, "hypercube")? as u32)),
        "petersen" => Ok(basic::petersen()),
        "heawood" => Ok(basic::heawood()),
        "mobius-kantor" => Ok(families::mobius_kantor()),
        "pappus" => Ok(families::pappus()),
        "theta" => Ok(basic::theta(usize_arg(1, "theta")?, usize_arg(2, "theta")?)),
        "fan" => Ok(basic::fan(usize_arg(1, "fan")?)),
        "spindle" => Ok(basic::spindle(usize_arg(1, "spindle")?, usize_arg(2, "spindle")?)),
        "cactus" => Ok(basic::cycle_cactus(usize_arg(1, "cactus")?, usize_arg(2, "cactus")?)),
        "circulant" => {
            let n = usize_arg(1, "circulant")?;
            let strides: Result<Vec<usize>, _> =
                parts[2..].iter().map(|s| s.parse::<usize>()).collect();
            let strides = strides.map_err(|e| format!("circulant strides: {e}"))?;
            if strides.is_empty() {
                return Err("circulant needs at least one stride".into());
            }
            Ok(families::circulant(n, &strides))
        }
        "gnp" => Ok(random::gnp(usize_arg(1, "gnp")?, f64_arg(2, "gnp")?, seed_arg(3, "gnp")?)),
        "gnm" => Ok(random::gnm(usize_arg(1, "gnm")?, usize_arg(2, "gnm")?, seed_arg(3, "gnm")?)),
        "tree" => Ok(random::random_tree(usize_arg(1, "tree")?, seed_arg(2, "tree")?)),
        "regular" => Ok(random::random_regular(
            usize_arg(1, "regular")?,
            usize_arg(2, "regular")?,
            seed_arg(3, "regular")?,
        )),
        "high-girth" => Ok(random::high_girth(
            usize_arg(1, "high-girth")?,
            usize_arg(2, "high-girth")?,
            usize_arg(3, "high-girth")?,
            seed_arg(4, "high-girth")?,
        )),
        "eps-far" => Ok(planted::eps_far_instance(
            usize_arg(1, "eps-far")?,
            usize_arg(2, "eps-far")?,
            eps_arg(3, "eps-far")?,
            seed_arg(4, "eps-far")?,
        )
        .graph),
        "free" => Ok(planted::matched_free_instance(usize_arg(1, "free")?, usize_arg(2, "free")?)),
        "behrend" => {
            Ok(behrend::behrend_ck_instance(usize_arg(1, "behrend")?, usize_arg(2, "behrend")?)
                .graph)
        }
        "file" => {
            let path = parts.get(1).ok_or("file: missing path")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            if text.trim_start().starts_with('c') || text.trim_start().starts_with('p') {
                ck_graphgen::io::parse_dimacs(&text)
            } else {
                Graph::from_edge_list(&text)
            }
        }
        other => Err(format!("unknown graph family {other:?}; see --help")),
    }
}

/// Builds a tester from CLI fields.
///
/// Parameters are validated here with the same [`ConfigError`]s the
/// session builders surface: the paper's repetition schedule
/// (`try_repetitions_for`) is only defined for ε ∈ (0,1), the `ck`
/// tester for `k ∈ 3..=33` — `ckprobe --eps 1.5` or `--k 99` must
/// produce a usage error, not an assertion backtrace from deep inside
/// the run.
///
/// [`ConfigError`]: ck_core::tester::ConfigError
pub fn parse_tester(
    name: &str,
    k: usize,
    eps: f64,
    repetitions: Option<u32>,
) -> Result<Box<dyn DistributedTester>, String> {
    // The baselines only consume ε; the ck tester validates (k, ε)
    // together through the same check the session builders run.
    if name == "triangle" || name == "c4" {
        try_repetitions_for(eps).map_err(|e| format!("--eps: {e}"))?;
    }
    match name {
        "ck" => {
            ck_core::tester::TesterConfig::new(k, eps, 0).validate().map_err(|e| match e {
                ck_core::tester::ConfigError::KOutOfRange { .. } => format!("--k: {e}"),
                ck_core::tester::ConfigError::EpsOutOfRange { .. } => format!("--eps: {e}"),
                // No CLI flag sets assumed_loss, so this cannot fire here;
                // surface the message untagged rather than lie about a flag.
                ck_core::tester::ConfigError::LossOutOfRange { .. } => format!("{e}"),
            })?;
            Ok(Box::new(CkFreenessTester { k, eps, repetitions }))
        }
        "triangle" => Ok(Box::new(TriangleBaseline { eps, repetitions })),
        "c4" => Ok(Box::new(C4Baseline { eps, repetitions })),
        "forest" => Ok(Box::new(ForestBaseline)),
        other => Err(format!("unknown tester {other:?} (ck | triangle | c4 | forest)")),
    }
}

/// Parses a batch file: one graph spec per line, blank lines and
/// `#`-comments skipped. Returns `(spec, graph)` pairs in file order;
/// the first malformed line fails the whole batch with its line number.
pub fn parse_batch_file(text: &str) -> Result<Vec<(String, Graph)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let spec = line.trim();
        if spec.is_empty() || spec.starts_with('#') {
            continue;
        }
        let graph =
            parse_graph_spec(spec).map_err(|e| format!("batch line {}: {e}", lineno + 1))?;
        out.push((spec.to_string(), graph));
    }
    if out.is_empty() {
        return Err("batch file contains no graph specs".into());
    }
    Ok(out)
}

/// Expands parsed batch specs into batch-runner jobs: each spec fans
/// out `trials` times with seeds derived exactly as the amplification
/// combinator derives them, so a batch run is the sharded equivalent of
/// per-graph amplified runs. Jobs are ordered spec-major (all trials of
/// a spec are adjacent), labeled `spec[trial t]`.
pub fn batch_jobs<'a>(
    specs: &'a [(String, Graph)],
    req: &BatchRequest,
) -> Vec<ck_core::batch::BatchJob<'a>> {
    use ck_core::tester::TesterConfig;
    let trials = req.trials.max(1);
    let mut jobs = Vec::with_capacity(specs.len() * trials as usize);
    for (spec, graph) in specs {
        for t in 0..trials {
            let seed = req.seed.wrapping_add(u64::from(t).wrapping_mul(0x9E37_79B9));
            let cfg = TesterConfig {
                repetitions: req.repetitions,
                ..TesterConfig::new(req.k, req.eps, seed)
            };
            jobs.push(ck_core::batch::BatchJob::labeled(graph, cfg, format!("{spec}[trial {t}]")));
        }
    }
    jobs
}

/// Help text for graph specs.
pub fn graph_spec_help() -> &'static str {
    "graph specs:\n\
     \x20 cycle:N | path:N | complete:N | grid:R:C | torus:R:C | hypercube:D\n\
     \x20 petersen | heawood | mobius-kantor | pappus\n\
     \x20 theta:P:L | fan:P | spindle:P:M | cactus:COUNT:LEN | circulant:N:S1[:S2…]\n\
     \x20 gnp:N:P[:SEED] | gnm:N:M[:SEED] | tree:N[:SEED] | regular:N:D[:SEED]\n\
     \x20 high-girth:N:K:ATTEMPTS[:SEED]\n\
     \x20 eps-far:N:K:EPS[:SEED] | free:N:K | behrend:K:WIDTH\n\
     \x20 file:PATH (DIMACS .col or native edge list)"
}

/// Parses `serve` subcommand flags (everything after the word `serve`).
fn parse_serve_args(args: &[String]) -> Result<Invocation, String> {
    let mut req = ServeRequest::default();
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => req.addr = value(args, i, "--addr")?,
            "--workers" => {
                req.workers =
                    value(args, i, "--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
                if req.workers == 0 {
                    return Err("--workers: need at least one worker".into());
                }
            }
            "--max-nodes" => {
                req.max_nodes = value(args, i, "--max-nodes")?
                    .parse()
                    .map_err(|e| format!("--max-nodes: {e}"))?;
            }
            "--inflight-budget" => {
                req.inflight_budget = value(args, i, "--inflight-budget")?
                    .parse()
                    .map_err(|e| format!("--inflight-budget: {e}"))?;
            }
            "--idle-reclaim-ms" => {
                req.idle_reclaim_ms = value(args, i, "--idle-reclaim-ms")?
                    .parse()
                    .map_err(|e| format!("--idle-reclaim-ms: {e}"))?;
            }
            "--max-conns" => {
                req.max_conns = value(args, i, "--max-conns")?
                    .parse()
                    .map_err(|e| format!("--max-conns: {e}"))?;
                if req.max_conns == 0 {
                    return Err("--max-conns: need at least one connection".into());
                }
            }
            other => return Err(format!("serve: unknown flag {other:?}")),
        }
        i += 2;
    }
    Ok(Invocation::Serve(req))
}

/// Parses `submit` subcommand argv: `ADDR` positional, then flags.
/// Job parameters (`--k`, `--eps`) are passed through unvalidated on
/// purpose — the service's admission control owns that judgement.
fn parse_submit_args(args: &[String]) -> Result<Invocation, String> {
    let addr = args.first().cloned().ok_or("submit: missing service address")?;
    if addr.starts_with("--") {
        return Err("submit: the service address must come before flags".into());
    }
    let mut req = SubmitRequest {
        addr,
        graph_spec: None,
        k: 5,
        eps: 0.1,
        seed: 42,
        repetitions: None,
        job_id: 0,
        stats: false,
        shutdown: false,
        timeout_ms: 30_000,
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => {
                req.graph_spec = Some(value(args, i, "--graph")?);
                i += 2;
            }
            "--k" => {
                req.k = value(args, i, "--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                i += 2;
            }
            "--eps" => {
                req.eps = value(args, i, "--eps")?.parse().map_err(|e| format!("--eps: {e}"))?;
                i += 2;
            }
            "--seed" => {
                req.seed = value(args, i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--repetitions" => {
                req.repetitions = Some(
                    value(args, i, "--repetitions")?
                        .parse()
                        .map_err(|e| format!("--repetitions: {e}"))?,
                );
                i += 2;
            }
            "--job-id" => {
                req.job_id =
                    value(args, i, "--job-id")?.parse().map_err(|e| format!("--job-id: {e}"))?;
                i += 2;
            }
            "--timeout-ms" => {
                req.timeout_ms = value(args, i, "--timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--timeout-ms: {e}"))?;
                i += 2;
            }
            "--stats" => {
                req.stats = true;
                i += 1;
            }
            "--shutdown" => {
                req.shutdown = true;
                i += 1;
            }
            other => return Err(format!("submit: unknown flag {other:?}")),
        }
    }
    if req.graph_spec.is_none() && !req.stats && !req.shutdown {
        return Err("submit: nothing to do — give --graph, --stats, or --shutdown".into());
    }
    Ok(Invocation::Submit(req))
}

/// Parses full argv (without program name).
pub fn parse_args(args: &[String]) -> Result<Invocation, String> {
    if args.first().map(String::as_str) == Some("serve") {
        return parse_serve_args(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("submit") {
        return parse_submit_args(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("net-worker") {
        let addr = args.get(1).ok_or("net-worker: missing coordinator address")?.clone();
        let index: u32 = args
            .get(2)
            .ok_or("net-worker: missing worker index")?
            .parse()
            .map_err(|e| format!("net-worker: bad worker index: {e}"))?;
        if let Some(extra) = args.get(3) {
            return Err(format!("net-worker: unexpected argument {extra:?}"));
        }
        return Ok(Invocation::Worker { addr, index });
    }
    let mut graph_spec: Option<String> = None;
    let mut batch_path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut tester = "ck".to_string();
    let mut k = 5usize;
    let mut eps = 0.1f64;
    let mut trials = 1u32;
    let mut seed = 42u64;
    let mut repetitions: Option<u32> = None;
    let mut workers: Option<u16> = None;
    let mut verbose = false;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => {
                graph_spec = Some(value(args, i, "--graph")?);
                i += 2;
            }
            "--batch" => {
                batch_path = Some(value(args, i, "--batch")?);
                i += 2;
            }
            "--shards" => {
                shards = Some(
                    value(args, i, "--shards")?.parse().map_err(|e| format!("--shards: {e}"))?,
                );
                i += 2;
            }
            "--tester" => {
                tester = value(args, i, "--tester")?;
                i += 2;
            }
            "--k" => {
                k = value(args, i, "--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                i += 2;
            }
            "--eps" => {
                eps = value(args, i, "--eps")?.parse().map_err(|e| format!("--eps: {e}"))?;
                i += 2;
            }
            "--trials" => {
                trials =
                    value(args, i, "--trials")?.parse().map_err(|e| format!("--trials: {e}"))?;
                i += 2;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--repetitions" => {
                repetitions = Some(
                    value(args, i, "--repetitions")?
                        .parse()
                        .map_err(|e| format!("--repetitions: {e}"))?,
                );
                i += 2;
            }
            "--workers" => {
                let w: u16 =
                    value(args, i, "--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
                if w == 0 {
                    return Err("--workers: need at least one worker".into());
                }
                workers = Some(w);
                i += 2;
            }
            "--verbose" => {
                verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if let Some(path) = batch_path {
        if graph_spec.is_some() {
            return Err("--batch and --graph are mutually exclusive".into());
        }
        if tester != "ck" {
            return Err(format!("--batch supports the ck tester only, got {tester:?}"));
        }
        // Same session-grade validation as the single-graph path.
        ck_core::tester::TesterConfig::new(k, eps, 0).validate().map_err(|e| match e {
            ck_core::tester::ConfigError::KOutOfRange { .. } => format!("--k: {e}"),
            ck_core::tester::ConfigError::EpsOutOfRange { .. } => format!("--eps: {e}"),
            // Unreachable from the CLI (no flag sets assumed_loss yet).
            ck_core::tester::ConfigError::LossOutOfRange { .. } => format!("{e}"),
        })?;
        return Ok(Invocation::Batch(BatchRequest {
            path,
            k,
            eps,
            trials,
            seed,
            repetitions,
            shards,
        }));
    }
    if shards.is_some() {
        return Err("--shards requires --batch".into());
    }
    let spec = graph_spec.ok_or("--graph is required")?;
    if (workers.is_some() || verbose) && tester != "ck" {
        return Err(format!(
            "--workers/--verbose drive full tester sessions and support the ck tester only, got {tester:?}"
        ));
    }
    let graph = parse_graph_spec(&spec)?;
    let tester = parse_tester(&tester, k, eps, repetitions)?;
    Ok(Invocation::Single(Box::new(Request {
        graph,
        graph_desc: spec,
        tester,
        trials,
        seed,
        k,
        eps,
        repetitions,
        workers,
        verbose,
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn single(s: &str) -> Request {
        match parse_args(&argv(s)).unwrap() {
            Invocation::Single(r) => *r,
            _ => panic!("expected a single-graph invocation"),
        }
    }

    #[test]
    fn parses_every_family() {
        let specs = [
            "cycle:9",
            "path:4",
            "complete:5",
            "grid:3:4",
            "torus:3:3",
            "hypercube:3",
            "petersen",
            "heawood",
            "mobius-kantor",
            "pappus",
            "theta:3:2",
            "fan:3",
            "spindle:5:2",
            "cactus:3:5",
            "circulant:10:1:2",
            "gnp:20:0.2:7",
            "gnm:20:30:7",
            "tree:15:3",
            "regular:12:3:1",
            "high-girth:30:5:200:2",
            "eps-far:40:4:0.05:0",
            "free:40:5",
            "behrend:5:20",
        ];
        for s in specs {
            let g = parse_graph_spec(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(g.n() > 0, "{s}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_graph_spec("nosuch:1").is_err());
        assert!(parse_graph_spec("cycle").is_err());
        assert!(parse_graph_spec("gnp:10:notafloat").is_err());
        assert!(parse_graph_spec("circulant:10").is_err());
        assert!(parse_graph_spec("file:/definitely/not/here.col").is_err());
    }

    /// A malformed optional seed must be a parse error, not a silent
    /// seed-0 run (the old `.parse().ok().unwrap_or(0)` bug).
    #[test]
    fn malformed_seeds_error_instead_of_defaulting() {
        for spec in [
            "gnp:100:0.05:abc",
            "gnm:20:30:x",
            "tree:15:-3",
            "regular:12:3:1.5",
            "high-girth:30:5:200:?",
            "eps-far:40:4:0.05:abc",
        ] {
            let err = parse_graph_spec(spec).unwrap_err();
            assert!(err.contains("bad seed argument"), "{spec}: {err}");
        }
        // Omitting the seed still defaults to 0.
        assert!(parse_graph_spec("gnp:20:0.2").is_ok());
        assert!(parse_graph_spec("tree:15").is_ok());
    }

    /// ε outside (0,1) must surface as a friendly error from the
    /// parsers, never as the repetition schedule's assert backtrace.
    #[test]
    fn bad_eps_is_a_usage_error_not_a_panic() {
        for eps in ["1.5", "0", "-0.1", "NaN"] {
            let err = parse_args(&argv(&format!("--graph cycle:5 --tester ck --eps {eps}")))
                .err()
                .unwrap_or_else(|| panic!("--eps {eps} must be rejected"));
            assert!(err.contains("must lie in (0,1)"), "{eps}: {err}");
        }
        let err = parse_graph_spec("eps-far:60:5:1.5").unwrap_err();
        assert!(err.contains("must lie in (0,1)"), "{err}");
        // The forest tester ignores ε entirely; a default ε never blocks it.
        assert!(parse_args(&argv("--graph petersen --tester forest")).is_ok());
    }

    #[test]
    fn parses_full_command_lines() {
        let req = single("--graph cycle:7 --tester ck --k 7 --eps 0.2 --trials 3 --seed 5");
        assert_eq!(req.graph.n(), 7);
        assert_eq!(req.tester.name(), "ck");
        assert_eq!(req.trials, 3);
        assert_eq!(req.seed, 5);

        let req = single("--graph petersen --tester forest");
        assert_eq!(req.tester.name(), "forest");
    }

    #[test]
    fn rejects_bad_command_lines() {
        assert!(parse_args(&argv("--tester ck")).is_err(), "graph required");
        assert!(parse_args(&argv("--graph cycle:5 --tester nosuch")).is_err());
        assert!(parse_args(&argv("--graph cycle:5 --frobnicate yes")).is_err());
        assert!(parse_args(&argv("--graph cycle:5 --k")).is_err());
    }

    #[test]
    fn parses_batch_command_lines() {
        let inv =
            parse_args(&argv("--batch specs.txt --k 4 --eps 0.2 --trials 3 --shards 2")).unwrap();
        let Invocation::Batch(b) = inv else { panic!("expected batch") };
        assert_eq!(b.path, "specs.txt");
        assert_eq!((b.k, b.trials, b.shards), (4, 3, Some(2)));

        assert!(parse_args(&argv("--batch f --graph cycle:5")).is_err(), "mutually exclusive");
        assert!(parse_args(&argv("--batch f --tester forest")).is_err(), "ck only");
        assert!(parse_args(&argv("--batch f --eps 2.0")).is_err(), "eps validated");
        assert!(parse_args(&argv("--graph cycle:5 --shards 2")).is_err(), "shards needs batch");
    }

    #[test]
    fn batch_files_parse_with_comments_and_errors() {
        let text = "# planted cells\ncycle:9\n\n  eps-far:40:4:0.05:1\npetersen\n";
        let specs = parse_batch_file(text).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].0, "cycle:9");
        assert_eq!(specs[0].1.n(), 9);

        let err = parse_batch_file("cycle:9\nnosuch:3\n").unwrap_err();
        assert!(err.contains("batch line 2"), "{err}");
        assert!(parse_batch_file("# only comments\n").is_err());
    }

    #[test]
    fn end_to_end_probe_via_request() {
        let req = single("--graph cycle:5 --tester ck --k 5 --eps 0.2 --repetitions 1 --trials 2");
        let amp = ck_core::framework::amplify(&*req.tester, &req.graph, req.seed, req.trials);
        assert!(amp.reject, "C5 must be rejected");
    }

    /// The batch path end to end: specs × trials through the session's
    /// batch runner match one-by-one session tests bit for bit.
    #[test]
    fn end_to_end_batch_matches_loop() {
        use ck_core::session::TesterSession;
        let specs = parse_batch_file("cycle:5\nfree:30:5\neps-far:36:5:0.1:1\n").unwrap();
        let trials = 2u32;
        let req = BatchRequest {
            path: String::new(),
            k: 5,
            eps: 0.1,
            trials,
            seed: 7,
            repetitions: Some(1),
            shards: Some(2),
        };
        let jobs = batch_jobs(&specs, &req);
        let session = TesterSession::builder(req.k, req.eps).build().unwrap();
        let runs = session.test_batch(&jobs, Some(2)).unwrap();
        assert_eq!(runs.len(), specs.len() * trials as usize);
        for (job, run) in jobs.iter().zip(&runs) {
            let one = TesterSession::from_config(job.cfg, session.engine().clone())
                .unwrap()
                .test(job.graph)
                .unwrap();
            assert_eq!(one.reject, run.reject, "{}", job.label);
            assert_eq!(one.outcome.verdicts, run.outcome.verdicts, "{}", job.label);
        }
        // cycle:5 is rejected on every trial; free:30:5 never is.
        assert!(runs[..trials as usize].iter().all(|r| r.reject));
        assert!(runs[trials as usize..2 * trials as usize].iter().all(|r| !r.reject));
    }

    #[test]
    fn parses_worker_subcommand_and_distributed_flags() {
        let Invocation::Worker { addr, index } =
            parse_args(&argv("net-worker 127.0.0.1:4321 2")).unwrap()
        else {
            panic!("expected a worker invocation");
        };
        assert_eq!(addr, "127.0.0.1:4321");
        assert_eq!(index, 2);

        assert!(parse_args(&argv("net-worker")).is_err(), "address required");
        assert!(parse_args(&argv("net-worker 127.0.0.1:1")).is_err(), "index required");
        assert!(parse_args(&argv("net-worker 127.0.0.1:1 x")).is_err(), "index numeric");
        assert!(parse_args(&argv("net-worker 127.0.0.1:1 0 extra")).is_err());

        let req = single("--graph cycle:7 --k 7 --eps 0.2 --workers 3 --verbose");
        assert_eq!(req.workers, Some(3));
        assert!(req.verbose);
        assert_eq!((req.k, req.eps), (7, 0.2));

        assert!(parse_args(&argv("--graph cycle:5 --workers 0")).is_err(), "zero workers");
        assert!(
            parse_args(&argv("--graph petersen --tester forest --workers 2")).is_err(),
            "distributed path is ck-only"
        );
        assert!(
            parse_args(&argv("--graph petersen --tester forest --verbose")).is_err(),
            "verbose reports come from ck sessions"
        );
    }

    #[test]
    fn parses_serve_subcommand() {
        let Invocation::Serve(req) = parse_args(&argv("serve")).unwrap() else {
            panic!("expected a serve invocation");
        };
        assert_eq!(req.addr, "127.0.0.1:0");
        assert_eq!(req.workers, 2);

        let Invocation::Serve(req) = parse_args(&argv(
            "serve --addr 127.0.0.1:9911 --workers 4 --max-nodes 5000 \
             --inflight-budget 8 --idle-reclaim-ms 100 --max-conns 16",
        ))
        .unwrap() else {
            panic!("expected a serve invocation");
        };
        assert_eq!(req.addr, "127.0.0.1:9911");
        assert_eq!((req.workers, req.max_nodes), (4, 5000));
        assert_eq!((req.inflight_budget, req.idle_reclaim_ms), (8, 100));
        assert_eq!(req.max_conns, 16);

        assert!(parse_args(&argv("serve --workers 0")).is_err(), "zero workers");
        assert!(parse_args(&argv("serve --max-conns 0")).is_err(), "zero connections");
        assert!(parse_args(&argv("serve --workers")).is_err(), "value required");
        assert!(parse_args(&argv("serve --frobnicate 1")).is_err());
    }

    #[test]
    fn parses_submit_subcommand() {
        let Invocation::Submit(req) = parse_args(&argv(
            "submit 127.0.0.1:9911 --graph cycle:9 --k 4 --eps 0.2 --seed 7 \
             --repetitions 2 --job-id 3 --stats --shutdown",
        ))
        .unwrap() else {
            panic!("expected a submit invocation");
        };
        assert_eq!(req.addr, "127.0.0.1:9911");
        assert_eq!(req.graph_spec.as_deref(), Some("cycle:9"));
        assert_eq!((req.k, req.eps, req.seed), (4, 0.2, 7));
        assert_eq!((req.repetitions, req.job_id), (Some(2), 3));
        assert!(req.stats && req.shutdown);

        // Out-of-range parameters parse fine: the service's admission
        // control refuses them with a typed frame, and the CLI must be
        // able to put that path on the wire.
        let Invocation::Submit(req) =
            parse_args(&argv("submit 127.0.0.1:1 --graph cycle:5 --k 99 --eps 0.0")).unwrap()
        else {
            panic!("expected a submit invocation");
        };
        assert_eq!((req.k, req.eps), (99, 0.0));

        // Stats-only and shutdown-only interactions need no graph.
        assert!(parse_args(&argv("submit 127.0.0.1:1 --stats")).is_ok());
        assert!(parse_args(&argv("submit 127.0.0.1:1 --shutdown")).is_ok());

        assert!(parse_args(&argv("submit")).is_err(), "address required");
        assert!(parse_args(&argv("submit --stats")).is_err(), "address before flags");
        assert!(parse_args(&argv("submit 127.0.0.1:1")).is_err(), "an action is required");
        assert!(parse_args(&argv("submit 127.0.0.1:1 --graph")).is_err(), "value required");
        assert!(parse_args(&argv("submit 127.0.0.1:1 --frobnicate yes")).is_err());
    }

    /// `--k` outside the supported range is a usage error on both the
    /// single and the batch path, never a mid-run panic.
    #[test]
    fn bad_k_is_a_usage_error_not_a_panic() {
        for args in ["--graph cycle:5 --tester ck --k 99", "--batch f --k 2"] {
            let err =
                parse_args(&argv(args)).err().unwrap_or_else(|| panic!("{args} must be rejected"));
            assert!(err.contains("outside supported range"), "{args}: {err}");
        }
        // The baselines ignore k entirely.
        assert!(parse_args(&argv("--graph petersen --tester triangle --k 99")).is_ok());
    }
}
