//! # ck-cli — the `ckprobe` command-line tool
//!
//! One binary to generate or load a graph, run any of the distributed
//! testers on it, and print verdicts with CONGEST cost accounting:
//!
//! ```text
//! ckprobe --graph petersen --tester ck --k 5 --eps 0.1
//! ckprobe --graph gnp:100:0.05 --tester triangle --trials 5
//! ckprobe --graph file:instance.col --tester forest
//! ckprobe --graph eps-far:60:5:0.05 --tester ck --k 5 --trials 10
//! ```
//!
//! The library half hosts the spec parsers (unit-tested); `main.rs` is a
//! thin shell around them.

use ck_baselines::framework_impls::{C4Baseline, ForestBaseline, TriangleBaseline};
use ck_congest::graph::Graph;
use ck_core::framework::{CkFreenessTester, DistributedTester};
use ck_graphgen::{basic, behrend, families, planted, random};

/// Parsed command-line request.
pub struct Request {
    pub graph: Graph,
    pub graph_desc: String,
    pub tester: Box<dyn DistributedTester>,
    pub trials: u32,
    pub seed: u64,
}

/// Builds a graph from a spec string (see [`graph_spec_help`]).
pub fn parse_graph_spec(spec: &str) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let usize_arg = |i: usize, what: &str| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or(format!("{what}: missing argument {i}"))?
            .parse()
            .map_err(|e| format!("{what}: bad argument {i}: {e}"))
    };
    let f64_arg = |i: usize, what: &str| -> Result<f64, String> {
        parts
            .get(i)
            .ok_or(format!("{what}: missing argument {i}"))?
            .parse()
            .map_err(|e| format!("{what}: bad argument {i}: {e}"))
    };
    let seed_arg = |i: usize| -> u64 {
        parts.get(i).and_then(|s| s.parse().ok()).unwrap_or(0)
    };
    match parts[0] {
        "cycle" => Ok(basic::cycle(usize_arg(1, "cycle")?)),
        "path" => Ok(basic::path(usize_arg(1, "path")?)),
        "complete" => Ok(basic::complete(usize_arg(1, "complete")?)),
        "grid" => Ok(basic::grid(usize_arg(1, "grid")?, usize_arg(2, "grid")?)),
        "torus" => Ok(basic::torus(usize_arg(1, "torus")?, usize_arg(2, "torus")?)),
        "hypercube" => Ok(basic::hypercube(usize_arg(1, "hypercube")? as u32)),
        "petersen" => Ok(basic::petersen()),
        "heawood" => Ok(basic::heawood()),
        "mobius-kantor" => Ok(families::mobius_kantor()),
        "pappus" => Ok(families::pappus()),
        "theta" => Ok(basic::theta(usize_arg(1, "theta")?, usize_arg(2, "theta")?)),
        "fan" => Ok(basic::fan(usize_arg(1, "fan")?)),
        "spindle" => Ok(basic::spindle(usize_arg(1, "spindle")?, usize_arg(2, "spindle")?)),
        "cactus" => Ok(basic::cycle_cactus(usize_arg(1, "cactus")?, usize_arg(2, "cactus")?)),
        "circulant" => {
            let n = usize_arg(1, "circulant")?;
            let strides: Result<Vec<usize>, _> =
                parts[2..].iter().map(|s| s.parse::<usize>()).collect();
            let strides = strides.map_err(|e| format!("circulant strides: {e}"))?;
            if strides.is_empty() {
                return Err("circulant needs at least one stride".into());
            }
            Ok(families::circulant(n, &strides))
        }
        "gnp" => Ok(random::gnp(usize_arg(1, "gnp")?, f64_arg(2, "gnp")?, seed_arg(3))),
        "gnm" => Ok(random::gnm(usize_arg(1, "gnm")?, usize_arg(2, "gnm")?, seed_arg(3))),
        "tree" => Ok(random::random_tree(usize_arg(1, "tree")?, seed_arg(2))),
        "regular" => Ok(random::random_regular(
            usize_arg(1, "regular")?,
            usize_arg(2, "regular")?,
            seed_arg(3),
        )),
        "high-girth" => Ok(random::high_girth(
            usize_arg(1, "high-girth")?,
            usize_arg(2, "high-girth")?,
            usize_arg(3, "high-girth")?,
            seed_arg(4),
        )),
        "eps-far" => Ok(planted::eps_far_instance(
            usize_arg(1, "eps-far")?,
            usize_arg(2, "eps-far")?,
            f64_arg(3, "eps-far")?,
            seed_arg(4),
        )
        .graph),
        "free" => Ok(planted::matched_free_instance(
            usize_arg(1, "free")?,
            usize_arg(2, "free")?,
        )),
        "behrend" => Ok(behrend::behrend_ck_instance(
            usize_arg(1, "behrend")?,
            usize_arg(2, "behrend")?,
        )
        .graph),
        "file" => {
            let path = parts.get(1).ok_or("file: missing path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            if text.trim_start().starts_with('c') || text.trim_start().starts_with('p') {
                ck_graphgen::io::parse_dimacs(&text)
            } else {
                Graph::from_edge_list(&text)
            }
        }
        other => Err(format!("unknown graph family {other:?}; see --help")),
    }
}

/// Builds a tester from CLI fields.
pub fn parse_tester(
    name: &str,
    k: usize,
    eps: f64,
    repetitions: Option<u32>,
) -> Result<Box<dyn DistributedTester>, String> {
    match name {
        "ck" => Ok(Box::new(CkFreenessTester { k, eps, repetitions })),
        "triangle" => Ok(Box::new(TriangleBaseline { eps, repetitions })),
        "c4" => Ok(Box::new(C4Baseline { eps, repetitions })),
        "forest" => Ok(Box::new(ForestBaseline)),
        other => Err(format!("unknown tester {other:?} (ck | triangle | c4 | forest)")),
    }
}

/// Help text for graph specs.
pub fn graph_spec_help() -> &'static str {
    "graph specs:\n\
     \x20 cycle:N | path:N | complete:N | grid:R:C | torus:R:C | hypercube:D\n\
     \x20 petersen | heawood | mobius-kantor | pappus\n\
     \x20 theta:P:L | fan:P | spindle:P:M | cactus:COUNT:LEN | circulant:N:S1[:S2…]\n\
     \x20 gnp:N:P[:SEED] | gnm:N:M[:SEED] | tree:N[:SEED] | regular:N:D[:SEED]\n\
     \x20 high-girth:N:K:ATTEMPTS[:SEED]\n\
     \x20 eps-far:N:K:EPS[:SEED] | free:N:K | behrend:K:WIDTH\n\
     \x20 file:PATH (DIMACS .col or native edge list)"
}

/// Parses full argv (without program name).
pub fn parse_args(args: &[String]) -> Result<Request, String> {
    let mut graph_spec: Option<String> = None;
    let mut tester = "ck".to_string();
    let mut k = 5usize;
    let mut eps = 0.1f64;
    let mut trials = 1u32;
    let mut seed = 42u64;
    let mut repetitions: Option<u32> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1).cloned().ok_or(format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--graph" => {
                graph_spec = Some(value(args, i, "--graph")?);
                i += 2;
            }
            "--tester" => {
                tester = value(args, i, "--tester")?;
                i += 2;
            }
            "--k" => {
                k = value(args, i, "--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                i += 2;
            }
            "--eps" => {
                eps = value(args, i, "--eps")?.parse().map_err(|e| format!("--eps: {e}"))?;
                i += 2;
            }
            "--trials" => {
                trials =
                    value(args, i, "--trials")?.parse().map_err(|e| format!("--trials: {e}"))?;
                i += 2;
            }
            "--seed" => {
                seed = value(args, i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--repetitions" => {
                repetitions = Some(
                    value(args, i, "--repetitions")?
                        .parse()
                        .map_err(|e| format!("--repetitions: {e}"))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let spec = graph_spec.ok_or("--graph is required")?;
    let graph = parse_graph_spec(&spec)?;
    let tester = parse_tester(&tester, k, eps, repetitions)?;
    Ok(Request { graph, graph_desc: spec, tester, trials, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_every_family() {
        let specs = [
            "cycle:9",
            "path:4",
            "complete:5",
            "grid:3:4",
            "torus:3:3",
            "hypercube:3",
            "petersen",
            "heawood",
            "mobius-kantor",
            "pappus",
            "theta:3:2",
            "fan:3",
            "spindle:5:2",
            "cactus:3:5",
            "circulant:10:1:2",
            "gnp:20:0.2:7",
            "gnm:20:30:7",
            "tree:15:3",
            "regular:12:3:1",
            "high-girth:30:5:200:2",
            "eps-far:40:4:0.05:0",
            "free:40:5",
            "behrend:5:20",
        ];
        for s in specs {
            let g = parse_graph_spec(s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert!(g.n() > 0, "{s}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(parse_graph_spec("nosuch:1").is_err());
        assert!(parse_graph_spec("cycle").is_err());
        assert!(parse_graph_spec("gnp:10:notafloat").is_err());
        assert!(parse_graph_spec("circulant:10").is_err());
        assert!(parse_graph_spec("file:/definitely/not/here.col").is_err());
    }

    #[test]
    fn parses_full_command_lines() {
        let req = parse_args(&argv("--graph cycle:7 --tester ck --k 7 --eps 0.2 --trials 3 --seed 5")).unwrap();
        assert_eq!(req.graph.n(), 7);
        assert_eq!(req.tester.name(), "ck");
        assert_eq!(req.trials, 3);
        assert_eq!(req.seed, 5);

        let req = parse_args(&argv("--graph petersen --tester forest")).unwrap();
        assert_eq!(req.tester.name(), "forest");
    }

    #[test]
    fn rejects_bad_command_lines() {
        assert!(parse_args(&argv("--tester ck")).is_err(), "graph required");
        assert!(parse_args(&argv("--graph cycle:5 --tester nosuch")).is_err());
        assert!(parse_args(&argv("--graph cycle:5 --frobnicate yes")).is_err());
        assert!(parse_args(&argv("--graph cycle:5 --k")).is_err());
    }

    #[test]
    fn end_to_end_probe_via_request() {
        let req = parse_args(&argv(
            "--graph cycle:5 --tester ck --k 5 --eps 0.2 --repetitions 1 --trials 2",
        ))
        .unwrap();
        let amp = ck_core::framework::amplify(&*req.tester, &req.graph, req.seed, req.trials);
        assert!(amp.reject, "C5 must be rejected");
    }
}
