//! `ckprobe` — run distributed cycle/pattern testers on any graph.

use ck_cli::{graph_spec_help, parse_args};
use ck_congest::message::WireParams;
use ck_core::framework::amplify;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let req = match parse_args(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_help();
            std::process::exit(2);
        }
    };
    let g = &req.graph;
    println!(
        "graph {} — n = {}, m = {}, max degree {}, girth {}",
        req.graph_desc,
        g.n(),
        g.m(),
        g.max_degree(),
        g.girth().map_or("∞".into(), |x| x.to_string()),
    );
    println!("tester: {} — {}", req.tester.name(), req.tester.property());
    let amp = amplify(&*req.tester, g, req.seed, req.trials);
    let wp = WireParams::for_graph(g);
    let b = wp.congest_bandwidth(4);
    for (i, t) in amp.trials.iter().enumerate() {
        println!(
            "  trial {i}: {} — {} rounds, {} messages, {} bits, worst link {} bits (B = {b})",
            if t.reject { "REJECT" } else { "accept" },
            t.rounds,
            t.messages,
            t.bits,
            t.max_link_bits,
        );
    }
    println!(
        "verdict: {}  ({}/{} trials rejected)",
        if amp.reject { "REJECT" } else { "accept" },
        amp.trials.iter().filter(|t| t.reject).count(),
        amp.trials.len(),
    );
    std::process::exit(if amp.reject { 1 } else { 0 });
}

fn print_help() {
    println!(
        "ckprobe — distributed cycle detection (Fraigniaud & Olivetti, SPAA 2017)\n\n\
         usage: ckprobe --graph SPEC [--tester ck|triangle|c4|forest]\n\
         \x20                       [--k K] [--eps E] [--trials N] [--seed S]\n\
         \x20                       [--repetitions R]\n\n\
         exit status: 0 = accept, 1 = reject, 2 = usage error\n\n{}",
        graph_spec_help()
    );
}
