//! `ckprobe` — run distributed cycle/pattern testers on any graph.

use ck_cli::{
    batch_jobs, graph_spec_help, parse_args, parse_batch_file, BatchRequest, Invocation, Request,
};
use ck_congest::message::WireParams;
use ck_core::framework::amplify;
use ck_core::session::TesterSession;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let invocation = match parse_args(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_help();
            std::process::exit(2);
        }
    };
    match invocation {
        Invocation::Single(req) => run_single(&req),
        Invocation::Batch(req) => run_batch(&req),
    }
}

fn run_single(req: &Request) {
    let g = &req.graph;
    println!(
        "graph {} — n = {}, m = {}, max degree {}, girth {}",
        req.graph_desc,
        g.n(),
        g.m(),
        g.max_degree(),
        g.girth().map_or("∞".into(), |x| x.to_string()),
    );
    println!("tester: {} — {}", req.tester.name(), req.tester.property());
    let amp = amplify(&*req.tester, g, req.seed, req.trials);
    let wp = WireParams::for_graph(g);
    let b = wp.congest_bandwidth(4);
    for (i, t) in amp.trials.iter().enumerate() {
        println!(
            "  trial {i}: {} — {} rounds, {} messages, {} bits, worst link {} bits (B = {b})",
            if t.reject { "REJECT" } else { "accept" },
            t.rounds,
            t.messages,
            t.bits,
            t.max_link_bits,
        );
    }
    println!(
        "verdict: {}  ({}/{} trials rejected)",
        if amp.reject { "REJECT" } else { "accept" },
        amp.trials.iter().filter(|t| t.reject).count(),
        amp.trials.len(),
    );
    std::process::exit(if amp.reject { 1 } else { 0 });
}

fn run_batch(req: &BatchRequest) {
    let text = match std::fs::read_to_string(&req.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", req.path);
            std::process::exit(2);
        }
    };
    let specs = match parse_batch_file(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let jobs = batch_jobs(&specs, req);
    // The session validates (k, ε) at build time — a bad cell is a
    // usage error here, never a panic mid-sweep.
    let session = match TesterSession::builder(req.k, req.eps).build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "batch {}: {} graph(s) × {} trial(s) = {} job(s), tester ck (k = {}, ε = {})",
        req.path,
        specs.len(),
        req.trials.max(1),
        jobs.len(),
        req.k,
        req.eps,
    );
    let runs = match session.test_batch(&jobs, req.shards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let trials = req.trials.max(1) as usize;
    let mut any_reject = false;
    for (gi, (spec, graph)) in specs.iter().enumerate() {
        let cell = &runs[gi * trials..(gi + 1) * trials];
        let rejects = cell.iter().filter(|r| r.reject).count();
        let rounds: u64 = cell.iter().map(|r| u64::from(r.outcome.report.rounds)).sum();
        let messages: u64 = cell.iter().map(|r| r.outcome.report.total_messages()).sum();
        any_reject |= rejects > 0;
        println!(
            "  {spec} — n = {}, m = {}: {} ({rejects}/{trials} trials rejected, {rounds} rounds, {messages} messages)",
            graph.n(),
            graph.m(),
            if rejects > 0 { "REJECT" } else { "accept" },
        );
    }
    println!("batch verdict: {}", if any_reject { "REJECT" } else { "accept" });
    std::process::exit(if any_reject { 1 } else { 0 });
}

fn print_help() {
    println!(
        "ckprobe — distributed cycle detection (Fraigniaud & Olivetti, SPAA 2017)\n\n\
         usage: ckprobe --graph SPEC [--tester ck|triangle|c4|forest]\n\
         \x20                       [--k K] [--eps E] [--trials N] [--seed S]\n\
         \x20                       [--repetitions R]\n\
         \x20      ckprobe --batch FILE [--k K] [--eps E] [--trials N] [--seed S]\n\
         \x20                       [--repetitions R] [--shards W]\n\n\
         --batch runs every graph spec in FILE (one per line, # comments)\n\
         through the sharded batch runner with the ck tester; --trials\n\
         fans each spec out with derived seeds.\n\n\
         exit status: 0 = accept, 1 = reject, 2 = usage error\n\n{}",
        graph_spec_help()
    );
}
