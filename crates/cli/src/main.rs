//! `ckprobe` — run distributed cycle/pattern testers on any graph.

use ck_cli::{
    batch_jobs, graph_spec_help, parse_args, parse_batch_file, parse_graph_spec, BatchRequest,
    Invocation, Request, ServeRequest, SubmitRequest,
};
use ck_congest::engine::{EngineConfig, Executor};
use ck_congest::message::WireParams;
use ck_congest::metrics::{FaultReport, NetReport, RunReport};
use ck_core::framework::amplify;
use ck_core::session::TesterSession;
use ck_core::tester::TesterConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let invocation = match parse_args(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_help();
            std::process::exit(2);
        }
    };
    match invocation {
        Invocation::Single(req) => {
            if req.workers.is_some() || req.verbose {
                run_single_sessions(&req)
            } else {
                run_single(&req)
            }
        }
        Invocation::Batch(req) => run_batch(&req),
        Invocation::Worker { addr, index } => {
            if let Err(e) = ck_core::dist::worker_main(&addr, index) {
                eprintln!("net-worker {index}: {e}");
                std::process::exit(3);
            }
        }
        Invocation::Serve(req) => run_serve(&req),
        Invocation::Submit(req) => run_submit(&req),
    }
}

/// The `serve` subcommand: run the probe service until a client sends
/// Shutdown, then report the drained counters.
fn run_serve(req: &ServeRequest) {
    use std::io::Write as _;
    let opts = ck_serve::ServeOptions {
        addr: req.addr.clone(),
        workers: req.workers,
        max_nodes: req.max_nodes,
        inflight_budget: req.inflight_budget,
        idle_reclaim_ms: req.idle_reclaim_ms,
        max_conns: req.max_conns,
        ..ck_serve::ServeOptions::default()
    };
    let server = match ck_serve::BoundServer::bind(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding {}: {e}", req.addr);
            std::process::exit(3);
        }
    };
    // The one line scripted callers parse for the OS-assigned port;
    // flushed explicitly because stdout is block-buffered under pipes.
    println!("ckserve listening on {}", server.addr());
    let _ = std::io::stdout().flush();
    let snap = server.run();
    // A scripted parent may have closed our stdout after reading the
    // banner; the drain report is best-effort, never a panic.
    let mut out = std::io::stdout().lock();
    let _ = writeln!(
        out,
        "ckserve drained: {} submitted, {} completed, {} refused, {} session(s) reclaimed",
        snap.jobs_submitted, snap.jobs_completed, snap.jobs_refused, snap.sessions_reclaimed,
    );
    let _ = writeln!(
        out,
        "ckserve latency: {} job(s), p50 {} µs, p99 {} µs, max {} µs",
        snap.latency.count, snap.latency.p50_us, snap.latency.p99_us, snap.latency.max_us,
    );
    let _ = out.flush();
    std::process::exit(0);
}

/// The `submit` subcommand: one connection doing (in order) an
/// optional job, an optional stats fetch, an optional shutdown.
fn run_submit(req: &SubmitRequest) {
    let mut client = match ck_serve::ServeClient::connect(&req.addr, req.timeout_ms) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: connecting to {}: {e}", req.addr);
            std::process::exit(3);
        }
    };
    let mut exit_code = 0;
    if let Some(spec) = &req.graph_spec {
        let graph = match parse_graph_spec(spec) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let job = ck_serve::JobRequest {
            job_id: req.job_id,
            graph,
            k: req.k as u32,
            eps: req.eps,
            seed: req.seed,
            repetitions: req.repetitions,
        };
        match client.run_job(&job) {
            Ok(res) => match res.outcome {
                Ok(v) => {
                    let rejected = v.verdicts.iter().filter(|n| n.rejected).count();
                    println!(
                        "job {}: {} — {} of {} node(s) rejecting, {} µs",
                        res.job_id,
                        if v.reject { "REJECT" } else { "accept" },
                        rejected,
                        v.verdicts.len(),
                        v.wall_us,
                    );
                    exit_code = i32::from(v.reject);
                }
                Err(e) => {
                    eprintln!("job {}: refused: {e}", res.job_id);
                    exit_code = 3;
                }
            },
            Err(e) => {
                eprintln!("error: job {}: {e}", req.job_id);
                std::process::exit(3);
            }
        }
    }
    if req.stats {
        match client.stats() {
            Ok(s) => {
                println!(
                    "stats: {} worker(s), queue {}, in-flight {}, pool outstanding {}",
                    s.workers, s.queue_depth, s.in_flight, s.pool_outstanding,
                );
                println!(
                    "stats: {} submitted, {} completed, {} refused, {} reclaimed, slots {}/{} (takes/misses)",
                    s.jobs_submitted,
                    s.jobs_completed,
                    s.jobs_refused,
                    s.sessions_reclaimed,
                    s.slot_takes,
                    s.slot_misses,
                );
                println!(
                    "stats: latency {} job(s), p50 {} µs, p99 {} µs, max {} µs",
                    s.latency.count, s.latency.p50_us, s.latency.p99_us, s.latency.max_us,
                );
            }
            Err(e) => {
                eprintln!("error: stats: {e}");
                std::process::exit(3);
            }
        }
    }
    if req.shutdown {
        match client.shutdown() {
            Ok(jobs_completed) => {
                println!("ckserve shutdown acknowledged: {jobs_completed} job(s) completed");
            }
            Err(e) => {
                eprintln!("error: shutdown: {e}");
                std::process::exit(3);
            }
        }
    }
    std::process::exit(exit_code);
}

/// The `--workers`/`--verbose` path: full tester sessions instead of
/// the probe framework, so run reports (fault + network accounting)
/// survive to be printed — and the distributed executor can spawn this
/// very binary as `net-worker` processes.
fn run_single_sessions(req: &Request) {
    let g = &req.graph;
    println!(
        "graph {} — n = {}, m = {}, max degree {}, girth {}",
        req.graph_desc,
        g.n(),
        g.m(),
        g.max_degree(),
        g.girth().map_or("∞".into(), |x| x.to_string()),
    );
    let mut engine = EngineConfig::default();
    if let Some(w) = req.workers {
        engine.executor = Executor::Distributed { workers: w };
        match std::env::current_exe() {
            Ok(exe) => {
                engine.net.worker_cmd =
                    Some(vec![exe.to_string_lossy().into_owned(), "net-worker".into()]);
            }
            Err(e) => {
                eprintln!("error: locating ckprobe for worker spawn: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "tester: ck — C{}-freeness (ε = {}), executor {}",
        req.k,
        req.eps,
        match req.workers {
            Some(w) => format!("distributed ({w} workers)"),
            None => "sequential".into(),
        },
    );
    let trials = req.trials.max(1);
    let mut rejected = 0u32;
    for t in 0..trials {
        let seed = req.seed.wrapping_add(u64::from(t).wrapping_mul(0x9E37_79B9));
        let cfg = TesterConfig {
            repetitions: req.repetitions,
            ..TesterConfig::new(req.k, req.eps, seed)
        };
        let run = match TesterSession::from_config(cfg, engine.clone())
            .map_err(|e| e.to_string())
            .and_then(|mut s| s.test(g).map_err(|e| e.to_string()))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: trial {t}: {e}");
                std::process::exit(2);
            }
        };
        let report = &run.outcome.report;
        println!(
            "  trial {t}: {} — {} rounds, {} messages, {} bits, worst link {} bits",
            if run.reject { "REJECT" } else { "accept" },
            report.rounds,
            report.total_messages(),
            report.total_bits(),
            report.max_link_bits(),
        );
        rejected += u32::from(run.reject);
        if req.verbose {
            print_report_details(report);
        }
    }
    println!(
        "verdict: {}  ({rejected}/{trials} trials rejected)",
        if rejected > 0 { "REJECT" } else { "accept" },
    );
    std::process::exit(if rejected > 0 { 1 } else { 0 });
}

/// Human-readable fault and network accounting for `--verbose`.
fn print_report_details(report: &RunReport) {
    print_fault_summary(&report.faults);
    if let Some(net) = &report.net {
        print_net_summary(net);
    }
}

fn print_fault_summary(f: &FaultReport) {
    let dropped =
        f.dropped_explicit + f.dropped_random + f.dropped_crash + f.dropped_cut + f.dropped_burst;
    if dropped == 0 && f.corrupted_delivered == 0 && f.crashed_nodes.is_empty() {
        println!("    faults: none");
        return;
    }
    println!(
        "    faults: {dropped} messages dropped \
         (explicit {}, random {}, crash {}, cut {}, burst {})",
        f.dropped_explicit, f.dropped_random, f.dropped_crash, f.dropped_cut, f.dropped_burst,
    );
    if f.corrupted_delivered > 0 || f.corrupted_rejected > 0 {
        println!(
            "    corruption: {} frames delivered corrupted, {} rejected by the codec",
            f.corrupted_delivered, f.corrupted_rejected,
        );
    }
    if !f.crashed_nodes.is_empty() {
        println!("    crashed nodes: {:?}", f.crashed_nodes);
    }
}

fn print_net_summary(net: &NetReport) {
    println!(
        "    net: {} workers, {} frames routed ({} bytes), {} barriers, {} heartbeats",
        net.workers, net.frames_routed, net.frame_bytes, net.barriers, net.heartbeats,
    );
    match (&net.fallback, net.recovery_ms) {
        (Some(reason), Some(ms)) => {
            println!("    net: degraded to the sequential executor in {ms} ms — {reason}");
        }
        (Some(reason), None) => println!("    net: degraded to the sequential executor — {reason}"),
        _ => {}
    }
}

fn run_single(req: &Request) {
    let g = &req.graph;
    println!(
        "graph {} — n = {}, m = {}, max degree {}, girth {}",
        req.graph_desc,
        g.n(),
        g.m(),
        g.max_degree(),
        g.girth().map_or("∞".into(), |x| x.to_string()),
    );
    println!("tester: {} — {}", req.tester.name(), req.tester.property());
    let amp = amplify(&*req.tester, g, req.seed, req.trials);
    let wp = WireParams::for_graph(g);
    let b = wp.congest_bandwidth(4);
    for (i, t) in amp.trials.iter().enumerate() {
        println!(
            "  trial {i}: {} — {} rounds, {} messages, {} bits, worst link {} bits (B = {b})",
            if t.reject { "REJECT" } else { "accept" },
            t.rounds,
            t.messages,
            t.bits,
            t.max_link_bits,
        );
    }
    println!(
        "verdict: {}  ({}/{} trials rejected)",
        if amp.reject { "REJECT" } else { "accept" },
        amp.trials.iter().filter(|t| t.reject).count(),
        amp.trials.len(),
    );
    std::process::exit(if amp.reject { 1 } else { 0 });
}

fn run_batch(req: &BatchRequest) {
    let text = match std::fs::read_to_string(&req.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {}: {e}", req.path);
            std::process::exit(2);
        }
    };
    let specs = match parse_batch_file(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let jobs = batch_jobs(&specs, req);
    // The session validates (k, ε) at build time — a bad cell is a
    // usage error here, never a panic mid-sweep.
    let session = match TesterSession::builder(req.k, req.eps).build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "batch {}: {} graph(s) × {} trial(s) = {} job(s), tester ck (k = {}, ε = {})",
        req.path,
        specs.len(),
        req.trials.max(1),
        jobs.len(),
        req.k,
        req.eps,
    );
    let runs = match session.test_batch(&jobs, req.shards) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let trials = req.trials.max(1) as usize;
    let mut any_reject = false;
    for (gi, (spec, graph)) in specs.iter().enumerate() {
        let cell = &runs[gi * trials..(gi + 1) * trials];
        let rejects = cell.iter().filter(|r| r.reject).count();
        let rounds: u64 = cell.iter().map(|r| u64::from(r.outcome.report.rounds)).sum();
        let messages: u64 = cell.iter().map(|r| r.outcome.report.total_messages()).sum();
        any_reject |= rejects > 0;
        println!(
            "  {spec} — n = {}, m = {}: {} ({rejects}/{trials} trials rejected, {rounds} rounds, {messages} messages)",
            graph.n(),
            graph.m(),
            if rejects > 0 { "REJECT" } else { "accept" },
        );
    }
    println!("batch verdict: {}", if any_reject { "REJECT" } else { "accept" });
    std::process::exit(if any_reject { 1 } else { 0 });
}

fn print_help() {
    println!(
        "ckprobe — distributed cycle detection (Fraigniaud & Olivetti, SPAA 2017)\n\n\
         usage: ckprobe --graph SPEC [--tester ck|triangle|c4|forest]\n\
         \x20                       [--k K] [--eps E] [--trials N] [--seed S]\n\
         \x20                       [--repetitions R] [--workers W] [--verbose]\n\
         \x20      ckprobe --batch FILE [--k K] [--eps E] [--trials N] [--seed S]\n\
         \x20                       [--repetitions R] [--shards W]\n\
         \x20      ckprobe net-worker ADDR INDEX\n\
         \x20      ckprobe serve [--addr A] [--workers N] [--max-nodes N]\n\
         \x20                    [--inflight-budget N] [--idle-reclaim-ms MS]\n\
         \x20                    [--max-conns N]\n\
         \x20      ckprobe submit ADDR [--graph SPEC] [--k K] [--eps E] [--seed S]\n\
         \x20                    [--repetitions R] [--job-id ID] [--stats] [--shutdown]\n\n\
         --batch runs every graph spec in FILE (one per line, # comments)\n\
         through the sharded batch runner with the ck tester; --trials\n\
         fans each spec out with derived seeds.\n\n\
         --workers W runs the ck tester on the distributed executor: the\n\
         graph is partitioned over W spawned `ckprobe net-worker` processes\n\
         exchanging rounds over loopback TCP; on any worker failure the run\n\
         degrades to the in-process sequential executor and says so.\n\
         --verbose adds per-trial fault and network report summaries.\n\n\
         serve runs the long-lived probe service: a pool of warm tester\n\
         sessions behind a loopback RPC endpoint (prints `ckserve listening\n\
         on ADDR`; port 0 allocates). submit talks to it: jobs print their\n\
         verdict (exit 0/1), service refusals — bad parameters, oversized\n\
         graphs, backpressure, draining — print the typed reason (exit 3).\n\n\
         exit status: 0 = accept, 1 = reject, 2 = usage error,\n\
         \x20             3 = worker or service error\n\n{}",
        graph_spec_help()
    );
}
