//! Process-mode distributed runs through the real `ckprobe` binary:
//! the coordinator spawns `ckprobe net-worker` child processes, so
//! these tests cover the full fork + TCP + SIGKILL surface that the
//! in-crate thread-mode tests cannot.

use std::process::Command;
use std::time::{Duration, Instant};

use ck_congest::engine::{EngineConfig, EngineError, Executor};
use ck_congest::net::chaos::ChaosPlan;
use ck_congest::net::NetOptions;
use ck_core::session::TesterSession;
use ck_core::tester::TesterConfig;
use ck_graphgen::planted::eps_far_instance;

/// Hard bound on any chaos run: a hang would blow far past this.
const CHAOS_BUDGET: Duration = Duration::from_secs(60);

fn ckprobe() -> &'static str {
    env!("CARGO_BIN_EXE_ckprobe")
}

/// Net options that spawn real `ckprobe net-worker` processes.
fn process_net() -> NetOptions {
    NetOptions {
        connect_timeout_ms: 20_000,
        round_deadline_ms: 10_000,
        heartbeat_ms: 50,
        worker_cmd: Some(vec![ckprobe().to_string(), "net-worker".to_string()]),
        ..NetOptions::default()
    }
}

fn cfg() -> TesterConfig {
    let mut cfg = TesterConfig::new(4, 0.15, 11);
    cfg.repetitions = Some(2);
    cfg
}

#[test]
fn process_mode_matches_sequential_oracle() {
    let inst = eps_far_instance(24, 4, 0.15, 3);
    let oracle = TesterSession::from_config(cfg(), EngineConfig::default())
        .unwrap()
        .test(&inst.graph)
        .unwrap();
    let dist = TesterSession::from_config(
        cfg(),
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net: process_net(),
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&inst.graph)
    .unwrap();
    let net = dist.outcome.report.net.as_ref().unwrap();
    assert!(
        net.completed_distributed(),
        "healthy process-mode run must not degrade: {:?}",
        net.fallback
    );
    assert_eq!(dist.reject, oracle.reject);
    assert_eq!(dist.outcome.verdicts, oracle.outcome.verdicts);
    assert_eq!(dist.outcome.report.per_round, oracle.outcome.report.per_round);
}

#[test]
fn process_mode_kill_nine_falls_back_within_deadline() {
    let inst = eps_far_instance(24, 4, 0.15, 4);
    // SIGKILL worker 1 at the start of round 1: no goodbye, no flush —
    // the coordinator must type the loss and recover via the oracle.
    let net = NetOptions { kill_worker: Some((1, 1)), round_deadline_ms: 5_000, ..process_net() };
    let started = Instant::now();
    let run = TesterSession::from_config(
        cfg(),
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net,
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&inst.graph)
    .unwrap();
    assert!(started.elapsed() < CHAOS_BUDGET, "kill -9 recovery exceeded the budget");
    let net = run.outcome.report.net.as_ref().unwrap();
    assert!(net.fallback.is_some(), "worker loss must be recorded");
    assert!(net.recovery_ms.is_some());
    let oracle = TesterSession::from_config(cfg(), EngineConfig::default())
        .unwrap()
        .test(&inst.graph)
        .unwrap();
    assert_eq!(run.reject, oracle.reject);
    assert_eq!(run.outcome.verdicts, oracle.outcome.verdicts);
}

#[test]
fn process_mode_hard_abort_falls_back() {
    let inst = eps_far_instance(24, 4, 0.15, 5);
    // The chaos plan makes worker 0 call `process::abort()` when told
    // to run round 1 — an exit so hard no destructor runs.
    let net = NetOptions {
        chaos: Some(ChaosPlan { abort_at_round: Some(1), ..ChaosPlan::for_worker(0) }),
        round_deadline_ms: 5_000,
        ..process_net()
    };
    let started = Instant::now();
    let run = TesterSession::from_config(
        cfg(),
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net,
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&inst.graph)
    .unwrap();
    assert!(started.elapsed() < CHAOS_BUDGET);
    assert!(run.outcome.report.net.as_ref().unwrap().fallback.is_some());
}

#[test]
fn process_mode_typed_error_when_fallback_disabled() {
    let inst = eps_far_instance(24, 4, 0.15, 6);
    let net = NetOptions {
        kill_worker: Some((0, 1)),
        round_deadline_ms: 5_000,
        fallback: false,
        ..process_net()
    };
    let started = Instant::now();
    let err = TesterSession::from_config(
        cfg(),
        EngineConfig {
            executor: Executor::Distributed { workers: 2 },
            net,
            ..EngineConfig::default()
        },
    )
    .unwrap()
    .test(&inst.graph)
    .unwrap_err();
    assert!(started.elapsed() < CHAOS_BUDGET);
    let EngineError::Net(ne) = err else {
        panic!("expected a typed NetError, got {err:?}");
    };
    assert!(ne.to_string().contains("worker 0"), "{ne}");
}

// ---------------------------------------------------------------------------
// CLI smoke: the user-facing surface end to end.
// ---------------------------------------------------------------------------

#[test]
fn cli_distributed_verbose_smoke() {
    let out = Command::new(ckprobe())
        .args([
            "--graph",
            "eps-far:24:4:0.15:3",
            "--k",
            "4",
            "--eps",
            "0.15",
            "--repetitions",
            "1",
            "--workers",
            "2",
            "--verbose",
        ])
        .output()
        .expect("running ckprobe");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "planted instance rejects:\n{stdout}");
    assert!(stdout.contains("distributed (2 workers)"), "{stdout}");
    assert!(stdout.contains("net: 2 workers"), "{stdout}");
    assert!(stdout.contains("verdict: REJECT"), "{stdout}");
}

#[test]
fn cli_verbose_sequential_smoke() {
    let out = Command::new(ckprobe())
        .args([
            "--graph",
            "free:20:4",
            "--k",
            "4",
            "--eps",
            "0.2",
            "--repetitions",
            "1",
            "--verbose",
        ])
        .output()
        .expect("running ckprobe");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "free instance accepts:\n{stdout}");
    assert!(stdout.contains("faults: none"), "{stdout}");
    assert!(stdout.contains("verdict: accept"), "{stdout}");
}

#[test]
fn cli_net_worker_usage_error() {
    let out = Command::new(ckprobe())
        .args(["net-worker", "127.0.0.1:1"])
        .output()
        .expect("running ckprobe");
    assert_eq!(out.status.code(), Some(2), "missing index is a usage error");
    // A worker pointed at a dead coordinator exits with the worker
    // failure status after bounded connect retries — never hangs.
    let started = Instant::now();
    let out = Command::new(ckprobe())
        .args(["net-worker", "127.0.0.1:9", "0"])
        .output()
        .expect("running ckprobe");
    assert!(started.elapsed() < CHAOS_BUDGET);
    assert_eq!(out.status.code(), Some(3), "connect failure is typed");
}
