//! The `ckprobe serve` / `ckprobe submit` surface through the real
//! binary: exit codes, the port-discovery stdout line, typed refusals
//! on stderr, and a clean drain on shutdown.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

fn ckprobe() -> &'static str {
    env!("CARGO_BIN_EXE_ckprobe")
}

/// Spawns `ckprobe serve` and parses the `ckserve listening on ADDR`
/// line — exactly what any scripted caller (the CI smoke job
/// included) does.
fn spawn_service(extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(ckprobe());
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"]);
    cmd.args(extra);
    let mut child = cmd.stdout(Stdio::piped()).stderr(Stdio::null()).spawn().unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("ckserve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

fn submit(addr: &str, args: &[&str]) -> std::process::Output {
    Command::new(ckprobe()).args(["submit", addr]).args(args).output().unwrap()
}

#[test]
fn serve_submit_stats_shutdown_round_trip() {
    let (mut child, addr) = spawn_service(&[]);

    // A C5-free graph accepts: exit 0.
    let out =
        submit(&addr, &["--graph", "cycle:9", "--k", "5", "--eps", "0.1", "--repetitions", "2"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("accept"));

    // C5 itself rejects: exit 1, as for a direct `--graph` run.
    let out =
        submit(&addr, &["--graph", "cycle:5", "--k", "5", "--eps", "0.1", "--repetitions", "2"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REJECT"));

    // Stats reflect both jobs.
    let out = submit(&addr, &["--stats"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("2 submitted, 2 completed, 0 refused"), "{text}");
    assert!(text.contains("pool outstanding 0"), "{text}");

    // Shutdown drains and the service process exits 0 by itself.
    let out = submit(&addr, &["--shutdown"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("2 job(s) completed"));
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(0));
}

/// Satellite: both admission paths through the CLI — parameters the
/// session's `ConfigError` rejects, and graphs over the service's
/// size cap — exit 3 with the typed reason on stderr, leaving the
/// service alive.
#[test]
fn refused_jobs_exit_3_with_typed_reason() {
    let (mut child, addr) = spawn_service(&["--max-nodes", "16"]);

    let out = submit(&addr, &["--graph", "cycle:5", "--k", "99"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("refused") && err.contains("k = 99"), "{err}");

    let out = submit(&addr, &["--graph", "cycle:5", "--eps", "0"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("refused") && err.contains("ε"), "{err}");

    let out = submit(&addr, &["--graph", "cycle:64", "--k", "5"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("refused") && err.contains("exceeds"), "{err}");

    // Three refusals later the service still runs real jobs.
    let out =
        submit(&addr, &["--graph", "cycle:5", "--k", "5", "--repetitions", "1", "--shutdown"]);
    assert_eq!(out.status.code(), Some(1), "reject verdict wins the exit code: {out:?}");
    assert_eq!(child.wait().unwrap().code(), Some(0));
}

/// A submit against nothing exits 3 without hanging; a malformed graph
/// spec is a usage error (2) caught before any connection.
#[test]
fn connection_and_usage_failures_are_distinct() {
    let out = submit("127.0.0.1:1", &["--stats"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    let (mut child, addr) = spawn_service(&[]);
    let out = submit(&addr, &["--graph", "nosuch:5"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    submit(&addr, &["--shutdown"]);
    assert_eq!(child.wait().unwrap().code(), Some(0));
}
