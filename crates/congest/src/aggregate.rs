//! Tree aggregation: convergecast and broadcast over a BFS tree.
//!
//! The textbook CONGEST pattern for global functions — sum/min/max/count
//! flow *up* a rooted tree (convergecast), the result flows *down*
//! (broadcast) — in `O(depth)` rounds with one `O(log n)`-bit value per
//! edge per round. Used here both as a substrate reference protocol and
//! to justify the "nodes know n and m" convention of the node context
//! (both are one aggregation away).

use crate::engine::{EngineConfig, EngineError};
use crate::graph::{Graph, NodeIndex};
use crate::node::{Inbox, Outbox, Program, Status};
use crate::protocols::build_bfs_tree;
use crate::session::Session;

/// Associative-commutative aggregations supported by the convergecast.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregateOp {
    Sum,
    Min,
    Max,
    Count,
}

impl AggregateOp {
    fn identity(&self) -> u64 {
        match self {
            AggregateOp::Sum | AggregateOp::Count => 0,
            AggregateOp::Min => u64::MAX,
            AggregateOp::Max => 0,
        }
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        match self {
            AggregateOp::Sum | AggregateOp::Count => a.saturating_add(b),
            AggregateOp::Min => a.min(b),
            AggregateOp::Max => a.max(b),
        }
    }
}

/// Per-node convergecast state. The tree is provided upfront (parent
/// port per node) — in a deployment it comes from [`build_bfs_tree`];
/// the combined driver below wires both.
struct Convergecast {
    op: AggregateOp,
    value: u64,
    parent_port: Option<u32>,
    /// Child ports still expected to report.
    pending_children: usize,
    sent_up: bool,
    /// Final global value (valid at the root after convergecast, at all
    /// nodes after broadcast).
    result: Option<u64>,
    rounds_cap: u32,
}

/// Messages: `Up(partial)` during convergecast, `Down(total)` during
/// broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
enum AggMsg {
    Up(u64),
    Down(u64),
}

impl crate::message::WireMessage for AggMsg {
    fn wire_bits(&self, params: &crate::message::WireParams) -> u64 {
        // One value plus a direction bit; values are O(log n)-bit words
        // for counts/ids (sums of bounded values stay within O(log n)
        // words for the harness's use cases).
        1 + u64::from(params.id_bits)
    }
}

impl Program for Convergecast {
    type Msg = AggMsg;
    type Verdict = Option<u64>;

    fn step(&mut self, round: u32, inbox: Inbox<'_, AggMsg>, out: &mut Outbox<AggMsg>) -> Status {
        for inc in inbox.iter() {
            match *inc.msg {
                AggMsg::Up(v) => {
                    self.value = self.op.combine(self.value, v);
                    self.pending_children = self.pending_children.saturating_sub(1);
                }
                AggMsg::Down(total) => {
                    if self.result.is_none() {
                        self.result = Some(total);
                        // Forward down to children (every port except the
                        // parent's).
                        for p in 0..out_degree(out) {
                            if Some(p) != self.parent_port {
                                out.send(p, AggMsg::Down(total));
                            }
                        }
                        return Status::Halted;
                    }
                }
            }
        }
        if self.pending_children == 0 && !self.sent_up {
            self.sent_up = true;
            match self.parent_port {
                Some(p) => out.send(p, AggMsg::Up(self.value)),
                None => {
                    // Root: aggregation complete; start the broadcast.
                    self.result = Some(self.value);
                    for p in 0..out_degree(out) {
                        out.send(p, AggMsg::Down(self.value));
                    }
                    return Status::Halted;
                }
            }
        }
        if round >= self.rounds_cap {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn verdict(&self) -> Option<u64> {
        self.result
    }
}

fn out_degree<M: crate::message::WireMessage>(out: &Outbox<M>) -> u32 {
    out.degree()
}

/// Aggregates `values[v]` over the component of `root` with `op`,
/// returning the per-node results (every node in the component learns
/// the total; nodes outside it return `None`).
pub fn aggregate(
    g: &Graph,
    root: NodeIndex,
    op: AggregateOp,
    values: &[u64],
    config: &EngineConfig,
) -> Result<Vec<Option<u64>>, EngineError> {
    assert_eq!(values.len(), g.n(), "one value per node");
    // Stage 1: BFS tree (its own protocol run).
    let tree = build_bfs_tree(g, root, config)?;
    // Child counts per node.
    let mut children = vec![0usize; g.n()];
    let mut parent_port: Vec<Option<u32>> = vec![None; g.n()];
    for (v, info) in tree.iter().enumerate() {
        if let Some(pid) = info.parent {
            // ck-lint: allow(no-panic, reason = "parent ids come from the BFS tree built over this same graph two lines up")
            let p = g.index_of(pid).expect("parent exists");
            children[p as usize] += 1;
            parent_port[v] = g.port_to(v as NodeIndex, p);
        }
    }
    // Stage 2: convergecast + broadcast.
    let cap = 2 * g.n() as u32 + 4;
    let mut cfg = config.clone();
    cfg.max_rounds = cap;
    let reached: Vec<bool> = tree.iter().map(|t| t.dist != u32::MAX).collect();
    let outcome = Session::builder(g).config(cfg).build().run(|init| {
        let v = init.index as usize;
        Convergecast {
            op,
            value: if reached[v] {
                match op {
                    AggregateOp::Count => 1,
                    _ => values[v],
                }
            } else {
                op.identity()
            },
            parent_port: parent_port[v],
            pending_children: children[v],
            sent_up: !reached[v], // unreached nodes stay silent
            result: None,
            rounds_cap: cap,
        }
    })?;
    Ok(outcome
        .verdicts
        .into_iter()
        .enumerate()
        .map(|(v, r)| if reached[v] { r } else { None })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn sample() -> Graph {
        GraphBuilder::new(7)
            .edges([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)])
            .build()
            .unwrap()
    }

    #[test]
    fn sum_over_a_tree() {
        let g = sample();
        let values = [1u64, 2, 3, 4, 5, 6, 7];
        let out = aggregate(&g, 0, AggregateOp::Sum, &values, &EngineConfig::default()).unwrap();
        assert!(out.iter().all(|&r| r == Some(28)), "{out:?}");
    }

    #[test]
    fn min_max_count() {
        let g = sample();
        let values = [9u64, 4, 12, 7, 3, 20, 1];
        let min = aggregate(&g, 0, AggregateOp::Min, &values, &EngineConfig::default()).unwrap();
        assert_eq!(min[3], Some(1));
        let max = aggregate(&g, 0, AggregateOp::Max, &values, &EngineConfig::default()).unwrap();
        assert_eq!(max[6], Some(20));
        let count =
            aggregate(&g, 0, AggregateOp::Count, &values, &EngineConfig::default()).unwrap();
        assert!(count.iter().all(|&r| r == Some(7)));
    }

    #[test]
    fn works_on_cyclic_graphs_too() {
        // Aggregation runs over the BFS tree of an arbitrary graph.
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)])
            .build()
            .unwrap();
        let values = [1u64; 5];
        let out = aggregate(&g, 2, AggregateOp::Sum, &values, &EngineConfig::default()).unwrap();
        assert!(out.iter().all(|&r| r == Some(5)));
    }

    #[test]
    fn disconnected_nodes_learn_nothing() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build().unwrap();
        let values = [5u64, 6, 7, 8];
        let out = aggregate(&g, 0, AggregateOp::Sum, &values, &EngineConfig::default()).unwrap();
        assert_eq!(out[0], Some(11));
        assert_eq!(out[1], Some(11));
        assert_eq!(out[2], None);
        assert_eq!(out[3], None);
    }

    #[test]
    fn counting_nodes_justifies_knowing_n() {
        // The "nodes know n" convention: one aggregation computes it.
        let g = sample();
        let out = aggregate(&g, 0, AggregateOp::Count, &[0; 7], &EngineConfig::default()).unwrap();
        assert!(out.iter().all(|&r| r == Some(g.n() as u64)));
    }
}
