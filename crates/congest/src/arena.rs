//! Shared internals of the arena engine: per-directed-edge message
//! lanes, the double-buffered lane arena, and the per-round accumulator
//! the fused accounting feeds. Split out of `engine` so the node-side
//! [`crate::node::Outbox`] can write straight into lanes without a
//! module cycle.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::graph::{DirectedEdgeId, NodeIndex};
use crate::node::Packet;

/// Per-directed-edge wire load for one round, kept in a flat
/// [`LoadTable`] indexed by [`DirectedEdgeId`] (not inside the message
/// lanes: the loads are round-scoped accounting state, the lanes are
/// round-crossing transport).
///
/// Loads are *round-stamped* instead of reset: a load whose `stamp`
/// differs from the current round's stamp is semantically zero, and
/// the first write of a round re-stamps it. No pass over the table —
/// at drain time, at swap time, or anywhere else — ever has to zero
/// anything.
///
/// Stamps live in a 64-bit *offset* space, `table.base + round`: each
/// run gets a fresh epoch (the base advances past every stamp the
/// previous run could have written), so round numbers restarting at 0
/// between batch jobs can never collide with a stale entry and even
/// the between-jobs re-stale scan of the table is gone — workspace
/// reset is O(1) for the loads.
///
/// `bits`/`count` include faulted sends: the sender spent the
/// bandwidth even though the message is never delivered.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LinkLoad {
    pub(crate) bits: u64,
    pub(crate) count: u64,
    /// Offset-space stamp (`base + round`) these counters belong to;
    /// `u64::MAX` = never written (unreachable as a real stamp for any
    /// feasible number of runs — bases advance in `2^32` strides).
    pub(crate) stamp: u64,
}

impl Default for LinkLoad {
    fn default() -> Self {
        LinkLoad { bits: 0, count: 0, stamp: u64::MAX }
    }
}

/// The flat per-directed-edge load table the fused accounting writes.
///
/// Disjointness mirrors the write side of [`Arena`]: directed edge
/// `(v → w)` is loaded only by its unique sender `v`, so rows partition
/// across nodes and the parallel executor's per-node step calls never
/// touch the same entry.
pub(crate) struct LoadTable {
    cells: Vec<UnsafeCell<LinkLoad>>,
    /// Stamp-space base of the current run; every stamp this run
    /// writes is `base + round`. Advanced by a full `2^32` (one more
    /// than any `u32` round number) at each reset, so a stale entry's
    /// stamp can never equal a fresh run's.
    base: u64,
}

// SAFETY: entries are only reached through `LoadTable::row_ptr`, whose
// callers guarantee sender-unique row access; `LinkLoad` is plain data.
unsafe impl Sync for LoadTable {}

impl LoadTable {
    /// An all-stale table of `len` loads (`len` = 0 for runs that never
    /// account — `row_ptr` must not be called on an empty table).
    pub(crate) fn new(len: usize) -> Self {
        LoadTable {
            cells: (0..len).map(|_| UnsafeCell::new(LinkLoad::default())).collect(),
            base: 0,
        }
    }

    /// Prepares the table for a run over `len` loads: advances the
    /// stamp epoch — after which every retained entry is semantically
    /// zero without touching it — and grows the backing array only when
    /// the new graph does not fit. O(1) when the graph fits; the
    /// between-jobs re-stale scan this replaces was the last per-job
    /// O(m) cost of workspace reuse.
    pub(crate) fn reset(&mut self, len: usize) {
        self.base = self.base.wrapping_add(1 << 32);
        if self.cells.len() < len {
            self.cells.resize_with(len, || UnsafeCell::new(LinkLoad::default()));
        }
    }

    /// The offset-space stamp of `round` in the current run's epoch.
    pub(crate) fn stamp_for(&self, round: u32) -> u64 {
        self.base.wrapping_add(u64::from(round))
    }

    /// Raw pointer to the load row starting at directed edge `de` — the
    /// sender-side counterpart of [`Arena::row_ptr`].
    ///
    /// # Safety
    /// The caller must be the unique accessor of the row's entries while
    /// the pointer lives (sender-owned rows satisfy this), and `de` must
    /// be at most the table length (`de == len` is the empty row of a
    /// degree-0 sender — one past the end, fine to form, never read).
    pub(crate) unsafe fn row_ptr(&self, de: DirectedEdgeId) -> *mut LinkLoad {
        debug_assert!(de as usize <= self.cells.len());
        // UnsafeCell<T> is repr(transparent) over T.
        self.cells.as_ptr().add(de as usize) as *mut LinkLoad
    }
}

/// One per-directed-edge message lane: the messages in flight across
/// that edge, stored already labeled with their *receiver-side* port
/// (one sequential `rev_port` lookup at send time), so a receiver's
/// gather is a whole-`Vec` swap or bulk append — no per-message work.
/// Broadcast traffic appears as [`Packet::Shared`] refs into the same
/// generation's broadcast slots.
pub(crate) type Lane<M> = Vec<Packet<M>>;

/// A flat array of `2m` lanes keyed by [`DirectedEdgeId`], plus one
/// broadcast slot per node.
///
/// Interior mutability with hand-verified disjointness: Rust's borrow
/// checker cannot see that the engine's per-node access patterns
/// partition the lanes, so the arena exposes unchecked exclusive access
/// and the round loop upholds the contract documented on the accessors.
pub(crate) struct Arena<M> {
    lanes: Vec<UnsafeCell<Lane<M>>>,
    /// Per-sender broadcast slots: slot `v` holds the payload of `v`'s
    /// broadcast of this generation *once*; the lanes carry shared refs
    /// into it. Written only by `v` during the write phase, read only
    /// by `v`'s neighbors during the following read phase (when no slot
    /// of this arena is written at all), overwritten by `v`'s next
    /// same-parity broadcast — which is when the stale payload is
    /// evicted back to `v` for recycling. Never scanned or cleared.
    slots: Vec<UnsafeCell<Option<M>>>,
    /// Per-receiver traffic hint: `dirty[w]` is set (relaxed) by the
    /// first write into any lane `(· → w)` this round, and cleared by
    /// `w` when it gathers. Lets receivers skip the whole lane scan on
    /// silent rounds — an O(n) check instead of O(2m) lane visits. The
    /// flag's value is independent of executor interleaving (it only
    /// ever goes false→true during a write phase), so determinism is
    /// preserved.
    dirty: Vec<AtomicBool>,
    /// Lane/slot extents the current (or last) run uses; `reset` only
    /// cleans these prefixes.
    used_lanes: usize,
    used_nodes: usize,
}

// SAFETY: lanes are only accessed through `Arena::lane` / `Arena::row`,
// whose callers guarantee disjointness (each lane touched by exactly one
// node per phase); `M: Send` makes moving messages across the worker
// threads sound, and `M: Sync` covers the concurrent shared reads of
// broadcast slots by multiple receivers. No `&Lane` is ever handed out
// while a `&mut Lane` exists.
unsafe impl<M: Send + Sync> Sync for Arena<M> {}

impl<M> Arena<M> {
    pub(crate) fn new(directed_edges: usize, nodes: usize) -> Self {
        Arena {
            lanes: (0..directed_edges).map(|_| UnsafeCell::new(Lane::default())).collect(),
            slots: (0..nodes).map(|_| UnsafeCell::new(None)).collect(),
            dirty: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            used_lanes: directed_edges,
            used_nodes: nodes,
        }
    }

    /// Prepares the arena for a run over `directed_edges` lanes and
    /// `nodes` slots, reusing the previous run's allocations: lanes in
    /// the previously used extent are cleared (capacity kept — the
    /// whole point of batch reuse), stale broadcast payloads are
    /// dropped, traffic hints are lowered, and the backing arrays grow
    /// only when the new graph does not fit. `&mut self` proves
    /// exclusivity, so no unsafe cell access is needed.
    pub(crate) fn reset(&mut self, directed_edges: usize, nodes: usize) {
        for lane in self.lanes.iter_mut().take(self.used_lanes) {
            lane.get_mut().clear();
        }
        for slot in self.slots.iter_mut().take(self.used_nodes) {
            *slot.get_mut() = None;
        }
        for flag in self.dirty.iter_mut().take(self.used_nodes) {
            *flag.get_mut() = false;
        }
        if self.lanes.len() < directed_edges {
            self.lanes.resize_with(directed_edges, || UnsafeCell::new(Lane::default()));
        }
        if self.slots.len() < nodes {
            self.slots.resize_with(nodes, || UnsafeCell::new(None));
        }
        if self.dirty.len() < nodes {
            self.dirty.resize_with(nodes, || AtomicBool::new(false));
        }
        self.used_lanes = directed_edges;
        self.used_nodes = nodes;
    }

    /// True if any lane addressed to `v` was written last round.
    #[inline]
    pub(crate) fn is_dirty(&self, v: NodeIndex) -> bool {
        self.dirty[v as usize].load(Ordering::Relaxed)
    }

    /// Clears `v`'s traffic hint (receiver-side, after gathering).
    #[inline]
    pub(crate) fn clear_dirty(&self, v: NodeIndex) {
        self.dirty[v as usize].store(false, Ordering::Relaxed)
    }

    /// Base pointer of the dirty-flag array, for the sender-side outbox.
    pub(crate) fn dirty_ptr(&self) -> *const AtomicBool {
        self.dirty.as_ptr()
    }

    /// Type-erased base pointer of the broadcast-slot array
    /// (`*mut Option<M>`), for the sender-side outbox. Access contract
    /// as documented on the field: slot `v` is touched only by sender
    /// `v`, and only while this arena is in the write role.
    pub(crate) fn slots_ptr(&self) -> *mut () {
        // UnsafeCell<T> is repr(transparent) over T.
        self.slots.as_ptr() as *mut ()
    }

    /// Exclusive access to one lane.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent or overlapping access to
    /// `de`. The round loop satisfies this by construction: in the write
    /// phase a lane is touched only by its unique sender, in the drain
    /// phase only by its unique receiver, and the two phases address
    /// different arenas.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn lane(&self, de: DirectedEdgeId) -> &mut Lane<M> {
        &mut *self.lanes[de as usize].get()
    }

    /// Raw base pointer of the contiguous lane row starting at `de` —
    /// handed to a sender's direct-writing outbox for the duration of
    /// one step call.
    ///
    /// # Safety
    /// Same contract as [`Arena::lane`], for every lane of the row: the
    /// caller must be the row's unique writer while the pointer lives.
    pub(crate) unsafe fn row_ptr(&self, de: DirectedEdgeId) -> *mut Lane<M> {
        // UnsafeCell<T> is repr(transparent) over T.
        self.lanes.as_ptr().add(de as usize) as *mut Lane<M>
    }

    /// Takes the payload parked in sender `v`'s broadcast slot, if any.
    /// `&mut self` proves the round loop is over, so no lane can still
    /// be read and no unsafe cell access is needed. Used by the engine's
    /// end-of-run drain that hands parked payloads back to programs for
    /// recycling (instead of letting the next run's reset drop them).
    pub(crate) fn take_slot(&mut self, v: NodeIndex) -> Option<M> {
        self.slots.get_mut(v as usize).and_then(|s| s.get_mut().take())
    }
}

/// Double-buffered per-receiver inboxes for the sequential fast path:
/// senders push pre-labeled [`Packet`]s straight into the receiver's
/// next-round buffer, receivers read and clear their current one.
/// Broadcast payloads park once in the sender's slot (same
/// double-buffered parity discipline as [`Arena`]'s slots) and the
/// buffers carry shared refs. No `Sync` impl — this arena must never
/// cross threads (receiver buffers are multi-writer), which the engine
/// guarantees by using it only under `Executor::Sequential`.
pub(crate) struct InboxArena<M> {
    boxes: Vec<UnsafeCell<Vec<Packet<M>>>>,
    /// Per-sender broadcast slots; see [`Arena::slots`].
    slots: Vec<UnsafeCell<Option<M>>>,
    /// Extent the current (or last) run uses; `reset` only cleans this
    /// prefix.
    used: usize,
}

impl<M> InboxArena<M> {
    pub(crate) fn new(nodes: usize) -> Self {
        InboxArena {
            boxes: (0..nodes).map(|_| UnsafeCell::new(Vec::new())).collect(),
            slots: (0..nodes).map(|_| UnsafeCell::new(None)).collect(),
            used: nodes,
        }
    }

    /// Prepares the arena for a run over `nodes` receivers, reusing the
    /// previous run's buffer capacities; see [`Arena::reset`].
    pub(crate) fn reset(&mut self, nodes: usize) {
        for b in self.boxes.iter_mut().take(self.used) {
            b.get_mut().clear();
        }
        for slot in self.slots.iter_mut().take(self.used) {
            *slot.get_mut() = None;
        }
        if self.boxes.len() < nodes {
            self.boxes.resize_with(nodes, || UnsafeCell::new(Vec::new()));
        }
        if self.slots.len() < nodes {
            self.slots.resize_with(nodes, || UnsafeCell::new(None));
        }
        self.used = nodes;
    }

    /// Exclusive access to one receiver's buffer.
    ///
    /// # Safety
    /// No other reference to `v`'s buffer may be live. The sequential
    /// round loop alternates strictly between "owner reads/clears its
    /// current buffer" and "senders push into next buffers", never
    /// holding two references at once.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn inbox(&self, v: NodeIndex) -> &mut Vec<Packet<M>> {
        &mut *self.boxes[v as usize].get()
    }

    /// Type-erased base pointer of the buffer array, for the outbox's
    /// inbox sink.
    pub(crate) fn base_ptr(&self) -> *mut () {
        self.boxes.as_ptr() as *mut ()
    }

    /// Type-erased base pointer of the broadcast-slot array
    /// (`*mut Option<M>`); see [`Arena::slots_ptr`].
    pub(crate) fn slots_ptr(&self) -> *mut () {
        // UnsafeCell<T> is repr(transparent) over T.
        self.slots.as_ptr() as *mut ()
    }

    /// Takes the payload parked in sender `v`'s broadcast slot, if any;
    /// see [`Arena::take_slot`].
    pub(crate) fn take_slot(&mut self, v: NodeIndex) -> Option<M> {
        self.slots.get_mut(v as usize).and_then(|s| s.get_mut().take())
    }
}

/// Round statistics accumulated in the fused write path, per node, and
/// merged across nodes. Merging is associative, and `violation` keeps
/// the leftmost (= lowest node index) entry, so sequential folds and
/// chunked parallel reductions produce identical results.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct RoundAcc {
    pub messages: u64,
    pub bits: u64,
    pub max_message_bits: u64,
    pub max_link_bits: u64,
    pub max_link_messages: u64,
    /// Nodes that transitioned `Running → Halted` this round.
    pub halted: u32,
    /// First (by node index) lane that exceeded an enforced budget:
    /// `(sender, port, end-of-round lane bits)`.
    pub violation: Option<(NodeIndex, u32, u64)>,
    /// Messages lost to each fault kind, indexed by
    /// [`crate::fault::DropKind::index`].
    pub drops_by_kind: [u64; crate::fault::DropKind::COUNT],
    /// Frames tampered in flight that still decoded (delivered garbage).
    pub corrupted_delivered: u64,
    /// Frames tampered in flight that no longer decoded (lost).
    pub corrupted_rejected: u64,
}

impl RoundAcc {
    pub(crate) fn merge(a: RoundAcc, b: RoundAcc) -> RoundAcc {
        let mut drops_by_kind = a.drops_by_kind;
        for (d, s) in drops_by_kind.iter_mut().zip(b.drops_by_kind) {
            *d += s;
        }
        RoundAcc {
            messages: a.messages + b.messages,
            bits: a.bits + b.bits,
            max_message_bits: a.max_message_bits.max(b.max_message_bits),
            max_link_bits: a.max_link_bits.max(b.max_link_bits),
            max_link_messages: a.max_link_messages.max(b.max_link_messages),
            halted: a.halted + b.halted,
            violation: a.violation.or(b.violation),
            drops_by_kind,
            corrupted_delivered: a.corrupted_delivered + b.corrupted_delivered,
            corrupted_rejected: a.corrupted_rejected + b.corrupted_rejected,
        }
    }

    /// Folds this accumulator's fault counters into a run-level report.
    pub(crate) fn add_faults_to(&self, fr: &mut crate::metrics::FaultReport) {
        use crate::fault::DropKind;
        fr.dropped_explicit += self.drops_by_kind[DropKind::Explicit.index()];
        fr.dropped_random += self.drops_by_kind[DropKind::Random.index()];
        fr.dropped_crash += self.drops_by_kind[DropKind::Crash.index()];
        fr.dropped_cut += self.drops_by_kind[DropKind::Cut.index()];
        fr.dropped_burst += self.drops_by_kind[DropKind::Burst.index()];
        fr.corrupted_delivered += self.corrupted_delivered;
        fr.corrupted_rejected += self.corrupted_rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_associative_and_keeps_leftmost_violation() {
        let a =
            RoundAcc { messages: 1, bits: 10, violation: Some((3, 0, 9)), ..RoundAcc::default() };
        let b =
            RoundAcc { messages: 2, bits: 5, violation: Some((7, 1, 4)), ..RoundAcc::default() };
        let c = RoundAcc { messages: 4, max_link_bits: 99, ..RoundAcc::default() };
        let left = RoundAcc::merge(RoundAcc::merge(a, b), c);
        let right = RoundAcc::merge(a, RoundAcc::merge(b, c));
        assert_eq!(left.messages, 7);
        assert_eq!(left.messages, right.messages);
        assert_eq!(left.max_link_bits, 99);
        assert_eq!(left.violation, Some((3, 0, 9)));
        assert_eq!(right.violation, Some((3, 0, 9)));
    }

    #[test]
    fn lanes_start_zeroed() {
        let arena: Arena<u64> = Arena::new(4, 2);
        for de in 0..4 {
            // SAFETY: single-threaded test, no overlapping access.
            let lane = unsafe { arena.lane(de) };
            assert!(lane.is_empty());
        }
        assert!(!arena.is_dirty(0) && !arena.is_dirty(1));
    }

    #[test]
    fn loads_start_stale() {
        let table = LoadTable::new(3);
        for de in 0..3 {
            // SAFETY: single-threaded test, no overlapping access.
            let load = unsafe { &*table.row_ptr(de) };
            assert_eq!(load.stamp, u64::MAX, "fresh loads must be stale-stamped");
            assert_eq!((load.bits, load.count), (0, 0));
            // The sentinel can never equal a real stamp of this epoch.
            for round in [0u32, 1, u32::MAX] {
                assert_ne!(load.stamp, table.stamp_for(round));
            }
        }
    }

    /// Round-offset stamping: a reset must be O(1) — no pass over the
    /// cells — yet leave every retained entry semantically zero, even
    /// when the next run reuses the exact round numbers of the last.
    #[test]
    fn reset_advances_epoch_without_touching_cells() {
        let mut table = LoadTable::new(2);
        table.reset(2);
        let job1_r5 = table.stamp_for(5);
        // Job 1 writes round-5 traffic on both links.
        for de in 0..2 {
            // SAFETY: single-threaded test, no overlapping access.
            let load = unsafe { &mut *table.row_ptr(de) };
            *load = LinkLoad { bits: 77, count: 3, stamp: job1_r5 };
        }
        table.reset(2);
        // Same round number, next job: the stamp spaces are disjoint,
        // so the stale counters are semantically zero...
        assert_ne!(table.stamp_for(5), job1_r5);
        for de in 0..2 {
            // SAFETY: as above.
            let load = unsafe { &*table.row_ptr(de) };
            // ...while the cells themselves were provably not scanned:
            // the stale bytes are still there, just unreadable through
            // any stamp the new epoch can produce.
            assert_eq!((load.bits, load.count, load.stamp), (77, 3, job1_r5));
            for round in [0u32, 5, u32::MAX] {
                assert_ne!(load.stamp, table.stamp_for(round));
            }
        }
        // Growth still works and new cells are stale.
        table.reset(4);
        // SAFETY: as above.
        let grown = unsafe { &*table.row_ptr(3) };
        assert_eq!(grown.stamp, u64::MAX);
    }
}
