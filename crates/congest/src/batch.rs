//! Sharded batch execution: run many independent jobs with one
//! reusable shard state per worker.
//!
//! The experiment tables and sweep harnesses of this workspace are
//! statements over *families* of instances — dozens of graphs, trials ×
//! seeds per cell — yet a naive loop rebuilds the engine's arenas and
//! scratch from scratch for every run. This module provides the
//! deterministic fan-out those sweeps share: items are split into
//! contiguous chunks ("shards"), each shard lazily creates one state
//! (typically an [`crate::engine::EngineWorkspace`] plus protocol
//! scratch) and drives its items through it sequentially, and results
//! come back **in input order**, independent of scheduling.
//!
//! Determinism: each job's result depends only on the item and the
//! shard-state contract (a reset workspace is observationally a fresh
//! one), never on which shard ran it or in what interleaving — so a
//! sharded run is bit-identical to `shards = 1`, which is bit-identical
//! to a plain loop.

use rayon::prelude::*;

/// Clamps a requested shard count to something useful for `len` items:
/// at least 1, at most one shard per item, defaulting to the thread
/// pool's width when `requested` is `None`.
pub fn effective_shards(requested: Option<usize>, len: usize) -> usize {
    requested.unwrap_or_else(rayon::current_num_threads).clamp(1, len.max(1))
}

/// Runs `job` over every item, sharded across the thread pool.
///
/// Items are split into `shards` contiguous chunks; each chunk gets one
/// state from `init` and processes its items in index order. With
/// `shards <= 1` everything runs inline on the caller's thread through
/// a single state — the reference path the parallel one must match.
///
/// `job` receives the shard state, the item's global index, and the
/// item; results are returned in input order. Spawns whenever more than
/// one shard is requested — callers whose jobs may be too small to pay
/// for a spawn set a threshold via [`run_sharded_with_min_items`].
pub fn run_sharded<T, S, R, I, J>(items: &[T], shards: usize, init: I, job: J) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    J: Fn(&mut S, usize, &T) -> R + Sync,
{
    run_sharded_with_min_items(items, shards, 0, init, job)
}

/// [`run_sharded`] with a per-call-site inline-vs-spawn threshold:
/// batches of fewer than `min_items` items run inline on the caller's
/// thread through a single state (same as `shards = 1`), regardless of
/// the requested shard count. The global pool heuristic
/// (`MIN_PAR_LEN`) is tuned for node-step closures, not whole tester
/// jobs, so batch call sites pick their own break-even point here.
/// `min_items = 0` always spawns when `shards > 1`.
pub fn run_sharded_with_min_items<T, S, R, I, J>(
    items: &[T],
    shards: usize,
    min_items: usize,
    init: I,
    job: J,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    J: Fn(&mut S, usize, &T) -> R + Sync,
{
    let n = items.len();
    let shards = shards.clamp(1, n.max(1));
    if shards <= 1 || n < min_items {
        let mut state = init();
        return items.iter().enumerate().map(|(i, t)| job(&mut state, i, t)).collect();
    }
    let chunk = n.div_ceil(shards);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    out.par_chunks_mut(chunk).with_min_items(min_items).enumerate().for_each(|(ci, outs)| {
        let base = ci * chunk;
        let mut state = init();
        for (off, slot) in outs.iter_mut().enumerate() {
            *slot = Some(job(&mut state, base + off, &items[base + off]));
        }
    });
    // ck-lint: allow(no-panic, reason = "the shard loop above writes every slot of its chunk exactly once before joining")
    out.into_iter().map(|r| r.expect("every shard fills its chunk")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..23).collect();
        for shards in [1, 2, 4, 23, 100] {
            let states = AtomicUsize::new(0);
            let out = run_sharded(
                &items,
                shards,
                || {
                    states.fetch_add(1, Ordering::Relaxed);
                    0u64 // per-shard running sum, to prove state reuse
                },
                |acc, i, &x| {
                    *acc += x;
                    (i, x * 2, *acc)
                },
            );
            assert_eq!(out.len(), items.len(), "shards={shards}");
            for (i, &(idx, doubled, _)) in out.iter().enumerate() {
                assert_eq!(idx, i);
                assert_eq!(doubled, items[i] * 2);
            }
            // One state per shard actually used (≤ requested; chunks of
            // ceil(n/shards) may need fewer).
            let used = items.len().div_ceil(items.len().div_ceil(shards.clamp(1, items.len())));
            assert_eq!(states.load(Ordering::Relaxed), used, "shards={shards}");
            // Within a shard the state threads through jobs in order:
            // the last job of the first shard saw the chunk's full sum.
            let chunk = items.len().div_ceil(shards.clamp(1, items.len()));
            let first_chunk_sum: u64 = items[..chunk].iter().sum();
            assert_eq!(out[chunk - 1].2, first_chunk_sum, "shards={shards}");
        }
    }

    #[test]
    fn empty_and_single_item_batches() {
        let empty: Vec<u32> = Vec::new();
        let out = run_sharded(&empty, 8, || (), |(), _, _| 1);
        assert!(out.is_empty());
        let one = [42u32];
        let out = run_sharded(&one, 8, || (), |(), i, &x| (i, x));
        assert_eq!(out, vec![(0, 42)]);
    }

    #[test]
    fn min_items_threshold_runs_small_batches_inline() {
        let items: Vec<u64> = (0..6).collect();
        // Below the threshold: one state, inline, same results.
        let states = AtomicUsize::new(0);
        let out = run_sharded_with_min_items(
            &items,
            4,
            16,
            || {
                states.fetch_add(1, Ordering::Relaxed);
            },
            |(), i, &x| (i, x * 3),
        );
        assert_eq!(states.load(Ordering::Relaxed), 1, "small batch must not spawn");
        assert_eq!(out, (0..6).map(|i| (i as usize, i * 3)).collect::<Vec<_>>());
        // At/above the threshold the sharded path engages and agrees.
        let out2 = run_sharded_with_min_items(&items, 4, 6, || (), |(), i, &x| (i, x * 3));
        assert_eq!(out, out2);
        // min_items = 0 is the plain run_sharded behavior.
        let out3 = run_sharded(&items, 4, || (), |(), i, &x| (i, x * 3));
        assert_eq!(out, out3);
    }

    #[test]
    fn effective_shards_clamps_sensibly() {
        assert_eq!(effective_shards(Some(8), 3), 3);
        assert_eq!(effective_shards(Some(0), 3), 1);
        assert_eq!(effective_shards(Some(2), 100), 2);
        assert_eq!(effective_shards(Some(5), 0), 1);
        let auto = effective_shards(None, 64);
        assert!((1..=64).contains(&auto));
    }
}
