//! The synchronous round engine.
//!
//! Executes a [`Program`] on every node of a [`Graph`] in lock-step rounds:
//! step all active nodes (optionally in parallel with rayon — node steps
//! are independent by construction, exactly the data-parallelism the model
//! prescribes), account every message against the wire model, enforce the
//! configured bandwidth policy, then deliver. Delivery order into an inbox
//! is canonical (ascending sender index, then queueing order), so runs are
//! bit-for-bit reproducible and the parallel and sequential executors are
//! interchangeable.

use rayon::prelude::*;

use crate::graph::{Graph, NodeIndex};
use crate::message::{WireMessage, WireParams};
use crate::metrics::{RoundStats, RunReport};
use crate::node::{Incoming, NodeInit, Outbox, Program, Status};

/// How strictly the engine applies the `O(log n)`-bit CONGEST bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandwidthPolicy {
    /// No cap; loads are still measured and reported.
    Measure,
    /// Hard-fail the run if any directed link carries more than `bits` in
    /// one round. Use this to demonstrate that unpruned protocols violate
    /// the model while Algorithm 1 fits after normalization.
    Enforce { bits: u64 },
}

/// Which executor steps the nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Executor {
    /// Plain loop; reference semantics.
    Sequential,
    /// rayon `par_iter` over nodes; identical results, faster wall-clock.
    #[default]
    Parallel,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Hard cap on executed rounds (guards non-terminating protocols).
    pub max_rounds: u32,
    /// Bandwidth policy.
    pub bandwidth: BandwidthPolicy,
    /// Executor choice.
    pub executor: Executor,
    /// If true, per-round stats are recorded in the report (tiny cost;
    /// disable only for the hottest benchmark loops).
    pub record_rounds: bool,
    /// Deterministic message-loss plan (defaults to no loss). Dropped
    /// messages are charged to the sender's accounting but never
    /// delivered.
    pub faults: crate::fault::FaultPlan,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1 << 20,
            bandwidth: BandwidthPolicy::Measure,
            executor: Executor::Parallel,
            record_rounds: true,
            faults: crate::fault::FaultPlan::none(),
        }
    }
}

/// Run failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A directed link exceeded the enforced per-round bit budget.
    BandwidthExceeded {
        round: u32,
        node: NodeIndex,
        port: u32,
        bits: u64,
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BandwidthExceeded { round, node, port, bits, limit } => write!(
                f,
                "round {round}: node {node} port {port} sent {bits} bits > limit {limit}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of a completed run: the measurement report plus one verdict per
/// node (indexed by node index).
#[derive(Clone, Debug)]
pub struct RunOutcome<V> {
    pub report: RunReport,
    pub verdicts: Vec<V>,
}

struct Slot<P: Program> {
    prog: P,
    inbox: Vec<Incoming<P::Msg>>,
    status: Status,
    degree: u32,
}

/// Runs `factory`-instantiated programs on `graph` until every node halts
/// or `config.max_rounds` is reached.
pub fn run<P, F>(graph: &Graph, config: &EngineConfig, mut factory: F) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit) -> P,
{
    let params = WireParams::for_graph(graph);
    run_with_params(graph, config, &params, &mut factory)
}

/// As [`run`], with explicit wire parameters (used when a harness wants to
/// pin `id_bits`/`rank_bits` across differently-labeled graphs).
pub fn run_with_params<P, F>(
    graph: &Graph,
    config: &EngineConfig,
    params: &WireParams,
    factory: &mut F,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit) -> P,
{
    let n = graph.n();
    let mut slots: Vec<Slot<P>> = (0..n)
        .map(|v| {
            let v = v as NodeIndex;
            let init = NodeInit {
                index: v,
                id: graph.id(v),
                neighbor_ids: graph.neighbors(v).iter().map(|&w| graph.id(w)).collect(),
                n,
                m: graph.m(),
            };
            let degree = init.degree() as u32;
            Slot { prog: factory(init), inbox: Vec::new(), status: Status::Running, degree }
        })
        .collect();

    let mut report = RunReport::default();
    let mut round = 0u32;
    let mut all_halted = false;

    while round < config.max_rounds {
        let active = slots.iter().filter(|s| s.status == Status::Running).count();
        if active == 0 {
            all_halted = true;
            break;
        }

        // Step phase: every running node consumes its inbox and queues sends.
        let step_one = |s: &mut Slot<P>, round: u32| -> Vec<(u32, P::Msg)> {
            if s.status != Status::Running {
                s.inbox.clear();
                return Vec::new();
            }
            let inbox = std::mem::take(&mut s.inbox);
            let mut out = Outbox::new(s.degree);
            s.status = s.prog.step(round, &inbox, &mut out);
            out.sends
        };
        let outboxes: Vec<Vec<(u32, P::Msg)>> = match config.executor {
            Executor::Sequential => slots.iter_mut().map(|s| step_one(s, round)).collect(),
            Executor::Parallel => slots.par_iter_mut().map(|s| step_one(s, round)).collect(),
        };

        // Accounting phase.
        let mut stats = RoundStats { round, active_nodes: active, ..RoundStats::default() };
        for (v, sends) in outboxes.iter().enumerate() {
            // Per-port loads; adjacency rows are small, a linear scan per
            // message grouped via a sort-free accumulation is fine because
            // sends within a round per node are few.
            let mut port_bits: Vec<(u32, u64, u64)> = Vec::new(); // (port, bits, msgs)
            for (port, msg) in sends {
                let b = msg.wire_bits(params);
                stats.messages += 1;
                stats.bits += b;
                stats.max_message_bits = stats.max_message_bits.max(b);
                match port_bits.iter_mut().find(|e| e.0 == *port) {
                    Some(e) => {
                        e.1 += b;
                        e.2 += 1;
                    }
                    None => port_bits.push((*port, b, 1)),
                }
            }
            for (port, bits, msgs) in port_bits {
                stats.max_link_bits = stats.max_link_bits.max(bits);
                stats.max_link_messages = stats.max_link_messages.max(msgs);
                if let BandwidthPolicy::Enforce { bits: limit } = config.bandwidth {
                    if bits > limit {
                        return Err(EngineError::BandwidthExceeded {
                            round,
                            node: v as NodeIndex,
                            port,
                            bits,
                            limit,
                        });
                    }
                }
            }
        }

        // Delivery phase: canonical order (ascending sender index, then the
        // order the sender queued) keeps inboxes deterministic. Faulted
        // messages are dropped here — sent (and accounted) but not
        // delivered.
        let check_faults = !config.faults.is_trivial();
        for (v, sends) in outboxes.into_iter().enumerate() {
            let v = v as NodeIndex;
            for (port, msg) in sends {
                if check_faults && config.faults.drops(round, v, port) {
                    continue;
                }
                let w = graph.neighbor_at(v, port);
                let q = graph.reverse_port(v, port);
                slots[w as usize].inbox.push(Incoming { port: q, msg });
            }
        }

        if config.record_rounds {
            report.per_round.push(stats);
        }
        round += 1;
    }

    // A run that exits the loop because max_rounds was reached may still
    // have every node halted (final iteration); recheck.
    if !all_halted {
        all_halted = slots.iter().all(|s| s.status == Status::Halted);
    }
    report.rounds = round;
    report.all_halted = all_halted;

    let verdicts = slots.iter().map(|s| s.prog.verdict()).collect();
    Ok(RunOutcome { report, verdicts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Flood the smallest ID seen so far; halt after `ttl` rounds. The
    /// classical leader-election-by-flooding warm-up protocol.
    struct MinFlood {
        best: u64,
        ttl: u32,
        changed: bool,
    }

    impl Program for MinFlood {
        type Msg = u64;
        type Verdict = u64;

        fn step(&mut self, round: u32, inbox: &[Incoming<u64>], out: &mut Outbox<u64>) -> Status {
            for inc in inbox {
                if inc.msg < self.best {
                    self.best = inc.msg;
                    self.changed = true;
                }
            }
            if round >= self.ttl {
                return Status::Halted;
            }
            if round == 0 || self.changed {
                out.broadcast(&self.best);
                self.changed = false;
            }
            Status::Running
        }

        fn verdict(&self) -> u64 {
            self.best
        }
    }

    fn path_graph(n: usize) -> Graph {
        GraphBuilder::new(n)
            .edges((0..n as u32 - 1).map(|i| (i, i + 1)))
            .build()
            .unwrap()
    }

    fn run_minflood(g: &Graph, exec: Executor) -> RunOutcome<u64> {
        let ttl = g.n() as u32; // diameter bound
        let cfg = EngineConfig { executor: exec, ..EngineConfig::default() };
        run(g, &cfg, |init| MinFlood { best: init.id, ttl, changed: false }).unwrap()
    }

    #[test]
    fn min_flood_converges_on_path() {
        let g = path_graph(16).with_ids((0..16).map(|i| 100 - i as u64).collect()).unwrap();
        let out = run_minflood(&g, Executor::Sequential);
        let global_min = *g.ids().iter().min().unwrap();
        assert!(out.verdicts.iter().all(|&v| v == global_min));
        assert!(out.report.all_halted);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = path_graph(64)
            .with_ids((0..64).map(|i| (i as u64 * 2654435761) % 100_000).collect())
            .unwrap();
        let a = run_minflood(&g, Executor::Sequential);
        let b = run_minflood(&g, Executor::Parallel);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.report.per_round, b.report.per_round);
        assert_eq!(a.report.rounds, b.report.rounds);
    }

    #[test]
    fn round_cap_is_respected() {
        struct Chatter;
        impl Program for Chatter {
            type Msg = ();
            type Verdict = ();
            fn step(&mut self, _round: u32, _inbox: &[Incoming<()>], out: &mut Outbox<()>) -> Status {
                out.broadcast(&());
                Status::Running
            }
            fn verdict(&self) {}
        }
        let g = path_graph(4);
        let cfg = EngineConfig { max_rounds: 7, ..EngineConfig::default() };
        let out = run(&g, &cfg, |_| Chatter).unwrap();
        assert_eq!(out.report.rounds, 7);
        assert!(!out.report.all_halted);
    }

    #[test]
    fn bandwidth_enforcement_trips() {
        struct BigTalker;
        impl Program for BigTalker {
            type Msg = Vec<u64>;
            type Verdict = ();
            fn step(&mut self, _round: u32, _inbox: &[Incoming<Vec<u64>>], out: &mut Outbox<Vec<u64>>) -> Status {
                out.broadcast(&vec![1; 100]);
                Status::Running
            }
            fn verdict(&self) {}
        }
        let g = path_graph(3);
        let cfg = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: 16 },
            ..EngineConfig::default()
        };
        let err = run(&g, &cfg, |_| BigTalker).unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { round: 0, .. }));
    }

    #[test]
    fn stats_count_messages_and_links() {
        let g = path_graph(3); // 0-1-2
        let cfg = EngineConfig::default();
        // Everyone broadcasts a unit message at round 0, then halts.
        struct OneShot;
        impl Program for OneShot {
            type Msg = ();
            type Verdict = ();
            fn step(&mut self, round: u32, _inbox: &[Incoming<()>], out: &mut Outbox<()>) -> Status {
                if round == 0 {
                    out.broadcast(&());
                    Status::Running
                } else {
                    Status::Halted
                }
            }
            fn verdict(&self) {}
        }
        let out = run(&g, &cfg, |_| OneShot).unwrap();
        // Degrees 1,2,1 → 4 messages in round 0.
        assert_eq!(out.report.per_round[0].messages, 4);
        assert_eq!(out.report.per_round[0].max_link_messages, 1);
        assert_eq!(out.report.total_messages(), 4);
    }

    #[test]
    fn halted_nodes_stop_participating() {
        // Node 0 halts immediately; others keep broadcasting for 3 rounds.
        struct MaybeQuit {
            quit_now: bool,
        }
        impl Program for MaybeQuit {
            type Msg = ();
            type Verdict = u32;
            fn step(&mut self, round: u32, inbox: &[Incoming<()>], out: &mut Outbox<()>) -> Status {
                let _ = inbox;
                if self.quit_now {
                    return Status::Halted;
                }
                out.broadcast(&());
                if round >= 2 {
                    Status::Halted
                } else {
                    Status::Running
                }
            }
            fn verdict(&self) -> u32 {
                0
            }
        }
        let g = path_graph(3);
        let out = run(&g, &EngineConfig::default(), |init| MaybeQuit { quit_now: init.index == 0 }).unwrap();
        assert!(out.report.all_halted);
        // Round 0: nodes 1 and 2 broadcast (degrees 2 and 1) = 3 msgs.
        assert_eq!(out.report.per_round[0].messages, 3);
    }
}
