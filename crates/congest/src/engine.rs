//! The synchronous round engine, built on preallocated double-buffered
//! message arenas.
//!
//! Executes a [`Program`] on every node of a [`Graph`] in lock-step
//! rounds. Messages travel through per-directed-edge *lanes*: a flat
//! array of `2m` buffers keyed by [`crate::graph::DirectedEdgeId`] (the
//! graph's CSR adjacency slots), held in two arenas that swap roles
//! each round — nodes read round `r`'s traffic out of the *current*
//! arena while writing round `r+1`'s into the *next* one. After warm-up
//! every buffer has reached its peak capacity and the steady-state
//! round loop allocates nothing.
//!
//! Within one round each node, independently of all others (this is the
//! data-parallelism the model prescribes, exploited by the rayon
//! executor):
//!
//! 1. **gathers** its inbox from the lanes of its incoming directed
//!    edges, in ascending local-port order — ports are sorted by
//!    neighbor index, so delivery order is canonical (ascending sender,
//!    then the sender's queueing order) and runs are bit-for-bit
//!    reproducible across the [`Executor`]s. Messages are stored
//!    already labeled with their receiver-side port, so gathering is a
//!    whole-buffer swap/append, and a per-receiver traffic hint skips
//!    the scan outright on silent rounds;
//! 2. **steps** its program; the outbox writes every send *straight
//!    into this sender's own lanes of the next arena*, fusing the wire
//!    accounting into the write path: per-link bit/message counters
//!    live in a flat table indexed by directed-edge id (sender-owned
//!    rows, round-stamped so stale entries are semantically zero and
//!    nothing is ever scanned to reset), bandwidth enforcement checks
//!    the counter as each message lands, and round statistics
//!    accumulate into executor-chunk accumulators merged associatively
//!    after the round. One move per message, no queue in between.
//!
//! When nothing can observe the wire counters (no round recording, no
//! bandwidth cap, no fault plan) the send path drops the accounting
//! entirely. The sequential executor goes one step further and never
//! builds lanes at all: sends push straight into per-receiver
//! double-buffered inboxes — same canonical order, same fused
//! accounting when observable (see `SinkMode` in the `node` module).
//!
//! Safety of the shared arenas rests on two disjointness invariants,
//! both enforced by construction: during a round, lane `(v → w)` of the
//! *next* arena is written only by its unique sender `v`, and lane
//! `(x → v)` of the *current* arena is drained only by its unique
//! receiver `v`.
//!
//! The engine also maintains the count of running nodes incrementally
//! (nodes only ever transition `Running → Halted`), so termination
//! detection is O(1) per round instead of an O(n) scan.

use rayon::prelude::*;

use crate::arena::{Arena, InboxArena, LoadTable, RoundAcc};
use crate::graph::{Graph, NodeIndex};
use crate::message::WireParams;
use crate::metrics::{RoundStats, RunReport};
use crate::node::{
    DirectSink, Inbox, NodeInit, Outbox, Packet, Program, SinkCtx, SinkMode, Status,
};

/// How strictly the engine applies the `O(log n)`-bit CONGEST bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BandwidthPolicy {
    /// No cap; loads are still measured and reported.
    Measure,
    /// Hard-fail the run if any directed link carries more than `bits` in
    /// one round. Use this to demonstrate that unpruned protocols violate
    /// the model while Algorithm 1 fits after normalization.
    Enforce { bits: u64 },
}

/// Which executor steps the nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Executor {
    /// Plain loop; reference semantics.
    Sequential,
    /// rayon `par_iter` over nodes; identical results, faster wall-clock.
    #[default]
    Parallel,
    /// Cross-process execution: the graph is partitioned into
    /// `workers` contiguous node ranges, each stepped by its own
    /// worker over the [`crate::net`] frame protocol, with per-round
    /// barriers and the fault machinery of [`crate::net::NetOptions`].
    ///
    /// Distribution requires a protocol layer that can serialize its
    /// job and verdicts (the programs themselves cross the process
    /// boundary as *specs*, not closures) — `ck-core`'s tester session
    /// implements it. The generic engine entry points cannot ship
    /// arbitrary in-process programs, so under this variant they
    /// degrade gracefully to the sequential oracle and record the
    /// degradation in [`crate::metrics::RunReport::net`]; results stay
    /// bit-identical to `Sequential` by construction.
    Distributed {
        /// Worker (partition) count; clamped to at least 1 by users.
        workers: u16,
    },
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Hard cap on executed rounds (guards non-terminating protocols).
    pub max_rounds: u32,
    /// Bandwidth policy.
    pub bandwidth: BandwidthPolicy,
    /// Executor choice.
    pub executor: Executor,
    /// If true, per-round stats are recorded in the report (tiny cost;
    /// disable only for the hottest benchmark loops).
    pub record_rounds: bool,
    /// Deterministic message-loss plan (defaults to no loss). Dropped
    /// messages are charged to the sender's accounting but never
    /// delivered.
    pub faults: crate::fault::FaultPlan,
    /// Transport tuning and fault-recovery policy of the distributed
    /// executor; inert under the in-process executors.
    pub net: crate::net::NetOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1 << 20,
            bandwidth: BandwidthPolicy::Measure,
            executor: Executor::Parallel,
            record_rounds: true,
            faults: crate::fault::FaultPlan::none(),
            net: crate::net::NetOptions::default(),
        }
    }
}

/// Run failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A directed link exceeded the enforced per-round bit budget.
    BandwidthExceeded { round: u32, node: NodeIndex, port: u32, bits: u64, limit: u64 },
    /// The distributed executor failed at the transport layer and
    /// fallback was disabled ([`crate::net::NetOptions::fallback`]).
    /// With fallback on (the default) this variant never escapes — the
    /// run degrades to the sequential oracle instead.
    Net(crate::net::NetError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BandwidthExceeded { round, node, port, bits, limit } => {
                write!(f, "round {round}: node {node} port {port} sent {bits} bits > limit {limit}")
            }
            EngineError::Net(e) => write!(f, "distributed transport failure: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Result of a completed run: the measurement report plus one verdict per
/// node (indexed by node index).
#[derive(Clone, Debug)]
pub struct RunOutcome<V> {
    pub report: RunReport,
    pub verdicts: Vec<V>,
}

// Manual impl: an empty outcome needs no `V: Default` bound.
impl<V> Default for RunOutcome<V> {
    fn default() -> Self {
        RunOutcome { report: RunReport::default(), verdicts: Vec::new() }
    }
}

impl<V> RunOutcome<V> {
    /// Clears the outcome for reuse, keeping the report's and the
    /// verdict vector's allocations. A reset outcome is observationally
    /// [`RunOutcome::default`]; the `_into` entry points
    /// ([`crate::session::Session::run_into`],
    /// [`EngineWorkspace::run_on_into`]) reset their output themselves,
    /// so callers only rotate the same buffer back in.
    pub fn reset(&mut self) {
        self.report.reset();
        self.verdicts.clear();
    }
}

/// Reusable engine state for batch runs: the double-buffered message
/// arenas (lane form for the parallel executor, per-receiver inbox form
/// for the sequential one) plus the flat wire-load table.
///
/// A fresh workspace owns nothing but empty vectors; the first run
/// through it allocates exactly what a standalone [`run`] would. Runs
/// *reset* the workspace instead of reallocating: lanes, inboxes, and
/// load rows in the previously used extent are cleared with their
/// capacities kept, and the backing arrays grow only when the next
/// graph does not fit. A shard of a batch run drives dozens of graphs
/// through one workspace and reaches steady-state allocation-free setup
/// after the largest job has warmed it up.
///
/// Only the arenas matching the executor actually used are ever touched
/// (a sequential-only workspace never builds lanes).
pub struct EngineWorkspace<M> {
    lane_cur: Arena<M>,
    lane_next: Arena<M>,
    inbox_cur: InboxArena<M>,
    inbox_next: InboxArena<M>,
    loads: LoadTable,
    slots: SlotStore,
    /// One-shot pinned node→thread partition for the next parallel run
    /// (see [`EngineWorkspace::pin_node_chunk_plan`]); consumed by the
    /// run so it can never leak into a later run on a different graph.
    pinned_node_plan: Option<rayon::ChunkPlan>,
}

impl<M> Default for EngineWorkspace<M> {
    fn default() -> Self {
        EngineWorkspace {
            lane_cur: Arena::new(0, 0),
            lane_next: Arena::new(0, 0),
            inbox_cur: InboxArena::new(0),
            inbox_next: InboxArena::new(0),
            loads: LoadTable::new(0),
            slots: SlotStore::default(),
            pinned_node_plan: None,
        }
    }
}

impl<M> EngineWorkspace<M> {
    /// An empty workspace (allocates nothing until its first run).
    pub fn new() -> Self {
        EngineWorkspace::default()
    }

    /// Pins the parallel executor's node→thread partition for the
    /// **next** run through this workspace to `plan` (normally the
    /// [`node_step_plan`] snapshot external chunk-keyed state was
    /// prepared from — the SoA node-state arena passes the exact plan
    /// its chunk-shared scratch was sized for, so the executing
    /// partition and the scratch layout provably agree even if the
    /// forced-worker state is mutated concurrently). Consumed by that
    /// run; sequential runs discard it. The plan must have been
    /// computed for the run's node count.
    pub fn pin_node_chunk_plan(&mut self, plan: rayon::ChunkPlan) {
        self.pinned_node_plan = Some(plan);
    }

    /// Reuse counters of the per-run slot (program) array — how often a
    /// run through this workspace was served the previous run's storage
    /// versus having to allocate. After the first run of a given
    /// program type, `misses` stays put while `takes` counts the runs.
    pub fn slot_stats(&self) -> SlotStats {
        SlotStats { takes: self.slots.takes, misses: self.slots.misses }
    }

    /// Runs `factory`-instantiated programs on `graph` through this
    /// workspace — the advanced entry the session layers are built
    /// from, for callers whose workspace must outlive any single graph
    /// borrow (cross-graph batch reuse). Most callers want
    /// [`crate::session::Session`], which owns its workspace and pins
    /// one graph.
    ///
    /// `reclaim` receives every node program after its verdict has been
    /// collected, in node-index order; pass `|_| {}` when there is
    /// nothing to recover.
    pub fn run_on<'g, P, F, R>(
        &mut self,
        graph: &'g Graph,
        config: &EngineConfig,
        params: &WireParams,
        mut factory: F,
        reclaim: R,
    ) -> Result<RunOutcome<P::Verdict>, EngineError>
    where
        P: Program<Msg = M>,
        F: FnMut(NodeInit<'g>) -> P,
        R: FnMut(P),
    {
        exec_with_workspace(graph, config, params, self, &mut factory, reclaim)
    }

    /// As [`EngineWorkspace::run_on`], writing the result into a
    /// caller-owned [`RunOutcome`] (reset first, capacities kept)
    /// instead of allocating a fresh one. With a warm workspace, a warm
    /// outcome buffer, and the sequential executor, a rerun of the same
    /// program type performs zero heap operations — the contract the
    /// `ck_lint::alloc_gate` regression tests enforce. On error the
    /// outcome's contents are unspecified.
    #[allow(clippy::too_many_arguments)]
    pub fn run_on_into<'g, P, F, R>(
        &mut self,
        graph: &'g Graph,
        config: &EngineConfig,
        params: &WireParams,
        mut factory: F,
        reclaim: R,
        out: &mut RunOutcome<P::Verdict>,
    ) -> Result<(), EngineError>
    where
        P: Program<Msg = M>,
        F: FnMut(NodeInit<'g>) -> P,
        R: FnMut(P),
    {
        exec_into_with_workspace(graph, config, params, self, &mut factory, reclaim, out)
    }
}

/// Reuse counters of a workspace's slot-array store (see
/// [`EngineWorkspace::slot_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Slot arrays requested (one per run through the workspace).
    pub takes: u64,
    /// Requests the store could not serve warm: the first run ever, or
    /// a run whose program type has a different memory layout than the
    /// parked array's.
    pub misses: u64,
}

/// Type-erased recycler for the per-run `Slot` program array.
///
/// The slot array's element type depends on the program `P`, which the
/// `M`-keyed workspace cannot name — but across the runs of a batch the
/// program type (and hence its layout) is fixed, so the raw allocation
/// can be parked between runs and re-typed on the way out. The store
/// keeps at most one buffer: the previous run's, parked *empty* (every
/// program was drained for the reclaim hook or dropped), so the memory
/// holds no live values and reuse is purely a question of layout
/// equality — `Vec<T>` with capacity `cap` owns a `Layout::array::<T>(cap)`
/// allocation, identical for any `T` of equal size and alignment.
#[derive(Default)]
pub(crate) struct SlotStore {
    buf: Option<RawSlotBuf>,
    takes: u64,
    misses: u64,
}

struct RawSlotBuf {
    ptr: std::ptr::NonNull<u8>,
    /// Capacity in elements of the parked `Vec`.
    cap: usize,
    /// Layout of one element; reuse requires an exact match.
    elem: std::alloc::Layout,
}

impl RawSlotBuf {
    fn alloc_layout(&self) -> std::alloc::Layout {
        // size_of is always a multiple of align, so the array layout is
        // exactly (elem.size() * cap, elem.align()).
        std::alloc::Layout::from_size_align(self.elem.size() * self.cap, self.elem.align())
            // ck-lint: allow(no-panic, reason = "size/align came from a live Vec allocation, so the layout was already accepted by the allocator")
            .expect("layout was valid when the Vec allocated it")
    }
}

impl Drop for RawSlotBuf {
    fn drop(&mut self) {
        // SAFETY: `ptr` came out of a `Vec` with exactly this layout
        // (see `SlotStore::put`), and the parked buffer is always empty
        // — nothing needs dropping, only freeing.
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), self.alloc_layout()) }
    }
}

// SAFETY: the parked buffer holds no initialized elements (length 0 by
// construction) — it is inert memory owned uniquely by the store, so
// moving or sharing the store across threads moves nothing that cares.
unsafe impl Send for SlotStore {}
// SAFETY: same argument as Send — the parked buffer is inert, uniquely
// owned memory, and every accessor takes `&mut self`.
unsafe impl Sync for SlotStore {}

impl SlotStore {
    /// Takes an empty `Vec<T>`, warm (previous run's capacity) when the
    /// parked buffer's element layout matches `T`'s.
    fn take<T>(&mut self) -> Vec<T> {
        self.takes += 1;
        if let Some(raw) = self.buf.take() {
            if raw.elem == std::alloc::Layout::new::<T>() && raw.cap > 0 {
                let (ptr, cap) = (raw.ptr.as_ptr() as *mut T, raw.cap);
                std::mem::forget(raw);
                // SAFETY: the allocation came from a `Vec` whose element
                // layout equals `T`'s, so it is exactly
                // `Layout::array::<T>(cap)`; length 0 asserts no values.
                return unsafe { Vec::from_raw_parts(ptr, 0, cap) };
            }
            // Layout changed (different program type): the old buffer
            // cannot be re-typed — dropping `raw` frees it.
        }
        self.misses += 1;
        Vec::new()
    }

    /// Parks a drained slot array for the next run.
    fn put<T>(&mut self, v: Vec<T>) {
        debug_assert!(v.is_empty(), "slot storage must be parked empty");
        if v.capacity() == 0 || std::mem::size_of::<T>() == 0 {
            return;
        }
        let mut v = std::mem::ManuallyDrop::new(v);
        let ptr = std::ptr::NonNull::new(v.as_mut_ptr() as *mut u8)
            // ck-lint: allow(no-panic, reason = "capacity > 0 was just checked, so the Vec's pointer is a real allocation, never null")
            .expect("a Vec with capacity has a real pointer");
        self.buf =
            Some(RawSlotBuf { ptr, cap: v.capacity(), elem: std::alloc::Layout::new::<T>() });
    }
}

struct Slot<P: Program> {
    prog: P,
    status: Status,
    /// Persistent gather buffer; cleared (capacity kept) every round.
    /// Holds raw delivery packets — broadcast entries point into the
    /// current arena's broadcast slots, valid for the round they are
    /// gathered in (the buffer is cleared before reuse, and nothing
    /// dereferences it between rounds).
    inbox: Vec<Packet<P::Msg>>,
}

/// Observability of the wire, derived once per run so the sequential,
/// parallel, and partitioned ([`crate::net::PartitionEngine`]) paths
/// can never disagree on sink selection.
#[derive(Clone, Copy)]
pub(crate) struct WireFlags {
    pub(crate) check_faults: bool,
    /// Enforced per-link bit budget; `u64::MAX` under `Measure`.
    pub(crate) limit: u64,
    /// Wire counters observable (recorded rounds or an enforced
    /// budget): the engine allocates the flat load table and the send
    /// paths feed it.
    pub(crate) account: bool,
    /// `account || check_faults`: an accounting/fault sink is needed.
    pub(crate) heavy: bool,
}

impl WireFlags {
    pub(crate) fn for_config(config: &EngineConfig) -> WireFlags {
        let check_faults = !config.faults.is_trivial();
        let limit = match config.bandwidth {
            BandwidthPolicy::Enforce { bits } => bits,
            BandwidthPolicy::Measure => u64::MAX,
        };
        let account = config.record_rounds || limit != u64::MAX;
        WireFlags { check_faults, limit, account, heavy: account || check_faults }
    }
}

/// Round statistics from the accumulator a round's sends fed.
fn round_stats(acc: &RoundAcc, round: u32, active_nodes: usize) -> RoundStats {
    RoundStats {
        round,
        active_nodes,
        messages: acc.messages,
        bits: acc.bits,
        max_message_bits: acc.max_message_bits,
        max_link_bits: acc.max_link_bits,
        max_link_messages: acc.max_link_messages,
    }
}

/// After node `v`'s step: if `v` newly tripped the bandwidth budget,
/// replace the running total captured mid-step with the link's full
/// end-of-round load — the row is sender-exclusive, so it is final.
/// Shared by both executors' round loops to keep the reported
/// violation bit-for-bit identical.
///
/// # Safety
/// `loads_row` must be `v`'s valid load row (a violation implies the
/// run accounts, so the table is allocated).
pub(crate) unsafe fn finalize_violation(
    acc: &mut RoundAcc,
    had_violation: bool,
    v: NodeIndex,
    loads_row: *mut crate::arena::LinkLoad,
) {
    if !had_violation {
        if let Some((node, port, _)) = acc.violation {
            debug_assert_eq!(node, v);
            let bits = (*loads_row.add(port as usize)).bits;
            acc.violation = Some((node, port, bits));
        }
    }
}

/// One node's round: gather → step (sends write straight into the next
/// arena through the outbox's direct sink — one move per message, with
/// wire accounting and bandwidth checks fused into the write). Called
/// for every node exactly once per round, by either executor;
/// everything it touches outside `slot` and `acc` is lane-disjoint from
/// every other node's call. Statistics accumulate into `acc` (one per
/// executor chunk; chunk accumulators merge associatively in node
/// order, so both executors produce identical round statistics).
struct RoundRefs<'a, M> {
    graph: &'a Graph,
    /// Read arena: round `r`'s traffic, drained by receivers.
    cur: &'a Arena<M>,
    /// Write arena: round `r+1`'s traffic, filled by senders.
    next: &'a Arena<M>,
    loads: &'a LoadTable,
    ctx: &'a SinkCtx,
}

fn round_step<P: Program>(
    v: usize,
    slot: &mut Slot<P>,
    rr: &RoundRefs<'_, P::Msg>,
    acc: &mut RoundAcc,
) {
    let &RoundRefs { graph, cur, next, loads, ctx } = rr;
    let v = v as NodeIndex;
    let lanes = graph.directed_edge_range(v);

    if slot.status != Status::Running {
        // A halted node sends and receives nothing, but it still owns
        // the receiver side of its incoming lanes: drop the traffic so
        // the lanes are clean when the arena swaps back into the write
        // role. (Wire loads are round-stamped, never cleaned.)
        if cur.is_dirty(v) {
            cur.clear_dirty(v);
            for s in lanes {
                // SAFETY: `rev(s)` lanes of `cur` are drained only by
                // their unique receiver `v` (see `Arena::lane`).
                unsafe { cur.lane(graph.reverse_directed_edge(s)) }.clear();
            }
        }
        return;
    }

    // Gather: ascending local port = ascending sender index (rows are
    // sorted), preserving the canonical delivery order. The dirty hint
    // skips the lane scan entirely on silent rounds.
    slot.inbox.clear();
    if cur.is_dirty(v) {
        cur.clear_dirty(v);
        for s in lanes.clone() {
            // SAFETY: as above — receiver-unique drain access.
            let lane = unsafe { cur.lane(graph.reverse_directed_edge(s)) };
            if !lane.is_empty() {
                // Messages were labeled with this receiver's port at
                // send time: delivery is a whole-buffer move. The swap
                // circulates capacities between lanes and inboxes, so
                // the steady state stays allocation-free.
                if slot.inbox.is_empty() {
                    std::mem::swap(&mut slot.inbox, lane);
                } else {
                    slot.inbox.append(lane);
                }
            }
        }
    }

    // Step, with the fused write path as the outbox.
    let had_violation = acc.violation.is_some();
    let degree = lanes.len() as u32;
    let loads_row = if ctx.account {
        // SAFETY: `row_ptr(lanes.start)` is this sender's exclusive
        // load-table row for the whole round, only materialized when
        // the run accounts — the table is empty otherwise, and nothing
        // reads it.
        unsafe { loads.row_ptr(lanes.start) }
    } else {
        std::ptr::NonNull::dangling().as_ptr()
    };
    // SAFETY: `row_ptr(lanes.start)` is this sender's exclusive lane row
    // in the write arena for the whole round; `acc` and `ctx` outlive
    // the outbox, which is dropped before this frame returns.
    let mut out: Outbox<P::Msg> = unsafe {
        Outbox::direct(
            degree,
            DirectSink {
                lanes: next.row_ptr(lanes.start) as *mut (),
                slots: next.slots_ptr(),
                receivers: graph.neighbors(v).as_ptr(),
                rev_ports: graph.rev_ports_row(v).as_ptr(),
                acc,
                loads: loads_row,
                ctx,
                sender: v,
            },
            if ctx.heavy { SinkMode::Heavy } else { SinkMode::FastLanes },
        )
    };
    // SAFETY: the gathered packets' shared pointers target broadcast
    // slots of `cur`, which no one writes while `cur` is in the read
    // role — valid for the whole step call.
    let inbox = unsafe { Inbox::from_packets(&slot.inbox) };
    let status = slot.prog.step(ctx.round, inbox, &mut out);
    drop(out);
    slot.status = status;
    if status == Status::Halted {
        acc.halted += 1;
    }
    // SAFETY: sender-unique row access, as above.
    unsafe { finalize_violation(acc, had_violation, v, loads_row) };
}

/// The sequential executor's round loop (see [`SinkMode::FastInbox`] /
/// [`SinkMode::HeavyInbox`]): no lanes — every send is one push into
/// the receiver's double-buffered next-round inbox, and gather is
/// reading one's own buffer. Delivery order is identical to the lane
/// path (ascending sender, then queueing order) because the node loop
/// runs in ascending order. When the wire is observable (recorded
/// rounds, an enforced budget, or a fault plan) the sends additionally
/// run the same fused accounting as the lane path against the flat
/// per-directed-edge load table, producing bit-for-bit identical round
/// statistics. Returns `(rounds_executed, active)`.
#[allow(clippy::too_many_arguments)]
fn run_rounds_seq_inbox<P: Program>(
    graph: &Graph,
    config: &EngineConfig,
    params: &WireParams,
    wf: WireFlags,
    slots: &mut [Slot<P>],
    mut active: usize,
    report: &mut RunReport,
    cur: &mut InboxArena<P::Msg>,
    next: &mut InboxArena<P::Msg>,
    loads: &LoadTable,
) -> Result<(u32, usize), EngineError> {
    let WireFlags { check_faults, limit, account, heavy } = wf;
    let mode = if heavy { SinkMode::HeavyInbox } else { SinkMode::FastInbox };
    let mut round = 0u32;
    while round < config.max_rounds {
        if active == 0 {
            break;
        }
        let ctx = SinkCtx {
            // The inbox sinks never read receiver traffic hints (see
            // `SinkCtx::dirty`).
            dirty: std::ptr::NonNull::dangling().as_ptr(),
            params,
            faults: &config.faults,
            check_faults,
            account,
            heavy,
            limit,
            round,
            stamp: loads.stamp_for(round),
        };
        let mut acc = RoundAcc::default();
        for (v, slot) in slots.iter_mut().enumerate() {
            let vi = v as NodeIndex;
            // SAFETY: sequential loop — only `vi`'s current buffer is
            // referenced here, and sends only touch `next` buffers.
            let inbox = unsafe { cur.inbox(vi) };
            if slot.status != Status::Running {
                // Drop traffic addressed to a halted node.
                inbox.clear();
                continue;
            }
            let lanes = graph.directed_edge_range(vi);
            let had_violation = acc.violation.is_some();
            let loads_row = if account {
                // SAFETY: `row_ptr(lanes.start)` is this sender's
                // exclusive load row; only materialized when the run
                // accounts (the table is empty otherwise, and nothing
                // reads it).
                unsafe { loads.row_ptr(lanes.start) }
            } else {
                std::ptr::NonNull::dangling().as_ptr()
            };
            // SAFETY: `next.base_ptr()` is the per-receiver inbox array;
            // single-threaded use per the inbox sink-mode contracts.
            let mut out: Outbox<P::Msg> = unsafe {
                Outbox::direct(
                    lanes.len() as u32,
                    DirectSink {
                        lanes: next.base_ptr(),
                        slots: next.slots_ptr(),
                        receivers: graph.neighbors(vi).as_ptr(),
                        rev_ports: graph.rev_ports_row(vi).as_ptr(),
                        acc: &mut acc,
                        loads: loads_row,
                        ctx: &ctx,
                        sender: vi,
                    },
                    mode,
                )
            };
            // SAFETY: the buffered packets' shared pointers target
            // broadcast slots of `cur`, which only `next` sends write
            // this round — valid for the whole step call.
            let view = unsafe { Inbox::from_packets(inbox) };
            let status = slot.prog.step(round, view, &mut out);
            drop(out);
            inbox.clear();
            slot.status = status;
            if status == Status::Halted {
                acc.halted += 1;
            }
            // SAFETY: sender-unique row access, as above.
            unsafe { finalize_violation(&mut acc, had_violation, vi, loads_row) };
        }
        if let Some((node, port, bits)) = acc.violation {
            return Err(EngineError::BandwidthExceeded { round, node, port, bits, limit });
        }
        active -= acc.halted as usize;
        acc.add_faults_to(&mut report.faults);
        if config.record_rounds {
            report.per_round.push(round_stats(&acc, round, active + acc.halted as usize));
        }
        std::mem::swap(cur, next);
        round += 1;
    }
    Ok((round, active))
}

/// Inline-vs-spawn threshold for the parallel executor's per-node step
/// fold. A node step (gather + program logic + wire accounting) is
/// orders of magnitude heavier than the trivial loop bodies the rayon
/// shim's default `MIN_PAR_LEN` is tuned for, so spawning pays off far
/// earlier than 4096 nodes.
pub const NODE_STEP_MIN_PAR_LEN: usize = 1024;

/// Elements per contiguous chunk in the parallel executor's node→thread
/// partition for an `n`-node graph, under the current forced-worker
/// state. Node `v` steps on the thread owning chunk `v / chunk_len`.
///
/// This is the contract external chunk-local state keys off: the SoA
/// node-state arena allocates one prune/scan scratch per chunk of this
/// exact plan, so two nodes share scratch only when they provably step
/// on the same thread. Because the plan is a snapshot of *mutable*
/// state (forced workers can change between calls), callers that size
/// chunk-keyed state off it must capture it **once** and hand that
/// same snapshot to [`EngineWorkspace::pin_node_chunk_plan`]; the
/// round loop then executes every round on the pinned partition
/// verbatim (the shim's `with_chunk_plan`) instead of re-planning per
/// round, so the partition and the state provably agree for the whole
/// run.
pub fn node_step_plan(n: usize) -> rayon::ChunkPlan {
    rayon::chunk_plan_with_min_len(n, NODE_STEP_MIN_PAR_LEN)
}

/// Elements per contiguous chunk of [`node_step_plan`]`(n)` — the
/// node→thread partition under the *current* forced-worker state.
/// Node `v` steps on the thread owning chunk `v / chunk_len`.
pub fn node_chunk_len(n: usize) -> usize {
    node_step_plan(n).chunk_len
}

/// The parallel executor's round loop: the double-buffered lane arenas.
/// Invariant at the top of every round: `next` is entirely empty/zeroed,
/// `cur` holds exactly the undelivered traffic of the previous round.
/// Returns `(rounds_executed, active)`.
#[allow(clippy::too_many_arguments)]
fn run_rounds_par_lanes<P: Program>(
    graph: &Graph,
    config: &EngineConfig,
    params: &WireParams,
    wf: WireFlags,
    slots: &mut [Slot<P>],
    mut active: usize,
    report: &mut RunReport,
    cur: &mut Arena<P::Msg>,
    next: &mut Arena<P::Msg>,
    loads: &LoadTable,
    pinned_plan: Option<rayon::ChunkPlan>,
) -> Result<(u32, usize), EngineError> {
    let WireFlags { check_faults, limit, account, heavy } = wf;
    // One node→thread partition for the whole run, pinned on every
    // round's fold. When the caller prepared chunk-keyed external state
    // (the SoA arena's chunk-shared scratch), it hands us the exact
    // snapshot that state was sized against via
    // [`EngineWorkspace::pin_node_chunk_plan`]; otherwise we capture
    // the plan fresh here. Either way the partition cannot drift
    // mid-run even if `force_workers_for_tests` / `CK_FORCED_WORKERS`
    // state changes while rounds execute.
    let plan = pinned_plan.unwrap_or_else(|| node_step_plan(slots.len()));
    assert_eq!(
        plan.len,
        slots.len(),
        "pinned node chunk plan was computed for a different node count"
    );
    let mut round = 0u32;
    while round < config.max_rounds {
        if active == 0 {
            break;
        }

        // Single pass: each node's gather/step/write accumulates its
        // stats contribution into a chunk accumulator; accumulators
        // merge associatively (leftmost-violation rule included), so the
        // sequential fold and the chunked parallel reduction produce
        // identical results.
        let acc = {
            let ctx = SinkCtx {
                dirty: next.dirty_ptr(),
                params,
                faults: &config.faults,
                check_faults,
                account,
                heavy,
                limit,
                round,
                stamp: loads.stamp_for(round),
            };
            let rr = RoundRefs { graph, cur: &*cur, next: &*next, loads, ctx: &ctx };
            let rr_ref = &rr;
            slots
                .par_iter_mut()
                .with_chunk_plan(plan)
                .enumerate()
                .fold(RoundAcc::default, |mut acc, (v, slot)| {
                    round_step(v, slot, rr_ref, &mut acc);
                    acc
                })
                .reduce(RoundAcc::default, RoundAcc::merge)
        };

        if let Some((node, port, bits)) = acc.violation {
            return Err(EngineError::BandwidthExceeded { round, node, port, bits, limit });
        }
        active -= acc.halted as usize;
        acc.add_faults_to(&mut report.faults);
        if config.record_rounds {
            report.per_round.push(round_stats(&acc, round, active + acc.halted as usize));
        }

        // Swap buffers: this round's writes become next round's reads;
        // the fully-drained read arena becomes the write arena.
        std::mem::swap(cur, next);
        round += 1;
    }
    Ok((round, active))
}

/// The engine proper: executes `factory`-instantiated programs on
/// `graph` through a caller-owned workspace until every node halts or
/// `config.max_rounds` is reached. This is the single implementation
/// behind [`crate::session::Session`] and every legacy entry point.
///
/// The workspace is reset (never reallocated when the graph fits)
/// before the run; outputs are bit-identical to a fresh-workspace run
/// by construction, since a reset workspace is observationally
/// indistinguishable from a new one. The per-run slot (program) array
/// is recycled through the workspace's [`SlotStore`] — a
/// workspace-reused run of the same program type performs no per-run
/// slot allocation.
///
/// `reclaim` receives every node program after its verdict has been
/// collected, in node-index order — protocols with recyclable per-node
/// scratch (pools, buffers) harvest it here so the next job in a batch
/// starts warm. On error the programs are dropped without the hook,
/// but the slot array's storage is still parked for the next run.
pub(crate) fn exec_with_workspace<'g, P, F, R>(
    graph: &'g Graph,
    config: &EngineConfig,
    params: &WireParams,
    ws: &mut EngineWorkspace<P::Msg>,
    factory: &mut F,
    reclaim: R,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
    R: FnMut(P),
{
    let mut out = RunOutcome::default();
    exec_into_with_workspace(graph, config, params, ws, factory, reclaim, &mut out)?;
    Ok(out)
}

/// As [`exec_with_workspace`], writing the result into a caller-owned
/// [`RunOutcome`] instead of allocating a fresh one. The outcome is
/// reset first (capacities kept), so rotating the same buffer through
/// repeated runs makes the warm rerun fully allocation-free under the
/// sequential executor — the dynamic contract `ck_lint::alloc_gate`
/// tests pin down. On error the outcome's contents are unspecified.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_into_with_workspace<'g, P, F, R>(
    graph: &'g Graph,
    config: &EngineConfig,
    params: &WireParams,
    ws: &mut EngineWorkspace<P::Msg>,
    factory: &mut F,
    mut reclaim: R,
    out: &mut RunOutcome<P::Verdict>,
) -> Result<(), EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
    R: FnMut(P),
{
    out.reset();
    let n = graph.n();
    let m = graph.m();
    let mut slots: Vec<Slot<P>> = ws.slots.take();
    slots.extend((0..n).map(|v| {
        let v = v as NodeIndex;
        let init = NodeInit {
            index: v,
            id: graph.id(v),
            neighbor_ids: graph.neighbor_ids(v),
            ports_by_id: graph.ports_sorted_by_id(v),
            n,
            m,
        };
        Slot { prog: factory(init), status: Status::Running, inbox: Vec::new() }
    }));

    let report = &mut out.report;
    let wf = WireFlags::for_config(config);

    // Flat per-directed-edge wire loads (round-stamped, sender-owned
    // rows; see `LinkLoad`). Empty when nothing can observe them —
    // nothing then reads the row pointers either.
    let directed = graph.num_directed_edges();
    ws.loads.reset(if wf.account { directed } else { 0 });

    // The sequential executor never needs lanes: single-threaded sends
    // can push straight into per-receiver double-buffered inboxes (same
    // canonical order — ascending sender, then queueing order), with the
    // same fused accounting against the flat load table when observable.
    // `Distributed` lands here too: arbitrary in-process programs are
    // closures and cannot be shipped to worker processes, so the
    // generic entry degrades to the sequential oracle (bit-identical
    // results) and records the degradation in the report's net block;
    // serializable protocol layers dispatch real distribution above
    // this function (see `crate::net`).
    // Consume any pinned node→thread partition unconditionally: a pin
    // is armed for exactly one run, and must not leak into a later run
    // (or a sequential one) with a different node count.
    let pinned_plan = ws.pinned_node_plan.take();
    let rounds_result = if config.executor != Executor::Parallel {
        ws.inbox_cur.reset(n);
        ws.inbox_next.reset(n);
        run_rounds_seq_inbox(
            graph,
            config,
            params,
            wf,
            &mut slots,
            n,
            report,
            &mut ws.inbox_cur,
            &mut ws.inbox_next,
            &ws.loads,
        )
    } else {
        ws.lane_cur.reset(directed, n);
        ws.lane_next.reset(directed, n);
        run_rounds_par_lanes(
            graph,
            config,
            params,
            wf,
            &mut slots,
            n,
            report,
            &mut ws.lane_cur,
            &mut ws.lane_next,
            &ws.loads,
            pinned_plan,
        )
    };
    let (round, active) = match rounds_result {
        Ok(ra) => ra,
        Err(e) => {
            // Programs die without the reclaim hook on a failed run;
            // the slot array itself still parks for the next job.
            slots.clear();
            ws.slots.put(slots);
            return Err(e);
        }
    };

    report.rounds = round;
    report.all_halted = active == 0;
    config.faults.crashed_by_into(round, n, &mut report.faults.crashed_nodes);
    (report.executor, report.threads) = match config.executor {
        Executor::Sequential => ("sequential", 1),
        Executor::Parallel => ("parallel", rayon::current_num_threads()),
        Executor::Distributed { workers } => {
            report.net = Some(crate::metrics::NetReport::degraded(
                u32::from(workers.max(1)),
                "in-process programs are not serializable; ran the sequential oracle",
            ));
            ("distributed", workers.max(1) as usize)
        }
    };

    out.verdicts.extend(slots.iter().map(|s| s.prog.verdict()));

    // Hand each sender's still-parked broadcast payloads (at most one
    // per arena generation) back to its program, in node-index order.
    // Whatever parks at run end was shipped in the final two rounds and
    // can no longer be observed by any receiver; without this drain the
    // next run's arena reset would drop the payloads, bleeding
    // program-level pools (e.g. the Ck tester's `SeqPool`) by up to two
    // buffers per node per run. Runs *after* verdict collection so
    // pool-accounting verdict fields keep reporting the parked buffers
    // as outstanding, bit-identical to pre-drain engines and to the
    // partitioned executor (which parks payloads in its own slots).
    for (v, slot) in slots.iter_mut().enumerate() {
        let v = v as NodeIndex;
        if config.executor != Executor::Parallel {
            if let Some(m) = ws.inbox_cur.take_slot(v) {
                slot.prog.reclaim_msg(m);
            }
            if let Some(m) = ws.inbox_next.take_slot(v) {
                slot.prog.reclaim_msg(m);
            }
        } else {
            if let Some(m) = ws.lane_cur.take_slot(v) {
                slot.prog.reclaim_msg(m);
            }
            if let Some(m) = ws.lane_next.take_slot(v) {
                slot.prog.reclaim_msg(m);
            }
        }
    }

    for Slot { prog, .. } in slots.drain(..) {
        reclaim(prog);
    }
    ws.slots.put(slots);
    Ok(())
}

/// Runs `factory`-instantiated programs on `graph` until every node halts
/// or `config.max_rounds` is reached.
#[deprecated(
    since = "0.2.0",
    note = "build a `ck_congest::session::Session` — one composable entry point with \
            workspace reuse by default"
)]
pub fn run<'g, P, F>(
    graph: &'g Graph,
    config: &EngineConfig,
    factory: F,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
{
    crate::session::Session::builder(graph).config(config.clone()).build().run(factory)
}

/// As [`run`], with explicit wire parameters (used when a harness wants to
/// pin `id_bits`/`rank_bits` across differently-labeled graphs).
#[deprecated(
    since = "0.2.0",
    note = "build a `ck_congest::session::Session` and pin the params with \
            `SessionBuilder::wire_params`"
)]
pub fn run_with_params<'g, P, F>(
    graph: &'g Graph,
    config: &EngineConfig,
    params: &WireParams,
    factory: &mut F,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
{
    crate::session::Session::builder(graph)
        .config(config.clone())
        .wire_params(*params)
        .build()
        .run(&mut *factory)
}

/// As [`run_with_params`], executing through a caller-owned
/// [`EngineWorkspace`] — the pre-session batch hot path. A
/// [`crate::session::Session`] owns its workspace and recycles it on
/// every `run`, making this explicit threading unnecessary.
#[deprecated(
    since = "0.2.0",
    note = "a `ck_congest::session::Session` owns and recycles its workspace; use \
            `Session::run_reclaiming`"
)]
pub fn run_with_workspace<'g, P, F, R>(
    graph: &'g Graph,
    config: &EngineConfig,
    params: &WireParams,
    ws: &mut EngineWorkspace<P::Msg>,
    factory: &mut F,
    reclaim: R,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
    R: FnMut(P),
{
    ws.run_on(graph, config, params, &mut *factory, reclaim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::message::WireMessage;
    use crate::session::Session;

    /// The tests' single-run entry: the session path (shadows the
    /// deprecated free function the glob import would otherwise bind).
    fn run<'g, P, F>(
        graph: &'g Graph,
        config: &EngineConfig,
        factory: F,
    ) -> Result<RunOutcome<P::Verdict>, EngineError>
    where
        P: Program,
        F: FnMut(NodeInit<'g>) -> P,
    {
        Session::builder(graph).config(config.clone()).build().run(factory)
    }

    /// Flood the smallest ID seen so far; halt after `ttl` rounds. The
    /// classical leader-election-by-flooding warm-up protocol.
    struct MinFlood {
        best: u64,
        ttl: u32,
        changed: bool,
    }

    impl Program for MinFlood {
        type Msg = u64;
        type Verdict = u64;

        fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
            for inc in inbox.iter() {
                if *inc.msg < self.best {
                    self.best = *inc.msg;
                    self.changed = true;
                }
            }
            if round >= self.ttl {
                return Status::Halted;
            }
            if round == 0 || self.changed {
                out.broadcast(self.best);
                self.changed = false;
            }
            Status::Running
        }

        fn verdict(&self) -> u64 {
            self.best
        }
    }

    fn path_graph(n: usize) -> Graph {
        GraphBuilder::new(n).edges((0..n as u32 - 1).map(|i| (i, i + 1))).build().unwrap()
    }

    fn run_minflood(g: &Graph, exec: Executor) -> RunOutcome<u64> {
        let ttl = g.n() as u32; // diameter bound
        let cfg = EngineConfig { executor: exec, ..EngineConfig::default() };
        run(g, &cfg, |init| MinFlood { best: init.id, ttl, changed: false }).unwrap()
    }

    #[test]
    fn min_flood_converges_on_path() {
        let g = path_graph(16).with_ids((0..16).map(|i| 100 - i as u64).collect()).unwrap();
        let out = run_minflood(&g, Executor::Sequential);
        let global_min = *g.ids().iter().min().unwrap();
        assert!(out.verdicts.iter().all(|&v| v == global_min));
        assert!(out.report.all_halted);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let g = path_graph(64)
            .with_ids((0..64).map(|i| (i as u64 * 2654435761) % 100_000).collect())
            .unwrap();
        let a = run_minflood(&g, Executor::Sequential);
        let b = run_minflood(&g, Executor::Parallel);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.report.per_round, b.report.per_round);
        assert_eq!(a.report.rounds, b.report.rounds);
    }

    #[test]
    fn round_cap_is_respected() {
        struct Chatter;
        impl Program for Chatter {
            type Msg = ();
            type Verdict = ();
            fn step(&mut self, _round: u32, _inbox: Inbox<'_, ()>, out: &mut Outbox<()>) -> Status {
                out.broadcast(());
                Status::Running
            }
            fn verdict(&self) {}
        }
        let g = path_graph(4);
        let cfg = EngineConfig { max_rounds: 7, ..EngineConfig::default() };
        let out = run(&g, &cfg, |_| Chatter).unwrap();
        assert_eq!(out.report.rounds, 7);
        assert!(!out.report.all_halted);
    }

    #[test]
    fn bandwidth_enforcement_trips() {
        struct BigTalker;
        impl Program for BigTalker {
            type Msg = Vec<u64>;
            type Verdict = ();
            fn step(
                &mut self,
                _round: u32,
                _inbox: Inbox<'_, Vec<u64>>,
                out: &mut Outbox<Vec<u64>>,
            ) -> Status {
                out.broadcast(vec![1; 100]);
                Status::Running
            }
            fn verdict(&self) {}
        }
        let g = path_graph(3);
        let cfg = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: 16 },
            ..EngineConfig::default()
        };
        let err = run(&g, &cfg, |_| BigTalker).unwrap_err();
        assert!(matches!(err, EngineError::BandwidthExceeded { round: 0, .. }));
    }

    #[test]
    fn stats_count_messages_and_links() {
        let g = path_graph(3); // 0-1-2
        let cfg = EngineConfig::default();
        // Everyone broadcasts a unit message at round 0, then halts.
        struct OneShot;
        impl Program for OneShot {
            type Msg = ();
            type Verdict = ();
            fn step(&mut self, round: u32, _inbox: Inbox<'_, ()>, out: &mut Outbox<()>) -> Status {
                if round == 0 {
                    out.broadcast(());
                    Status::Running
                } else {
                    Status::Halted
                }
            }
            fn verdict(&self) {}
        }
        let out = run(&g, &cfg, |_| OneShot).unwrap();
        // Degrees 1,2,1 → 4 messages in round 0.
        assert_eq!(out.report.per_round[0].messages, 4);
        assert_eq!(out.report.per_round[0].max_link_messages, 1);
        assert_eq!(out.report.total_messages(), 4);
    }

    #[test]
    fn halted_nodes_stop_participating() {
        // Node 0 halts immediately; others keep broadcasting for 3 rounds.
        struct MaybeQuit {
            quit_now: bool,
        }
        impl Program for MaybeQuit {
            type Msg = ();
            type Verdict = u32;
            fn step(&mut self, round: u32, inbox: Inbox<'_, ()>, out: &mut Outbox<()>) -> Status {
                let _ = inbox;
                if self.quit_now {
                    return Status::Halted;
                }
                out.broadcast(());
                if round >= 2 {
                    Status::Halted
                } else {
                    Status::Running
                }
            }
            fn verdict(&self) -> u32 {
                0
            }
        }
        let g = path_graph(3);
        let out = run(&g, &EngineConfig::default(), |init| MaybeQuit { quit_now: init.index == 0 })
            .unwrap();
        assert!(out.report.all_halted);
        // Round 0: nodes 1 and 2 broadcast (degrees 2 and 1) = 3 msgs.
        assert_eq!(out.report.per_round[0].messages, 3);
    }

    /// Multiple messages per port per round must stay in queueing order
    /// and be counted per-link correctly by the fused accounting.
    #[test]
    fn multi_message_lanes_preserve_order_and_counts() {
        struct Burst {
            got: Vec<(u32, u64)>,
        }
        impl Program for Burst {
            type Msg = u64;
            type Verdict = Vec<(u32, u64)>;
            fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
                if round == 0 {
                    // Interleave sends across ports to stress grouping.
                    for i in 0..3u64 {
                        for p in 0..out.degree() {
                            out.send(p, i * 10 + u64::from(p));
                        }
                    }
                    Status::Running
                } else {
                    self.got = inbox.iter().map(|inc| (inc.port, *inc.msg)).collect();
                    Status::Halted
                }
            }
            fn verdict(&self) -> Vec<(u32, u64)> {
                self.got.clone()
            }
        }
        for exec in [Executor::Sequential, Executor::Parallel] {
            let g = path_graph(3);
            let cfg = EngineConfig { executor: exec, ..EngineConfig::default() };
            let out = run(&g, &cfg, |_| Burst { got: Vec::new() }).unwrap();
            // Node 1 hears from node 0 (its port 0) then node 2 (its
            // port 1), each in the sender's queueing order.
            let mid = &out.verdicts[1];
            let from0: Vec<u64> = mid.iter().filter(|(p, _)| *p == 0).map(|&(_, m)| m).collect();
            let from2: Vec<u64> = mid.iter().filter(|(p, _)| *p == 1).map(|&(_, m)| m).collect();
            assert_eq!(from0, vec![0, 10, 20], "{exec:?}");
            assert_eq!(from2, vec![0, 10, 20], "{exec:?}");
            // Sender order: all of node 0's traffic precedes node 2's.
            let first_from2 = mid.iter().position(|(p, _)| *p == 1).unwrap();
            assert!(mid[..first_from2].iter().all(|(p, _)| *p == 0));
            // Fused per-link counters: 3 messages per directed link.
            assert_eq!(out.report.per_round[0].max_link_messages, 3);
            assert_eq!(out.report.per_round[0].messages, 12);
        }
    }

    /// All three sink paths — accounted lanes, counter-free lanes
    /// (parallel), and the sequential per-receiver inbox fast path —
    /// must deliver identical inboxes in identical order.
    #[test]
    fn sink_paths_deliver_identically() {
        struct Recorder {
            ttl: u32,
            seen: Vec<(u32, u32, u64)>, // (round, port, msg)
        }
        impl Program for Recorder {
            type Msg = u64;
            type Verdict = Vec<(u32, u32, u64)>;
            fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
                for inc in inbox.iter() {
                    self.seen.push((round, inc.port, *inc.msg));
                }
                if round >= self.ttl {
                    return Status::Halted;
                }
                // Mix broadcasts and targeted interleaved sends.
                out.broadcast(u64::from(round) << 8);
                for p in 0..out.degree() {
                    out.send(p, u64::from(round) << 8 | u64::from(p) | 0x80);
                }
                Status::Running
            }
            fn verdict(&self) -> Vec<(u32, u32, u64)> {
                self.seen.clone()
            }
        }
        let g = GraphBuilder::new(7)
            .edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (4, 6), (5, 6), (0, 6)])
            .build()
            .unwrap();
        let mut outcomes = Vec::new();
        for record_rounds in [true, false] {
            for exec in [Executor::Sequential, Executor::Parallel] {
                let cfg = EngineConfig { executor: exec, record_rounds, ..EngineConfig::default() };
                let out = run(&g, &cfg, |_| Recorder { ttl: 4, seen: Vec::new() }).unwrap();
                outcomes.push((record_rounds, exec, out.verdicts));
            }
        }
        let reference = outcomes[0].2.clone();
        for (record_rounds, exec, verdicts) in &outcomes {
            assert_eq!(
                verdicts, &reference,
                "divergent delivery: record_rounds={record_rounds} {exec:?}"
            );
        }
    }

    /// The maintained active counter must agree with the per-round
    /// recorded statistics as nodes halt at different times.
    #[test]
    fn active_counter_tracks_staggered_halts() {
        struct HaltAt {
            at: u32,
        }
        impl Program for HaltAt {
            type Msg = ();
            type Verdict = ();
            fn step(&mut self, round: u32, _inbox: Inbox<'_, ()>, out: &mut Outbox<()>) -> Status {
                if round >= self.at {
                    Status::Halted
                } else {
                    out.broadcast(());
                    Status::Running
                }
            }
            fn verdict(&self) {}
        }
        let g = path_graph(6);
        let out = run(&g, &EngineConfig::default(), |init| HaltAt { at: init.index }).unwrap();
        assert!(out.report.all_halted);
        // Node v halts in round v: actives are n, n-1, ..., 1.
        let actives: Vec<usize> = out.report.per_round.iter().map(|r| r.active_nodes).collect();
        assert_eq!(actives, vec![6, 5, 4, 3, 2, 1]);
    }

    /// The parallel paths must survive genuinely concurrent workers.
    /// The rayon shim runs inline on small inputs and single-core
    /// machines, which would leave the arena's unsafe disjointness
    /// contract untested; force it to split across 4 scoped threads and
    /// compare every parallel mode against the sequential reference.
    #[test]
    fn parallel_paths_with_real_threads() {
        struct ResetWorkers;
        impl Drop for ResetWorkers {
            fn drop(&mut self) {
                rayon::force_workers_for_tests(0);
            }
        }
        let _reset = ResetWorkers; // restore default even on panic
        rayon::force_workers_for_tests(4);

        let n = 6000;
        let g = path_graph(n)
            .with_ids((0..n).map(|i| (i as u64).wrapping_mul(2654435761) % 1_000_000).collect())
            .unwrap();
        let run_one = |exec, record_rounds, faults: crate::fault::FaultPlan| {
            let cfg =
                EngineConfig { executor: exec, record_rounds, faults, ..EngineConfig::default() };
            run(&g, &cfg, |init| MinFlood { best: init.id, ttl: 30, changed: false }).unwrap()
        };
        for record_rounds in [true, false] {
            for faults in [
                crate::fault::FaultPlan::none(),
                crate::fault::FaultPlan::none().random_loss(0.2, 5),
            ] {
                let seq = run_one(Executor::Sequential, record_rounds, faults.clone());
                let par = run_one(Executor::Parallel, record_rounds, faults);
                assert_eq!(seq.verdicts, par.verdicts, "record_rounds={record_rounds}");
                assert_eq!(seq.report.per_round, par.report.per_round);
                assert_eq!(seq.report.rounds, par.report.rounds);
            }
        }
    }

    /// A workspace reused across differently-sized graphs (growing and
    /// shrinking, with faults in between leaving undelivered traffic
    /// and stale load stamps) must behave exactly like a fresh one, on
    /// both executors.
    #[test]
    fn workspace_reuse_is_bit_identical_across_graphs() {
        let jobs: Vec<(Graph, crate::fault::FaultPlan)> = vec![
            (path_graph(12), crate::fault::FaultPlan::none()),
            (path_graph(40), crate::fault::FaultPlan::none().random_loss(0.3, 7)),
            (path_graph(5), crate::fault::FaultPlan::none()),
            (path_graph(40), crate::fault::FaultPlan::none()),
        ];
        for exec in [Executor::Sequential, Executor::Parallel] {
            for record_rounds in [true, false] {
                let mut ws = EngineWorkspace::new();
                for (g, faults) in &jobs {
                    let cfg = EngineConfig {
                        executor: exec,
                        record_rounds,
                        faults: faults.clone(),
                        ..EngineConfig::default()
                    };
                    let ttl = g.n() as u32;
                    let fresh =
                        run(g, &cfg, |init| MinFlood { best: init.id, ttl, changed: false })
                            .unwrap();
                    let params = WireParams::for_graph(g);
                    let reused = exec_with_workspace(
                        g,
                        &cfg,
                        &params,
                        &mut ws,
                        &mut |init| MinFlood { best: init.id, ttl, changed: false },
                        |_| {},
                    )
                    .unwrap();
                    assert_eq!(fresh.verdicts, reused.verdicts, "{exec:?}");
                    assert_eq!(fresh.report.per_round, reused.report.per_round, "{exec:?}");
                    assert_eq!(fresh.report.rounds, reused.report.rounds, "{exec:?}");
                }
            }
        }
    }

    /// The round-offset-stamped load table must keep per-link counters
    /// correct across workspace-reused jobs whose round numbers restart
    /// at 0: job B writes the very rows job A stamped, at the same
    /// round numbers. A stale-stamp collision would make B's first
    /// round *add to* A's heavy counters instead of starting from zero
    /// — caught here by running B under an enforced budget with no
    /// slack, and by comparing B's statistics against a fresh
    /// workspace, on both executors.
    #[test]
    fn workspace_reuse_keeps_link_counters_correct_across_jobs() {
        struct Talk {
            payload: Vec<u64>,
            ttl: u32,
        }
        impl Program for Talk {
            type Msg = Vec<u64>;
            type Verdict = ();
            fn step(
                &mut self,
                round: u32,
                _inbox: Inbox<'_, Vec<u64>>,
                out: &mut Outbox<Vec<u64>>,
            ) -> Status {
                if round >= self.ttl {
                    return Status::Halted;
                }
                out.broadcast(self.payload.clone());
                Status::Running
            }
            fn verdict(&self) {}
        }
        let g = path_graph(4);
        let params = WireParams::for_graph(&g);
        let small_bits = vec![7u64].wire_bits(&params);
        for exec in [Executor::Sequential, Executor::Parallel] {
            let mut ws: EngineWorkspace<Vec<u64>> = EngineWorkspace::new();
            // Job A: heavy broadcasts, measured only — stamps rounds
            // 0..5 with large per-link bit counts.
            let cfg_a = EngineConfig { executor: exec, ..EngineConfig::default() };
            exec_with_workspace(
                &g,
                &cfg_a,
                &params,
                &mut ws,
                &mut |_| Talk { payload: vec![7; 100], ttl: 5 },
                |_| {},
            )
            .unwrap();
            // Job B: one small message per link per round, enforced at
            // exactly that size — any leak of job A's counters trips it.
            let cfg_b = EngineConfig {
                executor: exec,
                bandwidth: BandwidthPolicy::Enforce { bits: small_bits },
                ..EngineConfig::default()
            };
            let reused = exec_with_workspace(
                &g,
                &cfg_b,
                &params,
                &mut ws,
                &mut |_| Talk { payload: vec![7], ttl: 5 },
                |_| {},
            )
            .unwrap_or_else(|e| panic!("stale load counters leaked into job B ({exec:?}): {e}"));
            let fresh = run(&g, &cfg_b, |_| Talk { payload: vec![7], ttl: 5 }).unwrap();
            assert_eq!(reused.report.per_round, fresh.report.per_round, "{exec:?}");
            for r in &reused.report.per_round {
                assert!(r.max_link_bits <= small_bits, "{exec:?}: {r:?}");
            }
        }
    }

    /// Lanes addressed to a halted node must be reset by their receiver:
    /// if the drop left counters behind, the sender's per-link load
    /// would accumulate across arena swaps and spuriously trip
    /// enforcement. Run with the cap at exactly one message per link to
    /// prove counters start from zero every round.
    #[test]
    fn halted_receiver_lanes_reset_counters() {
        struct TalkThenQuit {
            quit_round: u32,
        }
        impl Program for TalkThenQuit {
            type Msg = u64;
            type Verdict = ();
            fn step(
                &mut self,
                round: u32,
                _inbox: Inbox<'_, u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                if round >= self.quit_round {
                    return Status::Halted;
                }
                out.broadcast(7);
                Status::Running
            }
            fn verdict(&self) {}
        }
        let g = path_graph(3);
        let params = WireParams::for_graph(&g);
        let msg_bits = 7u64.wire_bits(&params);
        let cfg = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: msg_bits },
            ..EngineConfig::default()
        };
        // Node 0 halts immediately; node 1 keeps sending into node 0's
        // (now receiver-less) lane for 5 more rounds.
        let out =
            run(&g, &cfg, |init| TalkThenQuit { quit_round: if init.index == 0 { 0 } else { 5 } })
                .unwrap();
        assert!(out.report.all_halted);
        for r in &out.report.per_round {
            assert!(r.max_link_bits <= msg_bits, "stale lane counters: {r:?}");
        }
    }

    /// The broadcast slot is double-buffered: a broadcast evicts the
    /// payload this sender parked two rounds earlier (same arena
    /// generation), on every sink mode.
    #[test]
    fn broadcast_evicts_the_two_round_old_payload() {
        struct SlotProbe {
            ttl: u32,
            evictions: Vec<Option<u64>>,
        }
        impl Program for SlotProbe {
            type Msg = u64;
            type Verdict = Vec<Option<u64>>;
            fn step(
                &mut self,
                round: u32,
                _inbox: Inbox<'_, u64>,
                out: &mut Outbox<u64>,
            ) -> Status {
                if round >= self.ttl {
                    return Status::Halted;
                }
                self.evictions.push(out.broadcast(u64::from(round) + 1000));
                Status::Running
            }
            fn verdict(&self) -> Vec<Option<u64>> {
                self.evictions.clone()
            }
        }
        let g = path_graph(5);
        for exec in [Executor::Sequential, Executor::Parallel] {
            for record_rounds in [true, false] {
                let cfg = EngineConfig { executor: exec, record_rounds, ..EngineConfig::default() };
                let out = run(&g, &cfg, |_| SlotProbe { ttl: 6, evictions: Vec::new() }).unwrap();
                for ev in &out.verdicts {
                    let expect: Vec<Option<u64>> =
                        (0u64..6).map(|r| if r < 2 { None } else { Some(r - 2 + 1000) }).collect();
                    assert_eq!(ev, &expect, "{exec:?} record_rounds={record_rounds}");
                }
            }
        }
    }

    /// A second broadcast within one step cannot reuse the slot; it must
    /// fall back to per-port copies, evict nothing, and still deliver
    /// both payloads in queueing order with full accounting.
    #[test]
    fn double_broadcast_per_round_stays_ordered_and_counted() {
        struct DoubleTalk {
            got: Vec<(u32, u64)>,
        }
        impl Program for DoubleTalk {
            type Msg = u64;
            type Verdict = Vec<(u32, u64)>;
            fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
                if round == 0 {
                    assert_eq!(out.broadcast(1), None, "empty slot evicts nothing");
                    assert_eq!(out.broadcast(2), None, "slot taken: clone path evicts nothing");
                    out.send(0, 3);
                    Status::Running
                } else {
                    self.got = inbox.iter().map(|inc| (inc.port, *inc.msg)).collect();
                    Status::Halted
                }
            }
            fn verdict(&self) -> Vec<(u32, u64)> {
                self.got.clone()
            }
        }
        for exec in [Executor::Sequential, Executor::Parallel] {
            for record_rounds in [true, false] {
                let g = path_graph(3);
                let cfg = EngineConfig { executor: exec, record_rounds, ..EngineConfig::default() };
                let out = run(&g, &cfg, |_| DoubleTalk { got: Vec::new() }).unwrap();
                // Node 1 hears 1,2,3 from node 0 (port 0) then 1,2,3 from
                // node 2 — except node 2's port 0 is node 1, so node 2's
                // send(0, 3) also lands here.
                assert_eq!(
                    out.verdicts[1],
                    vec![(0, 1), (0, 2), (0, 3), (1, 1), (1, 2), (1, 3)],
                    "{exec:?} record_rounds={record_rounds}"
                );
                if record_rounds {
                    // Degrees 1,2,1: broadcasts send 2·(1+2+1) = 8, plus 3
                    // targeted sends.
                    assert_eq!(out.report.per_round[0].messages, 11);
                }
            }
        }
    }

    /// Broadcast payloads are stored once per sender; receivers of the
    /// same broadcast observe the identical shared payload (same
    /// address) on the lane path, while accounting still charges every
    /// link the full message size.
    #[test]
    fn broadcast_accounting_charges_every_link() {
        struct WideTalker;
        impl Program for WideTalker {
            type Msg = Vec<u64>;
            type Verdict = ();
            fn step(
                &mut self,
                round: u32,
                _inbox: Inbox<'_, Vec<u64>>,
                out: &mut Outbox<Vec<u64>>,
            ) -> Status {
                if round == 0 {
                    out.broadcast(vec![7; 5]);
                    Status::Running
                } else {
                    Status::Halted
                }
            }
            fn verdict(&self) {}
        }
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (0, 3)]).build().unwrap();
        let params = WireParams::for_graph(&g);
        let one = vec![7u64; 5].wire_bits(&params);
        for exec in [Executor::Sequential, Executor::Parallel] {
            let cfg = EngineConfig { executor: exec, ..EngineConfig::default() };
            let out = run(&g, &cfg, |_| WideTalker).unwrap();
            // 4 nodes broadcast: degrees 3,1,1,1 → 6 messages, each a
            // full payload on its own link.
            assert_eq!(out.report.per_round[0].messages, 6, "{exec:?}");
            assert_eq!(out.report.per_round[0].bits, 6 * one);
            assert_eq!(out.report.per_round[0].max_link_bits, one);
        }
    }
}
