//! Deterministic fault injection (v2): drops, crashes, cuts, bursts,
//! and frame corruption.
//!
//! Production network simulators must answer "what happens under a
//! hostile network?". A [`FaultPlan`] composes five deterministic fault
//! kinds, all replayable across runs and executors:
//!
//! * **explicit drops** — a deny-list of (round, sender, port) triples;
//! * **i.i.d. random loss** — a seeded Bernoulli coin per message;
//! * **crash-stop nodes** — a node falls silent from round `r` onward
//!   (send-omission crash: every outbound message is lost, which is
//!   indistinguishable from a full stop to the rest of the network);
//! * **permanent link cuts** — both directions of an undirected edge are
//!   severed for the whole run;
//! * **correlated burst loss** — a two-state Gilbert–Elliott chain per
//!   directed link: from Good the link enters Bad with probability
//!   `p_enter` per round, from Bad it recovers with probability
//!   `p_exit`; every message crossing a Bad link is lost. Expected
//!   burst length is `1/p_exit` rounds, stationary loss rate
//!   `p_enter/(p_enter+p_exit)` — the classic model of fading channels
//!   where losses cluster instead of striking independently.
//!
//! On top of loss, [`FaultPlan::corrupt_frames`] tampers with messages
//! *in flight* at the [`crate::message::WireCodec`] seam: the victim
//! frame is re-encoded, bits are flipped, and the frame is decoded
//! again. Frames the codec rejects ([`crate::message::CodecError`])
//! count as drops; decodable-but-garbage payloads are **delivered**, so
//! protocol soundness can be stress-tested against adversarial content,
//! not just absence.
//!
//! Every decision is a pure function of the message coordinate
//! (round, sender, receiver, port) and the plan's seeds — never of
//! execution order — so sequential and parallel executors stay
//! bit-identical under any plan. The Gilbert–Elliott chain keeps this
//! property via a backward coupling: each round's per-link coin `u`
//! partitions `[0,1)` into a constant-Bad region `[0, p_enter)`, an
//! identity region, and a constant-Good region `[1−p_exit, 1)`; the
//! state at round `t` is the constant of the most recent non-identity
//! coin at or before `t` (falling back to a stationary coin before
//! round 0). One hash per scanned round, expected scan length
//! `1/(p_enter+p_exit)`, no mutable chain state anywhere.
//!
//! Drops are applied at delivery time; accounting still records the
//! *sent* message (the sender spent the bandwidth), which matches the
//! synchronous-network reading of loss.
//!
//! A structural consequence worth testing (and tested in `ck-core`):
//! dropping or corrupting Phase-2 messages can only *suppress*
//! detections, never fabricate them once witnesses are re-validated —
//! the tester's 1-sidedness survives arbitrary faults, while its
//! detection guarantee degrades gracefully (see `ck-core`'s `robust`
//! module for the `⌈1/(1−p)^{k·⌊k/2⌋}⌉` repetition-inflation formula
//! that recovers the 2/3 bound under assumed loss `p`).

use crate::graph::NodeIndex;
use crate::rngs::mix64;

/// A single scheduled drop: the message sent by `sender` on local port
/// `port` during `round` never arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DropRule {
    pub round: u32,
    pub sender: NodeIndex,
    pub port: u32,
}

/// Why a message died on the wire — the fault kind that claimed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropKind {
    /// An explicit [`DropRule`] fired.
    Explicit,
    /// The i.i.d. Bernoulli coin fired.
    Random,
    /// The sender had crash-stopped.
    Crash,
    /// The link was permanently cut.
    Cut,
    /// The Gilbert–Elliott chain was in its Bad state.
    Burst,
}

impl DropKind {
    /// Number of drop kinds (sizes the per-kind counters).
    pub const COUNT: usize = 5;

    /// Dense index for per-kind accounting arrays.
    pub fn index(self) -> usize {
        match self {
            DropKind::Explicit => 0,
            DropKind::Random => 1,
            DropKind::Crash => 2,
            DropKind::Cut => 3,
            DropKind::Burst => 4,
        }
    }
}

/// The fate of one message under a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// The message arrives untouched.
    Deliver,
    /// The message is lost; the kind says which fault claimed it.
    Drop(DropKind),
    /// The message's encoded frame is tampered with in flight.
    /// `entropy` seeds the bit flips (see
    /// [`crate::message::WireMessage::corrupt_frame`]).
    Corrupt {
        /// Deterministic per-message randomness for the bit flips.
        entropy: u64,
    },
}

/// Deterministic fault plan: a composition of fault kinds, each a pure
/// function of the message coordinate.
///
/// Precedence when several kinds claim the same message:
/// crash > cut > explicit > burst > random; corruption is only
/// considered for messages every drop kind let through.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    // Ordered collections: `decide` is a pure function of the message
    // coordinate either way, but ordered iteration keeps every derived
    // artifact (wire encoding, crash lists, Debug output) bit-identical
    // across processes without a sort-before-use step at each site.
    explicit: std::collections::BTreeSet<DropRule>,
    random: Option<CoinFlip>,
    crashes: std::collections::BTreeMap<NodeIndex, u32>,
    cuts: std::collections::BTreeSet<(NodeIndex, NodeIndex)>,
    burst: Option<BurstLoss>,
    corrupt: Option<CoinFlip>,
}

/// A seeded Bernoulli coin with a fixed-point threshold.
#[derive(Clone, Copy, Debug)]
struct CoinFlip {
    seed: u64,
    /// Probability as a fraction of 2⁶⁴ — `u128` so `p = 1.0` maps to
    /// exactly `1 << 64`, strictly above every 64-bit hash (the old
    /// `u32`-threshold representation let each message survive full
    /// loss with probability 2⁻³²).
    threshold: u128,
}

impl CoinFlip {
    fn new(p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability in [0,1]");
        CoinFlip { seed, threshold: fraction(p) }
    }

    fn fires(&self, salt: u64, round: u32, sender: NodeIndex, port: u32) -> bool {
        u128::from(coord_hash(self.seed ^ salt, round, sender, port)) < self.threshold
    }
}

/// Gilbert–Elliott burst-loss chain, evaluated by backward coupling
/// (see the module doc).
#[derive(Clone, Copy, Debug)]
struct BurstLoss {
    seed: u64,
    /// Coins below this enter (or stay in) Bad: `p_enter · 2⁶⁴`.
    enter: u128,
    /// Coins at or above this exit (or stay out of) Bad:
    /// `(1 − p_exit) · 2⁶⁴`.
    exit: u128,
    /// Stationary probability of Bad:
    /// `p_enter/(p_enter+p_exit) · 2⁶⁴`.
    stationary: u128,
}

impl BurstLoss {
    fn bad(&self, round: u32, sender: NodeIndex, port: u32) -> bool {
        let mut t = round;
        loop {
            let u = u128::from(coord_hash(self.seed ^ SALT_BURST, t, sender, port));
            if u < self.enter {
                return true;
            }
            if u >= self.exit {
                return false;
            }
            if t == 0 {
                // Every coin back to round 0 landed in the identity
                // region: the chain never left its initial state, drawn
                // from the stationary distribution.
                let u0 = u128::from(coord_hash(self.seed ^ SALT_BURST_INIT, 0, sender, port));
                return u0 < self.stationary;
            }
            t -= 1;
        }
    }
}

// Domain-separation salts so the independent coins of one plan never
// share a hash stream even under equal seeds.
const SALT_RANDOM: u64 = 0x72616e_646f6d01;
const SALT_BURST: u64 = 0x627572_73740002;
const SALT_BURST_INIT: u64 = 0x627572_73740003;
const SALT_CORRUPT: u64 = 0x636f72_72757004;
const SALT_ENTROPY: u64 = 0x656e74_726f7005;

/// `p` as a fixed-point fraction of 2⁶⁴. Exact at both endpoints:
/// `fraction(0.0) == 0` and `fraction(1.0) == 1 << 64`.
fn fraction(p: f64) -> u128 {
    (p * 18_446_744_073_709_551_616.0) as u128
}

/// Hashes a message coordinate, mixing each field independently so
/// distinct (round, sender, port) coordinates can never alias into the
/// same coin (the old packed form `round << 40 | sender << 12 | port`
/// let sender bits overlap round and large ports bleed into sender).
fn coord_hash(seed: u64, round: u32, sender: NodeIndex, port: u32) -> u64 {
    let mut h = mix64(seed);
    h = mix64(h ^ mix64(u64::from(round)));
    h = mix64(h ^ mix64(u64::from(sender)));
    mix64(h ^ mix64(u64::from(port)))
}

impl FaultPlan {
    /// A plan that drops nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds one explicit drop rule.
    pub fn drop_at(mut self, round: u32, sender: NodeIndex, port: u32) -> Self {
        self.explicit.insert(DropRule { round, sender, port });
        self
    }

    /// Installs i.i.d. Bernoulli loss with probability `p` per message,
    /// derived deterministically from `seed` and the (round, sender,
    /// port) coordinate — replayable across runs and executors.
    pub fn random_loss(mut self, p: f64, seed: u64) -> Self {
        self.random = Some(CoinFlip::new(p, seed));
        self
    }

    /// Crash-stops `node` from `from_round` onward: every message it
    /// sends at that round or later is lost. Repeated calls keep the
    /// earliest crash round.
    pub fn crash(mut self, node: NodeIndex, from_round: u32) -> Self {
        let r = self.crashes.entry(node).or_insert(from_round);
        *r = (*r).min(from_round);
        self
    }

    /// Permanently cuts the undirected link `{a, b}`: messages in both
    /// directions are lost for the whole run.
    pub fn cut_link(mut self, a: NodeIndex, b: NodeIndex) -> Self {
        assert!(a != b, "a link joins two distinct nodes");
        self.cuts.insert((a.min(b), a.max(b)));
        self
    }

    /// Installs Gilbert–Elliott burst loss: each directed link carries
    /// an independent two-state chain entering its lossy Bad state with
    /// probability `p_enter` per round and leaving it with probability
    /// `p_exit`. Requires `p_enter + p_exit ≤ 1` (the backward-coupling
    /// evaluation partitions one coin per round) and both probabilities
    /// positive (so the chain is ergodic and has a stationary law).
    pub fn burst_loss(mut self, p_enter: f64, p_exit: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p_enter), "loss probability in [0,1]");
        assert!((0.0..=1.0).contains(&p_exit), "loss probability in [0,1]");
        assert!(p_enter > 0.0 && p_exit > 0.0, "burst chain probabilities must be positive");
        assert!(p_enter + p_exit <= 1.0, "burst chain requires p_enter + p_exit <= 1");
        self.burst = Some(BurstLoss {
            seed,
            enter: fraction(p_enter),
            exit: fraction(1.0 - p_exit),
            stationary: fraction(p_enter / (p_enter + p_exit)),
        });
        self
    }

    /// Installs frame corruption: with probability `p` per delivered
    /// message, the encoded frame has bits flipped in flight (see
    /// [`crate::message::WireMessage::corrupt_frame`]). Undecodable
    /// results count as drops; decodable garbage is delivered.
    pub fn corrupt_frames(mut self, p: f64, seed: u64) -> Self {
        self.corrupt = Some(CoinFlip::new(p, seed));
        self
    }

    /// True when no rule can ever fire (lets the engine skip the check).
    pub fn is_trivial(&self) -> bool {
        self.explicit.is_empty()
            && self.random.is_none()
            && self.crashes.is_empty()
            && self.cuts.is_empty()
            && self.burst.is_none()
            && self.corrupt.is_none()
    }

    /// Decides the fate of the message sent by `sender` to `receiver`
    /// on local port `port` at `round`. Pure in the coordinate: safe to
    /// evaluate from any executor in any order.
    pub fn decide(
        &self,
        round: u32,
        sender: NodeIndex,
        receiver: NodeIndex,
        port: u32,
    ) -> FaultDecision {
        if let Some(&from) = self.crashes.get(&sender) {
            if round >= from {
                return FaultDecision::Drop(DropKind::Crash);
            }
        }
        if !self.cuts.is_empty()
            && self.cuts.contains(&(sender.min(receiver), sender.max(receiver)))
        {
            return FaultDecision::Drop(DropKind::Cut);
        }
        if self.explicit.contains(&DropRule { round, sender, port }) {
            return FaultDecision::Drop(DropKind::Explicit);
        }
        if let Some(b) = &self.burst {
            if b.bad(round, sender, port) {
                return FaultDecision::Drop(DropKind::Burst);
            }
        }
        if let Some(r) = &self.random {
            if r.fires(SALT_RANDOM, round, sender, port) {
                return FaultDecision::Drop(DropKind::Random);
            }
        }
        if let Some(c) = &self.corrupt {
            if c.fires(SALT_CORRUPT, round, sender, port) {
                return FaultDecision::Corrupt {
                    entropy: coord_hash(c.seed ^ SALT_ENTROPY, round, sender, port),
                };
            }
        }
        FaultDecision::Deliver
    }

    /// Whether the message is lost (any drop kind). Corrupted messages
    /// are *not* drops at this level — their fate depends on whether
    /// the tampered frame still decodes.
    pub fn drops(&self, round: u32, sender: NodeIndex, receiver: NodeIndex, port: u32) -> bool {
        matches!(self.decide(round, sender, receiver, port), FaultDecision::Drop(_))
    }

    /// Serializes the plan for shipping to distributed workers
    /// (deterministic: set-like fields are emitted sorted). The
    /// encoding carries the *internal* fixed-point thresholds, not the
    /// original `f64` probabilities, so a worker's rebuilt plan flips
    /// exactly the same coins as the coordinator's — the purity of
    /// [`FaultPlan::decide`] then extends across process boundaries.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::net::frame::ByteWriter;
        let mut w = ByteWriter::new();
        // BTree iteration is already in (round, sender, port) order —
        // DropRule's derived Ord matches its field order.
        w.u32(self.explicit.len() as u32);
        for r in &self.explicit {
            w.u32(r.round);
            w.u32(r.sender);
            w.u32(r.port);
        }
        match &self.random {
            Some(c) => {
                w.u8(1);
                w.u64(c.seed);
                w.u128(c.threshold);
            }
            None => w.u8(0),
        }
        w.u32(self.crashes.len() as u32);
        for (&node, &from) in &self.crashes {
            w.u32(node);
            w.u32(from);
        }
        w.u32(self.cuts.len() as u32);
        for &(a, b) in &self.cuts {
            w.u32(a);
            w.u32(b);
        }
        match &self.burst {
            Some(b) => {
                w.u8(1);
                w.u64(b.seed);
                w.u128(b.enter);
                w.u128(b.exit);
                w.u128(b.stationary);
            }
            None => w.u8(0),
        }
        match &self.corrupt {
            Some(c) => {
                w.u8(1);
                w.u64(c.seed);
                w.u128(c.threshold);
            }
            None => w.u8(0),
        }
        w.0
    }

    /// Rebuilds a plan from [`FaultPlan::to_bytes`]; any truncation or
    /// trailing garbage is a typed frame error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::net::frame::FrameError> {
        use crate::net::frame::ByteReader;
        let mut r = ByteReader::new(bytes);
        let mut plan = FaultPlan::default();
        for _ in 0..r.u32()? {
            let rule = DropRule { round: r.u32()?, sender: r.u32()?, port: r.u32()? };
            plan.explicit.insert(rule);
        }
        if r.u8()? != 0 {
            plan.random = Some(CoinFlip { seed: r.u64()?, threshold: r.u128()? });
        }
        for _ in 0..r.u32()? {
            let (node, from) = (r.u32()?, r.u32()?);
            plan.crashes.insert(node, from);
        }
        for _ in 0..r.u32()? {
            let (a, b) = (r.u32()?, r.u32()?);
            plan.cuts.insert((a, b));
        }
        if r.u8()? != 0 {
            plan.burst = Some(BurstLoss {
                seed: r.u64()?,
                enter: r.u128()?,
                exit: r.u128()?,
                stationary: r.u128()?,
            });
        }
        if r.u8()? != 0 {
            plan.corrupt = Some(CoinFlip { seed: r.u64()?, threshold: r.u128()? });
        }
        r.finish()?;
        Ok(plan)
    }

    /// The nodes that have crash-stopped strictly before `rounds`
    /// rounds have executed, restricted to indices below `n`, sorted.
    pub fn crashed_by(&self, rounds: u32, n: usize) -> Vec<NodeIndex> {
        let mut out = Vec::new();
        self.crashed_by_into(rounds, n, &mut out);
        out
    }

    /// [`crashed_by`](Self::crashed_by) into a caller-owned buffer —
    /// the warm-path form: a reused buffer makes the per-run crash
    /// list allocation-free once its capacity has grown to fit.
    pub fn crashed_by_into(&self, rounds: u32, n: usize, out: &mut Vec<NodeIndex>) {
        out.clear();
        // BTreeMap iteration is ordered by node, so `out` comes back
        // sorted without a separate sort step.
        out.extend(
            self.crashes
                .iter()
                .filter(|&(&node, &from)| from < rounds && (node as usize) < n)
                .map(|(&node, _)| node),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_never_drops() {
        let p = FaultPlan::none();
        assert!(p.is_trivial());
        for r in 0..10 {
            assert!(!p.drops(r, 0, 1, 0));
            assert_eq!(p.decide(r, 0, 1, 0), FaultDecision::Deliver);
        }
    }

    #[test]
    fn explicit_rules_fire_exactly() {
        let p = FaultPlan::none().drop_at(3, 7, 1);
        assert!(!p.is_trivial());
        assert!(p.drops(3, 7, 0, 1));
        assert_eq!(p.decide(3, 7, 0, 1), FaultDecision::Drop(DropKind::Explicit));
        assert!(!p.drops(3, 7, 0, 0));
        assert!(!p.drops(2, 7, 0, 1));
        assert!(!p.drops(3, 6, 0, 1));
    }

    #[test]
    fn random_loss_is_deterministic_and_calibrated() {
        let p = FaultPlan::none().random_loss(0.25, 99);
        let q = FaultPlan::none().random_loss(0.25, 99);
        let mut dropped = 0;
        let total = 40_000;
        for r in 0..200u32 {
            for s in 0..20u32 {
                for port in 0..10u32 {
                    let d = p.drops(r, s, s + 1, port);
                    assert_eq!(d, q.drops(r, s, s + 1, port), "determinism");
                    if d {
                        dropped += 1;
                    }
                }
            }
        }
        let rate = f64::from(dropped) / f64::from(total);
        assert!((rate - 0.25).abs() < 0.02, "empirical loss {rate} far from 0.25");
    }

    #[test]
    fn zero_and_full_loss() {
        let none = FaultPlan::none().random_loss(0.0, 1);
        let all = FaultPlan::none().random_loss(1.0, 1);
        // Behavioral sweep over many coordinates.
        for r in 0..200u32 {
            for s in 0..10u32 {
                assert!(!none.drops(r, s, s + 1, 0));
                assert!(all.drops(r, s, s + 1, 0));
            }
        }
        // The sharp boundary the old u32 threshold missed: at p = 1.0
        // the threshold must exceed every possible 64-bit hash — the
        // old `(h as u32) < u32::MAX` let a hash with low word
        // `u32::MAX` survive (each message lived with probability
        // 2⁻³²). Conversely p = 0.0 must spare even a zero hash.
        let full = CoinFlip::new(1.0, 1);
        assert_eq!(full.threshold, 1u128 << 64);
        assert!(u128::from(u64::MAX) < full.threshold, "p=1.0 must drop the maximal hash");
        let zero = CoinFlip::new(0.0, 1);
        assert_eq!(zero.threshold, 0);
        assert!(u128::from(0u64) >= zero.threshold, "p=0.0 must spare the zero hash");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::none().random_loss(1.5, 0);
    }

    #[test]
    fn coordinate_fields_do_not_alias() {
        // The old packing `round << 40 | sender << 12 | port` collided
        // e.g. (round, sender, port) = (0, 2^28, 0) with (1, 0, 0) and
        // (0, 0, 2^12) with (0, 1, 0). Independent mixing must give
        // these distinct coins.
        let collide = [
            ((0u32, 1u32 << 28, 0u32), (1u32, 0u32, 0u32)),
            ((0, 0, 1 << 12), (0, 1, 0)),
            ((1 << 24, 0, 0), (0, 0, 0)),
        ];
        for ((r1, s1, p1), (r2, s2, p2)) in collide {
            assert_ne!(
                coord_hash(42, r1, s1, p1),
                coord_hash(42, r2, s2, p2),
                "({r1},{s1},{p1}) aliases ({r2},{s2},{p2})"
            );
        }
    }

    #[test]
    fn crash_silences_sender_from_round() {
        let p = FaultPlan::none().crash(4, 3);
        assert!(!p.drops(2, 4, 0, 0), "alive before the crash round");
        assert_eq!(p.decide(3, 4, 0, 0), FaultDecision::Drop(DropKind::Crash));
        assert_eq!(p.decide(9, 4, 1, 2), FaultDecision::Drop(DropKind::Crash));
        assert!(!p.drops(9, 5, 4, 0), "other senders unaffected");
        // Repeated crashes keep the earliest round.
        let q = p.crash(4, 7);
        assert!(q.drops(3, 4, 0, 0));
        assert_eq!(q.crashed_by(4, 10), vec![4]);
        assert_eq!(q.crashed_by(3, 10), Vec::<NodeIndex>::new());
    }

    #[test]
    fn cut_links_sever_both_directions() {
        let p = FaultPlan::none().cut_link(2, 5);
        for r in 0..10 {
            assert_eq!(p.decide(r, 2, 5, 0), FaultDecision::Drop(DropKind::Cut));
            assert_eq!(p.decide(r, 5, 2, 3), FaultDecision::Drop(DropKind::Cut));
        }
        assert!(!p.drops(0, 2, 4, 0), "other links unaffected");
        assert!(!p.drops(0, 5, 6, 0));
    }

    #[test]
    fn burst_loss_is_deterministic_and_clusters() {
        let p = FaultPlan::none().burst_loss(0.1, 0.3, 7);
        let q = FaultPlan::none().burst_loss(0.1, 0.3, 7);
        let rounds = 20_000u32;
        let mut bad = 0u32;
        let mut transitions = 0u32;
        let mut prev = false;
        for r in 0..rounds {
            let d = p.drops(r, 0, 1, 0);
            assert_eq!(d, q.drops(r, 0, 1, 0), "determinism");
            if d {
                bad += 1;
            }
            if r > 0 && d != prev {
                transitions += 1;
            }
            prev = d;
        }
        // Stationary Bad rate is p_enter/(p_enter+p_exit) = 0.25.
        let rate = f64::from(bad) / f64::from(rounds);
        assert!((rate - 0.25).abs() < 0.03, "stationary rate {rate} far from 0.25");
        // Clustering: an i.i.d. 0.25 coin would flip state ~37.5% of
        // steps; the chain flips at ~2·(0.75·0.1) = 15%.
        let flip = f64::from(transitions) / f64::from(rounds - 1);
        assert!(flip < 0.25, "losses do not cluster: flip rate {flip}");
        // Different links see different chains.
        let other: Vec<bool> = (0..200).map(|r| p.drops(r, 3, 1, 1)).collect();
        let this: Vec<bool> = (0..200).map(|r| p.drops(r, 0, 1, 0)).collect();
        assert_ne!(other, this, "per-link chains must differ");
    }

    #[test]
    fn burst_matches_forward_simulation() {
        // The backward coupling must equal a forward walk of the same
        // chain driven by the same coins.
        let (pe, px, seed) = (0.2, 0.4, 11);
        let p = FaultPlan::none().burst_loss(pe, px, seed);
        let b = p.burst.unwrap();
        for (s, port) in [(0u32, 0u32), (5, 2), (9, 7)] {
            let mut state =
                u128::from(coord_hash(seed ^ SALT_BURST_INIT, 0, s, port)) < b.stationary;
            for r in 0..500u32 {
                let u = u128::from(coord_hash(seed ^ SALT_BURST, r, s, port));
                if u < b.enter {
                    state = true;
                } else if u >= b.exit {
                    state = false;
                }
                assert_eq!(p.drops(r, s, s + 1, port), state, "round {r} link ({s},{port})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "p_enter + p_exit")]
    fn burst_rejects_overlapping_probabilities() {
        let _ = FaultPlan::none().burst_loss(0.7, 0.5, 0);
    }

    #[test]
    fn corruption_decisions_are_deterministic_and_calibrated() {
        let p = FaultPlan::none().corrupt_frames(0.5, 13);
        let mut hit = 0u32;
        for r in 0..100u32 {
            for s in 0..20u32 {
                match p.decide(r, s, s + 1, 0) {
                    FaultDecision::Corrupt { entropy } => {
                        hit += 1;
                        assert_eq!(
                            p.decide(r, s, s + 1, 0),
                            FaultDecision::Corrupt { entropy },
                            "determinism"
                        );
                    }
                    FaultDecision::Deliver => {}
                    FaultDecision::Drop(k) => panic!("corruption-only plan dropped: {k:?}"),
                }
            }
        }
        let rate = f64::from(hit) / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "corruption rate {rate} far from 0.5");
        assert!(!p.drops(0, 0, 1, 0) || hit > 0, "drops() must not count corruption");
    }

    #[test]
    fn precedence_crash_over_cut_over_explicit() {
        let p = FaultPlan::none().crash(1, 0).cut_link(1, 2).drop_at(0, 1, 0);
        assert_eq!(p.decide(0, 1, 2, 0), FaultDecision::Drop(DropKind::Crash));
        let q = FaultPlan::none().cut_link(1, 2).drop_at(0, 1, 0);
        assert_eq!(q.decide(0, 1, 2, 0), FaultDecision::Drop(DropKind::Cut));
        let r = FaultPlan::none().drop_at(0, 1, 0).random_loss(1.0, 3);
        assert_eq!(r.decide(0, 1, 2, 0), FaultDecision::Drop(DropKind::Explicit));
        assert_eq!(r.decide(1, 1, 2, 0), FaultDecision::Drop(DropKind::Random));
    }

    #[test]
    fn composed_plans_report_nontriviality() {
        assert!(!FaultPlan::none().crash(0, 0).is_trivial());
        assert!(!FaultPlan::none().cut_link(0, 1).is_trivial());
        assert!(!FaultPlan::none().burst_loss(0.1, 0.5, 0).is_trivial());
        assert!(!FaultPlan::none().corrupt_frames(0.1, 0).is_trivial());
    }
}
