//! Deterministic fault injection.
//!
//! Production network simulators must answer "what happens under loss?".
//! A [`FaultPlan`] deterministically drops messages by (round, sender,
//! port) — either from an explicit deny-list or by a seeded Bernoulli
//! coin per directed link per round. Drops are applied at delivery time;
//! accounting still records the *sent* message (the sender spent the
//! bandwidth), which matches the synchronous-network reading of loss.
//!
//! A structural consequence worth testing (and tested in `ck-core`):
//! dropping Phase-2 messages can only *suppress* detections, never
//! fabricate them — the tester's 1-sidedness survives arbitrary loss,
//! while its detection guarantee degrades gracefully.

use crate::graph::NodeIndex;
use crate::rngs::mix64;

/// A single scheduled drop: the message sent by `sender` on local port
/// `port` during `round` never arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DropRule {
    pub round: u32,
    pub sender: NodeIndex,
    pub port: u32,
}

/// Deterministic message-loss plan.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    explicit: std::collections::HashSet<DropRule>,
    random: Option<RandomLoss>,
}

#[derive(Clone, Copy, Debug)]
struct RandomLoss {
    seed: u64,
    /// Loss probability as a fixed-point fraction of `u32::MAX`.
    threshold: u32,
}

impl FaultPlan {
    /// A plan that drops nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds one explicit drop rule.
    pub fn drop_at(mut self, round: u32, sender: NodeIndex, port: u32) -> Self {
        self.explicit.insert(DropRule { round, sender, port });
        self
    }

    /// Installs i.i.d. Bernoulli loss with probability `p` per message,
    /// derived deterministically from `seed` and the (round, sender,
    /// port) coordinate — replayable across runs and executors.
    pub fn random_loss(mut self, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability in [0,1]");
        self.random = Some(RandomLoss { seed, threshold: (p * f64::from(u32::MAX)) as u32 });
        self
    }

    /// True when no rule can ever fire (lets the engine skip the check).
    pub fn is_trivial(&self) -> bool {
        self.explicit.is_empty() && self.random.is_none()
    }

    /// Decides whether the message sent by `sender` on `port` at `round`
    /// is dropped.
    pub fn drops(&self, round: u32, sender: NodeIndex, port: u32) -> bool {
        if self.explicit.contains(&DropRule { round, sender, port }) {
            return true;
        }
        if let Some(r) = self.random {
            let h = mix64(
                r.seed ^ mix64(u64::from(round) << 40 | u64::from(sender) << 12 | u64::from(port)),
            );
            return (h as u32) < r.threshold;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_never_drops() {
        let p = FaultPlan::none();
        assert!(p.is_trivial());
        for r in 0..10 {
            assert!(!p.drops(r, 0, 0));
        }
    }

    #[test]
    fn explicit_rules_fire_exactly() {
        let p = FaultPlan::none().drop_at(3, 7, 1);
        assert!(!p.is_trivial());
        assert!(p.drops(3, 7, 1));
        assert!(!p.drops(3, 7, 0));
        assert!(!p.drops(2, 7, 1));
        assert!(!p.drops(3, 6, 1));
    }

    #[test]
    fn random_loss_is_deterministic_and_calibrated() {
        let p = FaultPlan::none().random_loss(0.25, 99);
        let q = FaultPlan::none().random_loss(0.25, 99);
        let mut dropped = 0;
        let total = 40_000;
        for r in 0..200u32 {
            for s in 0..20u32 {
                for port in 0..10u32 {
                    let d = p.drops(r, s, port);
                    assert_eq!(d, q.drops(r, s, port), "determinism");
                    if d {
                        dropped += 1;
                    }
                }
            }
        }
        let rate = f64::from(dropped) / f64::from(total);
        assert!((rate - 0.25).abs() < 0.02, "empirical loss {rate} far from 0.25");
    }

    #[test]
    fn zero_and_full_loss() {
        let none = FaultPlan::none().random_loss(0.0, 1);
        let all = FaultPlan::none().random_loss(1.0, 1);
        for r in 0..50u32 {
            assert!(!none.drops(r, 1, 0));
            assert!(all.drops(r, 1, 0));
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_bad_probability() {
        let _ = FaultPlan::none().random_loss(1.5, 0);
    }
}
