//! Static, simple, undirected graphs in CSR form.
//!
//! The CONGEST model operates on a connected simple graph whose nodes carry
//! arbitrary distinct identities polynomial in `n`. This module provides the
//! immutable topology the round engine runs on: adjacency in compressed
//! sparse row layout, a canonical edge list, per-port reverse-port tables
//! (needed to label incoming messages with the receiver-side port), and the
//! usual structural queries (connectivity, BFS, girth, degree statistics).

use std::collections::HashMap;
use std::fmt;

/// A node identity. The paper assumes IDs are distinct and polynomial in
/// `n`, hence representable in `O(log n)` bits; we use `u64`.
pub type NodeId = u64;

/// Dense node index in `0..n`. Topology internals use indices; protocol
/// payloads use [`NodeId`]s.
pub type NodeIndex = u32;

/// Identifier of a *directed* edge `(v, p)`: node `v`'s adjacency slot
/// for local port `p`, i.e. `offsets[v] + p` in the CSR layout. Directed
/// edges number exactly `2m` and tile `0..2m` contiguously per sender,
/// which is what lets the round engine key flat per-link message lanes
/// and accounting counters by this id with no hashing and no search.
pub type DirectedEdgeId = u32;

/// An undirected edge in canonical (smaller index, larger index) order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    pub a: NodeIndex,
    pub b: NodeIndex,
}

impl Edge {
    /// Canonicalizes the endpoint order.
    pub fn new(x: NodeIndex, y: NodeIndex) -> Self {
        if x <= y {
            Edge { a: x, b: y }
        } else {
            Edge { a: y, b: x }
        }
    }

    /// Returns the endpoint distinct from `v`, or `None` if `v` is not an
    /// endpoint.
    pub fn other(&self, v: NodeIndex) -> Option<NodeIndex> {
        if v == self.a {
            Some(self.b)
        } else if v == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// True if `v` is an endpoint of this edge.
    pub fn touches(&self, v: NodeIndex) -> bool {
        v == self.a || v == self.b
    }
}

/// Errors raised while assembling a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A self-loop was inserted; CONGEST graphs are simple.
    SelfLoop(NodeIndex),
    /// An endpoint index is out of the declared node range.
    NodeOutOfRange { node: NodeIndex, n: usize },
    /// Two nodes were assigned the same identity.
    DuplicateId(NodeId),
    /// The ID table length does not match the node count.
    IdTableLength { expected: usize, got: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for n={n}")
            }
            GraphError::DuplicateId(id) => write!(f, "duplicate node identity {id}"),
            GraphError::IdTableLength { expected, got } => {
                write!(f, "ID table has {got} entries, expected {expected}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`Graph`]. Parallel edges are merged silently
/// (the model allows at most one edge per node pair); self-loops are
/// rejected at [`GraphBuilder::build`] time.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    ids: Option<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new(), ids: None }
    }

    /// Number of declared nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge between node indices `x` and `y`.
    pub fn edge(&mut self, x: NodeIndex, y: NodeIndex) -> &mut Self {
        self.edges.push(Edge::new(x, y));
        self
    }

    /// Adds every edge from the iterator.
    pub fn edges<I: IntoIterator<Item = (NodeIndex, NodeIndex)>>(&mut self, it: I) -> &mut Self {
        for (x, y) in it {
            self.edge(x, y);
        }
        self
    }

    /// Installs an explicit ID table (one identity per node index). By
    /// default nodes get identity `index` (a valid polynomial-range
    /// assignment); experiments that need adversarial or randomized IDs
    /// override it here or via [`Graph::with_ids`].
    pub fn ids(&mut self, ids: Vec<NodeId>) -> &mut Self {
        self.ids = Some(ids);
        self
    }

    /// Validates and freezes the topology.
    pub fn build(&self) -> Result<Graph, GraphError> {
        let n = self.n;
        let mut edges = Vec::with_capacity(self.edges.len());
        for e in &self.edges {
            if e.a == e.b {
                return Err(GraphError::SelfLoop(e.a));
            }
            if (e.b as usize) >= n {
                return Err(GraphError::NodeOutOfRange { node: e.b, n });
            }
            edges.push(*e);
        }
        edges.sort_unstable();
        edges.dedup();

        let mut degree = vec![0u32; n];
        for e in &edges {
            degree[e.a as usize] += 1;
            degree[e.b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeIndex; 2 * edges.len()];
        let mut edge_of_slot = vec![0u32; 2 * edges.len()];
        for (ei, e) in edges.iter().enumerate() {
            let ca = cursor[e.a as usize];
            neighbors[ca as usize] = e.b;
            edge_of_slot[ca as usize] = ei as u32;
            cursor[e.a as usize] += 1;
            let cb = cursor[e.b as usize];
            neighbors[cb as usize] = e.a;
            edge_of_slot[cb as usize] = ei as u32;
            cursor[e.b as usize] += 1;
        }
        // Adjacency of each node is sorted because edges were sorted
        // lexicographically, which emits neighbors in increasing order for
        // the `a` side but not necessarily the `b` side; sort each row (and
        // carry the edge-of-slot payload along).
        for v in 0..n {
            let (s, t) = (offsets[v] as usize, offsets[v + 1] as usize);
            let mut row: Vec<(NodeIndex, u32)> =
                neighbors[s..t].iter().copied().zip(edge_of_slot[s..t].iter().copied()).collect();
            row.sort_unstable();
            for (i, (nb, ei)) in row.into_iter().enumerate() {
                neighbors[s + i] = nb;
                edge_of_slot[s + i] = ei;
            }
        }

        // Reverse ports: rev_port[slot of (v -> w)] = port of v in w's row.
        // rev_slot is the same map in directed-edge-id space: the slot of
        // (w -> v), precomputed so the engine's lane lookups are one load.
        let mut rev_port = vec![0u32; neighbors.len()];
        let mut rev_slot = vec![0 as DirectedEdgeId; neighbors.len()];
        for v in 0..n {
            let (s, t) = (offsets[v] as usize, offsets[v + 1] as usize);
            for (p, &w) in neighbors[s..t].iter().enumerate() {
                let (ws, wt) = (offsets[w as usize] as usize, offsets[w as usize + 1] as usize);
                let q = neighbors[ws..wt]
                    .binary_search(&(v as NodeIndex))
                    // ck-lint: allow(no-panic, reason = "GraphBuilder validated edge symmetry before this adjacency was frozen")
                    .expect("reverse edge must exist");
                rev_port[s + p] = q as u32;
                rev_slot[s + p] = offsets[w as usize] + q as u32;
            }
        }

        let ids = match &self.ids {
            Some(ids) => {
                if ids.len() != n {
                    return Err(GraphError::IdTableLength { expected: n, got: ids.len() });
                }
                let mut seen = HashMap::with_capacity(n);
                for (i, &id) in ids.iter().enumerate() {
                    if let Some(_prev) = seen.insert(id, i) {
                        return Err(GraphError::DuplicateId(id));
                    }
                }
                ids.clone()
            }
            None => (0..n as NodeId).collect(),
        };
        let mut index_of_id = HashMap::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            index_of_id.insert(id, i as NodeIndex);
        }

        let (neighbor_ids_flat, ports_by_id) = build_id_views(n, &offsets, &neighbors, &ids);

        Ok(Graph {
            n,
            offsets,
            neighbors,
            edge_of_slot,
            rev_port,
            rev_slot,
            edges,
            ids,
            index_of_id,
            neighbor_ids_flat,
            ports_by_id,
        })
    }
}

/// Builds the identity-keyed adjacency views: the CSR-aligned table of
/// neighbor identities, and per row the port permutation sorted by
/// neighbor identity (the index behind `NodeInit::port_of_neighbor`'s
/// binary search). Recomputed whenever the ID table changes.
fn build_id_views(
    n: usize,
    offsets: &[u32],
    neighbors: &[NodeIndex],
    ids: &[NodeId],
) -> (Vec<NodeId>, Vec<u32>) {
    let mut neighbor_ids_flat = vec![0 as NodeId; neighbors.len()];
    let mut ports_by_id = vec![0u32; neighbors.len()];
    for v in 0..n {
        let (s, t) = (offsets[v] as usize, offsets[v + 1] as usize);
        for (p, &w) in neighbors[s..t].iter().enumerate() {
            neighbor_ids_flat[s + p] = ids[w as usize];
            ports_by_id[s + p] = p as u32;
        }
        ports_by_id[s..t].sort_unstable_by_key(|&p| neighbor_ids_flat[s + p as usize]);
    }
    (neighbor_ids_flat, ports_by_id)
}

/// An immutable simple undirected graph with node identities, stored in
/// CSR form. All engine-facing lookups are O(1) or O(log degree).
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    offsets: Vec<u32>,
    neighbors: Vec<NodeIndex>,
    /// Edge index (into `edges`) for each adjacency slot.
    edge_of_slot: Vec<u32>,
    /// Port of `v` within `w`'s adjacency row, per slot of `v -> w`.
    rev_port: Vec<u32>,
    /// Directed-edge id of `(w -> v)`, per slot of `v -> w` (the same map
    /// as `rev_port`, pre-offset into directed-edge-id space).
    rev_slot: Vec<DirectedEdgeId>,
    edges: Vec<Edge>,
    ids: Vec<NodeId>,
    index_of_id: HashMap<NodeId, NodeIndex>,
    /// Identity of `neighbors[s]`, per adjacency slot `s` (CSR-aligned).
    neighbor_ids_flat: Vec<NodeId>,
    /// Per row: local ports permuted into ascending-neighbor-identity
    /// order, enabling O(log degree) identity-to-port lookup.
    ports_by_id: Vec<u32>,
}

impl Graph {
    /// Number of nodes (`n` in the paper).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (`m` in the paper).
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Canonical edge list (sorted lexicographically).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Identity of node `v`.
    pub fn id(&self, v: NodeIndex) -> NodeId {
        self.ids[v as usize]
    }

    /// The full ID table, indexed by node index.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Node index carrying identity `id`, if any.
    pub fn index_of(&self, id: NodeId) -> Option<NodeIndex> {
        self.index_of_id.get(&id).copied()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeIndex) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v as NodeIndex)).max().unwrap_or(0)
    }

    /// Average degree `2m/n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m() as f64 / self.n as f64
        }
    }

    /// Sorted neighbor row of `v`.
    pub fn neighbors(&self, v: NodeIndex) -> &[NodeIndex] {
        let (s, t) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.neighbors[s..t]
    }

    /// Neighbor reached from `v` through local port `p`.
    pub fn neighbor_at(&self, v: NodeIndex, p: u32) -> NodeIndex {
        self.neighbors(v)[p as usize]
    }

    /// Port of `v` leading to `w`, if the edge exists.
    pub fn port_to(&self, v: NodeIndex, w: NodeIndex) -> Option<u32> {
        self.neighbors(v).binary_search(&w).ok().map(|p| p as u32)
    }

    /// Port of `v` within `w`'s adjacency row, given `v`'s local port `p`
    /// towards `w` (the receiver-side label of a message sent on `p`).
    pub fn reverse_port(&self, v: NodeIndex, p: u32) -> u32 {
        self.rev_port[self.offsets[v as usize] as usize + p as usize]
    }

    /// Edge index (into [`Graph::edges`]) of the adjacency slot `(v, p)`.
    pub fn edge_index_at(&self, v: NodeIndex, p: u32) -> u32 {
        self.edge_of_slot[self.offsets[v as usize] as usize + p as usize]
    }

    /// Number of directed edges (`2m`): the size of the engine's
    /// per-link lane and counter arrays.
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Directed-edge id of `(v, p)`.
    pub fn directed_edge(&self, v: NodeIndex, p: u32) -> DirectedEdgeId {
        self.offsets[v as usize] + p
    }

    /// The contiguous directed-edge id range owned by sender `v` — one
    /// lane per local port, in port order.
    pub fn directed_edge_range(&self, v: NodeIndex) -> std::ops::Range<DirectedEdgeId> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Directed-edge id of the reverse link: for `de = (v -> w)`, the id
    /// of `(w -> v)`.
    pub fn reverse_directed_edge(&self, de: DirectedEdgeId) -> DirectedEdgeId {
        self.rev_slot[de as usize]
    }

    /// Identities of `v`'s neighbors, indexed by local port — a borrow
    /// of the graph's CSR-aligned table, so handing it to every node
    /// costs nothing.
    pub fn neighbor_ids(&self, v: NodeIndex) -> &[NodeId] {
        let (s, t) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.neighbor_ids_flat[s..t]
    }

    /// `v`'s local ports permuted into ascending-neighbor-identity order
    /// (the index behind O(log degree) identity-to-port lookups).
    pub fn ports_sorted_by_id(&self, v: NodeIndex) -> &[u32] {
        let (s, t) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.ports_by_id[s..t]
    }

    /// Receiver-side port per local port of `v` (the `rev_port` row) —
    /// the engine labels outgoing messages with these at send time.
    pub(crate) fn rev_ports_row(&self, v: NodeIndex) -> &[u32] {
        let (s, t) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
        &self.rev_port[s..t]
    }

    /// True if `{v, w}` is an edge.
    pub fn has_edge(&self, v: NodeIndex, w: NodeIndex) -> bool {
        if v == w {
            return false;
        }
        let (v, w) = if self.degree(v) <= self.degree(w) { (v, w) } else { (w, v) };
        self.neighbors(v).binary_search(&w).is_ok()
    }

    /// Replaces the ID table, returning a new graph with identical topology.
    pub fn with_ids(&self, ids: Vec<NodeId>) -> Result<Graph, GraphError> {
        if ids.len() != self.n {
            return Err(GraphError::IdTableLength { expected: self.n, got: ids.len() });
        }
        let mut index_of_id = HashMap::with_capacity(self.n);
        for (i, &id) in ids.iter().enumerate() {
            if index_of_id.insert(id, i as NodeIndex).is_some() {
                return Err(GraphError::DuplicateId(id));
            }
        }
        let (neighbor_ids_flat, ports_by_id) =
            build_id_views(self.n, &self.offsets, &self.neighbors, &ids);
        Ok(Graph {
            n: self.n,
            offsets: self.offsets.clone(),
            neighbors: self.neighbors.clone(),
            edge_of_slot: self.edge_of_slot.clone(),
            rev_port: self.rev_port.clone(),
            rev_slot: self.rev_slot.clone(),
            edges: self.edges.clone(),
            ids,
            index_of_id,
            neighbor_ids_flat,
            ports_by_id,
        })
    }

    /// BFS distances from `src` (`u32::MAX` marks unreachable nodes).
    pub fn bfs_distances(&self, src: NodeIndex) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src as usize] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize];
            for &w in self.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// True if the graph is connected (the CONGEST model assumes so; the
    /// engine itself tolerates disconnected inputs).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let mut comp = vec![usize::MAX; self.n];
        let mut c = 0;
        for s in 0..self.n {
            if comp[s] != usize::MAX {
                continue;
            }
            let mut stack = vec![s as NodeIndex];
            comp[s] = c;
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w as usize] == usize::MAX {
                        comp[w as usize] = c;
                        stack.push(w);
                    }
                }
            }
            c += 1;
        }
        c
    }

    /// Eccentricity-based diameter (exact; O(n·m) — for test-scale graphs).
    pub fn diameter(&self) -> Option<u32> {
        if self.n == 0 {
            return Some(0);
        }
        let mut best = 0;
        for v in 0..self.n {
            let d = self.bfs_distances(v as NodeIndex);
            for &x in &d {
                if x == u32::MAX {
                    return None; // disconnected
                }
                best = best.max(x);
            }
        }
        Some(best)
    }

    /// Girth (length of a shortest cycle), or `None` for forests. Standard
    /// BFS-per-vertex bound: O(n·m).
    pub fn girth(&self) -> Option<u32> {
        let mut best: Option<u32> = None;
        let mut dist = vec![u32::MAX; self.n];
        let mut parent = vec![u32::MAX; self.n];
        for s in 0..self.n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            parent.iter_mut().for_each(|p| *p = u32::MAX);
            let mut queue = std::collections::VecDeque::new();
            dist[s] = 0;
            queue.push_back(s as NodeIndex);
            while let Some(v) = queue.pop_front() {
                for &w in self.neighbors(v) {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = dist[v as usize] + 1;
                        parent[w as usize] = v;
                        queue.push_back(w);
                    } else if parent[v as usize] != w {
                        // Non-tree edge: cycle through s of length
                        // dist[v] + dist[w] + 1 (an upper bound that is
                        // tight for the BFS root on its shortest cycle).
                        let len = dist[v as usize] + dist[w as usize] + 1;
                        best = Some(best.map_or(len, |b| b.min(len)));
                    }
                }
            }
        }
        best
    }

    /// Total degree histogram, indexed by degree.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.max_degree() + 1];
        for v in 0..self.n {
            h[self.degree(v as NodeIndex)] += 1;
        }
        h
    }

    /// Serializes to a plain edge-list text format (`n m` header, then one
    /// `a b` pair per line, then an `ids` line) — a stable interchange
    /// format for the experiment harness.
    pub fn to_edge_list(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{} {}", self.n, self.m());
        for e in &self.edges {
            let _ = writeln!(s, "{} {}", e.a, e.b);
        }
        let ids: Vec<String> = self.ids.iter().map(|i| i.to_string()).collect();
        let _ = writeln!(s, "ids {}", ids.join(" "));
        s
    }

    /// Parses the format produced by [`Graph::to_edge_list`].
    pub fn from_edge_list(text: &str) -> Result<Graph, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("missing header")?;
        let mut hp = header.split_whitespace();
        let n: usize = hp.next().ok_or("missing n")?.parse().map_err(|e| format!("bad n: {e}"))?;
        let m: usize = hp.next().ok_or("missing m")?.parse().map_err(|e| format!("bad m: {e}"))?;
        let mut b = GraphBuilder::new(n);
        let mut count = 0;
        let mut ids = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("ids ") {
                let parsed: Result<Vec<NodeId>, _> =
                    rest.split_whitespace().map(|t| t.parse()).collect();
                ids = Some(parsed.map_err(|e| format!("bad id: {e}"))?);
                continue;
            }
            let mut p = line.split_whitespace();
            let a: NodeIndex = p
                .next()
                .ok_or("missing endpoint")?
                .parse()
                .map_err(|e| format!("bad endpoint: {e}"))?;
            let bidx: NodeIndex = p
                .next()
                .ok_or("missing endpoint")?
                .parse()
                .map_err(|e| format!("bad endpoint: {e}"))?;
            b.edge(a, bidx);
            count += 1;
        }
        if count != m {
            return Err(format!("header claims {m} edges, found {count}"));
        }
        if let Some(ids) = ids {
            b.ids(ids);
        }
        b.build().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        GraphBuilder::new(3).edges([(0, 1), (1, 2), (0, 2)]).build().unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_self_loop() {
        let err = GraphBuilder::new(2).edges([(0, 0)]).build().unwrap_err();
        assert_eq!(err, GraphError::SelfLoop(0));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2).edges([(0, 5)]).build().unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = GraphBuilder::new(2).edges([(0, 1), (1, 0), (0, 1)]).build().unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn rejects_duplicate_ids() {
        let err = GraphBuilder::new(2).edges([(0, 1)]).ids(vec![7, 7]).build().unwrap_err();
        assert_eq!(err, GraphError::DuplicateId(7));
    }

    #[test]
    fn reverse_ports_are_consistent() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4)])
            .build()
            .unwrap();
        for v in 0..g.n() as NodeIndex {
            for p in 0..g.degree(v) as u32 {
                let w = g.neighbor_at(v, p);
                let q = g.reverse_port(v, p);
                assert_eq!(g.neighbor_at(w, q), v, "rev port must lead back");
            }
        }
    }

    #[test]
    fn edge_index_agrees_with_edge_list() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3), (0, 3)]).build().unwrap();
        for v in 0..g.n() as NodeIndex {
            for p in 0..g.degree(v) as u32 {
                let w = g.neighbor_at(v, p);
                let e = g.edges()[g.edge_index_at(v, p) as usize];
                assert_eq!(e, Edge::new(v, w));
            }
        }
    }

    #[test]
    fn bfs_and_diameter() {
        // Path 0-1-2-3-4.
        let g = GraphBuilder::new(5).edges([(0, 1), (1, 2), (2, 3), (3, 4)]).build().unwrap();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.diameter(), Some(4));
        assert!(g.is_connected());
        assert_eq!(g.component_count(), 1);
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn girth_of_cycles() {
        for k in 3..12u32 {
            let mut b = GraphBuilder::new(k as usize);
            for i in 0..k {
                b.edge(i, (i + 1) % k);
            }
            let g = b.build().unwrap();
            assert_eq!(g.girth(), Some(k), "girth of C{k}");
        }
    }

    #[test]
    fn girth_of_petersen_is_five() {
        // Petersen graph: outer C5, inner pentagram, spokes.
        let mut b = GraphBuilder::new(10);
        for i in 0..5u32 {
            b.edge(i, (i + 1) % 5);
            b.edge(5 + i, 5 + ((i + 2) % 5));
            b.edge(i, 5 + i);
        }
        let g = b.build().unwrap();
        assert_eq!(g.m(), 15);
        assert_eq!(g.girth(), Some(5));
    }

    #[test]
    fn disconnected_component_count() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build().unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.component_count(), 2);
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn edge_list_round_trip() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
            .ids(vec![10, 20, 30, 40])
            .build()
            .unwrap();
        let text = g.to_edge_list();
        let h = Graph::from_edge_list(&text).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
        assert_eq!(g.ids(), h.ids());
    }

    #[test]
    fn with_ids_replaces_identities() {
        let g = triangle().with_ids(vec![100, 50, 75]).unwrap();
        assert_eq!(g.id(0), 100);
        assert_eq!(g.index_of(50), Some(1));
        assert!(g.with_ids(vec![1, 1, 2]).is_err());
        assert!(g.with_ids(vec![1, 2]).is_err());
    }

    #[test]
    fn directed_edges_tile_and_invert() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 4)])
            .build()
            .unwrap();
        assert_eq!(g.num_directed_edges(), 2 * g.m());
        let mut seen = vec![false; g.num_directed_edges()];
        for v in 0..g.n() as NodeIndex {
            let range = g.directed_edge_range(v);
            assert_eq!(range.len(), g.degree(v));
            for p in 0..g.degree(v) as u32 {
                let de = g.directed_edge(v, p);
                assert!(range.contains(&de));
                assert!(!seen[de as usize], "directed ids must tile 0..2m");
                seen[de as usize] = true;
                let rev = g.reverse_directed_edge(de);
                assert_eq!(g.reverse_directed_edge(rev), de, "involution");
                let w = g.neighbor_at(v, p);
                assert_eq!(rev, g.directed_edge(w, g.reverse_port(v, p)));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn id_views_are_csr_aligned_and_follow_relabeling() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (0, 3), (2, 3)])
            .ids(vec![40, 30, 20, 10])
            .build()
            .unwrap();
        for v in 0..g.n() as NodeIndex {
            let ids = g.neighbor_ids(v);
            assert_eq!(ids.len(), g.degree(v));
            for (p, &nid) in ids.iter().enumerate() {
                assert_eq!(nid, g.id(g.neighbor_at(v, p as u32)));
            }
            let by_id = g.ports_sorted_by_id(v);
            assert!(by_id.windows(2).all(|w| ids[w[0] as usize] < ids[w[1] as usize]));
        }
        // Relabeling rebuilds both views.
        let h = g.with_ids(vec![1, 2, 3, 4]).unwrap();
        for v in 0..h.n() as NodeIndex {
            for (p, &nid) in h.neighbor_ids(v).iter().enumerate() {
                assert_eq!(nid, h.id(h.neighbor_at(v, p as u32)));
            }
            let ids = h.neighbor_ids(v);
            let by_id = h.ports_sorted_by_id(v);
            assert!(by_id.windows(2).all(|w| ids[w[0] as usize] < ids[w[1] as usize]));
        }
    }

    #[test]
    fn edge_other_and_touches() {
        let e = Edge::new(3, 1);
        assert_eq!((e.a, e.b), (1, 3));
        assert_eq!(e.other(1), Some(3));
        assert_eq!(e.other(3), Some(1));
        assert_eq!(e.other(2), None);
        assert!(e.touches(1) && e.touches(3) && !e.touches(0));
    }
}
