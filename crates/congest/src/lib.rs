//! # ck-congest — a deterministic CONGEST-model simulator
//!
//! Substrate for the reproduction of *Distributed Detection of Cycles*
//! (Fraigniaud & Olivetti, SPAA 2017). The CONGEST model \[Peleg 2000\] is a
//! synchronous message-passing model over a connected simple graph: in
//! every round each node performs local computation, sends one message of
//! `O(log n)` bits along each incident edge, and receives its neighbors'
//! messages.
//!
//! This crate provides:
//!
//! * [`graph`] — immutable CSR graphs with node identities, reverse-port
//!   tables, and structural queries (connectivity, girth, diameter);
//! * [`node`] — the per-node programming model ([`node::Program`]);
//! * [`session`] — the composable entry point: a [`session::Session`]
//!   bundles graph + config + wire parameters and recycles its engine
//!   workspace across runs;
//! * [`engine`] — the synchronous executor (sequential reference and
//!   rayon-parallel implementations with identical semantics), bandwidth
//!   enforcement, and verdict collection;
//! * [`message`] — wire-size accounting (`O(log n)`-bit budgeting and
//!   CONGEST-normalized round costs) and the pluggable
//!   [`message::WireCodec`] byte encoding backing it;
//! * [`metrics`] — per-round and per-run measurement reports;
//! * [`rngs`] — deterministic seed derivation so every run replays.
//!
//! ## Example
//!
//! ```
//! use ck_congest::graph::GraphBuilder;
//! use ck_congest::session::Session;
//! use ck_congest::node::{Inbox, Outbox, Program, Status};
//!
//! /// Each node learns the maximum identity among itself and neighbors.
//! struct MaxOfNeighborhood { best: u64, sent: bool }
//!
//! impl Program for MaxOfNeighborhood {
//!     type Msg = u64;
//!     type Verdict = u64;
//!     fn step(&mut self, _round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
//!         for inc in inbox.iter() { self.best = self.best.max(*inc.msg); }
//!         if !self.sent {
//!             out.broadcast(self.best);
//!             self.sent = true;
//!             Status::Running
//!         } else {
//!             Status::Halted
//!         }
//!     }
//!     fn verdict(&self) -> u64 { self.best }
//! }
//!
//! let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build().unwrap();
//! let out = Session::new(&g).run(|init| {
//!     MaxOfNeighborhood { best: init.id, sent: false }
//! }).unwrap();
//! assert_eq!(out.verdicts, vec![1, 2, 2]);
//! ```

pub mod aggregate;
pub(crate) mod arena;
pub mod batch;
pub mod engine;
pub mod fault;
pub mod graph;
pub mod message;
pub mod metrics;
pub mod net;
pub mod node;
pub mod protocols;
pub mod rngs;
pub mod session;
pub mod topology;
pub mod trace;

pub use batch::{effective_shards, run_sharded, run_sharded_with_min_items};
pub use engine::{
    BandwidthPolicy, EngineConfig, EngineError, EngineWorkspace, Executor, RunOutcome, SlotStats,
};
// The legacy free-function entry points, kept importable at the crate
// root for out-of-tree callers mid-migration.
#[allow(deprecated)]
// ck-lint: allow(legacy-entry, reason = "the one sanctioned re-export keeping deprecated names importable for out-of-tree callers mid-migration")
pub use engine::{run, run_with_workspace};
pub use graph::{Edge, Graph, GraphBuilder, GraphError, NodeId, NodeIndex};
pub use message::{bits_for, BitReader, BitWriter, CodecError, WireCodec, WireMessage, WireParams};
pub use metrics::{NetReport, RoundStats, RunReport};
pub use node::{Inbox, InboxBuf, Incoming, NodeInit, Outbox, Program, Status};
pub use session::{Session, SessionBuilder};
