//! Wire-size accounting for CONGEST messages.
//!
//! The CONGEST model bounds each message to `O(log n)` bits. The engine
//! does not serialize messages (they travel as Rust values between node
//! programs), but every message must report the number of bits its
//! canonical encoding would occupy so the engine can account for link
//! loads, enforce bandwidth caps, and compute *normalized* round counts
//! (wall rounds × ⌈bits / B⌉) — the honest cost of a protocol that ships
//! more than one `O(log n)`-bit word per edge per round.

use crate::graph::Graph;

/// Encoding parameters shared by all messages of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireParams {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Bits required to encode one node identity.
    pub id_bits: u32,
    /// Bits required to encode one Phase-1 rank (`⌈log2 m²⌉`).
    pub rank_bits: u32,
}

impl WireParams {
    /// Derives parameters from a graph: `id_bits` from the largest identity
    /// actually in use, `rank_bits` from `m²`.
    pub fn for_graph(g: &Graph) -> Self {
        let max_id = g.ids().iter().copied().max().unwrap_or(0);
        WireParams {
            n: g.n(),
            m: g.m(),
            id_bits: bits_for(max_id.max(1)),
            rank_bits: bits_for((g.m() as u64).saturating_mul(g.m() as u64).max(1)),
        }
    }

    /// The classical CONGEST bandwidth `B = c·⌈log2 n⌉` bits per edge per
    /// round.
    pub fn congest_bandwidth(&self, c: u32) -> u64 {
        u64::from(c) * u64::from(bits_for(self.n.max(2) as u64 - 1).max(1))
    }
}

/// Number of bits needed to represent `v` (at least 1).
pub fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// A message type whose canonical encoded size is known.
pub trait WireMessage: Clone + Send + Sync + 'static {
    /// Bits of the canonical encoding of this message under `params`.
    fn wire_bits(&self, params: &WireParams) -> u64;
}

/// Unit messages (pure synchronization pulses) cost one bit.
impl WireMessage for () {
    fn wire_bits(&self, _params: &WireParams) -> u64 {
        1
    }
}

/// A bare node identity.
impl WireMessage for u64 {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        u64::from(params.id_bits)
    }
}

/// A vector of identities (e.g. neighbor lists) costs `id_bits` each plus a
/// length prefix.
impl WireMessage for Vec<u64> {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        u64::from(bits_for(self.len().max(1) as u64))
            + self.len() as u64 * u64::from(params.id_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn bits_for_powers() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn params_from_graph() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .ids(vec![3, 17, 120, 6, 9])
            .build()
            .unwrap();
        let wp = WireParams::for_graph(&g);
        assert_eq!(wp.n, 5);
        assert_eq!(wp.m, 4);
        assert_eq!(wp.id_bits, bits_for(120));
        assert_eq!(wp.rank_bits, bits_for(16));
    }

    #[test]
    fn congest_bandwidth_scales_with_log_n() {
        let g = GraphBuilder::new(1024).edges((0..1023u32).map(|i| (i, i + 1))).build().unwrap();
        let wp = WireParams::for_graph(&g);
        assert_eq!(wp.congest_bandwidth(1), 10);
        assert_eq!(wp.congest_bandwidth(4), 40);
    }

    #[test]
    fn vec_message_costs_len_prefix_plus_ids() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let wp = WireParams::for_graph(&g);
        let v: Vec<u64> = vec![0, 1, 2];
        assert_eq!(v.wire_bits(&wp), u64::from(bits_for(3)) + 3 * u64::from(wp.id_bits));
    }
}
