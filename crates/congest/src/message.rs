//! Wire-size accounting and canonical byte encoding for CONGEST
//! messages.
//!
//! The CONGEST model bounds each message to `O(log n)` bits. The engine
//! does not serialize messages (they travel as Rust values between node
//! programs), but every message must report the number of bits its
//! canonical encoding would occupy so the engine can account for link
//! loads, enforce bandwidth caps, and compute *normalized* round counts
//! (wall rounds × ⌈bits / B⌉) — the honest cost of a protocol that ships
//! more than one `O(log n)`-bit word per edge per round.
//!
//! [`WireCodec`] closes the loop: a pluggable encoder/decoder whose
//! canonical encoding occupies **exactly** [`WireMessage::wire_bits`]
//! bits, so the accounting is backed by real bytes rather than a
//! formula. This is the seam a cross-process / network executor plugs
//! into — frames on a wire are bit-exact, and the per-bit accounting
//! the lower-bound literature reasons about (e.g. the CONGEST
//! spanning-forest bounds) is what actually crosses the boundary.

use crate::graph::Graph;

/// Encoding parameters shared by all messages of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireParams {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Bits required to encode one node identity.
    pub id_bits: u32,
    /// Bits required to encode one Phase-1 rank (`⌈log2 m²⌉`).
    pub rank_bits: u32,
}

impl WireParams {
    /// Derives parameters from a graph: `id_bits` from the largest identity
    /// actually in use, `rank_bits` from `m²`.
    pub fn for_graph(g: &Graph) -> Self {
        let max_id = g.ids().iter().copied().max().unwrap_or(0);
        WireParams {
            n: g.n(),
            m: g.m(),
            id_bits: bits_for(max_id.max(1)),
            rank_bits: bits_for((g.m() as u64).saturating_mul(g.m() as u64).max(1)),
        }
    }

    /// The classical CONGEST bandwidth `B = c·⌈log2 n⌉` bits per edge per
    /// round.
    pub fn congest_bandwidth(&self, c: u32) -> u64 {
        u64::from(c) * u64::from(bits_for(self.n.max(2) as u64 - 1).max(1))
    }
}

/// Number of bits needed to represent `v` (at least 1).
pub fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// A message type whose canonical encoded size is known.
pub trait WireMessage: Clone + Send + Sync + 'static {
    /// Bits of the canonical encoding of this message under `params`.
    fn wire_bits(&self, params: &WireParams) -> u64;

    /// The message after in-flight frame corruption: conceptually the
    /// canonical encoding has bits flipped (chosen by `entropy`) and is
    /// decoded again by the receiver. Returns `None` when the tampered
    /// frame no longer decodes (the engine counts it as a drop) and
    /// `Some(garbage)` when it does — delivered so protocols can be
    /// stress-tested against adversarial content.
    ///
    /// The default is transparent (corruption never sticks): types
    /// without a canonical [`WireCodec`] have no frame to attack.
    /// Implementations must be pure in `(self, params, entropy)` so
    /// executors stay bit-identical.
    fn corrupt_frame(&self, params: &WireParams, entropy: u64) -> Option<Self> {
        let _ = (params, entropy);
        Some(self.clone())
    }
}

/// Flips `flips` bits of the `len_bits`-bit frame in `bytes` (MSB-first
/// bit addressing, matching [`BitWriter`]), at positions derived from
/// `entropy`. Helper for [`WireMessage::corrupt_frame`] implementations.
pub fn flip_frame_bits(bytes: &mut [u8], len_bits: u64, entropy: u64, flips: u32) {
    if len_bits == 0 {
        return;
    }
    let mut e = entropy;
    for _ in 0..flips {
        let bit = e % len_bits;
        bytes[(bit / 8) as usize] ^= 0x80 >> (bit % 8);
        // Cheap LCG step so multi-flip bursts spread over the frame.
        e = e.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
}

/// Number of bits to flip for a given entropy draw: usually one, with
/// occasional 2- and 3-bit bursts to stress multi-field damage.
pub fn flips_for_entropy(entropy: u64) -> u32 {
    1 + (entropy >> 56) as u32 % 3
}

/// Unit messages (pure synchronization pulses) cost one bit.
impl WireMessage for () {
    fn wire_bits(&self, _params: &WireParams) -> u64 {
        1
    }
}

/// A bare node identity.
impl WireMessage for u64 {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        u64::from(params.id_bits)
    }

    /// The canonical frame is the bare `id_bits`-bit field, so frame
    /// corruption is bit flips within it — always decodable.
    fn corrupt_frame(&self, params: &WireParams, entropy: u64) -> Option<u64> {
        let width = u64::from(params.id_bits.clamp(1, 64));
        let mut v = *self;
        let mut e = entropy;
        for _ in 0..flips_for_entropy(entropy) {
            v ^= 1 << (e % width);
            e = e.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        Some(v)
    }
}

/// A vector of identities (e.g. neighbor lists) costs `id_bits` each plus a
/// length prefix.
impl WireMessage for Vec<u64> {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        u64::from(bits_for(self.len().max(1) as u64))
            + self.len() as u64 * u64::from(params.id_bits)
    }

    /// Flips bits inside one element's field (the length prefix is
    /// treated as framing: damaging it changes the frame's shape, which
    /// the canonical length-exact decoding would reject — modeled here
    /// as corruption confined to the payload).
    fn corrupt_frame(&self, params: &WireParams, entropy: u64) -> Option<Vec<u64>> {
        if self.is_empty() {
            return Some(self.clone());
        }
        let width = u64::from(params.id_bits.clamp(1, 64));
        let mut out = self.clone();
        let slot = (entropy % self.len() as u64) as usize;
        out[slot] ^= 1 << ((entropy >> 8) % width);
        Some(out)
    }
}

/// A codec failure — on encode, a value that does not fit its field; on
/// decode, a malformed or mis-framed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Decode ran out of bits mid-field.
    Truncated {
        /// Width of the field being read.
        needed: u32,
        /// Bits actually remaining.
        remaining: u64,
    },
    /// Encode was handed a value wider than its field.
    Overflow {
        /// The unencodable value.
        value: u64,
        /// The field width in bits.
        width: u32,
    },
    /// Structurally malformed content (decode) or a message shape the
    /// canonical encoding cannot represent (encode).
    Invalid(&'static str),
    /// Decode finished a message with bits left in the frame — the
    /// reader must frame exactly one message.
    TrailingBits {
        /// Leftover bits.
        remaining: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(f, "truncated frame: needed {needed} bits, {remaining} remaining")
            }
            CodecError::Overflow { value, width } => {
                write!(f, "value {value} does not fit a {width}-bit field")
            }
            CodecError::Invalid(what) => write!(f, "invalid message: {what}"),
            CodecError::TrailingBits { remaining } => {
                write!(f, "frame has {remaining} trailing bits after one message")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only bit buffer, MSB-first within each written field and
/// packed MSB-first into bytes (the last byte is zero-padded). The
/// canonical target of [`WireCodec::encode`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitWriter {
    bytes: Vec<u8>,
    len_bits: u64,
}

impl BitWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Bits written so far.
    pub fn len_bits(&self) -> u64 {
        self.len_bits
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len_bits == 0
    }

    /// The packed bytes (the final partial byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.len_bits = 0;
    }

    /// Appends the low `width` bits of `value`, most significant first.
    /// Fails with [`CodecError::Overflow`] if `value` needs more than
    /// `width` bits.
    pub fn push_bits(&mut self, value: u64, width: u32) -> Result<(), CodecError> {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        if width < 64 && value >> width != 0 {
            return Err(CodecError::Overflow { value, width });
        }
        // Byte-chunked: up to 8 bits land per iteration (this codec is
        // the per-message hot path of a future network executor).
        let mut rem = width;
        while rem > 0 {
            let off = (self.len_bits % 8) as u32;
            if off == 0 {
                self.bytes.push(0);
            }
            let take = (8 - off).min(rem);
            let chunk = (value >> (rem - take)) & ((1u64 << take) - 1);
            // ck-lint: allow(no-panic, reason = "off != 0 implies a partially-filled byte exists; off == 0 pushed one just above")
            let last = self.bytes.last_mut().expect("just ensured a current byte");
            *last |= (chunk as u8) << (8 - off - take);
            self.len_bits += u64::from(take);
            rem -= take;
        }
        Ok(())
    }

    /// A reader framing exactly the bits written so far.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader::new(&self.bytes, self.len_bits)
    }
}

/// Cursor over a bit-exact frame; the counterpart of [`BitWriter`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
    len_bits: u64,
}

impl<'a> BitReader<'a> {
    /// Frames the first `len_bits` bits of `bytes`.
    ///
    /// # Panics
    /// Panics when `bytes` is too short to hold `len_bits`.
    pub fn new(bytes: &'a [u8], len_bits: u64) -> Self {
        assert!(len_bits <= bytes.len() as u64 * 8, "frame longer than its backing bytes");
        BitReader { bytes, pos: 0, len_bits }
    }

    /// Bits left in the frame.
    pub fn remaining_bits(&self) -> u64 {
        self.len_bits - self.pos
    }

    /// Reads a `width`-bit field (most significant bit first).
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        if self.remaining_bits() < u64::from(width) {
            return Err(CodecError::Truncated { needed: width, remaining: self.remaining_bits() });
        }
        // Byte-chunked, mirroring `BitWriter::push_bits`.
        let mut value = 0u64;
        let mut rem = width;
        while rem > 0 {
            let byte = self.bytes[(self.pos / 8) as usize];
            let avail = 8 - (self.pos % 8) as u32;
            let take = avail.min(rem);
            let chunk = (byte >> (avail - take)) & (((1u16 << take) - 1) as u8);
            value = (value << take) | u64::from(chunk);
            self.pos += u64::from(take);
            rem -= take;
        }
        Ok(value)
    }
}

/// A pluggable canonical byte encoding for one message type.
///
/// The contract that makes the wire accounting honest: for every
/// message, [`WireCodec::encode`] writes **exactly**
/// [`WireMessage::wire_bits`] bits, and [`WireCodec::decode`] of a
/// reader framing exactly those bits returns an equal message. Codec
/// instances may carry receiver-side context the model assumes is known
/// (e.g. the round number fixing a payload's shape) — that context is
/// part of the frame's addressing, not of the payload bits.
pub trait WireCodec {
    /// The message type this codec carries.
    type Msg: WireMessage;

    /// Appends the canonical encoding of `msg`; returns the number of
    /// bits written, which equals `msg.wire_bits(params)`. On error the
    /// writer must be left exactly as it was — implementations validate
    /// before the first bit lands, so multi-message frames can never be
    /// silently corrupted by a failed append.
    fn encode(
        &self,
        msg: &Self::Msg,
        params: &WireParams,
        out: &mut BitWriter,
    ) -> Result<u64, CodecError>;

    /// Decodes the single message framed by `reader`, consuming it
    /// fully.
    fn decode(
        &self,
        params: &WireParams,
        reader: &mut BitReader<'_>,
    ) -> Result<Self::Msg, CodecError>;

    /// Convenience: encodes `msg` into a fresh buffer.
    fn encode_to_buf(&self, msg: &Self::Msg, params: &WireParams) -> Result<BitWriter, CodecError> {
        let mut out = BitWriter::new();
        self.encode(msg, params, &mut out)?;
        Ok(out)
    }
}

/// A [`WireCodec`] whose receiver-side context can be shipped in a
/// transport frame header — the codec-state *handshake* of the
/// distributed executor.
///
/// In the CONGEST model a receiver knows the shape of round `r`
/// traffic from the protocol itself (e.g. the Phase-2 sequence length
/// is a function of the round), so that context is *addressing*, not
/// payload, and is never charged against the per-link bit budget. A
/// cross-process transport has no shared round state to derive it
/// from, so each [`crate::net::frame::FrameKind::Msg`] frame carries
/// the sender's context word and the receiver rebuilds the codec with
/// [`ContextCodec::from_context`] — the payload bits stay exactly the
/// canonical `wire_bits` encoding.
pub trait ContextCodec: WireCodec + Sized {
    /// The context word under which this codec instance encodes and
    /// decodes.
    fn context(&self) -> u16;

    /// Rebuilds the codec from a frame's context word; `None` marks an
    /// out-of-domain word (a typed protocol error, never a panic).
    fn from_context(ctx: u16) -> Option<Self>;

    /// The context word governing one specific message (senders call
    /// this per frame; the default is the instance context).
    fn context_for(&self, _msg: &Self::Msg) -> u16 {
        self.context()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn bits_for_powers() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn params_from_graph() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4)])
            .ids(vec![3, 17, 120, 6, 9])
            .build()
            .unwrap();
        let wp = WireParams::for_graph(&g);
        assert_eq!(wp.n, 5);
        assert_eq!(wp.m, 4);
        assert_eq!(wp.id_bits, bits_for(120));
        assert_eq!(wp.rank_bits, bits_for(16));
    }

    #[test]
    fn congest_bandwidth_scales_with_log_n() {
        let g = GraphBuilder::new(1024).edges((0..1023u32).map(|i| (i, i + 1))).build().unwrap();
        let wp = WireParams::for_graph(&g);
        assert_eq!(wp.congest_bandwidth(1), 10);
        assert_eq!(wp.congest_bandwidth(4), 40);
    }

    #[test]
    fn vec_message_costs_len_prefix_plus_ids() {
        let g = GraphBuilder::new(4).edges([(0, 1), (1, 2), (2, 3)]).build().unwrap();
        let wp = WireParams::for_graph(&g);
        let v: Vec<u64> = vec![0, 1, 2];
        assert_eq!(v.wire_bits(&wp), u64::from(bits_for(3)) + 3 * u64::from(wp.id_bits));
    }

    #[test]
    fn bit_writer_packs_msb_first_and_roundtrips() {
        let mut w = BitWriter::new();
        assert!(w.is_empty());
        w.push_bits(0b101, 3).unwrap();
        w.push_bits(0b0110, 4).unwrap();
        w.push_bits(0xDEAD_BEEF, 32).unwrap();
        assert_eq!(w.len_bits(), 39);
        assert_eq!(w.as_bytes().len(), 5);
        // First byte: 101 0110 then the top bit of 0xDEADBEEF (1).
        assert_eq!(w.as_bytes()[0], 0b1010_1101);
        let mut r = w.reader();
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(4).unwrap(), 0b0110);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.remaining_bits(), 0);
        assert_eq!(r.read_bits(1), Err(CodecError::Truncated { needed: 1, remaining: 0 }));
        w.clear();
        assert!(w.is_empty() && w.as_bytes().is_empty());
    }

    #[test]
    fn bit_writer_rejects_oversized_values() {
        let mut w = BitWriter::new();
        assert_eq!(w.push_bits(4, 2), Err(CodecError::Overflow { value: 4, width: 2 }));
        assert!(w.is_empty(), "failed pushes write nothing");
        w.push_bits(3, 2).unwrap();
        w.push_bits(u64::MAX, 64).unwrap();
        let mut r = w.reader();
        assert_eq!(r.read_bits(2).unwrap(), 3);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    /// A minimal codec for bare-identity messages, exercising the trait
    /// contract (encoded bits ≡ wire_bits, frame fully consumed).
    struct IdCodec;
    impl WireCodec for IdCodec {
        type Msg = u64;
        fn encode(
            &self,
            msg: &u64,
            p: &WireParams,
            out: &mut BitWriter,
        ) -> Result<u64, CodecError> {
            let start = out.len_bits();
            out.push_bits(*msg, p.id_bits)?;
            Ok(out.len_bits() - start)
        }
        fn decode(&self, p: &WireParams, r: &mut BitReader<'_>) -> Result<u64, CodecError> {
            let id = r.read_bits(p.id_bits)?;
            if r.remaining_bits() != 0 {
                return Err(CodecError::TrailingBits { remaining: r.remaining_bits() });
            }
            Ok(id)
        }
    }

    #[test]
    fn codec_trait_roundtrip_matches_wire_bits() {
        let p = WireParams { n: 64, m: 128, id_bits: 11, rank_bits: 14 };
        for id in [0u64, 1, 1000, (1 << 11) - 1] {
            let buf = IdCodec.encode_to_buf(&id, &p).unwrap();
            assert_eq!(buf.len_bits(), id.wire_bits(&p));
            assert_eq!(IdCodec.decode(&p, &mut buf.reader()).unwrap(), id);
        }
        // An id past id_bits cannot be framed.
        assert!(matches!(
            IdCodec.encode_to_buf(&(1u64 << 11), &p),
            Err(CodecError::Overflow { .. })
        ));
        // A mis-framed (too long) message is rejected, not misread.
        let mut buf = IdCodec.encode_to_buf(&5, &p).unwrap();
        buf.push_bits(0, 2).unwrap();
        assert_eq!(
            IdCodec.decode(&p, &mut buf.reader()),
            Err(CodecError::TrailingBits { remaining: 2 })
        );
    }

    #[test]
    fn flip_frame_bits_targets_msb_first_positions() {
        let mut bytes = vec![0u8; 2];
        // Entropy 0 flips bit 0 (the MSB of byte 0) once (entropy's top
        // byte is 0 → one flip).
        flip_frame_bits(&mut bytes, 16, 0, 1);
        assert_eq!(bytes, vec![0b1000_0000, 0]);
        // Bit 9 lands in byte 1, second-from-top position.
        let mut bytes = vec![0u8; 2];
        flip_frame_bits(&mut bytes, 16, 9, 1);
        assert_eq!(bytes, vec![0, 0b0100_0000]);
        // Zero-length frames are untouched.
        flip_frame_bits(&mut [], 0, 7, 3);
    }

    #[test]
    fn corrupt_frame_is_deterministic_and_tampers() {
        let p = WireParams { n: 64, m: 128, id_bits: 11, rank_bits: 14 };
        let msg: u64 = 0b101;
        let a = msg.corrupt_frame(&p, 12345).unwrap();
        let b = msg.corrupt_frame(&p, 12345).unwrap();
        assert_eq!(a, b, "corruption is a pure function of (msg, entropy)");
        assert_ne!(a, msg, "a flipped id differs from the original");
        // The default implementation is transparent.
        assert_eq!(().corrupt_frame(&p, 999), Some(()));
        let v = vec![1u64, 2, 3];
        let c = v.corrupt_frame(&p, 7).unwrap();
        assert_eq!(c.len(), v.len());
        assert_ne!(c, v);
        assert_eq!(Vec::<u64>::new().corrupt_frame(&p, 7), Some(vec![]));
    }
}
