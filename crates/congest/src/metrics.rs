//! Run-level measurement: per-round message/bit counts, link loads, and
//! CONGEST-normalized round costs.
//!
//! These are the quantities the paper's Lemma 3 bounds (sequences per
//! message, hence bits per link per round) and that the experiment harness
//! reports for every table.

/// Statistics of a single synchronous round.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RoundStats {
    /// Round number (0-based).
    pub round: u32,
    /// Number of nodes still running at the start of the round.
    pub active_nodes: usize,
    /// Messages sent this round.
    pub messages: u64,
    /// Total bits sent this round.
    pub bits: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
    /// Largest per-directed-link load this round, in bits (sum over the
    /// messages a node pushed through one port).
    pub max_link_bits: u64,
    /// Largest number of messages pushed through a single directed link.
    pub max_link_messages: u64,
}

/// Aggregated report of a finished run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Rounds actually executed.
    pub rounds: u32,
    /// True if the run ended because every node halted (as opposed to
    /// hitting the round cap).
    pub all_halted: bool,
    /// Executor that produced the run (`"sequential"` / `"parallel"`),
    /// recorded so measurement records can label entries honestly.
    /// Never part of any cross-executor equality check — the *contents*
    /// of the report are executor-independent by the determinism
    /// contract.
    pub executor: &'static str,
    /// Worker threads the executor could use (1 for sequential).
    pub threads: usize,
    /// Per-round statistics.
    pub per_round: Vec<RoundStats>,
    /// What the fault plan did to this run (all-zero for clean runs).
    /// Executor-independent like every other report field: fault
    /// decisions are pure functions of message coordinates.
    pub faults: FaultReport,
    /// Transport-layer record of a distributed run (`None` for the
    /// in-process executors). Unlike every other field this one is
    /// executor-*dependent* by design — it describes the transport,
    /// not the computation — and is excluded from cross-executor
    /// equality checks.
    pub net: Option<NetReport>,
}

/// What the distributed transport did during a run: traffic totals,
/// recovery events, and whether the run had to degrade to the
/// in-process sequential oracle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetReport {
    /// Worker (partition) count the run was configured for.
    pub workers: u32,
    /// Cross-partition message frames the coordinator routed.
    pub frames_routed: u64,
    /// Payload bytes of those frames (length-prefixed codec bytes).
    pub frame_bytes: u64,
    /// Round barriers completed across all workers.
    pub barriers: u64,
    /// Heartbeat frames consumed while waiting on workers.
    pub heartbeats: u64,
    /// Why the run fell back to the in-process sequential executor
    /// (`None` when the distributed run completed on its own).
    pub fallback: Option<String>,
    /// Wall-clock milliseconds from detecting the failure to the
    /// completed fallback run — the recovery latency the bench gates.
    pub recovery_ms: Option<u64>,
}

impl NetReport {
    /// The record of a run that never left the coordinator process:
    /// distribution was requested but the job cannot ship, so the
    /// sequential oracle ran in place.
    pub fn degraded(workers: u32, reason: &str) -> Self {
        NetReport { workers, fallback: Some(reason.to_string()), ..NetReport::default() }
    }

    /// True when the distributed run completed without degradation.
    pub fn completed_distributed(&self) -> bool {
        self.fallback.is_none()
    }

    /// Serializes the net record as a JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"workers\":{},\"frames_routed\":{},\"frame_bytes\":{},\"barriers\":{},\
             \"heartbeats\":{},\"fallback\":",
            self.workers, self.frames_routed, self.frame_bytes, self.barriers, self.heartbeats
        );
        match &self.fallback {
            Some(reason) => {
                s.push('"');
                for c in reason.chars() {
                    match c {
                        '"' => s.push_str("\\\""),
                        '\\' => s.push_str("\\\\"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(s, "\\u{:04x}", c as u32);
                        }
                        c => s.push(c),
                    }
                }
                s.push('"');
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"recovery_ms\":");
        match self.recovery_ms {
            Some(ms) => {
                let _ = write!(s, "{ms}");
            }
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }
}

/// Observability record of a run's injected faults: how many messages
/// each fault kind claimed, what corruption did, and which nodes had
/// crash-stopped by the end of the run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Messages lost to explicit drop rules.
    pub dropped_explicit: u64,
    /// Messages lost to the i.i.d. Bernoulli coin.
    pub dropped_random: u64,
    /// Messages lost because their sender had crash-stopped.
    pub dropped_crash: u64,
    /// Messages lost on permanently cut links.
    pub dropped_cut: u64,
    /// Messages lost to Gilbert–Elliott burst loss.
    pub dropped_burst: u64,
    /// Frames tampered in flight that still decoded and were delivered
    /// as garbage.
    pub corrupted_delivered: u64,
    /// Frames tampered in flight that no longer decoded — rejected by
    /// the codec and counted as lost.
    pub corrupted_rejected: u64,
    /// Nodes that crash-stopped before the run ended (sorted indices).
    pub crashed_nodes: Vec<u32>,
}

impl FaultReport {
    /// Zeroes every counter and clears `crashed_nodes` keeping its
    /// capacity — a reset report is observationally
    /// [`FaultReport::default`] without the allocation.
    pub fn reset(&mut self) {
        self.dropped_explicit = 0;
        self.dropped_random = 0;
        self.dropped_crash = 0;
        self.dropped_cut = 0;
        self.dropped_burst = 0;
        self.corrupted_delivered = 0;
        self.corrupted_rejected = 0;
        self.crashed_nodes.clear();
    }

    /// Total messages that never reached their receiver: every drop
    /// kind plus corrupted frames the codec rejected.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_explicit
            + self.dropped_random
            + self.dropped_crash
            + self.dropped_cut
            + self.dropped_burst
            + self.corrupted_rejected
    }

    /// True when the run saw no fault activity at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Serializes the fault record as a JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"dropped_explicit\":{},\"dropped_random\":{},\"dropped_crash\":{},\
             \"dropped_cut\":{},\"dropped_burst\":{},\"corrupted_delivered\":{},\
             \"corrupted_rejected\":{},\"crashed_nodes\":[",
            self.dropped_explicit,
            self.dropped_random,
            self.dropped_crash,
            self.dropped_cut,
            self.dropped_burst,
            self.corrupted_delivered,
            self.corrupted_rejected
        );
        for (i, v) in self.crashed_nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{v}");
        }
        s.push_str("]}");
        s
    }
}

impl RunReport {
    /// Clears the report for reuse, keeping the `per_round` and
    /// `crashed_nodes` allocations — the warm half of the engine's
    /// zero-steady-state-allocation rerun contract (see
    /// [`crate::engine::RunOutcome::reset`]).
    pub fn reset(&mut self) {
        self.rounds = 0;
        self.all_halted = false;
        self.executor = "";
        self.threads = 0;
        self.per_round.clear();
        self.faults.reset();
        self.net = None;
    }

    /// Total messages across all rounds.
    pub fn total_messages(&self) -> u64 {
        self.per_round.iter().map(|r| r.messages).sum()
    }

    /// Total bits across all rounds.
    pub fn total_bits(&self) -> u64 {
        self.per_round.iter().map(|r| r.bits).sum()
    }

    /// Maximum single-message size over the run, in bits.
    pub fn max_message_bits(&self) -> u64 {
        self.per_round.iter().map(|r| r.max_message_bits).max().unwrap_or(0)
    }

    /// Maximum directed-link load over the run, in bits.
    pub fn max_link_bits(&self) -> u64 {
        self.per_round.iter().map(|r| r.max_link_bits).max().unwrap_or(0)
    }

    /// CONGEST-normalized round count for bandwidth `b` bits per edge per
    /// round: each wall round costs `⌈worst link load / b⌉` model rounds
    /// (at least 1 when anything was sent, and exactly 1 for silent
    /// rounds, which still consume a synchronous step).
    pub fn normalized_rounds(&self, b: u64) -> u64 {
        assert!(b > 0, "bandwidth must be positive");
        self.per_round
            .iter()
            .map(|r| if r.max_link_bits == 0 { 1 } else { r.max_link_bits.div_ceil(b) })
            .sum()
    }

    /// Per-round maximum link loads, convenient for plotting.
    pub fn link_load_series(&self) -> Vec<u64> {
        self.per_round.iter().map(|r| r.max_link_bits).collect()
    }

    /// Serializes the report as JSON (hand-rolled: the offline build has
    /// no serde, and the schema is small and flat).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"rounds\":{},\"all_halted\":{},\"executor\":\"{}\",\"threads\":{},\"per_round\":[",
            self.rounds, self.all_halted, self.executor, self.threads
        );
        for (i, r) in self.per_round.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_json());
        }
        s.push_str("],\"faults\":");
        s.push_str(&self.faults.to_json());
        if let Some(net) = &self.net {
            s.push_str(",\"net\":");
            s.push_str(&net.to_json());
        }
        s.push('}');
        s
    }
}

impl RoundStats {
    /// Serializes one round's statistics as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"active_nodes\":{},\"messages\":{},\"bits\":{},\
             \"max_message_bits\":{},\"max_link_bits\":{},\"max_link_messages\":{}}}",
            self.round,
            self.active_nodes,
            self.messages,
            self.bits,
            self.max_message_bits,
            self.max_link_bits,
            self.max_link_messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            rounds: 3,
            all_halted: true,
            executor: "sequential",
            threads: 1,
            per_round: vec![
                RoundStats {
                    round: 0,
                    active_nodes: 4,
                    messages: 4,
                    bits: 40,
                    max_message_bits: 10,
                    max_link_bits: 10,
                    max_link_messages: 1,
                },
                RoundStats {
                    round: 1,
                    active_nodes: 4,
                    messages: 8,
                    bits: 200,
                    max_message_bits: 50,
                    max_link_bits: 70,
                    max_link_messages: 2,
                },
                RoundStats {
                    round: 2,
                    active_nodes: 4,
                    messages: 0,
                    bits: 0,
                    max_message_bits: 0,
                    max_link_bits: 0,
                    max_link_messages: 0,
                },
            ],
            faults: FaultReport {
                dropped_random: 2,
                corrupted_rejected: 1,
                crashed_nodes: vec![1, 3],
                ..FaultReport::default()
            },
            net: None,
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total_messages(), 12);
        assert_eq!(r.total_bits(), 240);
        assert_eq!(r.max_message_bits(), 50);
        assert_eq!(r.max_link_bits(), 70);
    }

    #[test]
    fn normalization_charges_ceil_per_round() {
        let r = report();
        // Round 0: ceil(10/32)=1, round 1: ceil(70/32)=3, round 2 silent: 1.
        assert_eq!(r.normalized_rounds(32), 5);
        // Generous bandwidth: every round costs 1.
        assert_eq!(r.normalized_rounds(1 << 20), 3);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn normalization_rejects_zero_bandwidth() {
        report().normalized_rounds(0);
    }

    #[test]
    fn json_emission_is_well_formed() {
        let r = report();
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rounds\":3"));
        assert!(json.contains("\"executor\":\"sequential\""));
        assert!(json.contains("\"threads\":1"));
        assert!(json.contains("\"max_link_bits\":70"));
        // Three per-round objects.
        assert_eq!(json.matches("\"round\":").count(), 3);
        assert!(json.contains("\"faults\":{\"dropped_explicit\":0"));
        assert!(json.contains("\"dropped_random\":2"));
        assert!(json.contains("\"corrupted_rejected\":1"));
        assert!(json.contains("\"crashed_nodes\":[1,3]"));
    }

    #[test]
    fn fault_report_totals_and_cleanliness() {
        assert!(FaultReport::default().is_clean());
        assert_eq!(FaultReport::default().total_dropped(), 0);
        let fr = report().faults;
        assert!(!fr.is_clean());
        // Rejected corrupted frames count as lost; delivered garbage
        // does not.
        assert_eq!(fr.total_dropped(), 3);
        let delivered_only = FaultReport { corrupted_delivered: 5, ..FaultReport::default() };
        assert_eq!(delivered_only.total_dropped(), 0);
        assert!(!delivered_only.is_clean());
    }
}
