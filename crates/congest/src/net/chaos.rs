//! Physical-layer fault injection: the transport sibling of the
//! logical [`crate::fault::FaultPlan`].
//!
//! PR 6's fault plan tampers with *messages* inside one address space;
//! [`ChaosTransport`] tampers with the *byte stream* between processes:
//! truncated writes that cut a frame mid-body, delayed writes that push
//! a link past its round deadline, and hard disconnects. Wrapping the
//! coordinator's side of one worker link with a [`ChaosPlan`] drives
//! the recovery machinery (deadline → [`super::NetError::WorkerLost`]
//! → sequential fallback) down paths a healthy loopback socket never
//! exercises.

use std::io::{Read, Write};
use std::time::Duration;

/// What goes wrong on one worker link, and when.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The worker whose link this plan torments.
    pub worker: u32,
    /// After this many bytes have been written, the next write is cut
    /// short (a frame dies mid-body) and every later write fails with
    /// `BrokenPipe` — a mid-frame disconnect as the peer observes it.
    pub truncate_after_bytes: Option<u64>,
    /// Sleep this long before every write — an overloaded or
    /// rate-limited link. Large values push the round past its
    /// deadline.
    pub delay_write_ms: u64,
    /// At the start of this round the coordinator drops the link
    /// entirely (TCP shutdown), orphaning the worker.
    pub disconnect_at_round: Option<u32>,
    /// Shipped to the worker in its spec: the worker process calls
    /// `std::process::abort()` when told to execute this round — a
    /// crash indistinguishable from `kill -9` to the coordinator.
    pub abort_at_round: Option<u32>,
}

impl ChaosPlan {
    /// A plan that does nothing, for `worker`.
    pub fn for_worker(worker: u32) -> Self {
        ChaosPlan { worker, ..ChaosPlan::default() }
    }
}

/// A `Read + Write` wrapper executing a [`ChaosPlan`]'s byte-level
/// faults. Reads pass through untouched (the plan torments what *this*
/// side sends); writes are delayed, truncated, or refused per the plan.
pub struct ChaosTransport<T> {
    inner: T,
    written: u64,
    truncate_after: Option<u64>,
    delay: Duration,
}

impl<T> ChaosTransport<T> {
    /// Wraps `inner` under `plan` (only the write-side fields apply;
    /// round-indexed faults are the coordinator's job).
    pub fn new(inner: T, plan: &ChaosPlan) -> Self {
        ChaosTransport {
            inner,
            written: 0,
            truncate_after: plan.truncate_after_bytes,
            delay: Duration::from_millis(plan.delay_write_ms),
        }
    }

    /// The wrapped stream (for socket options, shutdown).
    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    /// True once the truncation point has been crossed — the caller
    /// should hard-close the underlying socket so the peer observes the
    /// cut instead of a silent stall.
    pub fn cut_reached(&self) -> bool {
        self.truncate_after.is_some_and(|cut| self.written >= cut)
    }

    /// Total bytes accepted (delivered or claimed) so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }
}

impl<T: Read> Read for ChaosTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner.read(buf)
    }
}

impl<T: Write> Write for ChaosTransport<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        if let Some(cut) = self.truncate_after {
            if self.written >= cut {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "chaos: link cut"));
            }
            let room = (cut - self.written) as usize;
            if buf.len() > room {
                // Deliver the prefix — the frame dies mid-body on the
                // peer's side — and fail from the next call on.
                let k = self.inner.write(&buf[..room])?;
                self.written += k as u64;
                return Ok(k);
            }
        }
        let k = self.inner.write(buf)?;
        self.written += k as u64;
        Ok(k)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::frame::{read_frame, write_frame, Deadline, FrameError, FrameKind};

    #[test]
    fn truncation_cuts_a_frame_mid_body() {
        let plan = ChaosPlan { worker: 0, truncate_after_bytes: Some(8), ..ChaosPlan::default() };
        let mut t = ChaosTransport::new(Vec::new(), &plan);
        // 5-byte header + 9-byte body = 14 bytes; only 8 survive.
        let res = write_frame(&mut t, FrameKind::Msg, &[9u8; 9]);
        assert!(res.is_err() || t.cut_reached());
        let wire = t.get_ref().clone();
        assert_eq!(wire.len(), 8);
        let d = Deadline::after_ms(50);
        assert_eq!(read_frame(&mut &wire[..], &d), Err(FrameError::Truncated));
    }

    #[test]
    fn writes_after_the_cut_break() {
        let plan = ChaosPlan { worker: 0, truncate_after_bytes: Some(0), ..ChaosPlan::default() };
        let mut t = ChaosTransport::new(Vec::new(), &plan);
        assert!(t.cut_reached());
        assert_eq!(t.write(&[1, 2, 3]).unwrap_err().kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn clean_plan_is_a_passthrough() {
        let plan = ChaosPlan::for_worker(2);
        let mut t = ChaosTransport::new(Vec::new(), &plan);
        write_frame(&mut t, FrameKind::Ready, &[]).unwrap();
        let d = Deadline::after_ms(50);
        let wire = t.get_ref().clone();
        assert_eq!(read_frame(&mut &wire[..], &d).unwrap().kind, FrameKind::Ready);
    }
}
