//! Length-prefixed transport framing for the cross-process executor.
//!
//! Every unit crossing a worker link is one *frame*:
//!
//! ```text
//! [kind: u8][len: u32 LE][body: len bytes]
//! ```
//!
//! `kind` names the protocol step (see [`FrameKind`]); `len` bounds the
//! body so a corrupted or hostile peer can never make the reader
//! allocate unboundedly ([`MAX_BODY`]). A payload-bearing [`FrameKind::Msg`]
//! frame carries one engine message on the codec seam:
//!
//! ```text
//! body = [receiver: u32 LE][port: u32 LE][ctx: u16 LE]
//!        [bit_len: u32 LE][payload: ceil(bit_len/8) bytes]
//! ```
//!
//! `receiver`/`port` address the delivery (the receiver-side local
//! port, exactly the label the engine's lanes carry); `ctx` ships the
//! receiver-side codec state of the
//! [`crate::message::ContextCodec`] handshake (for `CkCodec`, the
//! Phase-2 sequence length); `bit_len` is the message's exact
//! [`crate::message::WireMessage::wire_bits`] size, and the payload is
//! that bit string padded to a byte boundary with zero bits — the
//! same MSB-first layout [`crate::message::BitWriter`] produces, so
//! the frame's payload *is* the canonical CONGEST wire encoding and
//! the per-round bit counters price precisely what travels.
//!
//! Reads are **total**: any prefix of a valid byte stream decodes to a
//! typed [`FrameError`] (`Truncated`, never a panic and never an
//! over-read past `len`), which the fault-injection suite proves for
//! every prefix length.

use std::io::{Read, Write};
// ck-lint: allow(determinism, reason = "Deadline is wall-clock transport budgeting; expiry becomes a typed FrameError::TimedOut fault, never a verdict-bit divergence")
use std::time::{Duration, Instant};

use crate::message::CodecError;

/// Hard cap on a frame body — larger announced lengths are rejected
/// before any allocation.
pub const MAX_BODY: u32 = 1 << 26;

/// Protocol step carried by a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Worker → coordinator: magic + protocol version.
    Hello = 1,
    /// Coordinator → worker: the serialized job (graph, config,
    /// partition assignment, fault plan).
    Spec = 2,
    /// Worker → coordinator: spec parsed, partition built.
    Ready = 3,
    /// Coordinator → worker: execute one round.
    Go = 4,
    /// Either direction: one cross-partition engine message.
    Msg = 5,
    /// Worker → coordinator: round finished; body is the round digest.
    Done = 6,
    /// Coordinator → worker: all deliveries for the round are out —
    /// commit inboxes and await the next `Go`.
    Barrier = 7,
    /// Worker → coordinator: liveness beacon between frames.
    Heartbeat = 8,
    /// Coordinator → worker: run complete, report verdicts.
    Finish = 9,
    /// Worker → coordinator: serialized per-node verdicts.
    Verdicts = 10,
    /// Coordinator → worker: abandon the run (bandwidth violation or a
    /// peer failure); exit cleanly.
    Abort = 11,
    /// Worker → coordinator: typed failure description.
    Error = 12,
    /// Either direction of a probe-service link: one `ServeMsg` RPC
    /// (submit / result / stats / shutdown), encoded by the service's
    /// `WireCodec`. The frame layer stays the one transport in the
    /// repo; the service's RPC grammar lives entirely in the body.
    Serve = 13,
}

impl FrameKind {
    /// Decodes a wire byte; `None` marks a protocol violation.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Hello,
            2 => FrameKind::Spec,
            3 => FrameKind::Ready,
            4 => FrameKind::Go,
            5 => FrameKind::Msg,
            6 => FrameKind::Done,
            7 => FrameKind::Barrier,
            8 => FrameKind::Heartbeat,
            9 => FrameKind::Finish,
            10 => FrameKind::Verdicts,
            11 => FrameKind::Abort,
            12 => FrameKind::Error,
            13 => FrameKind::Serve,
            _ => return None,
        })
    }
}

/// A frame read off the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub body: Vec<u8>,
}

/// Typed failure of the frame layer — every malformed, truncated, or
/// overdue byte stream lands here; nothing panics and nothing hangs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream ended mid-frame (header or body).
    Truncated,
    /// The announced body length exceeds [`MAX_BODY`].
    Oversized { len: u32 },
    /// An unknown frame kind byte.
    BadKind(u8),
    /// A structurally malformed frame body.
    BadBody(&'static str),
    /// The payload failed the message codec.
    Codec(CodecError),
    /// The deadline passed before a full frame arrived.
    TimedOut,
    /// Any other transport error (connection reset, broken pipe, …).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len } => write!(f, "frame body of {len} bytes exceeds cap"),
            FrameError::BadKind(b) => write!(f, "unknown frame kind {b:#04x}"),
            FrameError::BadBody(what) => write!(f, "malformed frame body: {what}"),
            FrameError::Codec(e) => write!(f, "payload codec failure: {e}"),
            FrameError::TimedOut => write!(f, "deadline passed mid-frame"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => FrameError::TimedOut,
            _ => FrameError::Io(e.to_string()),
        }
    }
}

/// A wall-clock budget; reads retry short socket timeouts until it
/// expires, so a slow link degrades to [`FrameError::TimedOut`], never
/// a hang.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    // ck-lint: allow(determinism, reason = "wall-clock budget for socket reads; see module-level rationale on the use-declaration allow")
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_ms(ms: u64) -> Self {
        // ck-lint: allow(determinism, reason = "deadline arming is transport-side only; expiry surfaces as a typed fault")
        Deadline { at: Instant::now() + Duration::from_millis(ms) }
    }

    /// True once the budget is spent.
    pub fn expired(&self) -> bool {
        // ck-lint: allow(determinism, reason = "expiry check feeds FrameError::TimedOut, a typed fault the harness treats like any link failure")
        Instant::now() >= self.at
    }

    /// Time left, zero when expired.
    pub fn remaining(&self) -> Duration {
        // ck-lint: allow(determinism, reason = "remaining budget only tunes socket read timeouts, never message content")
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Writes one frame. The caller flushes (heartbeats and barrier
/// batches share a flush).
pub fn write_frame(w: &mut impl Write, kind: FrameKind, body: &[u8]) -> std::io::Result<()> {
    assert!(body.len() as u64 <= u64::from(MAX_BODY), "frame body exceeds MAX_BODY");
    let [l0, l1, l2, l3] = (body.len() as u32).to_le_bytes();
    let header = [kind as u8, l0, l1, l2, l3];
    w.write_all(&header)?;
    w.write_all(body)
}

/// Frame header size on the wire: `[kind: u8][len: u32 LE]`.
const HEADER_LEN: usize = 5;

/// Reads at least one byte into `buf`, retrying short socket timeouts
/// until `deadline`. A clean EOF before the first byte is
/// [`FrameError::Truncated`] — the caller decides whether a frame
/// boundary was legitimate.
fn read_some_deadline(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: &Deadline,
) -> Result<usize, FrameError> {
    loop {
        match r.read(buf) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(k) => return Ok(k),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if deadline.expired() {
                    return Err(FrameError::TimedOut);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Reads exactly `buf.len()` bytes, retrying short socket timeouts
/// until `deadline`.
fn read_exact_deadline(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: &Deadline,
) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        filled += read_some_deadline(r, &mut buf[filled..], deadline)?;
        if filled < buf.len() && deadline.expired() {
            return Err(FrameError::TimedOut);
        }
    }
    Ok(())
}

/// Reads one frame, bounded by `deadline`. Never reads past the
/// announced body length, never allocates more than [`MAX_BODY`].
///
/// **One-shot**: a [`FrameError::TimedOut`] may leave part of the
/// frame consumed, so the stream position is untrusted afterwards —
/// correct where an overdue frame is already fatal (the distributed
/// executor's lost-worker paths). A loop that treats `TimedOut` as a
/// benign poll tick and reads again must use [`FrameReader`] instead,
/// or a deadline expiring mid-frame desyncs the stream.
pub fn read_frame(r: &mut impl Read, deadline: &Deadline) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_deadline(r, &mut header, deadline)?;
    let [kind_byte, l0, l1, l2, l3] = header;
    let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_BODY {
        return Err(FrameError::Oversized { len });
    }
    let mut body = vec![0u8; len as usize];
    read_exact_deadline(r, &mut body, deadline)?;
    Ok(Frame { kind, body })
}

/// Incremental frame reader for poll-style loops: partial-frame state
/// survives a [`FrameError::TimedOut`], so a deadline expiring with a
/// frame half-arrived (a large body, a slow or stalling writer) picks
/// up exactly where it left off on the next call instead of
/// discarding the consumed bytes and misparsing mid-frame bytes as a
/// new header.
///
/// `TimedOut` is the *only* resumable error. Everything else —
/// `Truncated` (EOF), `BadKind`, `Oversized`, `Io` — leaves the
/// stream position untrusted, same as [`read_frame`]; drop the
/// connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; HEADER_LEN],
    header_filled: usize,
    /// Parsed from a complete, validated header; `None` while the
    /// header is still arriving.
    kind: Option<FrameKind>,
    body: Vec<u8>,
    body_filled: usize,
}

impl FrameReader {
    /// A reader with no buffered frame state.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// True when part of a frame is buffered — a connection dropped
    /// now loses those bytes (which is fine: the frame never
    /// completed).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.kind.is_some()
    }

    /// Reads one frame, resuming any partial frame from a previous
    /// `TimedOut`. Same validation and bounds as [`read_frame`]: the
    /// header is checked (kind, [`MAX_BODY`]) before the body buffer
    /// is allocated, and the read never passes the announced length.
    pub fn read_frame(
        &mut self,
        r: &mut impl Read,
        deadline: &Deadline,
    ) -> Result<Frame, FrameError> {
        let kind = match self.kind {
            Some(k) => k,
            None => {
                while self.header_filled < HEADER_LEN {
                    self.header_filled +=
                        read_some_deadline(r, &mut self.header[self.header_filled..], deadline)?;
                    if self.header_filled < HEADER_LEN && deadline.expired() {
                        return Err(FrameError::TimedOut);
                    }
                }
                let [kind_byte, l0, l1, l2, l3] = self.header;
                let kind = FrameKind::from_u8(kind_byte).ok_or(FrameError::BadKind(kind_byte))?;
                let len = u32::from_le_bytes([l0, l1, l2, l3]);
                if len > MAX_BODY {
                    return Err(FrameError::Oversized { len });
                }
                self.body = vec![0u8; len as usize];
                self.body_filled = 0;
                self.kind = Some(kind);
                kind
            }
        };
        while self.body_filled < self.body.len() {
            self.body_filled +=
                read_some_deadline(r, &mut self.body[self.body_filled..], deadline)?;
            if self.body_filled < self.body.len() && deadline.expired() {
                return Err(FrameError::TimedOut);
            }
        }
        self.kind = None;
        self.header_filled = 0;
        self.body_filled = 0;
        Ok(Frame { kind, body: std::mem::take(&mut self.body) })
    }
}

/// Header of a [`FrameKind::Msg`] body (see the module doc for the
/// layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgHeader {
    /// Receiving node (global index).
    pub receiver: u32,
    /// Receiver-side local port — the delivery label the engine lanes
    /// carry.
    pub port: u32,
    /// Receiver-side codec context ([`crate::message::ContextCodec`]).
    pub ctx: u16,
    /// Exact payload size in bits; the payload is `ceil(bit_len/8)`
    /// bytes, zero-padded MSB-first.
    pub bit_len: u32,
}

/// Encodes a `Msg` body from its header and payload bytes.
pub fn encode_msg_body(h: &MsgHeader, payload: &[u8]) -> Vec<u8> {
    debug_assert_eq!(payload.len() as u64, u64::from(h.bit_len).div_ceil(8));
    let mut body = Vec::with_capacity(14 + payload.len());
    body.extend_from_slice(&h.receiver.to_le_bytes());
    body.extend_from_slice(&h.port.to_le_bytes());
    body.extend_from_slice(&h.ctx.to_le_bytes());
    body.extend_from_slice(&h.bit_len.to_le_bytes());
    body.extend_from_slice(payload);
    body
}

/// Decodes a `Msg` body, validating that the payload holds exactly
/// `ceil(bit_len/8)` bytes — a frame can neither hide trailing bytes
/// nor promise bits it does not carry.
pub fn decode_msg_body(body: &[u8]) -> Result<(MsgHeader, &[u8]), FrameError> {
    let mut r = ByteReader::new(body);
    let h = MsgHeader { receiver: r.u32()?, port: r.u32()?, ctx: r.u16()?, bit_len: r.u32()? };
    let payload = r.rest();
    if payload.len() as u64 != u64::from(h.bit_len).div_ceil(8) {
        return Err(FrameError::BadBody("payload length disagrees with bit_len"));
    }
    Ok((h, payload))
}

/// Little-endian byte-stream writer for frame bodies (specs, digests,
/// verdicts). A plain `Vec<u8>` wrapper so callers compose encoders.
#[derive(Default)]
pub struct ByteWriter(pub Vec<u8>);

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter(Vec::new())
    }
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
}

/// Little-endian reader over a frame body; every under-read is a typed
/// [`FrameError::Truncated`].
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// [`take`](Self::take) as a fixed-size array — the panic-free
    /// bridge to `uNN::from_le_bytes` (the slice has exactly `N` bytes
    /// by construction, so the copy cannot fail).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    pub fn u8(&mut self) -> Result<u8, FrameError> {
        let [b] = self.take_array()?;
        Ok(b)
    }
    pub fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }
    pub fn u128(&mut self) -> Result<u128, FrameError> {
        Ok(u128::from_le_bytes(self.take_array()?))
    }
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub fn bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the reader, returning everything not yet read — for
    /// trailing variable-length payloads that take the rest of a body.
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Rejects trailing garbage after a complete decode.
    pub fn finish(self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FrameError::BadBody("trailing bytes after message"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Go, &7u32.to_le_bytes()).unwrap();
        write_frame(&mut wire, FrameKind::Barrier, &[]).unwrap();
        let d = Deadline::after_ms(100);
        let mut r = &wire[..];
        let f1 = read_frame(&mut r, &d).unwrap();
        assert_eq!(f1.kind, FrameKind::Go);
        assert_eq!(f1.body, 7u32.to_le_bytes());
        let f2 = read_frame(&mut r, &d).unwrap();
        assert_eq!(f2.kind, FrameKind::Barrier);
        assert!(f2.body.is_empty());
        assert_eq!(read_frame(&mut r, &d), Err(FrameError::Truncated));
    }

    #[test]
    fn every_prefix_of_a_frame_is_a_typed_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Msg, &[1, 2, 3, 4, 5, 6, 7, 8, 9]).unwrap();
        for cut in 0..wire.len() {
            let d = Deadline::after_ms(50);
            let mut r = &wire[..cut];
            assert_eq!(read_frame(&mut r, &d), Err(FrameError::Truncated), "prefix {cut}");
        }
    }

    /// Serves scripted chunks one per `read` call, `WouldBlock`
    /// forever after — a socket whose peer dribbles bytes across poll
    /// windows.
    struct Dribble {
        chunks: Vec<Vec<u8>>,
        next: usize,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.chunks.get_mut(self.next) {
                Some(c) => {
                    let n = buf.len().min(c.len());
                    buf[..n].copy_from_slice(&c[..n]);
                    c.drain(..n);
                    if c.is_empty() {
                        self.next += 1;
                    }
                    Ok(n)
                }
                None => Err(std::io::ErrorKind::WouldBlock.into()),
            }
        }
    }

    #[test]
    fn frame_reader_resumes_mid_frame_across_expired_deadlines() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Msg, &[9, 8, 7, 6, 5, 4, 3]).unwrap();
        // Split so both the header and the body straddle deadline
        // expiries (an already-expired deadline stops after every
        // chunk, exactly one poll tick per chunk).
        let mut dribble = Dribble { chunks: wire.chunks(2).map(|c| c.to_vec()).collect(), next: 0 };
        let ticks = dribble.chunks.len();
        let mut fr = FrameReader::new();
        for tick in 1..ticks {
            let got = fr.read_frame(&mut dribble, &Deadline::after_ms(0));
            assert_eq!(got.unwrap_err(), FrameError::TimedOut, "tick {tick}");
            assert!(fr.mid_frame(), "tick {tick} buffered partial state");
        }
        let frame = fr.read_frame(&mut dribble, &Deadline::after_ms(0)).unwrap();
        assert_eq!(frame.kind, FrameKind::Msg);
        assert_eq!(frame.body, [9, 8, 7, 6, 5, 4, 3]);
        assert!(!fr.mid_frame());
        // The stream stays in sync: a second frame written later parses.
        let mut wire2 = Vec::new();
        write_frame(&mut wire2, FrameKind::Barrier, &[]).unwrap();
        dribble.chunks.push(wire2);
        assert_eq!(
            fr.read_frame(&mut dribble, &Deadline::after_ms(0)).unwrap().kind,
            FrameKind::Barrier
        );
    }

    #[test]
    fn frame_reader_matches_one_shot_semantics_on_whole_streams() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Go, &3u32.to_le_bytes()).unwrap();
        write_frame(&mut wire, FrameKind::Heartbeat, &[]).unwrap();
        let d = Deadline::after_ms(100);
        let mut r = &wire[..];
        let mut fr = FrameReader::new();
        assert_eq!(fr.read_frame(&mut r, &d).unwrap().kind, FrameKind::Go);
        assert_eq!(fr.read_frame(&mut r, &d).unwrap().kind, FrameKind::Heartbeat);
        assert_eq!(fr.read_frame(&mut r, &d), Err(FrameError::Truncated));
        // Bad headers fail identically, before any body allocation.
        let mut unk: &[u8] = &[0xEE, 0, 0, 0, 0];
        assert_eq!(FrameReader::new().read_frame(&mut unk, &d), Err(FrameError::BadKind(0xEE)));
        let mut big = vec![FrameKind::Msg as u8];
        big.extend_from_slice(&(MAX_BODY + 1).to_le_bytes());
        assert_eq!(
            FrameReader::new().read_frame(&mut &big[..], &d),
            Err(FrameError::Oversized { len: MAX_BODY + 1 })
        );
    }

    #[test]
    fn oversized_and_bad_kind_are_rejected_before_allocation() {
        let d = Deadline::after_ms(50);
        let mut bad = vec![FrameKind::Msg as u8];
        bad.extend_from_slice(&(MAX_BODY + 1).to_le_bytes());
        assert_eq!(read_frame(&mut &bad[..], &d), Err(FrameError::Oversized { len: MAX_BODY + 1 }));
        let mut unk = vec![0xEEu8];
        unk.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(read_frame(&mut &unk[..], &d), Err(FrameError::BadKind(0xEE)));
    }

    #[test]
    fn msg_body_validates_payload_length() {
        let h = MsgHeader { receiver: 3, port: 1, ctx: 2, bit_len: 12 };
        let body = encode_msg_body(&h, &[0xAB, 0xC0]);
        let (back, payload) = decode_msg_body(&body).unwrap();
        assert_eq!(back, h);
        assert_eq!(payload, &[0xAB, 0xC0]);
        // One byte short and one byte long both fail typed.
        assert!(decode_msg_body(&body[..body.len() - 1]).is_err());
        let mut long = body.clone();
        long.push(0);
        assert!(decode_msg_body(&long).is_err());
    }

    #[test]
    fn byte_reader_is_total() {
        let mut w = ByteWriter::new();
        w.u32(9);
        w.bytes(b"abc");
        for cut in 0..w.0.len() {
            let mut r = ByteReader::new(&w.0[..cut]);
            let got = r.u32().and_then(|_| r.bytes().map(|b| b.to_vec()));
            if cut < w.0.len() {
                assert!(got.is_err() || cut >= 11, "prefix {cut}");
            }
        }
    }
}
