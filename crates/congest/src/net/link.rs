//! Connection establishment and liveness plumbing: bounded-retry
//! connect with exponential backoff, and the worker-side heartbeat
//! writer that keeps a long round from being mistaken for a dead
//! process.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use super::frame::{write_frame, FrameKind};

/// Connects to `addr`, retrying with exponential backoff (`base_ms`,
/// doubling per attempt) up to `attempts` tries. Bounded time by
/// construction: the worst case is `base_ms · (2^attempts − 1)` of
/// sleeping plus the OS connect timeouts.
pub fn connect_with_retry(
    addr: &str,
    attempts: u32,
    base_ms: u64,
) -> Result<TcpStream, std::io::Error> {
    let mut delay = Duration::from_millis(base_ms);
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts.max(1) {
            std::thread::sleep(delay);
            delay = delay.saturating_mul(2);
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
}

/// A frame writer shared between a protocol thread and its heartbeat
/// thread: every frame goes out under one lock, so heartbeats can
/// never interleave into the middle of a protocol frame.
pub struct SharedWriter<W: Write + Send> {
    inner: Arc<Mutex<W>>,
}

impl<W: Write + Send> Clone for SharedWriter<W> {
    fn clone(&self) -> Self {
        SharedWriter { inner: Arc::clone(&self.inner) }
    }
}

impl<W: Write + Send + 'static> SharedWriter<W> {
    pub fn new(w: W) -> Self {
        SharedWriter { inner: Arc::new(Mutex::new(w)) }
    }

    /// Writes one frame and flushes it, atomically w.r.t. other frames.
    pub fn send(&self, kind: FrameKind, body: &[u8]) -> std::io::Result<()> {
        // A poisoned lock means a peer thread panicked mid-write; the
        // stream may carry a torn frame, which the reader's length
        // checks surface as a typed FrameError. Propagating the write
        // is strictly more informative than poisoning-panicking here.
        let mut w = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        write_frame(&mut *w, kind, body)?;
        w.flush()
    }
}

/// Emits [`FrameKind::Heartbeat`] frames every `interval` until
/// stopped; write failures end the beat silently (the protocol side
/// observes the dead link itself).
pub struct HeartbeatHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Spawns the beat on `writer`.
    pub fn spawn<W: Write + Send + 'static>(writer: SharedWriter<W>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                if writer.send(FrameKind::Heartbeat, &[]).is_err() {
                    break;
                }
            }
        });
        HeartbeatHandle { stop, join: Some(join) }
    }

    /// Stops the beat and joins the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::frame::{read_frame, Deadline, FrameError};

    #[test]
    fn connect_retry_fails_typed_and_bounded() {
        // A port nothing listens on: every attempt errors, the call
        // returns instead of hanging.
        let err = connect_with_retry("127.0.0.1:1", 2, 1);
        assert!(err.is_err());
    }

    #[test]
    fn heartbeats_never_split_protocol_frames() {
        let buf: Vec<u8> = Vec::new();
        let shared = SharedWriter::new(buf);
        let hb = HeartbeatHandle::spawn(shared.clone(), Duration::from_micros(200));
        for i in 0..50u32 {
            shared.send(FrameKind::Go, &i.to_le_bytes()).unwrap();
        }
        hb.stop();
        let wire = shared.inner.lock().unwrap().clone();
        // Every frame parses cleanly — no interleaving corrupted one.
        let d = Deadline::after_ms(200);
        let mut r = &wire[..];
        let mut gos = 0;
        loop {
            match read_frame(&mut r, &d) {
                Ok(f) => {
                    if f.kind == FrameKind::Go {
                        gos += 1;
                    } else {
                        assert_eq!(f.kind, FrameKind::Heartbeat);
                    }
                }
                Err(FrameError::Truncated) if r.is_empty() => break,
                Err(e) => panic!("corrupted stream: {e:?}"),
            }
        }
        assert_eq!(gos, 50);
    }
}
