//! Fault-tolerant cross-process execution on the codec seam.
//!
//! The CONGEST model is a message-passing system; this module makes
//! the message passing *real*. A coordinator partitions the graph into
//! contiguous node ranges ([`partition::partition_range`]), hands each
//! range to a worker — a thread or a spawned process, connected over
//! loopback TCP — and drives lock-step rounds over length-prefixed
//! frames ([`frame`]): `Go` starts a round, workers ship every
//! cross-partition delivery as a [`frame::FrameKind::Msg`] frame whose
//! payload is the message's canonical
//! [`crate::message::WireCodec`] bit string, `Done` carries the
//! partition's accounting digest, and `Barrier` seals the round after
//! the coordinator has routed all deliveries to their owners.
//!
//! Every failure mode is a **typed, bounded-time outcome** — the
//! design rule of this layer is that no fault, however rude, may turn
//! into a hang:
//!
//! | failure | detection | outcome |
//! |---|---|---|
//! | worker never connects | accept deadline | [`NetError::Connect`] |
//! | worker process dies (`kill -9`, abort) | EOF / reset on its link | [`NetError::WorkerLost`] (`Death`) |
//! | worker hangs mid-round | round deadline, heartbeats silent | [`NetError::WorkerLost`] (`MissedHeartbeat`) |
//! | worker alive but too slow | round deadline, heartbeats fresh | [`NetError::WorkerLost`] (`Deadline`) |
//! | truncated / malformed frame | total frame decode | [`NetError::Frame`] |
//! | payload fails the codec | typed [`crate::message::CodecError`] | [`NetError::Frame`] |
//!
//! Protocol layers (e.g. `ck-core`'s distributed tester) degrade
//! gracefully on any `NetError`: the job re-runs on the in-process
//! sequential executor — the bit-identity oracle — and the fallback is
//! recorded in the run report's `net` block rather than silently
//! absorbed.

pub mod chaos;
pub mod frame;
pub mod link;
pub mod partition;

pub use chaos::{ChaosPlan, ChaosTransport};
pub use frame::{Deadline, Frame, FrameError, FrameKind, MsgHeader};
pub use link::{connect_with_retry, HeartbeatHandle, SharedWriter};
pub use partition::{partition_range, OutFrame, PartitionEngine, RoundDigest};

/// Why a worker was declared lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LostCause {
    /// Its link closed (process death, `kill -9`, connection reset).
    Death,
    /// The round deadline passed with no heartbeat either — the
    /// process is gone or wedged.
    MissedHeartbeat,
    /// The round deadline passed while heartbeats kept arriving — the
    /// worker is alive but cannot finish in time.
    Deadline,
    /// It spoke the protocol wrong (unexpected frame, bad round echo).
    Protocol,
}

impl std::fmt::Display for LostCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LostCause::Death => "link closed",
            LostCause::MissedHeartbeat => "missed heartbeat",
            LostCause::Deadline => "round deadline exceeded",
            LostCause::Protocol => "protocol violation",
        };
        f.write_str(s)
    }
}

/// A typed network-layer failure; every variant is produced within a
/// configured deadline ([`NetOptions`]), never by waiting forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// Spawning a worker process failed.
    Spawn(String),
    /// A worker never completed the handshake.
    Connect { worker: u32, detail: String },
    /// A worker stopped participating mid-run.
    WorkerLost { worker: u32, round: u32, cause: LostCause },
    /// A worker link produced an undecodable frame.
    Frame { worker: u32, round: u32, err: FrameError },
    /// A worker reported a typed failure of its own.
    Worker { worker: u32, detail: String },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Spawn(d) => write!(f, "worker spawn failed: {d}"),
            NetError::Connect { worker, detail } => {
                write!(f, "worker {worker} never connected: {detail}")
            }
            NetError::WorkerLost { worker, round, cause } => {
                write!(f, "worker {worker} lost at round {round}: {cause}")
            }
            NetError::Frame { worker, round, err } => {
                write!(f, "bad frame from worker {worker} at round {round}: {err}")
            }
            NetError::Worker { worker, detail } => {
                write!(f, "worker {worker} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Tuning knobs of the distributed executor; every timeout is a hard
/// bound on how long a failure can stay undetected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetOptions {
    /// Total budget for spawning and handshaking all workers.
    pub connect_timeout_ms: u64,
    /// Worker-side connect attempts (exponential backoff between).
    pub connect_retries: u32,
    /// Backoff base for the first retry.
    pub connect_backoff_ms: u64,
    /// Per-round deadline: a round that has not produced every
    /// worker's `Done` by then loses the overdue worker.
    pub round_deadline_ms: u64,
    /// Worker heartbeat interval (distinguishes a slow worker from a
    /// dead one at the deadline).
    pub heartbeat_ms: u64,
    /// Process-mode worker command: argv executed per worker with the
    /// coordinator's `host:port` appended. `None` runs workers as
    /// in-process threads over real sockets — the same protocol, no
    /// fork cost.
    pub worker_cmd: Option<Vec<String>>,
    /// Physical-layer fault injection on one worker's link.
    pub chaos: Option<ChaosPlan>,
    /// `(worker, round)`: the coordinator SIGKILLs that worker process
    /// at the start of that round (process mode only) — the harness
    /// for crash-recovery tests.
    pub kill_worker: Option<(u32, u32)>,
    /// Degrade to the in-process sequential executor on a `NetError`
    /// instead of surfacing it (the fallback is recorded either way).
    pub fallback: bool,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            connect_timeout_ms: 5_000,
            connect_retries: 6,
            connect_backoff_ms: 20,
            round_deadline_ms: 5_000,
            heartbeat_ms: 100,
            worker_cmd: None,
            chaos: None,
            kill_worker: None,
            fallback: true,
        }
    }
}
