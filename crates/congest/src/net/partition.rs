//! Worker-side round execution over a contiguous node range.
//!
//! A [`PartitionEngine`] is the distributed executor's unit of work:
//! it owns the programs of nodes `[lo, hi)` and steps them through the
//! *same* fused send path as the in-process sequential executor — the
//! `DirectInbox` sinks, the flat per-directed-edge load table, the
//! broadcast slot generations, the fault plan evaluated at the send —
//! so verdicts, wire counters, bandwidth violations, and fault
//! accounting are bit-identical to the sequential oracle by
//! construction, not by re-implementation.
//!
//! Messages addressed inside the range land in the local double-
//! buffered inboxes exactly as in-process; messages addressed outside
//! it are drained after the round as [`OutFrame`]s for the transport
//! layer to ship. Deliveries arriving from other partitions are
//! [`PartitionEngine::inject`]ed, and [`PartitionEngine::commit_round`]
//! restores the canonical delivery order (ascending sender, then the
//! sender's queueing order) before the buffers swap: receiver-side
//! ports are sorted by neighbor index, so a stable sort by port *is*
//! the ascending-sender order, and within one port every packet came
//! from the same sender in emission order.

use std::ops::Range;

use crate::arena::{InboxArena, LoadTable, RoundAcc};
use crate::engine::{finalize_violation, EngineConfig, WireFlags};
use crate::graph::{Graph, NodeIndex};
use crate::message::WireParams;
use crate::metrics::{FaultReport, RoundStats};
use crate::node::{
    DirectSink, Inbox, NodeInit, Outbox, Packet, Program, SinkCtx, SinkMode, Status,
};

use super::frame::{ByteReader, ByteWriter, FrameError};

/// The contiguous node range worker `worker` of `workers` owns:
/// `[⌊w·n/W⌋, ⌊(w+1)·n/W⌋)`. Covers every node exactly once for any
/// worker count, including `workers > n` (trailing workers get empty
/// ranges).
pub fn partition_range(n: usize, workers: u32, worker: u32) -> Range<NodeIndex> {
    assert!(workers > 0, "at least one worker");
    assert!(worker < workers, "worker index in range");
    let (n, w, i) = (n as u64, u64::from(workers), u64::from(worker));
    ((i * n / w) as NodeIndex)..(((i + 1) * n / w) as NodeIndex)
}

/// One cross-partition delivery: the engine message bound for `port`
/// of `receiver`, already past the fault plan (drops are absent,
/// corruption is resolved) — exactly what an in-process lane would
/// hold.
#[derive(Clone, Debug)]
pub struct OutFrame<M> {
    /// Receiving node (global index, outside this partition).
    pub receiver: NodeIndex,
    /// Receiver-side local port.
    pub port: u32,
    /// The delivered payload.
    pub msg: M,
}

/// A round's sender-side accounting, mirroring the engine's internal
/// accumulator field-for-field so coordinator-side merges reproduce
/// the in-process statistics bit-for-bit. Merging is associative and
/// `violation` keeps the leftmost entry; merging partition digests in
/// ascending range order therefore equals the sequential fold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundDigest {
    pub messages: u64,
    pub bits: u64,
    pub max_message_bits: u64,
    pub max_link_bits: u64,
    pub max_link_messages: u64,
    /// Nodes that transitioned `Running → Halted` this round.
    pub halted: u32,
    /// First (by node index) lane that exceeded an enforced budget:
    /// `(sender, port, end-of-round lane bits)`.
    pub violation: Option<(NodeIndex, u32, u64)>,
    /// Per-kind drop counters, indexed by
    /// [`crate::fault::DropKind::index`].
    pub drops_by_kind: [u64; crate::fault::DropKind::COUNT],
    pub corrupted_delivered: u64,
    pub corrupted_rejected: u64,
}

impl RoundDigest {
    pub(crate) fn from_acc(acc: &RoundAcc) -> Self {
        RoundDigest {
            messages: acc.messages,
            bits: acc.bits,
            max_message_bits: acc.max_message_bits,
            max_link_bits: acc.max_link_bits,
            max_link_messages: acc.max_link_messages,
            halted: acc.halted,
            violation: acc.violation,
            drops_by_kind: acc.drops_by_kind,
            corrupted_delivered: acc.corrupted_delivered,
            corrupted_rejected: acc.corrupted_rejected,
        }
    }

    /// Associative merge; keeps the leftmost violation.
    pub fn merge(a: RoundDigest, b: RoundDigest) -> RoundDigest {
        let mut drops_by_kind = a.drops_by_kind;
        for (d, s) in drops_by_kind.iter_mut().zip(b.drops_by_kind) {
            *d += s;
        }
        RoundDigest {
            messages: a.messages + b.messages,
            bits: a.bits + b.bits,
            max_message_bits: a.max_message_bits.max(b.max_message_bits),
            max_link_bits: a.max_link_bits.max(b.max_link_bits),
            max_link_messages: a.max_link_messages.max(b.max_link_messages),
            halted: a.halted + b.halted,
            violation: a.violation.or(b.violation),
            drops_by_kind,
            corrupted_delivered: a.corrupted_delivered + b.corrupted_delivered,
            corrupted_rejected: a.corrupted_rejected + b.corrupted_rejected,
        }
    }

    /// The per-round report row, as the engine records it.
    pub fn to_stats(&self, round: u32, active_nodes: usize) -> RoundStats {
        RoundStats {
            round,
            active_nodes,
            messages: self.messages,
            bits: self.bits,
            max_message_bits: self.max_message_bits,
            max_link_bits: self.max_link_bits,
            max_link_messages: self.max_link_messages,
        }
    }

    /// Folds the fault counters into a run-level report, as the engine
    /// does after each completed round.
    pub fn add_faults_to(&self, fr: &mut FaultReport) {
        use crate::fault::DropKind;
        fr.dropped_explicit += self.drops_by_kind[DropKind::Explicit.index()];
        fr.dropped_random += self.drops_by_kind[DropKind::Random.index()];
        fr.dropped_crash += self.drops_by_kind[DropKind::Crash.index()];
        fr.dropped_cut += self.drops_by_kind[DropKind::Cut.index()];
        fr.dropped_burst += self.drops_by_kind[DropKind::Burst.index()];
        fr.corrupted_delivered += self.corrupted_delivered;
        fr.corrupted_rejected += self.corrupted_rejected;
    }

    /// Wire encoding for the `Done` frame body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.messages);
        w.u64(self.bits);
        w.u64(self.max_message_bits);
        w.u64(self.max_link_bits);
        w.u64(self.max_link_messages);
        w.u32(self.halted);
        match self.violation {
            Some((node, port, bits)) => {
                w.u8(1);
                w.u32(node);
                w.u32(port);
                w.u64(bits);
            }
            None => w.u8(0),
        }
        for d in self.drops_by_kind {
            w.u64(d);
        }
        w.u64(self.corrupted_delivered);
        w.u64(self.corrupted_rejected);
        w.0
    }

    /// Decodes a `Done` frame body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FrameError> {
        let mut r = ByteReader::new(bytes);
        let mut d = RoundDigest {
            messages: r.u64()?,
            bits: r.u64()?,
            max_message_bits: r.u64()?,
            max_link_bits: r.u64()?,
            max_link_messages: r.u64()?,
            halted: r.u32()?,
            ..RoundDigest::default()
        };
        d.violation = if r.u8()? != 0 { Some((r.u32()?, r.u32()?, r.u64()?)) } else { None };
        for slot in d.drops_by_kind.iter_mut() {
            *slot = r.u64()?;
        }
        d.corrupted_delivered = r.u64()?;
        d.corrupted_rejected = r.u64()?;
        r.finish()?;
        Ok(d)
    }
}

struct LocalSlot<P: Program> {
    prog: P,
    status: Status,
}

/// The partition executor proper (see the module doc).
pub struct PartitionEngine<'g, P: Program> {
    graph: &'g Graph,
    config: EngineConfig,
    params: WireParams,
    wf: WireFlags,
    lo: NodeIndex,
    hi: NodeIndex,
    slots: Vec<LocalSlot<P>>,
    cur: InboxArena<P::Msg>,
    next: InboxArena<P::Msg>,
    loads: LoadTable,
}

impl<'g, P: Program> PartitionEngine<'g, P> {
    /// Builds the partition for `worker` of `workers`, instantiating
    /// one program per owned node through `factory` (the same
    /// [`NodeInit`] the in-process engine hands out).
    pub fn new<F>(
        graph: &'g Graph,
        config: &EngineConfig,
        params: WireParams,
        workers: u32,
        worker: u32,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(NodeInit<'g>) -> P,
    {
        let n = graph.n();
        let m = graph.m();
        let range = partition_range(n, workers, worker);
        let slots = range
            .clone()
            .map(|v| {
                let init = NodeInit {
                    index: v,
                    id: graph.id(v),
                    neighbor_ids: graph.neighbor_ids(v),
                    ports_by_id: graph.ports_sorted_by_id(v),
                    n,
                    m,
                };
                LocalSlot { prog: factory(init), status: Status::Running }
            })
            .collect();
        let wf = WireFlags::for_config(config);
        let mut loads = LoadTable::new(0);
        loads.reset(if wf.account { graph.num_directed_edges() } else { 0 });
        let mut cur = InboxArena::new(0);
        let mut next = InboxArena::new(0);
        cur.reset(n);
        next.reset(n);
        PartitionEngine {
            graph,
            config: config.clone(),
            params,
            wf,
            lo: range.start,
            hi: range.end,
            slots,
            cur,
            next,
            loads,
        }
    }

    /// The owned node range.
    pub fn range(&self) -> Range<NodeIndex> {
        self.lo..self.hi
    }

    /// Locally running nodes (for termination bookkeeping and tests;
    /// the coordinator tracks the global count from digests).
    pub fn local_active(&self) -> usize {
        self.slots.iter().filter(|s| s.status == Status::Running).count()
    }

    /// Executes one round over the owned range: gathers each node's
    /// inbox, steps it through the fused accounted send path, and
    /// appends every delivery addressed outside the range to `out`
    /// (ascending receiver, then canonical within-receiver order).
    /// Returns the partition's share of the round accounting.
    pub fn step_round(&mut self, round: u32, out: &mut Vec<OutFrame<P::Msg>>) -> RoundDigest {
        let WireFlags { check_faults, limit, account, heavy } = self.wf;
        let mode = if heavy { SinkMode::HeavyInbox } else { SinkMode::FastInbox };
        let ctx = SinkCtx {
            // The inbox sinks never read receiver traffic hints.
            dirty: std::ptr::NonNull::dangling().as_ptr(),
            params: &self.params,
            faults: &self.config.faults,
            check_faults,
            account,
            heavy,
            limit,
            round,
            stamp: self.loads.stamp_for(round),
        };
        let mut acc = RoundAcc::default();
        for v in self.lo..self.hi {
            let slot = &mut self.slots[(v - self.lo) as usize];
            // SAFETY: single-threaded partition loop — only `v`'s
            // current buffer is referenced here, and sends only touch
            // `next` buffers.
            let inbox = unsafe { self.cur.inbox(v) };
            if slot.status != Status::Running {
                // Drop traffic addressed to a halted node.
                inbox.clear();
                continue;
            }
            let lanes = self.graph.directed_edge_range(v);
            let had_violation = acc.violation.is_some();
            let loads_row = if account {
                // SAFETY: `row_ptr(lanes.start)` is this sender's
                // exclusive load row; only materialized when the run
                // accounts.
                unsafe { self.loads.row_ptr(lanes.start) }
            } else {
                std::ptr::NonNull::dangling().as_ptr()
            };
            // SAFETY: `next.base_ptr()` is the per-receiver inbox
            // array; single-threaded use per the inbox sink-mode
            // contracts (remote receivers' buffers are staging space
            // drained below, written by no one else).
            let mut outbox: Outbox<P::Msg> = unsafe {
                Outbox::direct(
                    lanes.len() as u32,
                    DirectSink {
                        lanes: self.next.base_ptr(),
                        slots: self.next.slots_ptr(),
                        receivers: self.graph.neighbors(v).as_ptr(),
                        rev_ports: self.graph.rev_ports_row(v).as_ptr(),
                        acc: &mut acc,
                        loads: loads_row,
                        ctx: &ctx,
                        sender: v,
                    },
                    mode,
                )
            };
            // SAFETY: buffered packets' shared pointers target
            // broadcast slots of `cur`, untouched while `cur` is in
            // the read role.
            let view = unsafe { Inbox::from_packets(inbox) };
            let status = slot.prog.step(round, view, &mut outbox);
            drop(outbox);
            inbox.clear();
            slot.status = status;
            if status == Status::Halted {
                acc.halted += 1;
            }
            // SAFETY: sender-unique row access, as above.
            unsafe { finalize_violation(&mut acc, had_violation, v, loads_row) };
        }

        // Ship everything the fused path parked for foreign receivers.
        // Shared packets point into this round's write-generation
        // broadcast slots — still live until the arenas swap — so
        // cloning here is sound.
        let n = self.graph.n() as NodeIndex;
        for w in 0..n {
            if w >= self.lo && w < self.hi {
                continue;
            }
            // SAFETY: staging buffers of foreign receivers, written
            // only by this partition's sends this round.
            let staged = unsafe { self.next.inbox(w) };
            for pkt in staged.drain(..) {
                let (port, msg) = match pkt {
                    Packet::Own { port, msg } => (port, msg),
                    // SAFETY: see above — the slot outlives this drain.
                    Packet::Shared { port, msg } => (port, unsafe { (*msg).clone() }),
                };
                out.push(OutFrame { receiver: w, port, msg });
            }
        }
        RoundDigest::from_acc(&acc)
    }

    /// Buffers one delivery arriving from another partition for the
    /// next round. Fails typed on addressing errors (a malformed or
    /// hostile frame can never panic the worker).
    pub fn inject(
        &mut self,
        receiver: NodeIndex,
        port: u32,
        msg: P::Msg,
    ) -> Result<(), FrameError> {
        if receiver < self.lo || receiver >= self.hi {
            return Err(FrameError::BadBody("delivery addressed outside the partition"));
        }
        if (port as usize) >= self.graph.neighbors(receiver).len() {
            return Err(FrameError::BadBody("delivery port exceeds receiver degree"));
        }
        // SAFETY: single-threaded injection into this receiver's
        // next-round buffer.
        unsafe { self.next.inbox(receiver) }.push(Packet::Own { port, msg });
        Ok(())
    }

    /// Seals the round after all remote deliveries are injected:
    /// restores the canonical per-receiver delivery order and swaps
    /// the double buffers. Receiver ports are sorted by neighbor
    /// index, so the stable sort by port *is* ascending-sender order;
    /// packets sharing a port share a sender and keep emission order.
    pub fn commit_round(&mut self) {
        for v in self.lo..self.hi {
            // SAFETY: single-threaded commit, receiver-unique access.
            let inbox = unsafe { self.next.inbox(v) };
            if inbox.len() > 1 {
                inbox.sort_by_key(|p| match p {
                    Packet::Own { port, .. } => *port,
                    Packet::Shared { port, .. } => *port,
                });
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Per-node verdicts of the owned range, in node order.
    pub fn verdicts(&self) -> Vec<P::Verdict> {
        self.slots.iter().map(|s| s.prog.verdict()).collect()
    }

    /// Drains the programs in node order (verdicts must be collected
    /// first) — the worker's reclaim hook.
    pub fn into_programs(self) -> Vec<P> {
        self.slots.into_iter().map(|s| s.prog).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_ranges_tile_the_nodes() {
        for n in [0usize, 1, 2, 5, 7, 16, 33] {
            for workers in [1u32, 2, 3, 4, 9] {
                let mut covered = 0usize;
                let mut prev_end = 0;
                for w in 0..workers {
                    let r = partition_range(n, workers, w);
                    assert_eq!(r.start, prev_end, "contiguous for n={n} w={workers}");
                    prev_end = r.end;
                    covered += r.len();
                }
                assert_eq!(prev_end as usize, n);
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn worker_count_above_node_count_leaves_empty_tails() {
        let ranges: Vec<_> = (0..5).map(|w| partition_range(2, 5, w)).collect();
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert!(ranges.iter().filter(|r| r.is_empty()).count() >= 3);
    }

    #[test]
    fn digest_roundtrip_and_merge() {
        let a = RoundDigest {
            messages: 3,
            bits: 40,
            max_message_bits: 14,
            max_link_bits: 28,
            max_link_messages: 2,
            halted: 1,
            violation: Some((2, 0, 99)),
            drops_by_kind: [1, 0, 2, 0, 0],
            corrupted_delivered: 1,
            corrupted_rejected: 4,
        };
        let back = RoundDigest::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        let b = RoundDigest { messages: 2, violation: Some((7, 1, 5)), ..RoundDigest::default() };
        let m = RoundDigest::merge(a, b);
        assert_eq!(m.messages, 5);
        assert_eq!(m.violation, Some((2, 0, 99)));
        // Truncated digest bodies decode to typed errors.
        let bytes = a.to_bytes();
        for cut in 0..bytes.len() {
            assert!(RoundDigest::from_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }
}
