//! Node-side programming interface: what a CONGEST node sees and does.
//!
//! A protocol is a [`Program`] instantiated once per node. Each round the
//! engine hands every active program the messages received on its ports
//! during the previous round and collects the messages it wants to send.
//! Programs are plain state machines; all randomness must come from the
//! RNG handed to the factory so runs are reproducible.

use crate::arena::{Lane, LinkLoad, RoundAcc};
use crate::fault::FaultPlan;
use crate::graph::{NodeId, NodeIndex};
use crate::message::{WireMessage, WireParams};

/// Immutable per-node view of the network, as permitted by the CONGEST
/// model: own identity, neighbor identities (learnable in one round, so we
/// provide them upfront), and the global scalars `n` and `m`.
///
/// Exposing `n` and `m` is the standard "nodes know the graph size"
/// assumption; the paper's Phase 1 draws ranks from `[1, m²]`, and any
/// polynomial upper bound suffices for its analysis.
///
/// The view *borrows* the graph's CSR-aligned tables instead of owning
/// copies — instantiating `n` programs allocates nothing per node.
/// Programs that outlive the factory call copy what they keep (e.g.
/// `init.neighbor_ids.to_vec()`).
#[derive(Clone, Copy, Debug)]
pub struct NodeInit<'g> {
    /// Dense index of this node (simulator-internal; programs should key
    /// protocol logic on `id`, not `index`).
    pub index: NodeIndex,
    /// Identity of this node.
    pub id: NodeId,
    /// Identities of neighbors, indexed by local port (a borrow of the
    /// graph's table).
    pub neighbor_ids: &'g [NodeId],
    /// Local ports permuted into ascending-neighbor-identity order; the
    /// index behind [`NodeInit::port_of_neighbor`]'s binary search.
    /// Hand-built views (tests, harnesses) may leave this empty to fall
    /// back to a linear scan.
    pub ports_by_id: &'g [u32],
    /// Total number of nodes.
    pub n: usize,
    /// Total number of edges.
    pub m: usize,
}

impl NodeInit<'_> {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }

    /// Local port towards the neighbor with identity `id`, if adjacent:
    /// O(log degree) via the identity-sorted port permutation (linear
    /// scan when a hand-built view did not supply one).
    pub fn port_of_neighbor(&self, id: NodeId) -> Option<u32> {
        if self.ports_by_id.len() == self.neighbor_ids.len() {
            debug_assert!(
                self.ports_by_id
                    .windows(2)
                    .all(|w| self.neighbor_ids[w[0] as usize] < self.neighbor_ids[w[1] as usize]),
                "ports_by_id must permute ports into ascending-neighbor-identity order"
            );
            self.ports_by_id
                .binary_search_by_key(&id, |&p| self.neighbor_ids[p as usize])
                .ok()
                .map(|i| self.ports_by_id[i])
        } else {
            self.neighbor_ids.iter().position(|&x| x == id).map(|p| p as u32)
        }
    }
}

/// A message delivered to a node, labeled with the local port it arrived on.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// Receiver-side port the message arrived on.
    pub port: u32,
    /// Payload.
    pub msg: M,
}

/// Where an [`Outbox`]'s sends go.
enum Sink<M> {
    /// Queue into an owned buffer — harnesses, tests, and reference
    /// engines consume it via [`Outbox::drain_sends`]/[`Outbox::take_sends`].
    Buffered(Vec<(u32, M)>),
    /// Write straight into the engine's next-round message lanes, fusing
    /// wire accounting and bandwidth checks into the send itself. Built
    /// only by the arena engine, one per node per round, on the worker's
    /// stack.
    Direct(DirectSink),
    /// As `Direct`, minus wire counters and fault checks — chosen by the
    /// engine when neither can be observed (no round recording, no
    /// bandwidth cap, no fault plan): the send is then just a lane push
    /// plus the receiver's traffic hint.
    DirectFast(DirectSink),
    /// The sequential-executor fast path: push straight into the
    /// receiver's next-round inbox (`lanes` points at the inbox array,
    /// indexed by node). Sound only single-threaded — receivers' inboxes
    /// are multi-writer — which the engine guarantees by selecting this
    /// sink under `Executor::Sequential` alone. Ascending-sender
    /// iteration makes the resulting inbox order identical to the lane
    /// path's canonical order.
    DirectInbox(DirectSink),
    /// As `DirectInbox`, with the full fused accounting/fault path of
    /// `Direct` — the sequential executor's accounted route: one inbox
    /// push per delivered message, wire loads in the flat table, no lane
    /// machinery and no traffic-hint atomics.
    DirectInboxHeavy(DirectSink),
}

/// How the engine wants sends routed this round.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum SinkMode {
    /// Full accounting/fault path into lanes (parallel executor).
    Heavy,
    /// Counter-free lane path (parallel executor, nothing observable).
    FastLanes,
    /// Counter-free per-receiver inbox path (sequential executor only).
    FastInbox,
    /// Accounting/fault per-receiver inbox path (sequential executor
    /// only).
    HeavyInbox,
}

/// Round-invariant context shared by every node's direct sink; built
/// once per round on the engine's frame.
pub(crate) struct SinkCtx {
    /// Per-receiver traffic hints of the write arena. Valid for the
    /// lane sink modes; the inbox modes never read hints (a receiver
    /// reads its own inbox directly), so the sequential engine passes a
    /// dangling pointer.
    pub(crate) dirty: *const std::sync::atomic::AtomicBool,
    pub(crate) params: *const WireParams,
    pub(crate) faults: *const FaultPlan,
    pub(crate) check_faults: bool,
    /// False when neither round recording nor bandwidth enforcement can
    /// observe the wire counters — the send path then skips them. When
    /// true the engine has allocated the flat load table and every
    /// `DirectSink::loads` row pointer is valid.
    pub(crate) account: bool,
    /// `account || check_faults`: selects the accounting send paths.
    pub(crate) heavy: bool,
    /// Enforced per-link bit budget; `u64::MAX` under `Measure`.
    pub(crate) limit: u64,
    pub(crate) round: u32,
}

// SAFETY: the context is shared by reference across worker threads; its
// pointers reference round-lived shared state that is either read-only
// for the whole round (`params`, `faults`) or accessed atomically
// (`dirty`).
unsafe impl Sync for SinkCtx {}

/// Raw plumbing of the direct sink. Pointers are valid for the duration
/// of the one `Program::step` call the outbox is built for; the engine
/// guarantees the lane row is written by no one else meanwhile.
pub(crate) struct DirectSink {
    /// Base of this sender's contiguous lane row in the write arena
    /// (type-erased here; re-typed in the `send` path where `M` is known).
    pub(crate) lanes: *mut (),
    /// Receiver node index per local port (the graph's neighbor row).
    pub(crate) receivers: *const NodeIndex,
    /// Receiver-side port per local port (the graph's rev-port row);
    /// messages land in lanes pre-labeled for delivery.
    pub(crate) rev_ports: *const u32,
    /// The executor-chunk round accumulator.
    pub(crate) acc: *mut RoundAcc,
    /// Base of this sender's row in the flat per-directed-edge load
    /// table (indexed by local port, like `lanes`). Valid iff the
    /// context's `account` is set — the engine allocates the table
    /// whenever the wire counters are observable, and `charge_send`
    /// only reads this field under that flag (dangling otherwise).
    pub(crate) loads: *mut LinkLoad,
    /// Shared round-invariant context.
    pub(crate) ctx: *const SinkCtx,
    pub(crate) sender: NodeIndex,
}

/// Messages queued for sending in the current round.
pub struct Outbox<M> {
    sink: Sink<M>,
    degree: u32,
    queued: u32,
}

impl<M: WireMessage> Outbox<M> {
    pub(crate) fn new(degree: u32) -> Self {
        Outbox { sink: Sink::Buffered(Vec::new()), degree, queued: 0 }
    }

    /// Builds a lane- or inbox-writing outbox for one step call
    /// (engine-internal); see [`SinkMode`] for when each routing is
    /// sound.
    ///
    /// # Safety
    /// `sink`'s pointers must be valid and exclusive for the outbox's
    /// lifetime: `lanes` must point at the sender's `degree`-long lane
    /// row (`*mut Lane<M>` type-erased) — or, for the inbox modes, at
    /// the full per-receiver inbox array (`*mut Vec<Incoming<M>>`) —
    /// `loads` at the sender's load row whenever the mode accounts, and
    /// `acc`/`ctx` at live objects nobody else mutates during the call.
    pub(crate) unsafe fn direct(degree: u32, sink: DirectSink, mode: SinkMode) -> Self {
        let sink = match mode {
            SinkMode::Heavy => Sink::Direct(sink),
            SinkMode::FastLanes => Sink::DirectFast(sink),
            SinkMode::FastInbox => Sink::DirectInbox(sink),
            SinkMode::HeavyInbox => Sink::DirectInboxHeavy(sink),
        };
        Outbox { sink, degree, queued: 0 }
    }

    /// Constructs a free-standing buffered outbox for out-of-crate
    /// harnesses and tests (reference engines, unit-testing a
    /// [`Program`] step in isolation). The engine builds its own
    /// outboxes internally.
    pub fn for_harness(degree: u32) -> Self {
        Outbox::new(degree)
    }

    /// Drains the queued `(port, message)` pairs in queueing order —
    /// how a harness consumes what a step produced.
    ///
    /// # Panics
    /// Panics on an engine-internal direct outbox (those have no queue).
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, (u32, M)> {
        self.queued = 0;
        match &mut self.sink {
            Sink::Buffered(v) => v.drain(..),
            _ => panic!("drain_sends requires a buffered outbox"),
        }
    }

    /// Moves the queued sends out, leaving an empty buffer. For
    /// harnesses that want ownership (e.g. the pre-arena reference
    /// engine kept for benchmarking).
    ///
    /// # Panics
    /// Panics on an engine-internal direct outbox (those have no queue).
    pub fn take_sends(&mut self) -> Vec<(u32, M)> {
        self.queued = 0;
        match &mut self.sink {
            Sink::Buffered(v) => std::mem::take(v),
            _ => panic!("take_sends requires a buffered outbox"),
        }
    }

    /// Sends `msg` on local port `port`.
    ///
    /// # Panics
    /// Panics if `port` is out of range — that is a protocol bug, not a
    /// runtime condition.
    #[inline]
    pub fn send(&mut self, port: u32, msg: M) {
        assert!(port < self.degree, "send on port {port} of node with degree {}", self.degree);
        self.queued += 1;
        match &mut self.sink {
            Sink::Buffered(v) => v.push((port, msg)),
            // SAFETY: pointer validity/exclusivity guaranteed by the
            // `Outbox::direct` contract; `lanes` was erased from
            // `*mut Lane<M>` for this same `M`.
            Sink::Direct(d) => unsafe { direct_send(d, port, msg) },
            // SAFETY: as above.
            Sink::DirectFast(d) => unsafe { direct_send_fast(d, port, msg) },
            // SAFETY: as above.
            Sink::DirectInbox(d) => unsafe { direct_send_inbox(d, port, msg) },
            // SAFETY: as above.
            Sink::DirectInboxHeavy(d) => unsafe { direct_send_inbox_heavy(d, port, msg) },
        }
    }

    /// Sends a clone of `msg` on every port.
    pub fn broadcast(&mut self, msg: &M) {
        self.queued += self.degree;
        match &mut self.sink {
            Sink::Buffered(v) => {
                v.reserve(self.degree as usize);
                for p in 0..self.degree {
                    v.push((p, msg.clone()));
                }
            }
            // SAFETY: as in `send`; every port is in range by definition.
            Sink::Direct(d) => unsafe {
                for p in 0..self.degree {
                    direct_send(d, p, msg.clone());
                }
            },
            // SAFETY: as above.
            Sink::DirectFast(d) => unsafe {
                for p in 0..self.degree {
                    direct_send_fast(d, p, msg.clone());
                }
            },
            // SAFETY: as above.
            Sink::DirectInbox(d) => unsafe {
                for p in 0..self.degree {
                    direct_send_inbox(d, p, msg.clone());
                }
            },
            // SAFETY: as above.
            Sink::DirectInboxHeavy(d) => unsafe {
                for p in 0..self.degree {
                    direct_send_inbox_heavy(d, p, msg.clone());
                }
            },
        }
    }

    /// Number of messages queued so far this round.
    pub fn queued(&self) -> usize {
        self.queued as usize
    }

    /// Number of ports available (the node's degree).
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

/// The shared half of the heavy send paths: stamp/advance this link's
/// load, feed the round accumulator, check the bandwidth budget.
/// Returns whether the message survives the fault plan (the sender has
/// already been charged either way).
///
/// # Safety
/// See [`Outbox::direct`] — when the context accounts, `d.loads` must
/// be the sender's valid load row — and `port < degree`.
#[inline(always)]
unsafe fn charge_send<M: WireMessage>(d: &mut DirectSink, port: u32, msg: &M) -> bool {
    let ctx = &*d.ctx;
    if ctx.account {
        let load = &mut *d.loads.add(port as usize);
        if load.stamp != ctx.round {
            // First traffic on this link this round: the stale counters
            // are semantically zero, re-stamp instead of ever scanning
            // to reset.
            load.bits = 0;
            load.count = 0;
            load.stamp = ctx.round;
        }
        load.count += 1;
        let b = msg.wire_bits(&*ctx.params);
        let acc = &mut *d.acc;
        acc.messages += 1;
        acc.bits += b;
        if b > acc.max_message_bits {
            acc.max_message_bits = b;
        }
        load.bits += b;
        if load.bits > acc.max_link_bits {
            acc.max_link_bits = load.bits;
        }
        if load.count > acc.max_link_messages {
            acc.max_link_messages = load.count;
        }
        if load.bits > ctx.limit && acc.violation.is_none() {
            acc.violation = Some((d.sender, port, load.bits));
        }
    }
    !(ctx.check_faults && (*ctx.faults).drops(ctx.round, d.sender, port))
}

/// The fused lane write path: accounting, bandwidth check, delivery —
/// one message move, no allocation.
///
/// # Safety
/// See [`Outbox::direct`]; additionally `port < degree` was checked by
/// the caller.
#[inline(always)]
unsafe fn direct_send<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    if charge_send(d, port, &msg) {
        let ctx = &*d.ctx;
        let lane = &mut *(d.lanes as *mut Lane<M>).add(port as usize);
        if lane.is_empty() {
            // First delivery into this lane this round: flag the
            // receiver so it knows to scan its lanes next round. A
            // fault-dropped send leaves the lane empty and the flag
            // untouched — there is nothing to gather.
            let w = *d.receivers.add(port as usize);
            (*ctx.dirty.add(w as usize)).store(true, std::sync::atomic::Ordering::Relaxed);
        }
        let rev = *d.rev_ports.add(port as usize);
        lane.push(Incoming { port: rev, msg });
    }
}

/// The minimal write path (see `Sink::DirectFast`): lane counters stay
/// untouched (they are unobservable and the gather path then keys
/// purely off `msgs`), the message-present transition drives the
/// receiver's traffic hint.
///
/// # Safety
/// As [`direct_send`].
#[inline(always)]
unsafe fn direct_send_fast<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    let lane = &mut *(d.lanes as *mut Lane<M>).add(port as usize);
    if lane.is_empty() {
        let w = *d.receivers.add(port as usize);
        let ctx = &*d.ctx;
        (*ctx.dirty.add(w as usize)).store(true, std::sync::atomic::Ordering::Relaxed);
    }
    let rev = *d.rev_ports.add(port as usize);
    lane.push(Incoming { port: rev, msg });
}

/// The sequential-executor write path (see `Sink::DirectInbox`): one
/// push straight into the receiver's next-round inbox.
///
/// # Safety
/// As [`direct_send`], plus: `d.lanes` points at the per-receiver inbox
/// array and no other thread touches any inbox during the round (the
/// engine only selects this sink for the sequential executor).
#[inline(always)]
unsafe fn direct_send_inbox<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    let w = *d.receivers.add(port as usize);
    let rev = *d.rev_ports.add(port as usize);
    let inbox = &mut *(d.lanes as *mut Vec<Incoming<M>>).add(w as usize);
    inbox.push(Incoming { port: rev, msg });
}

/// The sequential-executor accounted write path (see
/// `Sink::DirectInboxHeavy`): identical wire accounting to the lane
/// path — same accumulator updates in the same order, so the two
/// executors' round statistics stay bit-for-bit equal — but delivery is
/// one push into the receiver's next-round inbox, with no lane
/// machinery and no traffic-hint atomics.
///
/// # Safety
/// As [`direct_send_inbox`], plus `d.loads` must be the sender's valid
/// load row.
#[inline(always)]
unsafe fn direct_send_inbox_heavy<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    if charge_send(d, port, &msg) {
        let w = *d.receivers.add(port as usize);
        let rev = *d.rev_ports.add(port as usize);
        let inbox = &mut *(d.lanes as *mut Vec<Incoming<M>>).add(w as usize);
        inbox.push(Incoming { port: rev, msg });
    }
}

/// Whether a node keeps participating after the current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Keep stepping this node.
    Running,
    /// The node has produced its verdict and sends/receives nothing more.
    Halted,
}

/// A per-node protocol state machine.
///
/// `step` is called once per round with the inbox of the *previous* round
/// (empty at round 0) and must queue this round's sends into `out`. The
/// engine stops when every node has halted or the round cap is hit.
pub trait Program: Send {
    /// Message type exchanged over edges.
    type Msg: WireMessage;
    /// Final output of a node (e.g. accept/reject).
    type Verdict: Send + Clone + 'static;

    /// Executes one synchronous round.
    fn step(&mut self, round: u32, inbox: &[Incoming<Self::Msg>], out: &mut Outbox<Self::Msg>) -> Status;

    /// The node's output; meaningful once the node has halted, but callable
    /// at any time (the engine collects verdicts at run end).
    fn verdict(&self) -> Self::Verdict;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut ob: Outbox<u64> = Outbox::new(3);
        ob.send(0, 42);
        ob.broadcast(&7);
        assert_eq!(ob.queued(), 4);
        let sends: Vec<(u32, u64)> = ob.drain_sends().collect();
        assert_eq!(sends, vec![(0, 42), (0, 7), (1, 7), (2, 7)]);
    }

    #[test]
    #[should_panic(expected = "send on port 3")]
    fn outbox_rejects_bad_port() {
        let mut ob: Outbox<u64> = Outbox::new(3);
        ob.send(3, 1);
    }

    #[test]
    fn node_init_port_lookup() {
        // With the identity-sorted permutation: binary-search path.
        let init = NodeInit {
            index: 0,
            id: 5,
            neighbor_ids: &[9, 2, 7],
            ports_by_id: &[1, 2, 0],
            n: 4,
            m: 3,
        };
        assert_eq!(init.degree(), 3);
        assert_eq!(init.port_of_neighbor(2), Some(1));
        assert_eq!(init.port_of_neighbor(9), Some(0));
        assert_eq!(init.port_of_neighbor(7), Some(2));
        assert_eq!(init.port_of_neighbor(5), None);
        // Without it: linear fallback gives identical answers.
        let plain = NodeInit { ports_by_id: &[], ..init };
        for id in [2, 9, 7, 5, 0] {
            assert_eq!(plain.port_of_neighbor(id), init.port_of_neighbor(id));
        }
    }

    #[test]
    fn outbox_drain_and_take() {
        let mut ob: Outbox<u64> = Outbox::for_harness(2);
        ob.send(1, 8);
        ob.broadcast(&3);
        let drained: Vec<(u32, u64)> = ob.drain_sends().collect();
        assert_eq!(drained, vec![(1, 8), (0, 3), (1, 3)]);
        assert_eq!(ob.queued(), 0);
        ob.send(0, 1);
        assert_eq!(ob.take_sends(), vec![(0, 1)]);
        assert_eq!(ob.queued(), 0);
    }
}
