//! Node-side programming interface: what a CONGEST node sees and does.
//!
//! A protocol is a [`Program`] instantiated once per node. Each round the
//! engine hands every active program the messages received on its ports
//! during the previous round and collects the messages it wants to send.
//! Programs are plain state machines; all randomness must come from the
//! RNG handed to the factory so runs are reproducible.
//!
//! Delivery is *by reference*: a step reads its [`Inbox`] without taking
//! ownership of any payload, which is what lets a broadcast store its
//! payload once per sender (in the arena's broadcast slot) and fan out
//! shared refs instead of clones. Programs that keep a message beyond
//! the step clone the payload explicitly.

use crate::arena::{Lane, LinkLoad, RoundAcc};
use crate::fault::{FaultDecision, FaultPlan};
use crate::graph::{NodeId, NodeIndex};
use crate::message::{WireMessage, WireParams};

/// Immutable per-node view of the network, as permitted by the CONGEST
/// model: own identity, neighbor identities (learnable in one round, so we
/// provide them upfront), and the global scalars `n` and `m`.
///
/// Exposing `n` and `m` is the standard "nodes know the graph size"
/// assumption; the paper's Phase 1 draws ranks from `[1, m²]`, and any
/// polynomial upper bound suffices for its analysis.
///
/// The view *borrows* the graph's CSR-aligned tables instead of owning
/// copies — instantiating `n` programs allocates nothing per node.
/// Programs that outlive the factory call copy what they keep (e.g.
/// `init.neighbor_ids.to_vec()`).
#[derive(Clone, Copy, Debug)]
pub struct NodeInit<'g> {
    /// Dense index of this node (simulator-internal; programs should key
    /// protocol logic on `id`, not `index`).
    pub index: NodeIndex,
    /// Identity of this node.
    pub id: NodeId,
    /// Identities of neighbors, indexed by local port (a borrow of the
    /// graph's table).
    pub neighbor_ids: &'g [NodeId],
    /// Local ports permuted into ascending-neighbor-identity order; the
    /// index behind [`NodeInit::port_of_neighbor`]'s binary search.
    /// Hand-built views (tests, harnesses) may leave this empty to fall
    /// back to a linear scan.
    pub ports_by_id: &'g [u32],
    /// Total number of nodes.
    pub n: usize,
    /// Total number of edges.
    pub m: usize,
}

impl NodeInit<'_> {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }

    /// Local port towards the neighbor with identity `id`, if adjacent:
    /// O(log degree) via the identity-sorted port permutation (linear
    /// scan when a hand-built view did not supply one).
    pub fn port_of_neighbor(&self, id: NodeId) -> Option<u32> {
        if self.ports_by_id.len() == self.neighbor_ids.len() {
            debug_assert!(
                self.ports_by_id
                    .windows(2)
                    // ck-lint: allow(index-literal, reason = "windows(2) yields exactly-two-element slices, so w[0]/w[1] cannot be out of bounds")
                    .all(|w| self.neighbor_ids[w[0] as usize] < self.neighbor_ids[w[1] as usize]),
                "ports_by_id must permute ports into ascending-neighbor-identity order"
            );
            self.ports_by_id
                .binary_search_by_key(&id, |&p| self.neighbor_ids[p as usize])
                .ok()
                .map(|i| self.ports_by_id[i])
        } else {
            self.neighbor_ids.iter().position(|&x| x == id).map(|p| p as u32)
        }
    }
}

/// Transport form of one delivered message, as stored in the arena's
/// per-directed-edge lanes, the sequential per-receiver inboxes, and the
/// engine's gather buffers. Not program-facing — programs read the
/// resolved [`Incoming`] view through an [`Inbox`].
pub(crate) enum Packet<M> {
    /// A targeted send: payload inline, labeled with the receiver-side
    /// port.
    Own { port: u32, msg: M },
    /// A broadcast delivery: the payload lives *once* in its sender's
    /// broadcast slot of the same arena generation; `msg` points at it.
    /// Valid exactly as long as that generation's slots are (one full
    /// read phase) — [`Inbox::from_packets`] is the checkpoint where the
    /// engine vouches for that.
    Shared { port: u32, msg: *const M },
}

// SAFETY: `Own` payloads move between threads (`M: Send`); `Shared`
// payloads are read concurrently by every receiver of a broadcast
// (`M: Sync`). `WireMessage` requires both.
unsafe impl<M: Send + Sync> Send for Packet<M> {}
// SAFETY: same argument as Send — both variants are covered by the
// `M: Send + Sync` bound.
unsafe impl<M: Send + Sync> Sync for Packet<M> {}

/// A message delivered to a node, labeled with the local port it arrived
/// on. The payload is borrowed from the round's delivery buffers —
/// broadcast payloads are shared by every receiver — so reading an
/// inbox never clones.
#[derive(Debug)]
pub struct Incoming<'r, M> {
    /// Receiver-side port the message arrived on.
    pub port: u32,
    /// Payload (clone it to keep it beyond the step).
    pub msg: &'r M,
}

impl<M> Clone for Incoming<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Incoming<'_, M> {}

/// Everything a node received last round, in canonical delivery order:
/// ascending sender identity-order port, then the sender's queueing
/// order. A cheap borrowed view — copy it freely, iterate it as often
/// as needed.
pub struct Inbox<'r, M> {
    packets: &'r [Packet<M>],
}

impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Inbox<'_, M> {}

impl<'r, M> Inbox<'r, M> {
    /// Wraps raw delivery packets (engine-internal).
    ///
    /// # Safety
    /// Every [`Packet::Shared`] pointer in `packets` must be valid for
    /// `'r` and not written to while the view lives. The engine
    /// guarantees this by only building views over the *current* arena
    /// generation, whose broadcast slots are write-free for the whole
    /// read phase.
    pub(crate) unsafe fn from_packets(packets: &'r [Packet<M>]) -> Self {
        Inbox { packets }
    }

    /// The empty inbox (what every node sees at round 0).
    pub fn empty() -> Self {
        Inbox { packets: &[] }
    }

    /// Number of messages delivered.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The `i`-th delivery in canonical order.
    pub fn get(&self, i: usize) -> Option<Incoming<'r, M>> {
        self.packets.get(i).map(resolve)
    }

    /// Iterates the deliveries in canonical order.
    pub fn iter(&self) -> InboxIter<'r, M> {
        InboxIter { inner: self.packets.iter() }
    }
}

/// Resolves a packet to its program-facing view.
fn resolve<'r, M>(p: &'r Packet<M>) -> Incoming<'r, M> {
    match p {
        Packet::Own { port, msg } => Incoming { port: *port, msg },
        // SAFETY: upheld by `Inbox::from_packets` — the slot the pointer
        // targets outlives the view and is not written meanwhile.
        Packet::Shared { port, msg } => Incoming { port: *port, msg: unsafe { &**msg } },
    }
}

/// Iterator over an [`Inbox`]'s deliveries.
pub struct InboxIter<'r, M> {
    inner: std::slice::Iter<'r, Packet<M>>,
}

impl<'r, M> Iterator for InboxIter<'r, M> {
    type Item = Incoming<'r, M>;

    fn next(&mut self) -> Option<Incoming<'r, M>> {
        self.inner.next().map(resolve)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<M> ExactSizeIterator for InboxIter<'_, M> {}

impl<'r, M> IntoIterator for Inbox<'r, M> {
    type Item = Incoming<'r, M>;
    type IntoIter = InboxIter<'r, M>;
    fn into_iter(self) -> InboxIter<'r, M> {
        self.iter()
    }
}

impl<'r, M> IntoIterator for &Inbox<'r, M> {
    type Item = Incoming<'r, M>;
    type IntoIter = InboxIter<'r, M>;
    fn into_iter(self) -> InboxIter<'r, M> {
        self.iter()
    }
}

/// Owned delivery buffer for out-of-crate harnesses and reference
/// engines: fill it with `(port, message)` deliveries, hand the program
/// a view of it. Its public API only ever stores inline payloads, so
/// [`InboxBuf::view`] is safe.
#[derive(Default)]
pub struct InboxBuf<M> {
    packets: Vec<Packet<M>>,
}

impl<M> InboxBuf<M> {
    /// An empty buffer.
    pub fn new() -> Self {
        InboxBuf { packets: Vec::new() }
    }

    /// Appends a delivery (arrival on receiver-side `port`).
    pub fn push(&mut self, port: u32, msg: M) {
        self.packets.push(Packet::Own { port, msg });
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.packets.clear();
    }

    /// Number of buffered deliveries.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// The program-facing view of the buffered deliveries.
    pub fn view(&self) -> Inbox<'_, M> {
        // SAFETY: `push` is the only public writer and stores
        // `Packet::Own` exclusively — no Shared pointer can exist here.
        unsafe { Inbox::from_packets(&self.packets) }
    }
}

/// Where an [`Outbox`]'s sends go.
enum Sink<M> {
    /// Queue into an owned buffer — harnesses, tests, and reference
    /// engines consume it via [`Outbox::drain_sends`]/[`Outbox::take_sends`].
    Buffered(Vec<(u32, M)>),
    /// Write straight into the engine's next-round message lanes, fusing
    /// wire accounting and bandwidth checks into the send itself. Built
    /// only by the arena engine, one per node per round, on the worker's
    /// stack.
    Direct(DirectSink),
    /// As `Direct`, minus wire counters and fault checks — chosen by the
    /// engine when neither can be observed (no round recording, no
    /// bandwidth cap, no fault plan): the send is then just a lane push
    /// plus the receiver's traffic hint.
    DirectFast(DirectSink),
    /// The sequential-executor fast path: push straight into the
    /// receiver's next-round inbox (`lanes` points at the inbox array,
    /// indexed by node). Sound only single-threaded — receivers' inboxes
    /// are multi-writer — which the engine guarantees by selecting this
    /// sink under `Executor::Sequential` alone. Ascending-sender
    /// iteration makes the resulting inbox order identical to the lane
    /// path's canonical order.
    DirectInbox(DirectSink),
    /// As `DirectInbox`, with the full fused accounting/fault path of
    /// `Direct` — the sequential executor's accounted route: one inbox
    /// push per delivered message, wire loads in the flat table, no lane
    /// machinery and no traffic-hint atomics.
    DirectInboxHeavy(DirectSink),
}

/// How the engine wants sends routed this round.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum SinkMode {
    /// Full accounting/fault path into lanes (parallel executor).
    Heavy,
    /// Counter-free lane path (parallel executor, nothing observable).
    FastLanes,
    /// Counter-free per-receiver inbox path (sequential executor only).
    FastInbox,
    /// Accounting/fault per-receiver inbox path (sequential executor
    /// only).
    HeavyInbox,
}

/// Round-invariant context shared by every node's direct sink; built
/// once per round on the engine's frame.
pub(crate) struct SinkCtx {
    /// Per-receiver traffic hints of the write arena. Valid for the
    /// lane sink modes; the inbox modes never read hints (a receiver
    /// reads its own inbox directly), so the sequential engine passes a
    /// dangling pointer.
    pub(crate) dirty: *const std::sync::atomic::AtomicBool,
    pub(crate) params: *const WireParams,
    pub(crate) faults: *const FaultPlan,
    pub(crate) check_faults: bool,
    /// False when neither round recording nor bandwidth enforcement can
    /// observe the wire counters — the send path then skips them. When
    /// true the engine has allocated the flat load table and every
    /// `DirectSink::loads` row pointer is valid.
    pub(crate) account: bool,
    /// `account || check_faults`: selects the accounting send paths.
    pub(crate) heavy: bool,
    /// Enforced per-link bit budget; `u64::MAX` under `Measure`.
    pub(crate) limit: u64,
    pub(crate) round: u32,
    /// The round's offset-space load stamp (`LoadTable::stamp_for`):
    /// per-run epochs keep stale entries from colliding with restarted
    /// round numbers, so workspaces never scan the table to reset it.
    pub(crate) stamp: u64,
}

// SAFETY: the context is shared by reference across worker threads; its
// pointers reference round-lived shared state that is either read-only
// for the whole round (`params`, `faults`) or accessed atomically
// (`dirty`).
unsafe impl Sync for SinkCtx {}

/// Raw plumbing of the direct sink. Pointers are valid for the duration
/// of the one `Program::step` call the outbox is built for; the engine
/// guarantees the lane row is written by no one else meanwhile.
pub(crate) struct DirectSink {
    /// Base of this sender's contiguous lane row in the write arena
    /// (type-erased here; re-typed in the `send` path where `M` is known).
    pub(crate) lanes: *mut (),
    /// Base of the write arena's per-node broadcast slot array
    /// (`*mut Option<M>` type-erased). Slot `sender` is written by this
    /// outbox alone; last generation's occupant is evicted back to the
    /// program for recycling.
    pub(crate) slots: *mut (),
    /// Receiver node index per local port (the graph's neighbor row).
    pub(crate) receivers: *const NodeIndex,
    /// Receiver-side port per local port (the graph's rev-port row);
    /// messages land in lanes pre-labeled for delivery.
    pub(crate) rev_ports: *const u32,
    /// The executor-chunk round accumulator.
    pub(crate) acc: *mut RoundAcc,
    /// Base of this sender's row in the flat per-directed-edge load
    /// table (indexed by local port, like `lanes`). Valid iff the
    /// context's `account` is set — the engine allocates the table
    /// whenever the wire counters are observable, and `charge_send`
    /// only reads this field under that flag (dangling otherwise).
    pub(crate) loads: *mut LinkLoad,
    /// Shared round-invariant context.
    pub(crate) ctx: *const SinkCtx,
    pub(crate) sender: NodeIndex,
}

/// Messages queued for sending in the current round.
pub struct Outbox<M> {
    sink: Sink<M>,
    degree: u32,
    queued: u32,
    /// Whether this step already parked a payload in the broadcast slot
    /// (only the first broadcast per step can; later ones clone per
    /// port like targeted sends).
    slot_used: bool,
}

impl<M: WireMessage> Outbox<M> {
    pub(crate) fn new(degree: u32) -> Self {
        Outbox { sink: Sink::Buffered(Vec::new()), degree, queued: 0, slot_used: false }
    }

    /// Builds a lane- or inbox-writing outbox for one step call
    /// (engine-internal); see [`SinkMode`] for when each routing is
    /// sound.
    ///
    /// # Safety
    /// `sink`'s pointers must be valid and exclusive for the outbox's
    /// lifetime: `lanes` must point at the sender's `degree`-long lane
    /// row (`*mut Lane<M>` type-erased) — or, for the inbox modes, at
    /// the full per-receiver inbox array (`*mut Vec<Packet<M>>`) —
    /// `slots` at the write generation's `Option<M>` slot array (slot
    /// `sender` unaliased), `loads` at the sender's load row whenever
    /// the mode accounts, and `acc`/`ctx` at live objects nobody else
    /// mutates during the call.
    pub(crate) unsafe fn direct(degree: u32, sink: DirectSink, mode: SinkMode) -> Self {
        let sink = match mode {
            SinkMode::Heavy => Sink::Direct(sink),
            SinkMode::FastLanes => Sink::DirectFast(sink),
            SinkMode::FastInbox => Sink::DirectInbox(sink),
            SinkMode::HeavyInbox => Sink::DirectInboxHeavy(sink),
        };
        Outbox { sink, degree, queued: 0, slot_used: false }
    }

    /// Constructs a free-standing buffered outbox for out-of-crate
    /// harnesses and tests (reference engines, unit-testing a
    /// [`Program`] step in isolation). The engine builds its own
    /// outboxes internally.
    pub fn for_harness(degree: u32) -> Self {
        Outbox::new(degree)
    }

    /// Drains the queued `(port, message)` pairs in queueing order —
    /// how a harness consumes what a step produced.
    ///
    /// # Panics
    /// Panics on an engine-internal direct outbox (those have no queue).
    pub fn drain_sends(&mut self) -> std::vec::Drain<'_, (u32, M)> {
        self.queued = 0;
        match &mut self.sink {
            Sink::Buffered(v) => v.drain(..),
            // ck-lint: allow(no-panic, reason = "documented '# Panics' contract: harness-only API, misuse on a direct outbox is a programming error with no recoverable state")
            _ => panic!("drain_sends requires a buffered outbox"),
        }
    }

    /// Moves the queued sends out, leaving an empty buffer. For
    /// harnesses that want ownership (e.g. the pre-arena reference
    /// engine kept for benchmarking).
    ///
    /// # Panics
    /// Panics on an engine-internal direct outbox (those have no queue).
    pub fn take_sends(&mut self) -> Vec<(u32, M)> {
        self.queued = 0;
        match &mut self.sink {
            Sink::Buffered(v) => std::mem::take(v),
            // ck-lint: allow(no-panic, reason = "documented '# Panics' contract: harness-only API, misuse on a direct outbox is a programming error with no recoverable state")
            _ => panic!("take_sends requires a buffered outbox"),
        }
    }

    /// Sends `msg` on local port `port`.
    ///
    /// # Panics
    /// Panics if `port` is out of range — that is a protocol bug, not a
    /// runtime condition.
    #[inline]
    pub fn send(&mut self, port: u32, msg: M) {
        assert!(port < self.degree, "send on port {port} of node with degree {}", self.degree);
        self.queued += 1;
        match &mut self.sink {
            Sink::Buffered(v) => v.push((port, msg)),
            // SAFETY: pointer validity/exclusivity guaranteed by the
            // `Outbox::direct` contract; `lanes` was erased from
            // `*mut Lane<M>` for this same `M`.
            Sink::Direct(d) => unsafe { direct_send(d, port, msg) },
            // SAFETY: as above.
            Sink::DirectFast(d) => unsafe { direct_send_fast(d, port, msg) },
            // SAFETY: as above.
            Sink::DirectInbox(d) => unsafe { direct_send_inbox(d, port, msg) },
            // SAFETY: as above.
            Sink::DirectInboxHeavy(d) => unsafe { direct_send_inbox_heavy(d, port, msg) },
        }
    }

    /// Sends `msg` on every port.
    ///
    /// Under the engine's direct sinks the payload is stored **once** in
    /// this sender's broadcast slot of the write arena and every lane
    /// (or sequential inbox) receives a lightweight shared ref — no
    /// clone on either side of the wire. Wire accounting still charges
    /// every link the full message size, and delivery order is
    /// identical to `degree` targeted sends.
    ///
    /// Returns the payload evicted from the slot — the broadcast this
    /// sender parked **two rounds earlier** (same arena generation),
    /// which no receiver can still be reading. Protocols with pooled
    /// payloads recycle it; everyone else ignores it. Buffered
    /// (harness) outboxes clone per port instead (moving the last) and
    /// return `None`, as does a second broadcast within one step, which
    /// falls back to per-port clones because the slot is taken.
    pub fn broadcast(&mut self, msg: M) -> Option<M> {
        self.queued += self.degree;
        if self.degree == 0 {
            return None;
        }
        // SAFETY (all direct arms): as in `send` — every port is in
        // range by definition, slot `sender` is unaliased per the
        // `Outbox::direct` contract, and the closures only forward to
        // the send/charge/fan helpers under that same contract. The
        // payload's wire size is computed once per broadcast (the
        // parked payload is identical on every link) and only when the
        // accounting path will read it.
        match &mut self.sink {
            Sink::Buffered(v) => {
                let last = self.degree - 1;
                v.reserve(self.degree as usize);
                for p in 0..last {
                    v.push((p, msg.clone()));
                }
                v.push((last, msg));
                None
            }
            // SAFETY: the DirectSink contract — exclusive lane row,
            // unaliased parked slot, live acc/ctx — was established by
            // the `unsafe` `Outbox::direct` constructor and holds for
            // the outbox's lifetime.
            Sink::Direct(d) => unsafe {
                let bits = account_bits(d, &msg);
                direct_broadcast(
                    &mut self.slot_used,
                    self.degree,
                    d,
                    msg,
                    |d, p, m| direct_send(d, p, m),
                    |d, p, ptr| match charge_send_bits(d, p, bits) {
                        SendFate::Deliver => lane_push_bcast(d, p, ptr),
                        SendFate::Dropped => {}
                        SendFate::Corrupt { entropy } => {
                            // A corrupted copy diverges from the parked
                            // payload, so it travels inline instead of
                            // as a shared slot ref.
                            if let Some(garbled) = corrupt_payload(d, &*ptr, entropy) {
                                direct_send_fast(d, p, garbled);
                            }
                        }
                    },
                )
            },
            // SAFETY: same DirectSink contract as the arm above.
            Sink::DirectFast(d) => unsafe {
                direct_broadcast(
                    &mut self.slot_used,
                    self.degree,
                    d,
                    msg,
                    |d, p, m| direct_send_fast(d, p, m),
                    |d, p, ptr| lane_push_bcast(d, p, ptr),
                )
            },
            // SAFETY: same DirectSink contract as the arm above.
            Sink::DirectInbox(d) => unsafe {
                direct_broadcast(
                    &mut self.slot_used,
                    self.degree,
                    d,
                    msg,
                    |d, p, m| direct_send_inbox(d, p, m),
                    |d, p, ptr| inbox_push_bcast(d, p, ptr),
                )
            },
            // SAFETY: same DirectSink contract as the arm above.
            Sink::DirectInboxHeavy(d) => unsafe {
                let bits = account_bits(d, &msg);
                direct_broadcast(
                    &mut self.slot_used,
                    self.degree,
                    d,
                    msg,
                    |d, p, m| direct_send_inbox_heavy(d, p, m),
                    |d, p, ptr| match charge_send_bits(d, p, bits) {
                        SendFate::Deliver => inbox_push_bcast(d, p, ptr),
                        SendFate::Dropped => {}
                        SendFate::Corrupt { entropy } => {
                            if let Some(garbled) = corrupt_payload(d, &*ptr, entropy) {
                                direct_send_inbox(d, p, garbled);
                            }
                        }
                    },
                )
            },
        }
    }

    /// Number of messages queued so far this round.
    pub fn queued(&self) -> usize {
        self.queued as usize
    }

    /// Number of ports available (the node's degree).
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

/// Whether broadcasts of `M` deliver inline copies instead of shared
/// refs: when the payload is no bigger than the pointer-sized `Shared`
/// packet body, an owned copy costs the same lane space as a ref and
/// spares every receiver the slot indirection (a cache miss on a
/// random sender's slot). Heavy payloads — anything owning heap memory
/// is bigger than this — always share. Monomorphizes to a constant, so
/// each instantiation compiles to a single path.
#[inline(always)]
fn broadcast_inline<M>() -> bool {
    std::mem::size_of::<M>() <= 2 * std::mem::size_of::<*const ()>()
}

/// The payload's wire size if this sink's context will account it,
/// else 0 (never read): lets a broadcast price its payload once instead
/// of once per port.
///
/// # Safety
/// `d.ctx` must be valid per the [`Outbox::direct`] contract.
#[inline(always)]
unsafe fn account_bits<M: WireMessage>(d: &DirectSink, msg: &M) -> u64 {
    let ctx = &*d.ctx;
    if ctx.account {
        msg.wire_bits(&*ctx.params)
    } else {
        0
    }
}

/// The shared driver of every direct-sink broadcast: the slot path for
/// the first broadcast of a step (park once, fan out via `fan_one`,
/// return the evicted previous generation's payload), or the per-port
/// clone fallback via `send_one` when the slot is already taken.
///
/// # Safety
/// See [`Outbox::direct`]; `degree ≥ 1`, and the callbacks must uphold
/// the same contract as the send helpers they wrap.
#[inline(always)]
unsafe fn direct_broadcast<M: Clone>(
    slot_used: &mut bool,
    degree: u32,
    d: &mut DirectSink,
    msg: M,
    mut send_one: impl FnMut(&mut DirectSink, u32, M),
    mut fan_one: impl FnMut(&mut DirectSink, u32, *const M),
) -> Option<M> {
    if *slot_used {
        let last = degree - 1;
        for p in 0..last {
            send_one(d, p, msg.clone());
        }
        send_one(d, last, msg);
        return None;
    }
    *slot_used = true;
    let (evicted, ptr) = slot_park(d, msg);
    for p in 0..degree {
        fan_one(d, p, ptr);
    }
    evicted
}

/// Parks a broadcast payload in this sender's slot of the write
/// generation, returning the evicted previous occupant and a pointer to
/// the parked payload (stable: the slot array never reallocates).
///
/// # Safety
/// See [`Outbox::direct`] — `d.slots` must be the write generation's
/// slot array with slot `d.sender` unaliased for the outbox's lifetime.
#[inline(always)]
unsafe fn slot_park<M>(d: &DirectSink, msg: M) -> (Option<M>, *const M) {
    let slot = &mut *(d.slots as *mut Option<M>).add(d.sender as usize);
    let evicted = slot.replace(msg);
    // ck-lint: allow(no-panic, reason = "replace() on the line above just stored a value, so the slot is Some")
    let ptr: *const M = slot.as_ref().expect("just parked") as *const M;
    (evicted, ptr)
}

/// Pushes one broadcast delivery into the lane of `port`, maintaining
/// the receiver's traffic hint exactly like a targeted lane push: an
/// inline copy for pointer-sized payloads, a shared ref into the
/// sender's parked slot otherwise.
///
/// # Safety
/// As [`direct_send`], with `ptr` pointing at the parked payload of the
/// same arena generation as `d.lanes`.
#[inline(always)]
unsafe fn lane_push_bcast<M: Clone>(d: &mut DirectSink, port: u32, ptr: *const M) {
    let lane = &mut *(d.lanes as *mut Lane<M>).add(port as usize);
    if lane.is_empty() {
        let w = *d.receivers.add(port as usize);
        let ctx = &*d.ctx;
        (*ctx.dirty.add(w as usize)).store(true, std::sync::atomic::Ordering::Relaxed);
    }
    let rev = *d.rev_ports.add(port as usize);
    if broadcast_inline::<M>() {
        lane.push(Packet::Own { port: rev, msg: (*ptr).clone() });
    } else {
        lane.push(Packet::Shared { port: rev, msg: ptr });
    }
}

/// Pushes one broadcast delivery straight into the receiver's
/// next-round inbox (sequential executor only); inline/shared split as
/// [`lane_push_bcast`].
///
/// # Safety
/// As [`direct_send_inbox`], with `ptr` pointing at the parked payload
/// of the same inbox-arena generation as `d.lanes`.
#[inline(always)]
unsafe fn inbox_push_bcast<M: Clone>(d: &mut DirectSink, port: u32, ptr: *const M) {
    let w = *d.receivers.add(port as usize);
    let rev = *d.rev_ports.add(port as usize);
    let inbox = &mut *(d.lanes as *mut Vec<Packet<M>>).add(w as usize);
    if broadcast_inline::<M>() {
        inbox.push(Packet::Own { port: rev, msg: (*ptr).clone() });
    } else {
        inbox.push(Packet::Shared { port: rev, msg: ptr });
    }
}

/// What the fault plan decided for one charged send, as seen by the
/// delivery paths: deliver the payload, forget it, or tamper with its
/// encoded frame first.
#[derive(Clone, Copy)]
enum SendFate {
    Deliver,
    Dropped,
    Corrupt { entropy: u64 },
}

/// The shared half of the heavy send paths: stamp/advance this link's
/// load, feed the round accumulator, check the bandwidth budget.
/// Returns the message's fate under the fault plan (the sender has
/// already been charged either way; per-kind drop counters land in the
/// accumulator here). `b` is the message's wire size, priced by the
/// caller (per message for targeted sends, once per broadcast); it is
/// only read when the context accounts.
///
/// # Safety
/// See [`Outbox::direct`] — when the context accounts, `d.loads` must
/// be the sender's valid load row — and `port < degree`.
#[inline(always)]
unsafe fn charge_send_bits(d: &mut DirectSink, port: u32, b: u64) -> SendFate {
    let ctx = &*d.ctx;
    if ctx.account {
        let load = &mut *d.loads.add(port as usize);
        if load.stamp != ctx.stamp {
            // First traffic on this link this round (or an entry stale
            // from an earlier round *or an earlier run* — the epoch
            // offset makes both unmistakable): the counters are
            // semantically zero, re-stamp instead of ever scanning to
            // reset.
            load.bits = 0;
            load.count = 0;
            load.stamp = ctx.stamp;
        }
        load.count += 1;
        let acc = &mut *d.acc;
        acc.messages += 1;
        acc.bits += b;
        if b > acc.max_message_bits {
            acc.max_message_bits = b;
        }
        load.bits += b;
        if load.bits > acc.max_link_bits {
            acc.max_link_bits = load.bits;
        }
        if load.count > acc.max_link_messages {
            acc.max_link_messages = load.count;
        }
        if load.bits > ctx.limit && acc.violation.is_none() {
            acc.violation = Some((d.sender, port, load.bits));
        }
    }
    if !ctx.check_faults {
        return SendFate::Deliver;
    }
    // The heavy paths are the only callers, and the engine forces a
    // heavy sink whenever a fault plan is active, so `d.acc` is always
    // live here even when `account` is off.
    let receiver = *d.receivers.add(port as usize);
    match (*ctx.faults).decide(ctx.round, d.sender, receiver, port) {
        FaultDecision::Deliver => SendFate::Deliver,
        FaultDecision::Drop(kind) => {
            (*d.acc).drops_by_kind[kind.index()] += 1;
            SendFate::Dropped
        }
        FaultDecision::Corrupt { entropy } => SendFate::Corrupt { entropy },
    }
}

/// [`charge_send_bits`] with the wire size priced here — the targeted
/// send form.
///
/// # Safety
/// As [`charge_send_bits`].
#[inline(always)]
unsafe fn charge_send<M: WireMessage>(d: &mut DirectSink, port: u32, msg: &M) -> SendFate {
    let b = account_bits(d, msg);
    charge_send_bits(d, port, b)
}

/// Resolves a [`SendFate::Corrupt`] into the payload that actually
/// arrives: the tampered frame's decode when it survives the codec
/// (counted as delivered garbage), or nothing (counted as a rejected
/// frame — one more way to lose a message).
///
/// # Safety
/// `d.ctx` and `d.acc` must be valid per the [`Outbox::direct`]
/// contract (corruption implies an active fault plan, which forces a
/// heavy sink with a live accumulator).
#[inline(always)]
unsafe fn corrupt_payload<M: WireMessage>(d: &mut DirectSink, msg: &M, entropy: u64) -> Option<M> {
    let ctx = &*d.ctx;
    match msg.corrupt_frame(&*ctx.params, entropy) {
        Some(garbled) => {
            (*d.acc).corrupted_delivered += 1;
            Some(garbled)
        }
        None => {
            (*d.acc).corrupted_rejected += 1;
            None
        }
    }
}

/// The fused lane write path: accounting, bandwidth check, delivery —
/// one message move, no allocation.
///
/// # Safety
/// See [`Outbox::direct`]; additionally `port < degree` was checked by
/// the caller.
#[inline(always)]
unsafe fn direct_send<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    match charge_send(d, port, &msg) {
        SendFate::Deliver => direct_send_fast(d, port, msg),
        // A fault-dropped send leaves the lane empty and the receiver's
        // traffic hint untouched — there is nothing to gather.
        SendFate::Dropped => {}
        SendFate::Corrupt { entropy } => {
            if let Some(garbled) = corrupt_payload(d, &msg, entropy) {
                direct_send_fast(d, port, garbled);
            }
        }
    }
}

/// The minimal write path (see `Sink::DirectFast`): lane counters stay
/// untouched (they are unobservable and the gather path then keys
/// purely off `msgs`), the message-present transition drives the
/// receiver's traffic hint.
///
/// # Safety
/// As [`direct_send`].
#[inline(always)]
unsafe fn direct_send_fast<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    let lane = &mut *(d.lanes as *mut Lane<M>).add(port as usize);
    if lane.is_empty() {
        let w = *d.receivers.add(port as usize);
        let ctx = &*d.ctx;
        (*ctx.dirty.add(w as usize)).store(true, std::sync::atomic::Ordering::Relaxed);
    }
    let rev = *d.rev_ports.add(port as usize);
    lane.push(Packet::Own { port: rev, msg });
}

/// The sequential-executor write path (see `Sink::DirectInbox`): one
/// push straight into the receiver's next-round inbox.
///
/// # Safety
/// As [`direct_send`], plus: `d.lanes` points at the per-receiver inbox
/// array and no other thread touches any inbox during the round (the
/// engine only selects this sink for the sequential executor).
#[inline(always)]
unsafe fn direct_send_inbox<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    let w = *d.receivers.add(port as usize);
    let rev = *d.rev_ports.add(port as usize);
    let inbox = &mut *(d.lanes as *mut Vec<Packet<M>>).add(w as usize);
    inbox.push(Packet::Own { port: rev, msg });
}

/// The sequential-executor accounted write path (see
/// `Sink::DirectInboxHeavy`): identical wire accounting to the lane
/// path — same accumulator updates in the same order, so the two
/// executors' round statistics stay bit-for-bit equal — but delivery is
/// one push into the receiver's next-round inbox, with no lane
/// machinery and no traffic-hint atomics.
///
/// # Safety
/// As [`direct_send_inbox`], plus `d.loads` must be the sender's valid
/// load row.
#[inline(always)]
unsafe fn direct_send_inbox_heavy<M: WireMessage>(d: &mut DirectSink, port: u32, msg: M) {
    match charge_send(d, port, &msg) {
        SendFate::Deliver => direct_send_inbox(d, port, msg),
        SendFate::Dropped => {}
        SendFate::Corrupt { entropy } => {
            if let Some(garbled) = corrupt_payload(d, &msg, entropy) {
                direct_send_inbox(d, port, garbled);
            }
        }
    }
}

/// Whether a node keeps participating after the current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Keep stepping this node.
    Running,
    /// The node has produced its verdict and sends/receives nothing more.
    Halted,
}

/// A per-node protocol state machine.
///
/// `step` is called once per round with the inbox of the *previous* round
/// (empty at round 0) and must queue this round's sends into `out`. The
/// inbox hands payloads out by reference (broadcast payloads are shared
/// among all receivers); clone what you keep. The engine stops when
/// every node has halted or the round cap is hit.
pub trait Program: Send {
    /// Message type exchanged over edges.
    type Msg: WireMessage;
    /// Final output of a node (e.g. accept/reject).
    type Verdict: Send + Clone + 'static;

    /// Executes one synchronous round.
    fn step(
        &mut self,
        round: u32,
        inbox: Inbox<'_, Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) -> Status;

    /// The node's output; meaningful once the node has halted, but callable
    /// at any time (the engine collects verdicts at run end).
    fn verdict(&self) -> Self::Verdict;

    /// End-of-run recycling hook: receives this sender's broadcast
    /// payloads still parked in the engine's double-buffered slots when
    /// the run ends (at most one per arena generation — the ones no
    /// later broadcast evicted back through
    /// [`Outbox::broadcast`]'s return value). Programs that pool their
    /// payload backings reclaim them here; without the hook the
    /// engine's next workspace reset would drop them, shrinking the
    /// pool by up to two buffers per node per run and defeating
    /// steady-state allocation freedom. The default does nothing.
    fn reclaim_msg(&mut self, msg: Self::Msg) {
        let _ = msg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut ob: Outbox<u64> = Outbox::new(3);
        ob.send(0, 42);
        assert_eq!(ob.broadcast(7), None, "buffered outboxes have no slot to evict");
        assert_eq!(ob.queued(), 4);
        let sends: Vec<(u32, u64)> = ob.drain_sends().collect();
        assert_eq!(sends, vec![(0, 42), (0, 7), (1, 7), (2, 7)]);
    }

    #[test]
    #[should_panic(expected = "send on port 3")]
    fn outbox_rejects_bad_port() {
        let mut ob: Outbox<u64> = Outbox::new(3);
        ob.send(3, 1);
    }

    #[test]
    fn node_init_port_lookup() {
        // With the identity-sorted permutation: binary-search path.
        let init = NodeInit {
            index: 0,
            id: 5,
            neighbor_ids: &[9, 2, 7],
            ports_by_id: &[1, 2, 0],
            n: 4,
            m: 3,
        };
        assert_eq!(init.degree(), 3);
        assert_eq!(init.port_of_neighbor(2), Some(1));
        assert_eq!(init.port_of_neighbor(9), Some(0));
        assert_eq!(init.port_of_neighbor(7), Some(2));
        assert_eq!(init.port_of_neighbor(5), None);
        // Without it: linear fallback gives identical answers.
        let plain = NodeInit { ports_by_id: &[], ..init };
        for id in [2, 9, 7, 5, 0] {
            assert_eq!(plain.port_of_neighbor(id), init.port_of_neighbor(id));
        }
    }

    #[test]
    fn outbox_drain_and_take() {
        let mut ob: Outbox<u64> = Outbox::for_harness(2);
        ob.send(1, 8);
        ob.broadcast(3);
        let drained: Vec<(u32, u64)> = ob.drain_sends().collect();
        assert_eq!(drained, vec![(1, 8), (0, 3), (1, 3)]);
        assert_eq!(ob.queued(), 0);
        ob.send(0, 1);
        assert_eq!(ob.take_sends(), vec![(0, 1)]);
        assert_eq!(ob.queued(), 0);
    }

    #[test]
    fn broadcast_to_degree_zero_is_a_no_op() {
        let mut ob: Outbox<u64> = Outbox::for_harness(0);
        assert_eq!(ob.broadcast(9), None);
        assert_eq!(ob.queued(), 0);
        assert!(ob.take_sends().is_empty());
    }

    #[test]
    fn inbox_buf_views_deliveries_in_order() {
        let mut buf: InboxBuf<u64> = InboxBuf::new();
        assert!(buf.view().is_empty());
        buf.push(2, 20);
        buf.push(0, 10);
        let view = buf.view();
        assert_eq!(view.len(), 2);
        let got: Vec<(u32, u64)> = view.iter().map(|inc| (inc.port, *inc.msg)).collect();
        assert_eq!(got, vec![(2, 20), (0, 10)]);
        // The view is Copy and re-iterable.
        assert_eq!(view.iter().len(), 2);
        assert_eq!(view.get(1).map(|inc| *inc.msg), Some(10));
        assert_eq!(view.get(2).map(|inc| *inc.msg), None);
        buf.clear();
        assert!(buf.is_empty());
        assert!(Inbox::<u64>::empty().is_empty());
    }
}
