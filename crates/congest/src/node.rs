//! Node-side programming interface: what a CONGEST node sees and does.
//!
//! A protocol is a [`Program`] instantiated once per node. Each round the
//! engine hands every active program the messages received on its ports
//! during the previous round and collects the messages it wants to send.
//! Programs are plain state machines; all randomness must come from the
//! RNG handed to the factory so runs are reproducible.

use crate::graph::{NodeId, NodeIndex};
use crate::message::WireMessage;

/// Immutable per-node view of the network, as permitted by the CONGEST
/// model: own identity, neighbor identities (learnable in one round, so we
/// provide them upfront), and the global scalars `n` and `m`.
///
/// Exposing `n` and `m` is the standard "nodes know the graph size"
/// assumption; the paper's Phase 1 draws ranks from `[1, m²]`, and any
/// polynomial upper bound suffices for its analysis.
#[derive(Clone, Debug)]
pub struct NodeInit {
    /// Dense index of this node (simulator-internal; programs should key
    /// protocol logic on `id`, not `index`).
    pub index: NodeIndex,
    /// Identity of this node.
    pub id: NodeId,
    /// Identities of neighbors, indexed by local port.
    pub neighbor_ids: Vec<NodeId>,
    /// Total number of nodes.
    pub n: usize,
    /// Total number of edges.
    pub m: usize,
}

impl NodeInit {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }

    /// Local port towards the neighbor with identity `id`, if adjacent.
    pub fn port_of_neighbor(&self, id: NodeId) -> Option<u32> {
        self.neighbor_ids.iter().position(|&x| x == id).map(|p| p as u32)
    }
}

/// A message delivered to a node, labeled with the local port it arrived on.
#[derive(Clone, Debug)]
pub struct Incoming<M> {
    /// Receiver-side port the message arrived on.
    pub port: u32,
    /// Payload.
    pub msg: M,
}

/// Messages queued for sending in the current round.
#[derive(Debug)]
pub struct Outbox<M> {
    pub(crate) sends: Vec<(u32, M)>,
    degree: u32,
}

impl<M: Clone> Outbox<M> {
    pub(crate) fn new(degree: u32) -> Self {
        Outbox { sends: Vec::new(), degree }
    }

    /// Sends `msg` on local port `port`.
    ///
    /// # Panics
    /// Panics if `port` is out of range — that is a protocol bug, not a
    /// runtime condition.
    pub fn send(&mut self, port: u32, msg: M) {
        assert!(port < self.degree, "send on port {port} of node with degree {}", self.degree);
        self.sends.push((port, msg));
    }

    /// Sends a clone of `msg` on every port.
    pub fn broadcast(&mut self, msg: &M) {
        for p in 0..self.degree {
            self.sends.push((p, msg.clone()));
        }
    }

    /// Number of messages queued so far this round.
    pub fn queued(&self) -> usize {
        self.sends.len()
    }

    /// Number of ports available (the node's degree).
    pub fn degree(&self) -> u32 {
        self.degree
    }
}

/// Whether a node keeps participating after the current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Keep stepping this node.
    Running,
    /// The node has produced its verdict and sends/receives nothing more.
    Halted,
}

/// A per-node protocol state machine.
///
/// `step` is called once per round with the inbox of the *previous* round
/// (empty at round 0) and must queue this round's sends into `out`. The
/// engine stops when every node has halted or the round cap is hit.
pub trait Program: Send {
    /// Message type exchanged over edges.
    type Msg: WireMessage;
    /// Final output of a node (e.g. accept/reject).
    type Verdict: Send + Clone + 'static;

    /// Executes one synchronous round.
    fn step(&mut self, round: u32, inbox: &[Incoming<Self::Msg>], out: &mut Outbox<Self::Msg>) -> Status;

    /// The node's output; meaningful once the node has halted, but callable
    /// at any time (the engine collects verdicts at run end).
    fn verdict(&self) -> Self::Verdict;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_send_and_broadcast() {
        let mut ob: Outbox<u64> = Outbox::new(3);
        ob.send(0, 42);
        ob.broadcast(&7);
        assert_eq!(ob.queued(), 4);
        assert_eq!(ob.sends, vec![(0, 42), (0, 7), (1, 7), (2, 7)]);
    }

    #[test]
    #[should_panic(expected = "send on port 3")]
    fn outbox_rejects_bad_port() {
        let mut ob: Outbox<u64> = Outbox::new(3);
        ob.send(3, 1);
    }

    #[test]
    fn node_init_port_lookup() {
        let init = NodeInit { index: 0, id: 5, neighbor_ids: vec![9, 2, 7], n: 4, m: 3 };
        assert_eq!(init.degree(), 3);
        assert_eq!(init.port_of_neighbor(2), Some(1));
        assert_eq!(init.port_of_neighbor(5), None);
    }
}
