//! Classic CONGEST protocols.
//!
//! Reusable building blocks (and engine stress-tests): min-ID leader
//! election by flooding, BFS tree construction from a root, and 1-hop
//! neighborhood collection. They double as reference workloads for the
//! engine benchmarks and as executable documentation of the programming
//! model.

use crate::engine::{EngineConfig, EngineError, RunOutcome};
use crate::graph::{Graph, NodeId, NodeIndex};
use crate::node::{Inbox, Outbox, Program, Status};
use crate::session::Session;

/// Leader election by min-ID flooding: after `ttl` rounds every node
/// outputs the smallest ID within distance `ttl`; with `ttl ≥ diameter`,
/// the global minimum.
pub struct MinIdFlood {
    best: NodeId,
    ttl: u32,
    changed: bool,
}

impl MinIdFlood {
    pub fn new(own_id: NodeId, ttl: u32) -> Self {
        MinIdFlood { best: own_id, ttl, changed: false }
    }
}

impl Program for MinIdFlood {
    type Msg = NodeId;
    type Verdict = NodeId;

    fn step(&mut self, round: u32, inbox: Inbox<'_, NodeId>, out: &mut Outbox<NodeId>) -> Status {
        for inc in inbox.iter() {
            if *inc.msg < self.best {
                self.best = *inc.msg;
                self.changed = true;
            }
        }
        if round >= self.ttl {
            return Status::Halted;
        }
        if round == 0 || self.changed {
            out.broadcast(self.best);
            self.changed = false;
        }
        Status::Running
    }

    fn verdict(&self) -> NodeId {
        self.best
    }
}

/// Elects the minimum ID (requires a connected graph); returns the
/// elected ID and the run report.
pub fn elect_min_id(
    g: &Graph,
    config: &EngineConfig,
) -> Result<(NodeId, RunOutcome<NodeId>), EngineError> {
    let ttl = g.n() as u32; // ≥ diameter
    let outcome = Session::builder(g)
        .config(config.clone())
        .build()
        .run(|init| MinIdFlood::new(init.id, ttl))?;
    // ck-lint: allow(index-literal, reason = "Graph construction rejects n == 0, so node 0 always has a verdict")
    let leader = outcome.verdicts[0];
    Ok((leader, outcome))
}

/// Per-node result of BFS tree construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsVerdict {
    /// Hop distance from the root (`u32::MAX` if unreached).
    pub dist: u32,
    /// Parent's ID on the tree (None at the root / unreached nodes).
    pub parent: Option<NodeId>,
}

/// BFS tree layer-by-layer from a designated root ID.
pub struct BfsTree {
    root: NodeId,
    dist: u32,
    parent: Option<NodeId>,
    announced: bool,
    max_rounds: u32,
}

impl BfsTree {
    pub fn new(own_id: NodeId, root: NodeId, max_rounds: u32) -> Self {
        let at_root = own_id == root;
        BfsTree {
            root,
            dist: if at_root { 0 } else { u32::MAX },
            parent: None,
            announced: false,
            max_rounds,
        }
    }
}

impl Program for BfsTree {
    /// Message: the sender's distance (the receiver derives its own).
    type Msg = u64;
    type Verdict = BfsVerdict;

    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        let _ = self.root;
        for inc in inbox.iter() {
            let d = *inc.msg as u32 + 1;
            if d < self.dist {
                self.dist = d;
                // Port → sender ID is resolved by the harness; stash the
                // port in parent via the verdict collection below. We use
                // the message itself: sender distance; parent ID is
                // attached by `build_bfs_tree` after the run using ports.
                self.parent = Some(inc.port as u64);
            }
        }
        if self.dist != u32::MAX && !self.announced {
            out.broadcast(u64::from(self.dist));
            self.announced = true;
        }
        if round >= self.max_rounds {
            Status::Halted
        } else {
            Status::Running
        }
    }

    fn verdict(&self) -> BfsVerdict {
        BfsVerdict { dist: self.dist, parent: self.parent }
    }
}

/// Builds a BFS tree from `root` (a node index); returns per-node
/// verdicts with parent *IDs* resolved, matching `Graph::bfs_distances`.
pub fn build_bfs_tree(
    g: &Graph,
    root: NodeIndex,
    config: &EngineConfig,
) -> Result<Vec<BfsVerdict>, EngineError> {
    let root_id = g.id(root);
    let mut cfg = config.clone();
    cfg.max_rounds = g.n() as u32 + 1;
    let outcome = Session::builder(g)
        .config(cfg)
        .build()
        .run(|init| BfsTree::new(init.id, root_id, g.n() as u32))?;
    // Resolve the stored parent *port* into the neighbor's ID.
    let resolved = outcome
        .verdicts
        .iter()
        .enumerate()
        .map(|(v, bv)| BfsVerdict {
            dist: bv.dist,
            parent: bv.parent.map(|port| g.id(g.neighbor_at(v as NodeIndex, port as u32))),
        })
        .collect();
    Ok(resolved)
}

/// One-round neighborhood collection: every node learns its neighbors'
/// IDs (demonstrates why the engine may hand `neighbor_ids` to programs
/// upfront — it costs exactly one round).
pub struct CollectNeighbors {
    myid: NodeId,
    seen: Vec<NodeId>,
}

impl CollectNeighbors {
    pub fn new(own_id: NodeId) -> Self {
        CollectNeighbors { myid: own_id, seen: Vec::new() }
    }
}

impl Program for CollectNeighbors {
    type Msg = NodeId;
    type Verdict = Vec<NodeId>;

    fn step(&mut self, round: u32, inbox: Inbox<'_, NodeId>, out: &mut Outbox<NodeId>) -> Status {
        if round == 0 {
            out.broadcast(self.myid);
            return Status::Running;
        }
        self.seen = inbox.iter().map(|i| *i.msg).collect();
        self.seen.sort_unstable();
        Status::Halted
    }

    fn verdict(&self) -> Vec<NodeId> {
        self.seen.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n as NodeIndex {
            b.edge(i, ((i as usize + 1) % n) as NodeIndex);
        }
        b.build().unwrap()
    }

    #[test]
    fn elects_global_minimum() {
        let g = ring(12).with_ids((0..12).map(|i| 100 - 3 * i as u64).collect()).unwrap();
        let (leader, out) = elect_min_id(&g, &EngineConfig::default()).unwrap();
        assert_eq!(leader, *g.ids().iter().min().unwrap());
        assert!(out.verdicts.iter().all(|&v| v == leader));
    }

    #[test]
    fn bfs_tree_matches_sequential_bfs() {
        let mut b = GraphBuilder::new(8);
        b.edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (4, 6), (6, 7)]);
        let g = b.build().unwrap();
        let verdicts = build_bfs_tree(&g, 0, &EngineConfig::default()).unwrap();
        let dist = g.bfs_distances(0);
        for (v, bv) in verdicts.iter().enumerate() {
            assert_eq!(bv.dist, dist[v], "node {v}");
            if v == 0 {
                assert_eq!(bv.parent, None);
            } else {
                // Parent is a neighbor one hop closer to the root.
                let p = g.index_of(bv.parent.expect("reached")).unwrap();
                assert!(g.has_edge(v as NodeIndex, p));
                assert_eq!(dist[p as usize] + 1, dist[v]);
            }
        }
    }

    #[test]
    fn bfs_on_disconnected_marks_unreached() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build().unwrap();
        let verdicts = build_bfs_tree(&g, 0, &EngineConfig::default()).unwrap();
        assert_eq!(verdicts[1].dist, 1);
        assert_eq!(verdicts[2].dist, u32::MAX);
        assert_eq!(verdicts[3].dist, u32::MAX);
    }

    #[test]
    fn neighborhood_collection_is_exact() {
        let g = ring(6).with_ids(vec![60, 10, 20, 30, 40, 50]).unwrap();
        let out = Session::new(&g).run(|init| CollectNeighbors::new(init.id)).unwrap();
        for v in 0..6u32 {
            let mut expect: Vec<u64> = g.neighbors(v).iter().map(|&w| g.id(w)).collect();
            expect.sort_unstable();
            assert_eq!(out.verdicts[v as usize], expect);
        }
        assert_eq!(out.report.rounds, 2);
    }
}
