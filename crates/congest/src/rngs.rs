//! Deterministic RNG derivation.
//!
//! Every random decision in the repository flows from a single master seed
//! through stable mixing, so any run — tests, experiments, benches — can be
//! replayed exactly. Nodes get statistically independent streams via a
//! splitmix-style finalizer over (seed, label, node, repetition).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// 64-bit avalanche mix (splitmix64 finalizer). Good enough to decorrelate
/// seeds that differ in one coordinate.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines coordinates into one derived seed.
pub fn derive_seed(master: u64, label: u64, node: u64, repetition: u64) -> u64 {
    derive_seed_from_prefix(derive_seed_prefix(master, label, node), repetition)
}

/// The repetition-independent part of [`derive_seed`]: the mixing chain
/// is sequential in (master, label, node, repetition), so a caller that
/// fixes the first three coordinates can hoist this prefix out of its
/// per-repetition loop and finish each seed with
/// [`derive_seed_from_prefix`] — bit-identical to calling
/// [`derive_seed`] fresh every time.
pub fn derive_seed_prefix(master: u64, label: u64, node: u64) -> u64 {
    let a = mix64(master ^ mix64(label));
    mix64(a ^ mix64(node.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Completes a [`derive_seed_prefix`] with the repetition coordinate.
pub fn derive_seed_from_prefix(prefix: u64, repetition: u64) -> u64 {
    mix64(prefix ^ mix64(repetition.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)))
}

/// A deterministic RNG for a (master, label, node, repetition) coordinate.
pub fn derived_rng(master: u64, label: u64, node: u64, repetition: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, label, node, repetition))
}

/// Protocol-label constants (keep distinct across the workspace so two
/// protocols never consume identical streams).
pub mod labels {
    /// Phase-1 edge ranks of the Ck tester.
    pub const CK_RANKS: u64 = 0x0101;
    /// ID assignment during graph generation.
    pub const GRAPH_IDS: u64 = 0x0202;
    /// Graph topology generation.
    pub const GRAPH_TOPOLOGY: u64 = 0x0203;
    /// Baseline triangle tester coins.
    pub const TRIANGLE_COINS: u64 = 0x0301;
    /// Baseline C4 tester coins.
    pub const C4_COINS: u64 = 0x0302;
    /// Naive forwarding sampling decisions.
    pub const NAIVE_SAMPLER: u64 = 0x0303;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn mixing_changes_everything() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn prefix_split_matches_full_derivation() {
        for master in [0u64, 42, u64::MAX] {
            for node in [0u64, 7, 1 << 40] {
                for rep in [0u64, 1, 999] {
                    let prefix = derive_seed_prefix(master, labels::CK_RANKS, node);
                    assert_eq!(
                        derive_seed_from_prefix(prefix, rep),
                        derive_seed(master, labels::CK_RANKS, node, rep),
                    );
                }
            }
        }
    }

    #[test]
    fn derived_seeds_differ_per_coordinate() {
        let base = derive_seed(42, 1, 7, 0);
        assert_ne!(base, derive_seed(43, 1, 7, 0));
        assert_ne!(base, derive_seed(42, 2, 7, 0));
        assert_ne!(base, derive_seed(42, 1, 8, 0));
        assert_ne!(base, derive_seed(42, 1, 7, 1));
    }

    #[test]
    fn derived_rng_is_reproducible() {
        let mut a = derived_rng(9, 9, 9, 9);
        let mut b = derived_rng(9, 9, 9, 9);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn streams_look_independent() {
        // Crude decorrelation check: first draws of adjacent node streams
        // should not be identical or trivially shifted.
        let firsts: Vec<u64> =
            (0..64).map(|v| derived_rng(1, labels::CK_RANKS, v, 0).random()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len(), "collision in first draws");
    }
}
