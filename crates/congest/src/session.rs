//! The composable entry point over the round engine: build a
//! [`Session`] once, run programs through it repeatedly.
//!
//! Four PRs of engine work grew three free-function entry points
//! (`run`, `run_with_params`, `run_with_workspace`) whose signatures
//! widened with every capability — explicit [`WireParams`] pinning,
//! caller-threaded [`EngineWorkspace`]s, reclaim hooks. A `Session`
//! folds them into one builder: graph + [`EngineConfig`] + optional
//! pinned wire parameters, with the workspace owned *inside* the
//! session so the fast path (arena/load-table/slot-array reuse across
//! runs) is the default rather than an expert opt-in. Repeated
//! [`Session::run`] calls on the same session allocate nothing once
//! the first run has warmed the arenas.
//!
//! Outputs are bit-identical to the legacy entry points by the engine's
//! workspace-reset contract (a reset workspace is observationally a
//! fresh one) — property-tested in `tests/session_parity.rs`.

use crate::engine::{
    exec_with_workspace, BandwidthPolicy, EngineConfig, EngineError, EngineWorkspace, Executor,
    RunOutcome, SlotStats,
};
use crate::fault::FaultPlan;
use crate::graph::Graph;
use crate::message::{WireMessage, WireParams};
use crate::node::{NodeInit, Program};

/// Builder for a [`Session`]: the graph is mandatory, everything else
/// defaults ([`EngineConfig::default`], wire parameters derived from
/// the graph).
pub struct SessionBuilder<'g, M: WireMessage> {
    graph: &'g Graph,
    config: EngineConfig,
    params: Option<WireParams>,
    _msg: std::marker::PhantomData<fn() -> M>,
}

impl<'g, M: WireMessage> SessionBuilder<'g, M> {
    fn new(graph: &'g Graph) -> Self {
        SessionBuilder {
            graph,
            config: EngineConfig::default(),
            params: None,
            _msg: std::marker::PhantomData,
        }
    }

    /// Replaces the whole engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the executor ([`Executor::Parallel`] by default).
    pub fn executor(mut self, executor: Executor) -> Self {
        self.config.executor = executor;
        self
    }

    /// Sets the bandwidth policy (measure-only by default).
    pub fn bandwidth(mut self, bandwidth: BandwidthPolicy) -> Self {
        self.config.bandwidth = bandwidth;
        self
    }

    /// Caps the number of executed rounds.
    pub fn max_rounds(mut self, max_rounds: u32) -> Self {
        self.config.max_rounds = max_rounds;
        self
    }

    /// Enables/disables per-round statistics recording.
    pub fn record_rounds(mut self, record: bool) -> Self {
        self.config.record_rounds = record;
        self
    }

    /// Installs a deterministic message-loss plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Pins explicit wire parameters (for harnesses comparing
    /// differently-labeled graphs under one `id_bits`/`rank_bits`
    /// accounting); by default they are derived from the graph.
    pub fn wire_params(mut self, params: WireParams) -> Self {
        self.params = Some(params);
        self
    }

    /// Finishes the builder. Infallible: every field has a valid
    /// default, and wire parameters are derived from the graph when not
    /// pinned.
    pub fn build(self) -> Session<'g, M> {
        let params = self.params.unwrap_or_else(|| WireParams::for_graph(self.graph));
        Session { graph: self.graph, config: self.config, params, ws: EngineWorkspace::new() }
    }
}

/// A reusable execution context for one graph: engine configuration,
/// wire parameters, and an internally owned [`EngineWorkspace`] that is
/// recycled (arenas, wire-load table, slot array) on every run.
///
/// # Examples
///
/// ```
/// use ck_congest::graph::GraphBuilder;
/// use ck_congest::node::{Inbox, Outbox, Program, Status};
/// use ck_congest::session::Session;
///
/// /// Each node learns the maximum identity in its neighborhood.
/// struct MaxOfNeighborhood { best: u64, sent: bool }
///
/// impl Program for MaxOfNeighborhood {
///     type Msg = u64;
///     type Verdict = u64;
///     fn step(&mut self, _round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
///         for inc in inbox.iter() { self.best = self.best.max(*inc.msg); }
///         if !self.sent {
///             out.broadcast(self.best);
///             self.sent = true;
///             Status::Running
///         } else {
///             Status::Halted
///         }
///     }
///     fn verdict(&self) -> u64 { self.best }
/// }
///
/// let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build().unwrap();
/// let mut session = Session::new(&g);
/// // Repeated runs recycle the session's arenas automatically.
/// for _ in 0..3 {
///     let out = session
///         .run(|init| MaxOfNeighborhood { best: init.id, sent: false })
///         .unwrap();
///     assert_eq!(out.verdicts, vec![1, 2, 2]);
/// }
/// ```
pub struct Session<'g, M: WireMessage> {
    graph: &'g Graph,
    config: EngineConfig,
    params: WireParams,
    ws: EngineWorkspace<M>,
}

impl<'g, M: WireMessage> Session<'g, M> {
    /// A session with the default [`EngineConfig`].
    pub fn new(graph: &'g Graph) -> Self {
        Session::builder(graph).build()
    }

    /// Starts a builder for `graph`.
    pub fn builder(graph: &'g Graph) -> SessionBuilder<'g, M> {
        SessionBuilder::new(graph)
    }

    /// The session's graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The engine configuration every run uses.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to adjust the round
    /// cap between runs); takes effect on the next run.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The wire parameters every run accounts under.
    pub fn params(&self) -> &WireParams {
        &self.params
    }

    /// Slot-array reuse counters of the owned workspace (after the
    /// first run of a program type, further runs allocate no slot
    /// array).
    pub fn slot_stats(&self) -> SlotStats {
        self.ws.slot_stats()
    }

    /// Runs `factory`-instantiated programs until every node halts or
    /// the configured round cap is reached, recycling the session's
    /// workspace.
    pub fn run<P, F>(&mut self, mut factory: F) -> Result<RunOutcome<P::Verdict>, EngineError>
    where
        P: Program<Msg = M>,
        F: FnMut(NodeInit<'g>) -> P,
    {
        exec_with_workspace(
            self.graph,
            &self.config,
            &self.params,
            &mut self.ws,
            &mut factory,
            |_| {},
        )
    }

    /// As [`Session::run`], writing the result into a caller-owned
    /// [`RunOutcome`] (reset first, allocations kept) instead of
    /// returning a fresh one. Rotating one outcome buffer through
    /// repeated runs makes the warm rerun *fully* allocation-free under
    /// the sequential executor — the claim the `ck_lint::alloc_gate`
    /// regression tests turn into a CI gate. On error the outcome's
    /// contents are unspecified.
    pub fn run_into<P, F>(
        &mut self,
        mut factory: F,
        out: &mut RunOutcome<P::Verdict>,
    ) -> Result<(), EngineError>
    where
        P: Program<Msg = M>,
        F: FnMut(NodeInit<'g>) -> P,
    {
        self.ws.run_on_into(self.graph, &self.config, &self.params, &mut factory, |_| {}, out)
    }

    /// As [`Session::run`], handing every node program to `reclaim`
    /// after its verdict has been collected (in node-index order) —
    /// protocols with recyclable per-node scratch harvest it here so
    /// the next run starts warm.
    pub fn run_reclaiming<P, F, R>(
        &mut self,
        mut factory: F,
        reclaim: R,
    ) -> Result<RunOutcome<P::Verdict>, EngineError>
    where
        P: Program<Msg = M>,
        F: FnMut(NodeInit<'g>) -> P,
        R: FnMut(P),
    {
        exec_with_workspace(
            self.graph,
            &self.config,
            &self.params,
            &mut self.ws,
            &mut factory,
            reclaim,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::node::{Inbox, Outbox, Status};

    struct Echo {
        rounds: u32,
        received: u64,
    }

    impl Program for Echo {
        type Msg = u64;
        type Verdict = u64;
        fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
            self.received += inbox.len() as u64;
            if round >= self.rounds {
                return Status::Halted;
            }
            out.broadcast(u64::from(round));
            Status::Running
        }
        fn verdict(&self) -> u64 {
            self.received
        }
    }

    fn path(n: usize) -> Graph {
        GraphBuilder::new(n).edges((0..n as u32 - 1).map(|i| (i, i + 1))).build().unwrap()
    }

    #[test]
    fn session_reuse_is_deterministic_and_slot_warm() {
        let g = path(20);
        let mut session: Session<'_, u64> =
            Session::builder(&g).executor(Executor::Sequential).record_rounds(true).build();
        let first = session.run(|_| Echo { rounds: 4, received: 0 }).unwrap();
        for _ in 0..4 {
            let again = session.run(|_| Echo { rounds: 4, received: 0 }).unwrap();
            assert_eq!(first.verdicts, again.verdicts);
            assert_eq!(first.report.per_round, again.report.per_round);
        }
        let stats = session.slot_stats();
        assert_eq!(stats.takes, 5);
        assert_eq!(stats.misses, 1, "only the cold first run may allocate the slot array");
    }

    #[test]
    fn pinned_wire_params_change_accounting_only() {
        let g = path(4);
        let derived = WireParams::for_graph(&g);
        let fat = WireParams { id_bits: derived.id_bits + 7, ..derived };
        let mut a: Session<'_, u64> = Session::new(&g);
        let mut b: Session<'_, u64> = Session::builder(&g).wire_params(fat).build();
        assert_eq!(a.params(), &derived);
        assert_eq!(b.params(), &fat);
        let ra = a.run(|_| Echo { rounds: 2, received: 0 }).unwrap();
        let rb = b.run(|_| Echo { rounds: 2, received: 0 }).unwrap();
        assert_eq!(ra.verdicts, rb.verdicts);
        assert_eq!(ra.report.total_messages(), rb.report.total_messages());
        assert!(rb.report.total_bits() > ra.report.total_bits(), "fatter ids cost more bits");
    }

    #[test]
    fn run_reclaiming_hands_back_every_program() {
        let g = path(7);
        let mut session: Session<'_, u64> = Session::new(&g);
        let mut reclaimed = 0usize;
        session
            .run_reclaiming(|_| Echo { rounds: 1, received: 0 }, |_prog| reclaimed += 1)
            .unwrap();
        assert_eq!(reclaimed, 7);
    }

    #[test]
    fn slot_store_misses_on_program_type_change() {
        let g = path(6);
        let mut session: Session<'_, u64> = Session::new(&g);
        session.run(|_| Echo { rounds: 1, received: 0 }).unwrap();
        session.run(|_| Echo { rounds: 1, received: 0 }).unwrap();
        assert_eq!(session.slot_stats().misses, 1);

        // A differently laid-out program cannot reuse the parked array.
        struct Fat {
            pad: [u64; 4],
        }
        impl Program for Fat {
            type Msg = u64;
            type Verdict = u64;
            fn step(&mut self, _r: u32, _i: Inbox<'_, u64>, _o: &mut Outbox<u64>) -> Status {
                Status::Halted
            }
            fn verdict(&self) -> u64 {
                self.pad[0]
            }
        }
        session.run(|_| Fat { pad: [0; 4] }).unwrap();
        assert_eq!(session.slot_stats().misses, 2);
        // …and switching back misses again (the store keeps one buffer).
        session.run(|_| Echo { rounds: 1, received: 0 }).unwrap();
        assert_eq!(session.slot_stats().misses, 3);
    }
}
