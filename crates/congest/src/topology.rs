//! Structural graph analysis beyond the basics in [`crate::graph`].
//!
//! Workload characterization for the experiment harness: bipartiteness
//! (decides odd-cycle-freeness wholesale), bridges and articulation
//! points (edges/nodes on no cycle at all), k-core decomposition, triangle
//! counts and clustering coefficients. Everything is exact and intended
//! for harness-scale graphs.

use crate::graph::{Edge, Graph, NodeIndex};

/// Two-coloring if the graph is bipartite (`None` otherwise). A bipartite
/// graph contains no odd cycle, hence is `Ck`-free for every odd `k`.
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let n = g.n();
    let mut color = vec![None; n];
    for s in 0..n {
        if color[s].is_some() {
            continue;
        }
        color[s] = Some(false);
        let mut queue = std::collections::VecDeque::from([s as NodeIndex]);
        while let Some(v) = queue.pop_front() {
            // ck-lint: allow(no-panic, reason = "every node is colored before it is enqueued, and v came off the queue")
            let cv = color[v as usize].unwrap();
            for &w in g.neighbors(v) {
                match color[w as usize] {
                    None => {
                        color[w as usize] = Some(!cv);
                        queue.push_back(w);
                    }
                    Some(cw) if cw == cv => return None,
                    _ => {}
                }
            }
        }
    }
    // ck-lint: allow(no-panic, reason = "the outer loop seeded a BFS from every uncolored node, so all components are fully colored here")
    Some(color.into_iter().map(|c| c.unwrap()).collect())
}

/// True if the graph is bipartite.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Bridges (cut edges): edges on **no** cycle. A `Ck` can never pass
/// through a bridge, so the Phase-2 check for a bridge edge is vacuous —
/// useful for workload sanity checks. Iterative Tarjan low-link.
pub fn bridges(g: &Graph) -> Vec<Edge> {
    let n = g.n();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut out = Vec::new();
    // Iterative DFS frame: (node, parent-edge slot index into adjacency,
    // next child port to explore).
    for s in 0..n as NodeIndex {
        if disc[s as usize] != u32::MAX {
            continue;
        }
        let mut stack: Vec<(NodeIndex, Option<u32>, u32)> = vec![(s, None, 0)];
        disc[s as usize] = timer;
        low[s as usize] = timer;
        timer += 1;
        while let Some(&mut (v, pe, ref mut port)) = stack.last_mut() {
            if (*port as usize) < g.degree(v) {
                let p = *port;
                *port += 1;
                let eidx = g.edge_index_at(v, p);
                if Some(eidx) == pe {
                    continue; // don't walk back the tree edge itself
                }
                let w = g.neighbor_at(v, p);
                if disc[w as usize] == u32::MAX {
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, Some(eidx), 0));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&mut (parent, _, _)) = stack.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    if low[v as usize] > disc[parent as usize] {
                        out.push(Edge::new(parent, v));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Articulation points (cut vertices), iterative low-link.
pub fn articulation_points(g: &Graph) -> Vec<NodeIndex> {
    let n = g.n();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut is_cut = vec![false; n];
    for s in 0..n as NodeIndex {
        if disc[s as usize] != u32::MAX {
            continue;
        }
        let mut root_children = 0u32;
        let mut stack: Vec<(NodeIndex, Option<u32>, u32)> = vec![(s, None, 0)];
        disc[s as usize] = timer;
        low[s as usize] = timer;
        timer += 1;
        while let Some(&mut (v, pe, ref mut port)) = stack.last_mut() {
            if (*port as usize) < g.degree(v) {
                let p = *port;
                *port += 1;
                let eidx = g.edge_index_at(v, p);
                if Some(eidx) == pe {
                    continue;
                }
                let w = g.neighbor_at(v, p);
                if disc[w as usize] == u32::MAX {
                    if v == s {
                        root_children += 1;
                    }
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, Some(eidx), 0));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&mut (parent, _, _)) = stack.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    if parent != s && low[v as usize] >= disc[parent as usize] {
                        is_cut[parent as usize] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[s as usize] = true;
        }
    }
    (0..n as NodeIndex).filter(|&v| is_cut[v as usize]).collect()
}

/// Exact triangle count (each counted once) via ordered neighbor
/// intersection.
pub fn triangle_count(g: &Graph) -> u64 {
    let mut total = 0u64;
    for e in g.edges() {
        let (a, b) = (e.a, e.b);
        // Count common neighbors above max(a, b) to count each triangle
        // at its lexicographically smallest edge exactly once… simpler:
        // count all common neighbors and divide by 3 at the end. Here:
        // common neighbors c with c > b (so each triangle is counted at
        // its lowest two vertices).
        let (mut i, mut j) = (0usize, 0usize);
        let na = g.neighbors(a);
        let nb = g.neighbors(b);
        while i < na.len() && j < nb.len() {
            match na[i].cmp(&nb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if na[i] > b {
                        total += 1;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    total
}

/// Global clustering coefficient: `3·triangles / wedges` (0 for graphs
/// without wedges).
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let wedges: u64 = (0..g.n())
        .map(|v| {
            let d = g.degree(v as NodeIndex) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangle_count(g) as f64 / wedges as f64
    }
}

/// k-core numbers: the largest `k` such that the node survives in the
/// subgraph of minimum degree `k`. Peeling in O(m).
pub fn core_numbers(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(v as NodeIndex) as u32).collect();
    let mut order: Vec<NodeIndex> = (0..n as NodeIndex).collect();
    order.sort_unstable_by_key(|&v| degree[v as usize]);
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    // Simple peel with a re-sorted bucket queue substitute (harness-scale).
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, NodeIndex)>> =
        order.iter().map(|&v| std::cmp::Reverse((degree[v as usize], v))).collect();
    let mut current = 0u32;
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if removed[v as usize] || d != degree[v as usize] {
            continue; // stale entry
        }
        removed[v as usize] = true;
        current = current.max(d);
        core[v as usize] = current;
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
                heap.push(std::cmp::Reverse((degree[w as usize], w)));
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn g(edges: &[(NodeIndex, NodeIndex)], n: usize) -> Graph {
        GraphBuilder::new(n).edges(edges.iter().copied()).build().unwrap()
    }

    #[test]
    fn bipartite_detection() {
        let even = g(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4); // C4
        assert!(is_bipartite(&even));
        let odd = g(&[(0, 1), (1, 2), (2, 0)], 3); // C3
        assert!(!is_bipartite(&odd));
        let coloring = bipartition(&even).unwrap();
        for e in even.edges() {
            assert_ne!(coloring[e.a as usize], coloring[e.b as usize]);
        }
    }

    #[test]
    fn bridges_of_a_barbell() {
        // Two triangles joined by a bridge 2-3.
        let gr = g(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)], 6);
        assert_eq!(bridges(&gr), vec![Edge::new(2, 3)]);
        assert_eq!(articulation_points(&gr), vec![2, 3]);
    }

    #[test]
    fn tree_is_all_bridges() {
        let t = g(&[(0, 1), (1, 2), (1, 3), (3, 4)], 5);
        assert_eq!(bridges(&t).len(), 4);
        let cuts = articulation_points(&t);
        assert_eq!(cuts, vec![1, 3]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let c = g(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 5);
        assert!(bridges(&c).is_empty());
        assert!(articulation_points(&c).is_empty());
    }

    #[test]
    fn triangle_counts() {
        // K4 has 4 triangles.
        let k4 = g(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4);
        assert_eq!(triangle_count(&k4), 4);
        let c5 = g(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 5);
        assert_eq!(triangle_count(&c5), 0);
        // Clustering of K4 is 1.
        assert!((clustering_coefficient(&k4) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&c5), 0.0);
    }

    #[test]
    fn core_numbers_of_lollipop() {
        // Triangle 0-1-2 with tail 2-3-4: triangle is 2-core, tail 1-core.
        let gr = g(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)], 5);
        let core = core_numbers(&gr);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
    }

    #[test]
    fn core_numbers_of_clique() {
        let k5 = {
            let mut b = GraphBuilder::new(5);
            for i in 0..5u32 {
                for j in i + 1..5 {
                    b.edge(i, j);
                }
            }
            b.build().unwrap()
        };
        assert!(core_numbers(&k5).iter().all(|&c| c == 4));
    }

    #[test]
    fn empty_and_single() {
        let empty = GraphBuilder::new(0).build().unwrap();
        assert!(is_bipartite(&empty));
        assert!(bridges(&empty).is_empty());
        assert_eq!(triangle_count(&empty), 0);
        let single = GraphBuilder::new(1).build().unwrap();
        assert_eq!(core_numbers(&single), vec![0]);
    }
}
