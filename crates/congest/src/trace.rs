//! Execution tracing: per-round message logs for debugging protocols.
//!
//! The engine itself stays trace-free (hot path); tracing wraps a
//! [`Program`] in a [`Traced`] decorator that records what the node saw
//! and sent each round into a shared, lock-protected [`TraceLog`]. The
//! log renders to a deterministic, line-oriented transcript — the format
//! the round-by-round examples print and snapshot tests can assert on.

use std::sync::{Arc, Mutex};

use crate::graph::NodeIndex;
use crate::node::{Inbox, Outbox, Program, Status};

/// One logged event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A node received a message on a port (rendered via `Debug`).
    Recv { round: u32, node: NodeIndex, port: u32, what: String },
    /// A node sent a message on a port.
    Send { round: u32, node: NodeIndex, port: u32, what: String },
    /// A node halted.
    Halt { round: u32, node: NodeIndex },
}

/// Shared, thread-safe event log (the engine steps nodes in parallel).
#[derive(Clone, Default)]
pub struct TraceLog {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    // The log is diagnostics: a writer that panicked mid-push leaves a
    // structurally intact Vec, so poisoning is recovered rather than
    // propagated (a trace must never take down the run it observes).
    fn push(&self, e: TraceEvent) {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).push(e);
    }

    /// Snapshot of the events, sorted canonically (round, node, send
    /// after recv) so parallel execution yields a deterministic
    /// transcript.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut ev = self.events.lock().unwrap_or_else(|p| p.into_inner()).clone();
        ev.sort_by_key(|e| match e {
            TraceEvent::Recv { round, node, port, .. } => (*round, *node, 0u8, *port),
            TraceEvent::Send { round, node, port, .. } => (*round, *node, 1, *port),
            TraceEvent::Halt { round, node } => (*round, *node, 2, 0),
        });
        ev
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the transcript, one event per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.events() {
            match e {
                TraceEvent::Recv { round, node, port, what } => {
                    let _ = writeln!(out, "r{round} n{node} <- p{port}: {what}");
                }
                TraceEvent::Send { round, node, port, what } => {
                    let _ = writeln!(out, "r{round} n{node} -> p{port}: {what}");
                }
                TraceEvent::Halt { round, node } => {
                    let _ = writeln!(out, "r{round} n{node} HALT");
                }
            }
        }
        out
    }
}

/// Decorator recording a program's traffic into a [`TraceLog`].
pub struct Traced<P> {
    inner: P,
    node: NodeIndex,
    log: TraceLog,
}

impl<P> Traced<P> {
    /// Wraps `inner`, tagging events with `node`.
    pub fn new(inner: P, node: NodeIndex, log: TraceLog) -> Self {
        Traced { inner, node, log }
    }
}

impl<P: Program> Program for Traced<P>
where
    P::Msg: std::fmt::Debug,
{
    type Msg = P::Msg;
    type Verdict = P::Verdict;

    fn step(
        &mut self,
        round: u32,
        inbox: Inbox<'_, Self::Msg>,
        out: &mut Outbox<Self::Msg>,
    ) -> Status {
        for inc in inbox.iter() {
            self.log.push(TraceEvent::Recv {
                round,
                node: self.node,
                port: inc.port,
                what: format!("{:?}", inc.msg),
            });
        }
        // Step into a buffered side outbox, then replay into the real
        // one: works with any engine backend (the arena engine's outbox
        // writes straight into message lanes and keeps no queue to
        // inspect). Tracing is explicitly not a hot path.
        let mut buffered = Outbox::for_harness(out.degree());
        let status = self.inner.step(round, inbox, &mut buffered);
        for (port, msg) in buffered.drain_sends() {
            self.log.push(TraceEvent::Send {
                round,
                node: self.node,
                port,
                what: format!("{msg:?}"),
            });
            out.send(port, msg);
        }
        if status == Status::Halted {
            self.log.push(TraceEvent::Halt { round, node: self.node });
        }
        status
    }

    fn verdict(&self) -> Self::Verdict {
        self.inner.verdict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, Executor};
    use crate::graph::GraphBuilder;
    use crate::protocols::MinIdFlood;
    use crate::session::Session;

    fn traced_run(exec: Executor) -> TraceLog {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).ids(vec![30, 10, 20]).build().unwrap();
        let log = TraceLog::new();
        let cfg = EngineConfig { executor: exec, ..EngineConfig::default() };
        let log2 = log.clone();
        Session::builder(&g)
            .config(cfg)
            .build()
            .run(move |init| Traced::new(MinIdFlood::new(init.id, 3), init.index, log2.clone()))
            .unwrap();
        log
    }

    #[test]
    fn transcript_is_deterministic_across_executors() {
        let a = traced_run(Executor::Sequential);
        let b = traced_run(Executor::Parallel);
        assert_eq!(a.render(), b.render());
        assert!(!a.is_empty());
    }

    #[test]
    fn transcript_contains_the_flood() {
        let log = traced_run(Executor::Sequential);
        let text = log.render();
        // Node 1 (ID 10) broadcasts 10 at round 0 on both ports.
        assert!(text.contains("r0 n1 -> p0: 10"), "transcript:\n{text}");
        assert!(text.contains("r0 n1 -> p1: 10"));
        // Everyone eventually halts.
        for n in 0..3 {
            assert!(text.contains(&format!("n{n} HALT")));
        }
    }

    #[test]
    fn event_ordering_is_canonical() {
        let log = traced_run(Executor::Parallel);
        let ev = log.events();
        let keys: Vec<(u32, u32)> = ev
            .iter()
            .map(|e| match e {
                TraceEvent::Recv { round, node, .. }
                | TraceEvent::Send { round, node, .. }
                | TraceEvent::Halt { round, node } => (*round, *node),
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
