//! Engine-level property tests: conservation, determinism, accounting,
//! and fault-plan semantics over random topologies and protocols.

use ck_congest::engine::{BandwidthPolicy, EngineConfig, EngineError, Executor, RunOutcome};
use ck_congest::fault::FaultPlan;
use ck_congest::graph::{Graph, GraphBuilder, NodeIndex};
use ck_congest::message::{WireMessage, WireParams};
use ck_congest::node::{Inbox, NodeInit, Outbox, Program, Status};
use ck_congest::session::Session;
use proptest::prelude::*;

/// Every run in this suite goes through the session entry point.
fn run<'g, P, F>(
    graph: &'g Graph,
    config: &EngineConfig,
    factory: F,
) -> Result<RunOutcome<P::Verdict>, EngineError>
where
    P: Program,
    F: FnMut(NodeInit<'g>) -> P,
{
    Session::builder(graph).config(config.clone()).build().run(factory)
}

/// A protocol that, for `rounds` rounds, sends on each port a counter
/// and records everything received. Message count bookkeeping is exact:
/// what is sent equals what is received (absent faults).
struct Echo {
    rounds: u32,
    sent: u64,
    received: u64,
}

impl Program for Echo {
    type Msg = u64;
    type Verdict = (u64, u64);

    fn step(&mut self, round: u32, inbox: Inbox<'_, u64>, out: &mut Outbox<u64>) -> Status {
        self.received += inbox.len() as u64;
        if round < self.rounds {
            out.broadcast(u64::from(round));
            self.sent += out.queued() as u64;
            Status::Running
        } else {
            Status::Halted
        }
    }

    fn verdict(&self) -> (u64, u64) {
        (self.sent, self.received)
    }
}

/// A protocol exercising the broadcast-slot path with *heavy* payloads
/// (a `Vec<u64>` bundle, the shape of the tester's sequence bundles):
/// each round every node broadcasts a content- and degree-dependent
/// bundle, plus one targeted send to interleave owned and shared
/// deliveries in the lanes. The verdict digests everything received —
/// order included — so the tiniest divergence in delivery order or
/// content between sink paths shows up as a digest mismatch.
struct HeavyGossip {
    id: u64,
    rounds: u32,
    digest: u64,
    evictions: u64,
}

impl Program for HeavyGossip {
    type Msg = Vec<u64>;
    type Verdict = (u64, u64);

    fn step(
        &mut self,
        round: u32,
        inbox: Inbox<'_, Vec<u64>>,
        out: &mut Outbox<Vec<u64>>,
    ) -> Status {
        for inc in inbox.iter() {
            self.digest = self
                .digest
                .wrapping_mul(1099511628211)
                .wrapping_add(u64::from(inc.port) << 32 | inc.msg.len() as u64);
            for &w in inc.msg {
                self.digest = self.digest.wrapping_mul(1099511628211).wrapping_add(w);
            }
        }
        if round >= self.rounds {
            return Status::Halted;
        }
        let payload: Vec<u64> =
            (0..(self.id % 5) + 2).map(|i| self.id * 1000 + u64::from(round) * 10 + i).collect();
        if out.broadcast(payload).is_some() {
            self.evictions += 1;
        }
        if out.degree() > 0 {
            out.send(round % out.degree(), vec![self.id, u64::from(round)]);
        }
        Status::Running
    }

    fn verdict(&self) -> (u64, u64) {
        (self.digest, self.evictions)
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20, any::<u64>()).prop_map(|(n, seed)| {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let mut b = GraphBuilder::new(n);
        let mut has_edge = false;
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                if next() % 100 < 35 {
                    b.edge(i, j);
                    has_edge = true;
                }
            }
        }
        if !has_edge {
            b.edge(0, 1);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Conservation: on a reliable network, Σ sent = Σ received, and the
    /// engine's message statistics agree with the programs' own counts.
    #[test]
    fn messages_are_conserved(g in arb_graph(), rounds in 1u32..6) {
        let out = run(&g, &EngineConfig::default(), |_| Echo { rounds, sent: 0, received: 0 }).unwrap();
        let sent: u64 = out.verdicts.iter().map(|v| v.0).sum();
        let received: u64 = out.verdicts.iter().map(|v| v.1).sum();
        prop_assert_eq!(sent, received);
        prop_assert_eq!(sent, out.report.total_messages());
        // Every round's broadcast hits every directed edge once: 2m msgs.
        prop_assert_eq!(sent, 2 * g.m() as u64 * u64::from(rounds));
    }

    /// Executor equivalence on arbitrary graphs and round counts.
    #[test]
    fn executors_equivalent(g in arb_graph(), rounds in 1u32..5) {
        let mk = |exec| {
            let cfg = EngineConfig { executor: exec, ..EngineConfig::default() };
            run(&g, &cfg, |_| Echo { rounds, sent: 0, received: 0 }).unwrap()
        };
        let a = mk(Executor::Sequential);
        let b = mk(Executor::Parallel);
        prop_assert_eq!(a.verdicts, b.verdicts);
        prop_assert_eq!(a.report.per_round, b.report.per_round);
    }

    /// Arena-engine reproducibility under message loss: Sequential and
    /// Parallel executors must produce identical `RunReport`s and
    /// verdicts on random graphs when a nontrivial `FaultPlan` (random
    /// loss plus explicit drops) reshapes delivery.
    #[test]
    fn executors_equivalent_under_faults(
        g in arb_graph(),
        rounds in 1u32..5,
        loss_pct in 1u32..60,
        seed in any::<u64>(),
    ) {
        let faults = FaultPlan::none()
            .random_loss(f64::from(loss_pct) / 100.0, seed)
            .drop_at(0, 0, 0)
            .drop_at(1, 1, 0);
        let mk = |exec| {
            let cfg = EngineConfig { executor: exec, faults: faults.clone(), ..EngineConfig::default() };
            run(&g, &cfg, |_| Echo { rounds, sent: 0, received: 0 }).unwrap()
        };
        let a = mk(Executor::Sequential);
        let b = mk(Executor::Parallel);
        prop_assert_eq!(a.verdicts, b.verdicts);
        prop_assert_eq!(a.report.per_round, b.report.per_round);
        prop_assert_eq!(a.report.rounds, b.report.rounds);
        prop_assert_eq!(a.report.all_halted, b.report.all_halted);
        prop_assert_eq!(&a.report.faults, &b.report.faults);
        // Faults only suppress deliveries, never fabricate them — and
        // the fault report accounts for every missing delivery exactly.
        let sent: u64 = a.verdicts.iter().map(|v| v.0).sum();
        let received: u64 = a.verdicts.iter().map(|v| v.1).sum();
        prop_assert!(received <= sent);
        prop_assert_eq!(sent - received, a.report.faults.total_dropped());
    }

    /// Fault-model v2 executor equivalence: crash-stop, link cuts,
    /// Gilbert–Elliott burst loss, and frame corruption — alone and
    /// composed with the v1 kinds — produce bit-identical verdicts,
    /// per-round statistics, and fault reports on both executors, with
    /// heavy broadcast-slot payloads in flight.
    #[test]
    fn fault_v2_kinds_are_executor_equivalent(
        g in arb_graph(),
        rounds in 2u32..5,
        seed in any::<u64>(),
    ) {
        let plans = [
            // `arb_graph` always has ≥ 2 nodes; cutting a non-edge is a
            // harmless no-op, so the plans below never need the edge to
            // exist.
            FaultPlan::none().crash(0, 1),
            FaultPlan::none().cut_link(0, 1),
            FaultPlan::none().burst_loss(0.3, 0.4, seed),
            FaultPlan::none().corrupt_frames(0.5, seed),
            FaultPlan::none()
                .crash(1, 1)
                .cut_link(0, 1)
                .burst_loss(0.2, 0.5, seed)
                .corrupt_frames(0.3, seed ^ 1)
                .random_loss(0.1, seed ^ 2)
                .drop_at(0, 0, 0),
        ];
        for faults in plans {
            let mk = |exec| {
                let cfg = EngineConfig { executor: exec, faults: faults.clone(), ..EngineConfig::default() };
                run(&g, &cfg, |init| HeavyGossip { id: init.id, rounds, digest: 0, evictions: 0 }).unwrap()
            };
            let a = mk(Executor::Sequential);
            let b = mk(Executor::Parallel);
            prop_assert_eq!(&a.verdicts, &b.verdicts, "{:?}", faults);
            prop_assert_eq!(&a.report.per_round, &b.report.per_round, "{:?}", faults);
            prop_assert_eq!(&a.report.faults, &b.report.faults, "{:?}", faults);
        }
    }

    /// Crash-stop semantics: with every node crashed from round 0 the
    /// network is silent — everything is still accounted as sent, every
    /// send is attributed to the crash, and the report names the
    /// crashed set.
    #[test]
    fn crash_stop_silences_everything(g in arb_graph()) {
        let mut plan = FaultPlan::none();
        for v in 0..g.n() as NodeIndex {
            plan = plan.crash(v, 0);
        }
        let cfg = EngineConfig { faults: plan, ..EngineConfig::default() };
        let out = run(&g, &cfg, |_| Echo { rounds: 2, sent: 0, received: 0 }).unwrap();
        let sent: u64 = out.verdicts.iter().map(|v| v.0).sum();
        let received: u64 = out.verdicts.iter().map(|v| v.1).sum();
        prop_assert_eq!(received, 0);
        prop_assert_eq!(sent, 2 * g.m() as u64 * 2);
        prop_assert_eq!(out.report.faults.dropped_crash, sent);
        let all: Vec<u32> = (0..g.n() as u32).collect();
        prop_assert_eq!(&out.report.faults.crashed_nodes, &all);
    }

    /// Cutting one link severs exactly its two directed deliveries per
    /// round and nothing else.
    #[test]
    fn cut_links_are_surgical(g in arb_graph(), rounds in 1u32..4) {
        prop_assume!(g.degree(0) > 0);
        let w = g.neighbor_at(0, 0);
        let baseline = run(&g, &EngineConfig::default(), |_| Echo { rounds, sent: 0, received: 0 }).unwrap();
        let total: u64 = baseline.verdicts.iter().map(|v| v.1).sum();
        let cfg = EngineConfig {
            faults: FaultPlan::none().cut_link(0, w),
            ..EngineConfig::default()
        };
        let out = run(&g, &cfg, |_| Echo { rounds, sent: 0, received: 0 }).unwrap();
        let received: u64 = out.verdicts.iter().map(|v| v.1).sum();
        prop_assert_eq!(received, total - 2 * u64::from(rounds));
        prop_assert_eq!(out.report.faults.dropped_cut, 2 * u64::from(rounds));
    }

    /// Certain corruption on plain `u64` frames garbles every delivery
    /// without losing any: delivery counts match the clean run, every
    /// frame is recorded as corrupted-and-delivered, and nothing is
    /// counted dropped.
    #[test]
    fn certain_corruption_delivers_garbage_not_loss(g in arb_graph(), seed in any::<u64>()) {
        let cfg = EngineConfig {
            faults: FaultPlan::none().corrupt_frames(1.0, seed),
            ..EngineConfig::default()
        };
        let out = run(&g, &cfg, |_| Echo { rounds: 2, sent: 0, received: 0 }).unwrap();
        let sent: u64 = out.verdicts.iter().map(|v| v.0).sum();
        let received: u64 = out.verdicts.iter().map(|v| v.1).sum();
        prop_assert_eq!(received, sent, "u64 frames survive bit flips as garbage");
        prop_assert_eq!(out.report.faults.corrupted_delivered, sent);
        prop_assert_eq!(out.report.faults.total_dropped(), 0);
    }

    /// The counter-free fast paths (taken when round recording is off)
    /// must deliver exactly what the accounted path delivers, on both
    /// executors.
    #[test]
    fn fast_paths_equivalent_to_accounted(g in arb_graph(), rounds in 1u32..5) {
        let mk = |exec, record_rounds| {
            let cfg = EngineConfig { executor: exec, record_rounds, ..EngineConfig::default() };
            run(&g, &cfg, |_| Echo { rounds, sent: 0, received: 0 }).unwrap()
        };
        let reference = mk(Executor::Sequential, true);
        for exec in [Executor::Sequential, Executor::Parallel] {
            let fast = mk(exec, false);
            prop_assert_eq!(&fast.verdicts, &reference.verdicts, "{:?}", exec);
            prop_assert_eq!(fast.report.rounds, reference.report.rounds);
            prop_assert_eq!(fast.report.all_halted, reference.report.all_halted);
            prop_assert!(fast.report.per_round.is_empty());
        }
    }

    /// Broadcast-slot equivalence under heavy payloads: the four sink
    /// paths (accounted/fast × lanes/inbox) must deliver bit-identical
    /// content in bit-identical order, including under a nontrivial
    /// fault plan, and the slot must recycle (every node that keeps
    /// broadcasting sees evictions from round 2 on).
    #[test]
    fn broadcast_slots_equivalent_across_sinks(
        g in arb_graph(),
        rounds in 2u32..6,
        loss_pct in 0u32..50,
        seed in any::<u64>(),
    ) {
        let faults = if loss_pct == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::none().random_loss(f64::from(loss_pct) / 100.0, seed).drop_at(1, 0, 0)
        };
        let mk = |exec, record_rounds| {
            let cfg = EngineConfig { executor: exec, record_rounds, faults: faults.clone(), ..EngineConfig::default() };
            run(&g, &cfg, |init| HeavyGossip { id: init.id, rounds, digest: 0, evictions: 0 }).unwrap()
        };
        let reference = mk(Executor::Sequential, true);
        // Faults drop deliveries, never broadcasts: the slot still parks
        // a payload every round, so every connected node sees evictions
        // from round 2 on (isolated nodes never park — broadcast to
        // degree 0 is a no-op).
        for (v, verdict) in reference.verdicts.iter().enumerate() {
            let expect = if g.degree(v as NodeIndex) > 0 { u64::from(rounds) - 2 } else { 0 };
            prop_assert_eq!(verdict.1, expect, "node {}", v);
        }
        for exec in [Executor::Sequential, Executor::Parallel] {
            for record_rounds in [true, false] {
                let out = mk(exec, record_rounds);
                prop_assert_eq!(&out.verdicts, &reference.verdicts, "{:?} record={}", exec, record_rounds);
                prop_assert_eq!(out.report.rounds, reference.report.rounds);
                if record_rounds {
                    prop_assert_eq!(&out.report.per_round, &reference.report.per_round);
                }
            }
        }
    }

    /// Fault semantics: with full loss nothing is received but everything
    /// is still accounted as sent; with an explicit plan, exactly the
    /// planned messages disappear.
    #[test]
    fn full_loss_blocks_delivery_only(g in arb_graph()) {
        let cfg = EngineConfig {
            faults: FaultPlan::none().random_loss(1.0, 7),
            ..EngineConfig::default()
        };
        let out = run(&g, &cfg, |_| Echo { rounds: 2, sent: 0, received: 0 }).unwrap();
        let received: u64 = out.verdicts.iter().map(|v| v.1).sum();
        prop_assert_eq!(received, 0);
        prop_assert_eq!(out.report.total_messages(), 2 * g.m() as u64 * 2);
    }

    /// One planned drop removes exactly one delivery.
    #[test]
    fn single_drop_is_surgical(g in arb_graph()) {
        let baseline = run(&g, &EngineConfig::default(), |_| Echo { rounds: 1, sent: 0, received: 0 }).unwrap();
        let total: u64 = baseline.verdicts.iter().map(|v| v.1).sum();
        let victim: NodeIndex = 0;
        prop_assume!(g.degree(victim) > 0);
        let cfg = EngineConfig {
            faults: FaultPlan::none().drop_at(0, victim, 0),
            ..EngineConfig::default()
        };
        let out = run(&g, &cfg, |_| Echo { rounds: 1, sent: 0, received: 0 }).unwrap();
        let received: u64 = out.verdicts.iter().map(|v| v.1).sum();
        prop_assert_eq!(received, total - 1);
    }

    /// Bandwidth enforcement: a cap below the message size trips on the
    /// first round; a generous cap never trips.
    #[test]
    fn bandwidth_enforcement_is_sharp(g in arb_graph()) {
        let wp = WireParams::for_graph(&g);
        let msg_bits = 0u64.wire_bits(&wp);
        let tight = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: msg_bits.saturating_sub(1) },
            ..EngineConfig::default()
        };
        let tripped = run(&g, &tight, |_| Echo { rounds: 1, sent: 0, received: 0 }).is_err();
        prop_assert!(tripped);
        let loose = EngineConfig {
            bandwidth: BandwidthPolicy::Enforce { bits: msg_bits },
            ..EngineConfig::default()
        };
        let passed = run(&g, &loose, |_| Echo { rounds: 1, sent: 0, received: 0 }).is_ok();
        prop_assert!(passed);
    }

    /// Reverse ports really invert: a message sent on port p arrives at
    /// the neighbor on the port that leads back.
    #[test]
    fn reverse_ports_invert(g in arb_graph()) {
        for v in 0..g.n() as NodeIndex {
            for p in 0..g.degree(v) as u32 {
                let w = g.neighbor_at(v, p);
                let q = g.reverse_port(v, p);
                prop_assert_eq!(g.neighbor_at(w, q), v);
                prop_assert_eq!(g.reverse_port(w, q), p);
            }
        }
    }
}
