//! Chorded-pattern obliviousness — the paper's §4 conclusion, executable.
//!
//! The paper explains why Algorithm 1 does *not* extend to testing
//! `H`-freeness for `H` = a k-cycle with a chord: the pruning rule
//! "is oblivious to the neighborhood of the nodes in these sequences.
//! Hence, while Algorithm 1 makes sure to keep at least one sequence
//! corresponding to a cycle, if such cycle exists, it may well discard
//! the sequence corresponding to the cycle in H, and keep a sequence
//! without a chord."
//!
//! This module realizes that argument as a deterministic counterexample:
//! on [`ck_graphgen::basic::chorded_spindle`], a chorded C6 passes
//! through `{u, v}` (oracle-verified), yet *every* witness the detector
//! can assemble — exhaustively enumerated across all nodes and all
//! sequence pairs — is chordless, because the pruning at the first
//! middle node drops exactly the fan-in sequence lying on the chorded
//! copy.

use crate::prune::PrunerKind;
use crate::single::detect_ck_through_edge;
use ck_congest::engine::EngineConfig;
use ck_congest::graph::{Edge, Graph, NodeIndex};
use ck_graphgen::farness::{cycle_has_chord, has_chorded_ck_through_edge, is_valid_ck};

/// Outcome of probing a graph for chorded-cycle coverage.
#[derive(Clone, Debug)]
pub struct ChordProbe {
    /// The oracle: does a chorded `Ck` pass through the edge?
    pub chorded_exists: bool,
    /// Did the detector reject (some `Ck` found)?
    pub detector_rejects: bool,
    /// Witness cycles assembled by the detector (all pairs, all nodes),
    /// as node-index sequences.
    pub witnesses: Vec<Vec<NodeIndex>>,
    /// How many of those witnesses carry a chord.
    pub chorded_witnesses: usize,
}

impl ChordProbe {
    /// The obliviousness event: `H` exists but no surviving witness
    /// exhibits it.
    pub fn misses_chorded_pattern(&self) -> bool {
        self.chorded_exists && self.detector_rejects && self.chorded_witnesses == 0
    }
}

/// Runs the single-edge detector and grades every assembled witness
/// against the chord oracle.
pub fn probe_chorded_coverage(g: &Graph, k: usize, e: Edge) -> ChordProbe {
    let run = detect_ck_through_edge(g, k, e, PrunerKind::Representative, &EngineConfig::default())
        // ck-lint: allow(no-panic, reason = "default engine config has no faults, net, or bandwidth cap — the only EngineError sources")
        .expect("engine run");
    let mut witnesses = Vec::new();
    let mut chorded = 0;
    for v in &run.outcome.verdicts {
        for w in &v.all_witnesses {
            let idx: Vec<NodeIndex> = w
                .cycle_ids()
                .iter()
                // ck-lint: allow(no-panic, reason = "witness ids were emitted by verdicts over this same graph")
                .map(|&id| g.index_of(id).expect("witness IDs exist"))
                .collect();
            debug_assert!(is_valid_ck(g, k, &idx), "witnesses are sound");
            if cycle_has_chord(g, &idx) {
                chorded += 1;
            }
            witnesses.push(idx);
        }
    }
    ChordProbe {
        chorded_exists: has_chorded_ck_through_edge(g, k, e),
        detector_rejects: run.reject,
        witnesses,
        chorded_witnesses: chorded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{chorded_spindle, fan, spindle};

    #[test]
    fn chorded_spindle_reproduces_the_conclusion() {
        // p = 5: pruning at z1 keeps (u, x) for the 4 smallest x and drops
        // x_big — the only fan-in node on the chorded C6.
        for p in [5usize, 8, 12] {
            let g = chorded_spindle(p);
            let probe = probe_chorded_coverage(&g, 6, Edge::new(0, 1));
            assert!(probe.chorded_exists, "p={p}: the chorded C6 exists (oracle)");
            assert!(probe.detector_rejects, "p={p}: Ck detection itself still works");
            assert!(
                probe.misses_chorded_pattern(),
                "p={p}: expected every witness chordless, found {} chorded of {}",
                probe.chorded_witnesses,
                probe.witnesses.len()
            );
        }
    }

    #[test]
    fn small_spindles_do_not_trigger_the_drop() {
        // With p ≤ 4 nothing is pruned at z1 (bound k−t+1 = 4), so the
        // chorded witness survives: the miss is a *pruning* effect, not a
        // detector defect.
        let base = spindle(4, 2);
        let x_big = 5u32; // last fan-in index for p=4
        let z2 = 7u32;
        let mut b = ck_congest::graph::GraphBuilder::new(base.n());
        b.edges(base.edges().iter().map(|e| (e.a, e.b)));
        b.edge(x_big, z2);
        let g = b.build().unwrap();
        let probe = probe_chorded_coverage(&g, 6, Edge::new(0, 1));
        assert!(probe.chorded_exists);
        assert!(probe.detector_rejects);
        assert!(
            probe.chorded_witnesses > 0,
            "below the pruning threshold the chorded witness must survive"
        );
    }

    #[test]
    fn fan_witnesses_are_all_chorded() {
        // In fan(p) every C5 through {u,v} is chorded (the middle nodes
        // touch both hubs), so coverage is trivially preserved.
        let g = fan(3);
        let probe = probe_chorded_coverage(&g, 5, Edge::new(0, 1));
        assert!(probe.chorded_exists);
        assert!(probe.detector_rejects);
        assert_eq!(probe.chorded_witnesses, probe.witnesses.len());
        assert!(!probe.misses_chorded_pattern());
    }
}
