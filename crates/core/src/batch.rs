//! The sharded multi-graph batch runner: run the full `Ck` tester over
//! a family of `(graph, config, seed)` jobs with one reusable engine
//! workspace and tester-scratch pool per shard.
//!
//! The paper's experimental claims are statements over instance
//! families — reject rates across dozens of planted ε-far graphs,
//! trials × seeds per `(k, n)` cell — and a naive loop pays full engine
//! setup (arenas, load table, per-node tester buffers) for every single
//! run. `run_tester_batch` amortizes that across the batch: jobs are
//! sharded contiguously over the thread pool, each shard drives its
//! jobs through one [`EngineWorkspace`] + [`TesterScratch`] pair that
//! is cleared and re-sized between jobs (never reallocated when the
//! next graph fits), and the per-job [`TesterRun`]s come back in input
//! order, **bit-identical** to one-by-one single-shot runs under
//! the sequential executor.
//!
//! Within a shard, jobs execute under `Executor::Sequential` regardless
//! of the template config: the parallelism budget is spent *across*
//! graphs (the sweeps' natural grain), not inside each small run, and
//! nesting the scoped-thread executor inside shard threads would
//! oversubscribe the pool. By the engine's determinism contract this
//! changes no observable output except the report's executor label.

use crate::msg::CkMsg;
use crate::tester::{tester_exec, ConfigError, TesterConfig, TesterRun, TesterScratch};
use ck_congest::batch::{effective_shards, run_sharded};
use ck_congest::engine::{EngineConfig, EngineError, EngineWorkspace, Executor};
use ck_congest::graph::Graph;

/// One unit of batch work: a graph, the tester parameters to run on it
/// (the Phase-1 seed lives in [`TesterConfig::seed`]), and a label used
/// in error reports so a failed instance names itself.
pub struct BatchJob<'a> {
    pub graph: &'a Graph,
    pub cfg: TesterConfig,
    pub label: String,
}

impl<'a> BatchJob<'a> {
    /// A job with an auto-generated `n=…/seed=…` label.
    pub fn new(graph: &'a Graph, cfg: TesterConfig) -> Self {
        let label = format!("n={}/k={}/seed={}", graph.n(), cfg.k, cfg.seed);
        BatchJob { graph, cfg, label }
    }

    /// A job with an explicit label (a CLI spec, an experiment cell).
    pub fn labeled(graph: &'a Graph, cfg: TesterConfig, label: impl Into<String>) -> Self {
        BatchJob { graph, cfg, label: label.into() }
    }
}

/// Why a batch job failed: a parameter outside the tester's domain
/// (caught by validation before anything runs) or a genuine engine
/// failure mid-run.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchFailure {
    /// The job's [`TesterConfig`] is out of range.
    Config(ConfigError),
    /// The engine rejected the run (e.g. bandwidth enforcement).
    Engine(EngineError),
}

impl std::fmt::Display for BatchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchFailure::Config(e) => e.fmt(f),
            BatchFailure::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BatchFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchFailure::Config(e) => Some(e),
            BatchFailure::Engine(e) => Some(e),
        }
    }
}

/// A failed batch job, carrying enough context to name the instance —
/// one bad graph reports itself instead of panicking mid-sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchError {
    /// Index of the failed job in the input slice.
    pub job: usize,
    /// The job's label.
    pub label: String,
    /// The job's Phase-1 seed.
    pub seed: u64,
    /// The underlying failure.
    pub error: BatchFailure,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "batch job {} ({}, seed {}) failed: {}",
            self.job, self.label, self.seed, self.error
        )
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// How a batch runs.
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Engine template applied to every job (faults, bandwidth policy,
    /// round recording). The executor field is ignored — shards run
    /// jobs sequentially; see the module docs.
    pub engine: EngineConfig,
    /// Shard count (`None` = the thread pool's width). Clamped to the
    /// job count; `Some(1)` forces the single-threaded reference path.
    pub shards: Option<usize>,
}

/// The batch engine proper — the implementation behind
/// [`crate::session::TesterSession::test_batch`] and the deprecated
/// [`run_tester_batch`]. Every job's [`TesterConfig`] is validated
/// before anything runs, so a bad cell is a [`BatchFailure::Config`]
/// naming the job, never a panic mid-sweep.
pub(crate) fn batch_exec(
    jobs: &[BatchJob<'_>],
    engine_template: &EngineConfig,
    shards: Option<usize>,
) -> Result<Vec<TesterRun>, BatchError> {
    for (idx, job) in jobs.iter().enumerate() {
        job.cfg.validate().map_err(|e| BatchError {
            job: idx,
            label: job.label.clone(),
            seed: job.cfg.seed,
            error: BatchFailure::Config(e),
        })?;
    }
    let shards = effective_shards(shards, jobs.len());
    let mut engine = engine_template.clone();
    engine.executor = Executor::Sequential;
    let results = run_sharded(
        jobs,
        shards,
        || (EngineWorkspace::<CkMsg>::new(), TesterScratch::new()),
        |(ws, scratch), idx, job| {
            tester_exec(job.graph, &job.cfg, &engine, ws, scratch).map_err(|error| BatchError {
                job: idx,
                label: job.label.clone(),
                seed: job.cfg.seed,
                error: BatchFailure::Engine(error),
            })
        },
    );
    // Results are in input order, so `collect` surfaces the first
    // failing job deterministically regardless of shard scheduling.
    results.into_iter().collect()
}

/// Runs every job and returns the per-job [`TesterRun`]s in input
/// order. Configurations are validated up front: the first
/// (lowest-index) out-of-range job is reported as a
/// [`BatchFailure::Config`] before anything runs; otherwise the first
/// (lowest-index) run failure is returned. See the module docs for the
/// sharding/reuse contract.
#[deprecated(
    since = "0.2.0",
    note = "use `ck_core::session::TesterSession::test_batch` — same sharded runner, \
            validated configs"
)]
pub fn run_tester_batch(
    jobs: &[BatchJob<'_>],
    opts: &BatchOptions,
) -> Result<Vec<TesterRun>, BatchError> {
    batch_exec(jobs, &opts.engine, opts.shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::TesterSession;
    use ck_congest::engine::BandwidthPolicy;
    use ck_graphgen::basic::cycle;
    use ck_graphgen::planted::{eps_far_instance, matched_free_instance};

    fn digest(r: &TesterRun) -> (bool, u32, Vec<crate::tester::NodeVerdict>, u32) {
        (r.reject, r.repetitions, r.outcome.verdicts.clone(), r.outcome.report.rounds)
    }

    #[test]
    fn batch_matches_one_by_one_bit_for_bit() {
        let far = eps_far_instance(36, 5, 0.05, 1);
        let free = matched_free_instance(30, 5);
        let c5 = cycle(5);
        let graphs: Vec<(&Graph, usize)> =
            vec![(&far.graph, 5), (&free, 5), (&c5, 5), (&far.graph, 4)];
        let jobs: Vec<BatchJob> = graphs
            .iter()
            .enumerate()
            .map(|(i, &(g, k))| {
                let cfg = TesterConfig {
                    repetitions: Some(2),
                    ..TesterConfig::new(k, 0.1, 11 + i as u64)
                };
                BatchJob::new(g, cfg)
            })
            .collect();
        let engine = EngineConfig { executor: Executor::Sequential, ..EngineConfig::default() };
        let loop_runs: Vec<TesterRun> = jobs
            .iter()
            .map(|j| {
                TesterSession::from_config(j.cfg, engine.clone()).unwrap().test(j.graph).unwrap()
            })
            .collect();
        let session = TesterSession::builder(5, 0.1).build().unwrap();
        for shards in [1usize, 2, 4] {
            let batch = session.test_batch(&jobs, Some(shards)).unwrap();
            assert_eq!(batch.len(), jobs.len());
            for (a, b) in loop_runs.iter().zip(&batch) {
                assert_eq!(digest(a), digest(b), "shards={shards}");
                assert_eq!(a.outcome.report.per_round, b.outcome.report.per_round);
            }
        }
    }

    #[test]
    fn batch_error_names_the_failing_job() {
        // An absurdly tight enforced bandwidth fails every run; the
        // batch must report the *first* job with its label and seed.
        let g = cycle(6);
        let jobs: Vec<BatchJob> = (0..3)
            .map(|i| {
                let cfg =
                    TesterConfig { repetitions: Some(1), ..TesterConfig::new(6, 0.1, i as u64) };
                BatchJob::labeled(&g, cfg, format!("cell-{i}"))
            })
            .collect();
        let session = TesterSession::builder(6, 0.1)
            .engine(EngineConfig {
                bandwidth: BandwidthPolicy::Enforce { bits: 1 },
                ..EngineConfig::default()
            })
            .build()
            .unwrap();
        let err = session.test_batch(&jobs, Some(2)).unwrap_err();
        assert_eq!(err.job, 0);
        assert_eq!(err.label, "cell-0");
        assert_eq!(err.seed, 0);
        assert!(matches!(err.error, BatchFailure::Engine(_)));
        let msg = err.to_string();
        assert!(msg.contains("cell-0") && msg.contains("failed"), "{msg}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let session = TesterSession::builder(5, 0.1).build().unwrap();
        let out = session.test_batch(&[], None).unwrap();
        assert!(out.is_empty());
    }
}
