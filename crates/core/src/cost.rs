//! Closed-form cost model, checked against measurements.
//!
//! The paper's complexity claims are exact enough to predict the
//! simulator's accounting in closed form: engine rounds from the
//! repetition schedule, the per-round Lemma 3 sequence profile, and a
//! worst-case single-message bit bound. The tests pin prediction to
//! measurement — any drift in the protocol implementation breaks them.

use crate::prune::lemma3_bound;
use crate::rank::total_rounds;
use ck_congest::message::{bits_for, WireParams};

/// Per-round Lemma 3 profile: entry `t − 2` bounds the number of
/// sequences a node may send at paper round `t` (`2 ≤ t ≤ ⌊k/2⌋`).
pub fn lemma3_profile(k: usize) -> Vec<u128> {
    (2..=k / 2).map(|t| lemma3_bound(k, t)).collect()
}

/// The worst single Phase-2 payload across the whole run, in sequences:
/// `max_t (k−t+1)^(t−1)` (1 for k ∈ {3, 4, 5} where only seeds or single
/// appends flow).
pub fn worst_sequences_per_message(k: usize) -> u128 {
    lemma3_profile(k).into_iter().max().unwrap_or(1)
}

/// Upper bound on a single tester message in bits under `params`:
/// discriminant + rank + edge tag + the worst sequence payload.
pub fn max_message_bits_bound(k: usize, params: &WireParams) -> u64 {
    let worst_seqs = worst_sequences_per_message(k).min(u128::from(u64::MAX)) as u64;
    let worst_len = (k / 2) as u64; // sequences never exceed ⌊k/2⌋ IDs
    1 + u64::from(params.rank_bits)
        + 2 * u64::from(params.id_bits)
        + u64::from(bits_for(worst_seqs.max(1)))
        + worst_seqs * worst_len * u64::from(params.id_bits)
}

/// Engine rounds of a full tester run — exact, not asymptotic: the
/// protocol always runs the complete schedule.
pub fn predicted_engine_rounds(k: usize, repetitions: u32) -> u32 {
    total_rounds(k, repetitions)
}

/// Phase-1 message count per repetition: one rank message per edge.
pub fn rank_messages_per_repetition(m: usize) -> u64 {
    m as u64
}

/// Seed-round message count per repetition: every node broadcasts its
/// seed on every port ⟹ `2m` messages (assuming every node has an
/// incident edge whose rank it knows, i.e. a reliable network).
pub fn seed_messages_per_repetition(m: usize) -> u64 {
    2 * m as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tester::TesterConfig;

    /// The tests' single-run entry: a fresh session per call (shadows
    /// the deprecated free function).
    fn run_tester(
        g: &ck_congest::graph::Graph,
        cfg: &TesterConfig,
        engine: &EngineConfig,
    ) -> Result<crate::tester::TesterRun, ck_congest::engine::EngineError> {
        crate::session::TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
    }

    use ck_congest::engine::EngineConfig;
    use ck_graphgen::basic::{cycle, spindle};
    use ck_graphgen::random::connected_gnm;

    #[test]
    fn profile_values() {
        assert_eq!(lemma3_profile(6), vec![5, 16]);
        assert_eq!(lemma3_profile(9), vec![8, 49, 216]);
        assert!(lemma3_profile(3).is_empty());
        assert_eq!(worst_sequences_per_message(9), 216);
        assert_eq!(worst_sequences_per_message(3), 1);
    }

    #[test]
    fn predicted_rounds_match_measured() {
        for k in [3usize, 4, 5, 8] {
            for reps in [1u32, 3] {
                let g = connected_gnm(24, 32, 5);
                let cfg = TesterConfig { repetitions: Some(reps), ..TesterConfig::new(k, 0.1, 7) };
                let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
                assert_eq!(run.outcome.report.rounds, predicted_engine_rounds(k, reps));
                assert_eq!(
                    predicted_engine_rounds(k, reps),
                    reps * crate::rank::rounds_per_repetition(k)
                );
            }
        }
    }

    #[test]
    fn measured_message_bits_respect_the_bound() {
        for (g, k) in [(spindle(16, 2), 6usize), (cycle(9), 9), (connected_gnm(30, 45, 2), 7)] {
            let params = ck_congest::message::WireParams::for_graph(&g);
            let bound = max_message_bits_bound(k, &params);
            let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(k, 0.1, 3) };
            let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
            let measured = run.outcome.report.max_message_bits();
            assert!(measured <= bound, "k={k}: measured {measured} bits exceeds bound {bound}");
        }
    }

    #[test]
    fn phase1_message_counts_match() {
        // Round 0 of each repetition ships exactly one rank per edge;
        // round 1 ships 2m seed messages.
        let g = connected_gnm(20, 30, 9);
        let cfg = TesterConfig { repetitions: Some(1), ..TesterConfig::new(5, 0.1, 1) };
        let run = run_tester(&g, &cfg, &EngineConfig::default()).unwrap();
        let per_round = &run.outcome.report.per_round;
        assert_eq!(per_round[0].messages, rank_messages_per_repetition(g.m()));
        assert_eq!(per_round[1].messages, seed_messages_per_repetition(g.m()));
    }
}
