//! The final-round reject decision (Algorithm 1, Instructions 31–42).
//!
//! A node `w` rejects when it can assemble a full `Ck` out of two
//! sequences plus itself: `|L1 ∪ L2 ∪ {ID(w)}| = k`.
//!
//! * **odd `k`** — both sequences were *received* at round `⌊k/2⌋` (each of
//!   length `⌊k/2⌋`); the size condition forces them disjoint and free of
//!   `ID(w)`, and Lemma 1 makes them vertex-disjoint paths from `u` and
//!   `v` to two distinct neighbors of `w`: a genuine `Ck`.
//! * **even `k`** — exactly one sequence comes from the node's *own* final
//!   send `S` (length `k/2`, ending in `ID(w)`), the other was received at
//!   round `k/2`. Pairing two received sequences would be unsound: two
//!   length-`k/2` paths overlapping in exactly one internal node also
//!   reach union size `k` without forming any cycle. This is the even-`k`
//!   correction discussed in DESIGN.md (the arXiv pseudocode's
//!   "`⌊k/2⌋ − 1`" cannot ever reject; the Lemma 2 proof uses the version
//!   implemented here).

use crate::seq::IdSeq;
use ck_congest::graph::NodeId;

/// A reject witness: the two sequences that assembled a `Ck` at `myid`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectWitness {
    /// The sequence containing `myid` for even `k` (from the node's own
    /// final send), or the first received sequence for odd `k`.
    pub l1: IdSeq,
    /// The second (always received) sequence.
    pub l2: IdSeq,
    /// The deciding node.
    pub myid: NodeId,
    /// Cycle length.
    pub k: usize,
}

impl RejectWitness {
    /// Reconstructs the cycle's vertex sequence
    /// `(x1, …, xℓ, w, ym, …, y1)` from the witness pair.
    pub fn cycle_ids(&self) -> Vec<NodeId> {
        let mut cycle = Vec::with_capacity(self.k);
        cycle.extend(self.l1.iter());
        if self.k % 2 == 1 {
            // Odd: neither sequence contains myid; w sits between them.
            cycle.push(self.myid);
        }
        // Even: l1 already ends with myid.
        cycle.extend(self.l2.iter().collect::<Vec<_>>().into_iter().rev());
        cycle
    }
}

/// Decides the reject predicate for node `myid`.
///
/// * `own_sent` — the sequences this node broadcast at round `⌊k/2⌋`
///   (each ends with `myid`); only consulted for even `k`.
/// * `received_final` — sequences received at round `⌊k/2⌋` (deduplicated
///   by the caller or not; duplicates cannot create spurious rejects).
///
/// Returns a witness when the node must output **reject**.
pub fn decide_reject(
    k: usize,
    myid: NodeId,
    own_sent: &[IdSeq],
    received_final: &[IdSeq],
) -> Option<RejectWitness> {
    decide_all_rejects(k, myid, own_sent, received_final).into_iter().next()
}

/// Exhaustive variant of [`decide_reject`]: every witnessing pair at this
/// node (used by the ablation probes; the protocol itself only needs
/// one).
pub fn decide_all_rejects(
    k: usize,
    myid: NodeId,
    own_sent: &[IdSeq],
    received_final: &[IdSeq],
) -> Vec<RejectWitness> {
    assert!(k >= 3);
    let half = k / 2;
    let mut out = Vec::new();
    if k % 2 == 1 {
        // Both sequences received, length ⌊k/2⌋ each.
        for (i, l1) in received_final.iter().enumerate() {
            if l1.len() != half {
                continue;
            }
            for l2 in &received_final[i + 1..] {
                if l2.len() != half {
                    continue;
                }
                if l1.union_size_with(l2, myid) == k {
                    out.push(RejectWitness { l1: *l1, l2: *l2, myid, k });
                }
            }
        }
    } else {
        // Exactly one sequence from own S (contains myid), one received.
        for l1 in own_sent {
            if l1.len() != half {
                continue;
            }
            debug_assert_eq!(l1.last(), Some(myid), "own sequences end with myid");
            for l2 in received_final {
                if l2.len() != half {
                    continue;
                }
                if l1.union_size_with(l2, myid) == k {
                    out.push(RejectWitness { l1: *l1, l2: *l2, myid, k });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u64]) -> IdSeq {
        IdSeq::from_slice(ids)
    }

    #[test]
    fn odd_k_detects_disjoint_pair() {
        // C5 at w=50: received (10, 11) and (20, 21).
        let rec = vec![seq(&[10, 11]), seq(&[20, 21])];
        let w = decide_reject(5, 50, &[], &rec).expect("must reject");
        assert_eq!(w.cycle_ids(), vec![10, 11, 50, 21, 20]);
    }

    #[test]
    fn odd_k_ignores_overlap() {
        // Shared internal node 11: union size 4 ≠ 5.
        let rec = vec![seq(&[10, 11]), seq(&[20, 11])];
        assert!(decide_reject(5, 50, &[], &rec).is_none());
    }

    #[test]
    fn odd_k_ignores_sequences_containing_self() {
        let rec = vec![seq(&[10, 50]), seq(&[20, 21])];
        assert!(decide_reject(5, 50, &[], &rec).is_none());
    }

    #[test]
    fn even_k_pairs_own_with_received() {
        // C4 at w=50: own (10, 50), received (20, 21).
        let own = vec![seq(&[10, 50])];
        let rec = vec![seq(&[20, 21])];
        let w = decide_reject(4, 50, &own, &rec).expect("must reject");
        assert_eq!(w.cycle_ids(), vec![10, 50, 21, 20]);
    }

    #[test]
    fn even_k_never_pairs_two_received() {
        // The unsoundness the correction avoids: two received paths
        // sharing one node reach union size k without a cycle.
        let rec = vec![seq(&[10, 11]), seq(&[20, 21])];
        assert!(decide_reject(4, 50, &[], &rec).is_none());
    }

    #[test]
    fn even_k_requires_disjointness() {
        let own = vec![seq(&[10, 50])];
        let rec = vec![seq(&[10, 21])];
        assert!(decide_reject(4, 50, &own, &rec).is_none());
    }

    #[test]
    fn k3_detects_two_seeds() {
        let rec = vec![seq(&[1]), seq(&[2])];
        let w = decide_reject(3, 9, &[], &rec).expect("triangle");
        assert_eq!(w.cycle_ids(), vec![1, 9, 2]);
    }

    #[test]
    fn wrong_lengths_are_skipped() {
        // Stale shorter sequences must not participate.
        let rec = vec![seq(&[1]), seq(&[2]), seq(&[3, 4])];
        assert!(decide_reject(5, 9, &[], &rec).is_none());
    }

    #[test]
    fn witness_cycle_has_k_distinct_ids() {
        let rec = vec![seq(&[10, 11, 12]), seq(&[20, 21, 22])];
        let w = decide_reject(7, 50, &[], &rec).unwrap();
        let mut ids = w.cycle_ids();
        assert_eq!(ids.len(), 7);
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 7);
    }
}
