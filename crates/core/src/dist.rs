//! The distributed tester executor: a coordinator that partitions the
//! graph across worker processes (or protocol-identical worker
//! threads) and drives lock-step rounds over the
//! [`ck_congest::net`] frame protocol.
//!
//! This is the protocol-specific half of the distributed executor —
//! the generic engine cannot ship arbitrary in-process programs, but
//! [`CkTester`] is fully described by a [`TesterConfig`] plus the
//! graph, so a [`JobSpec`] frame reconstructs byte-identical node
//! programs inside every worker. Each worker steps its contiguous
//! node range through a [`PartitionEngine`] (the *same* fused send
//! path as the in-process sequential oracle); cross-partition
//! deliveries travel as `Msg` frames whose payload is the canonical
//! [`CkCodec`] bit string and whose header carries the
//! [`ContextCodec`] handshake word, so the receiving worker rebuilds
//! the sender's codec without any shared round state.
//!
//! ## Protocol
//!
//! ```text
//! worker  → Hello(magic, index)
//! coord   → Spec(job)                  worker → Ready
//! per round r:
//!   coord → Go(r)
//!   worker: step; → Msg* ; → Done(r, digest)     [Heartbeat freely]
//!   coord: merge digests, route every Msg to its owner
//!   coord → Msg* ; → Barrier(r)        worker: inject, commit
//! coord   → Finish                     worker → Verdicts
//! any failure: coord → Abort / worker → Error
//! ```
//!
//! Every failure is a typed [`NetError`] produced within the
//! configured deadlines (see the [`ck_congest::net`] failure table);
//! [`crate::tester`] degrades a failed distributed run to the
//! sequential oracle and records the fallback in the run report.

use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
// ck-lint: allow(determinism, reason = "Instant only drives heartbeat liveness deadlines; a late worker becomes a typed NetError and the run falls back to the sequential oracle, so verdict bits never depend on the clock")
use std::time::{Duration, Instant};

use ck_congest::engine::{BandwidthPolicy, EngineConfig, EngineError, Executor, RunOutcome};
use ck_congest::graph::Graph;
use ck_congest::message::{BitReader, ContextCodec, WireCodec, WireParams};
use ck_congest::metrics::{NetReport, RunReport};
use ck_congest::net::chaos::{ChaosPlan, ChaosTransport};
use ck_congest::net::frame::{
    decode_msg_body, encode_msg_body, read_frame, ByteReader, ByteWriter, Deadline, Frame,
    FrameError, FrameKind, MsgHeader,
};
use ck_congest::net::link::{connect_with_retry, HeartbeatHandle, SharedWriter};
use ck_congest::net::partition::{partition_range, OutFrame, PartitionEngine, RoundDigest};
use ck_congest::net::{LostCause, NetError, NetOptions};

use crate::decide::RejectWitness;
use crate::msg::{CkCodec, CkMsg, EdgeTag};
use crate::prune::PrunerKind;
use crate::scan::ScanBackend;
use crate::seq::IdSeq;
use crate::tester::{CkTester, NodeVerdict, Rejection, TesterConfig};

/// Hello-frame magic: protocol name + version byte.
const MAGIC: &[u8; 4] = b"ckd1";

/// A distributed run fails in one of two distinct worlds.
#[derive(Debug)]
pub enum DistError {
    /// The transport failed — candidates for graceful degradation.
    Net(NetError),
    /// The *computation* failed exactly as the oracle would have
    /// (bandwidth enforcement); never retried, always surfaced.
    Engine(EngineError),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Net(e) => write!(f, "{e}"),
            DistError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DistError {}

// ---------------------------------------------------------------------------
// Job spec: everything a worker needs to rebuild its partition.
// ---------------------------------------------------------------------------

/// The serialized job a worker reconstructs its partition from. The
/// fault plan ships its internal fixed-point thresholds
/// ([`ck_congest::fault::FaultPlan::to_bytes`]), so worker-side fault
/// coins replay bit-identically to the oracle's.
pub struct JobSpec {
    /// The input graph (edge-list interchange form).
    pub graph: Graph,
    /// Tester parameters.
    pub cfg: TesterConfig,
    /// Engine parameters (`max_rounds` already resolved to the
    /// schedule's total).
    pub engine: EngineConfig,
    /// Total worker count.
    pub workers: u32,
    /// This worker's index.
    pub worker: u32,
    /// Chaos: die (hard-abort or link close) when told to run this
    /// round.
    pub abort_at_round: Option<u32>,
    /// Worker heartbeat interval.
    pub heartbeat_ms: u64,
    /// Coordinator round deadline; the worker's idle bound derives
    /// from it.
    pub round_deadline_ms: u64,
}

fn pruner_tag(p: PrunerKind) -> u8 {
    match p {
        PrunerKind::Literal => 0,
        PrunerKind::Representative => 1,
    }
}

fn scan_tag(s: ScanBackend) -> u8 {
    match s {
        ScanBackend::Scalar => 0,
        ScanBackend::Lanes => 1,
        ScanBackend::Simd => 2,
        ScanBackend::Hybrid => 3,
    }
}

impl JobSpec {
    /// Encodes the spec as a `Spec` frame body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bytes(self.graph.to_edge_list().as_bytes());
        w.u32(self.cfg.k as u32);
        w.f64(self.cfg.eps);
        w.u64(self.cfg.seed);
        match self.cfg.repetitions {
            Some(r) => {
                w.u8(1);
                w.u32(r);
            }
            None => w.u8(0),
        }
        w.u8(pruner_tag(self.cfg.pruner));
        w.u8(scan_tag(self.cfg.scan));
        w.u8(self.cfg.early_abort as u8);
        match self.cfg.assumed_loss {
            Some(l) => {
                w.u8(1);
                w.f64(l);
            }
            None => w.u8(0),
        }
        w.u8(self.cfg.verify_witnesses as u8);
        w.u32(self.engine.max_rounds);
        match self.engine.bandwidth {
            BandwidthPolicy::Measure => w.u8(0),
            BandwidthPolicy::Enforce { bits } => {
                w.u8(1);
                w.u64(bits);
            }
        }
        w.u8(self.engine.record_rounds as u8);
        w.bytes(&self.engine.faults.to_bytes());
        w.u32(self.workers);
        w.u32(self.worker);
        match self.abort_at_round {
            Some(r) => {
                w.u8(1);
                w.u32(r);
            }
            None => w.u8(0),
        }
        w.u64(self.heartbeat_ms);
        w.u64(self.round_deadline_ms);
        w.0
    }

    /// Decodes a `Spec` frame body; all failures are typed.
    pub fn from_bytes(body: &[u8]) -> Result<JobSpec, FrameError> {
        let mut r = ByteReader::new(body);
        let edge_text = std::str::from_utf8(r.bytes()?)
            .map_err(|_| FrameError::BadBody("graph text is not UTF-8"))?
            .to_string();
        let graph = Graph::from_edge_list(&edge_text)
            .map_err(|_| FrameError::BadBody("unparsable graph edge list"))?;
        let k = r.u32()? as usize;
        let eps = r.f64()?;
        let seed = r.u64()?;
        let repetitions = if r.u8()? != 0 { Some(r.u32()?) } else { None };
        let pruner = match r.u8()? {
            0 => PrunerKind::Literal,
            1 => PrunerKind::Representative,
            _ => return Err(FrameError::BadBody("unknown pruner tag")),
        };
        let scan = match r.u8()? {
            0 => ScanBackend::Scalar,
            1 => ScanBackend::Lanes,
            2 => ScanBackend::Simd,
            3 => ScanBackend::Hybrid,
            _ => return Err(FrameError::BadBody("unknown scan tag")),
        };
        let early_abort = r.u8()? != 0;
        let assumed_loss = if r.u8()? != 0 { Some(r.f64()?) } else { None };
        let verify_witnesses = r.u8()? != 0;
        let mut cfg = TesterConfig::new(3, 0.5, 0);
        cfg.k = k;
        cfg.eps = eps;
        cfg.seed = seed;
        cfg.repetitions = repetitions;
        cfg.pruner = pruner;
        cfg.scan = scan;
        cfg.early_abort = early_abort;
        cfg.assumed_loss = assumed_loss;
        cfg.verify_witnesses = verify_witnesses;
        cfg.validate().map_err(|_| FrameError::BadBody("tester config out of domain"))?;
        let max_rounds = r.u32()?;
        let bandwidth = match r.u8()? {
            0 => BandwidthPolicy::Measure,
            1 => BandwidthPolicy::Enforce { bits: r.u64()? },
            _ => return Err(FrameError::BadBody("unknown bandwidth tag")),
        };
        let record_rounds = r.u8()? != 0;
        let faults = ck_congest::fault::FaultPlan::from_bytes(r.bytes()?)?;
        let engine = EngineConfig {
            max_rounds,
            bandwidth,
            // The worker's partition loop is the sequential fused
            // path; the executor field is irrelevant inside it.
            executor: Executor::Sequential,
            record_rounds,
            faults,
            net: NetOptions::default(),
        };
        let workers = r.u32()?;
        let worker = r.u32()?;
        if workers == 0 || worker >= workers {
            return Err(FrameError::BadBody("worker index outside worker count"));
        }
        let abort_at_round = if r.u8()? != 0 { Some(r.u32()?) } else { None };
        let heartbeat_ms = r.u64()?;
        let round_deadline_ms = r.u64()?;
        r.finish()?;
        Ok(JobSpec {
            graph,
            cfg,
            engine,
            workers,
            worker,
            abort_at_round,
            heartbeat_ms,
            round_deadline_ms,
        })
    }
}

// ---------------------------------------------------------------------------
// Verdict serialization (worker → coordinator).
// ---------------------------------------------------------------------------

fn encode_seq(w: &mut ByteWriter, s: &IdSeq) {
    w.u8(s.len() as u8);
    for id in s.iter() {
        w.u64(id);
    }
}

fn decode_seq(r: &mut ByteReader<'_>) -> Result<IdSeq, FrameError> {
    let len = r.u8()? as usize;
    if len > crate::seq::MAX_SEQ_LEN {
        return Err(FrameError::BadBody("sequence length exceeds MAX_SEQ_LEN"));
    }
    let mut ids = Vec::with_capacity(len);
    for _ in 0..len {
        ids.push(r.u64()?);
    }
    Ok(IdSeq::from_slice(&ids))
}

/// Encodes a worker's verdict slice as a `Verdicts` frame body.
pub fn encode_verdicts(verdicts: &[NodeVerdict]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u32(verdicts.len() as u32);
    for v in verdicts {
        w.u8(v.rejected as u8);
        match v.first_rejection.as_deref() {
            Some(rej) => {
                w.u8(1);
                w.u32(rej.repetition);
                w.u64(rej.tag.rank);
                w.u64(rej.tag.lo);
                w.u64(rej.tag.hi);
                encode_seq(&mut w, &rej.witness.l1);
                encode_seq(&mut w, &rej.witness.l2);
                w.u64(rej.witness.myid);
                w.u32(rej.witness.k as u32);
            }
            None => w.u8(0),
        }
        w.u64(v.max_sent_seqs as u64);
        w.u64(v.pool_outstanding);
    }
    w.0
}

/// Decodes a `Verdicts` frame body.
pub fn decode_verdicts(body: &[u8]) -> Result<Vec<NodeVerdict>, FrameError> {
    let mut r = ByteReader::new(body);
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let rejected = r.u8()? != 0;
        let first_rejection = if r.u8()? != 0 {
            let repetition = r.u32()?;
            let (rank, lo, hi) = (r.u64()?, r.u64()?, r.u64()?);
            if lo >= hi {
                return Err(FrameError::BadBody("edge tag endpoints must satisfy lo < hi"));
            }
            let l1 = decode_seq(&mut r)?;
            let l2 = decode_seq(&mut r)?;
            let myid = r.u64()?;
            let k = r.u32()? as usize;
            Some(Box::new(Rejection {
                repetition,
                tag: EdgeTag { rank, lo, hi },
                witness: RejectWitness { l1, l2, myid, k },
            }))
        } else {
            None
        };
        let max_sent_seqs = r.u64()? as usize;
        let pool_outstanding = r.u64()?;
        out.push(NodeVerdict { rejected, first_rejection, max_sent_seqs, pool_outstanding });
    }
    r.finish()?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// Encodes one cross-partition delivery as a `Msg` frame body — the
/// exact bytes a worker puts on the wire:
///
/// ```text
/// [receiver u32 LE][port u32 LE][ctx u16 LE][bit_len u32 LE][payload]
/// ```
///
/// `ctx` is the [`ContextCodec`] word (the Phase-2 `seq_len` for
/// nonempty `Seqs` bundles, `0` otherwise) and `payload` is the
/// canonical [`CkCodec`] bit string — exactly `bit_len` bits,
/// zero-padded MSB-first to `ceil(bit_len/8)` bytes, matching the
/// `wire_bits` accounting of the in-process engine bit for bit.
pub fn encode_out_frame(f: &OutFrame<CkMsg>, params: &WireParams) -> Result<Vec<u8>, FrameError> {
    let seq_len = match &f.msg {
        CkMsg::Seqs { seqs, .. } => seqs.as_slice().first().map(|s| s.len()).unwrap_or(0),
        _ => 0,
    };
    let codec = CkCodec::new(seq_len);
    let ctx = codec.context_for(&f.msg);
    let buf = codec.encode_to_buf(&f.msg, params).map_err(FrameError::Codec)?;
    let header =
        MsgHeader { receiver: f.receiver, port: f.port, ctx, bit_len: buf.len_bits() as u32 };
    Ok(encode_msg_body(&header, buf.as_bytes()))
}

/// Decodes a `Msg` frame body back into a delivery, rebuilding the
/// sender's codec from the context word.
///
/// Total on every input: any truncation, context word outside
/// `0..=MAX_SEQ_LEN`, payload/`bit_len` disagreement, or codec
/// failure is a typed [`FrameError`]; no byte past the announced
/// payload is ever read.
pub fn decode_in_frame(body: &[u8], params: &WireParams) -> Result<(MsgHeader, CkMsg), FrameError> {
    let (header, payload) = decode_msg_body(body)?;
    let codec = CkCodec::from_context(header.ctx)
        .ok_or(FrameError::BadBody("context word out of domain"))?;
    let mut bits = BitReader::new(payload, u64::from(header.bit_len));
    let msg = codec.decode(params, &mut bits).map_err(FrameError::Codec)?;
    Ok((header, msg))
}

/// Serves one worker connection until `Finish`/`Abort` (or a typed
/// failure, reported to the coordinator as an `Error` frame on a
/// best-effort basis). `hard_abort` selects how a scheduled
/// [`ChaosPlan::abort_at_round`] dies: `std::process::abort()` in a
/// spawned worker process, a silent link close for in-process worker
/// threads.
pub fn worker_serve(stream: TcpStream, index: u32, hard_abort: bool) -> Result<(), FrameError> {
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone().map_err(FrameError::from)?;
    reader.set_read_timeout(Some(Duration::from_millis(20))).map_err(FrameError::from)?;
    let writer = SharedWriter::new(stream);
    let result = worker_serve_inner(&mut reader, &writer, index, hard_abort);
    if let Err(e) = &result {
        let _ = writer.send(FrameKind::Error, e.to_string().as_bytes());
    }
    result
}

fn worker_serve_inner(
    reader: &mut TcpStream,
    writer: &SharedWriter<TcpStream>,
    index: u32,
    hard_abort: bool,
) -> Result<(), FrameError> {
    let mut hello = Vec::with_capacity(8);
    hello.extend_from_slice(MAGIC);
    hello.extend_from_slice(&index.to_le_bytes());
    writer.send(FrameKind::Hello, &hello)?;

    let spec_frame = read_frame(reader, &Deadline::after_ms(30_000))?;
    if spec_frame.kind != FrameKind::Spec {
        return Err(FrameError::BadBody("expected a Spec frame"));
    }
    let spec = JobSpec::from_bytes(&spec_frame.body)?;
    let params = WireParams::for_graph(&spec.graph);
    let cfg = spec.cfg;
    let mut engine = PartitionEngine::new(
        &spec.graph,
        &spec.engine,
        params,
        spec.workers,
        spec.worker,
        |init| CkTester::new(&cfg, &init),
    );

    let hb =
        HeartbeatHandle::spawn(writer.clone(), Duration::from_millis(spec.heartbeat_ms.max(1)));
    writer.send(FrameKind::Ready, &[])?;

    // The worker's own liveness bound: a coordinator silent for ten
    // round deadlines is gone; exit instead of lingering forever.
    let idle_ms = spec.round_deadline_ms.saturating_mul(10).max(10_000);
    let mut out: Vec<OutFrame<CkMsg>> = Vec::new();
    loop {
        let frame = read_frame(reader, &Deadline::after_ms(idle_ms))?;
        match frame.kind {
            FrameKind::Go => {
                let round = round_of(&frame)?;
                if spec.abort_at_round == Some(round) {
                    if hard_abort {
                        // A death the coordinator cannot tell from
                        // `kill -9`: no unwinding, no goodbye frame.
                        std::process::abort();
                    }
                    hb.stop();
                    let _ = reader.shutdown(Shutdown::Both);
                    return Ok(());
                }
                out.clear();
                let digest = engine.step_round(round, &mut out);
                for f in &out {
                    writer.send(FrameKind::Msg, &encode_out_frame(f, &params)?)?;
                }
                let mut done = Vec::with_capacity(4 + 128);
                done.extend_from_slice(&round.to_le_bytes());
                done.extend_from_slice(&digest.to_bytes());
                writer.send(FrameKind::Done, &done)?;
            }
            FrameKind::Msg => {
                let (header, msg) = decode_in_frame(&frame.body, &params)?;
                engine.inject(header.receiver, header.port, msg)?;
            }
            FrameKind::Barrier => engine.commit_round(),
            FrameKind::Finish => {
                writer.send(FrameKind::Verdicts, &encode_verdicts(&engine.verdicts()))?;
                hb.stop();
                return Ok(());
            }
            FrameKind::Abort => {
                hb.stop();
                return Ok(());
            }
            FrameKind::Heartbeat => {}
            _ => return Err(FrameError::BadBody("unexpected frame kind at worker")),
        }
    }
}

fn round_of(frame: &Frame) -> Result<u32, FrameError> {
    let b: [u8; 4] = frame
        .body
        .as_slice()
        .try_into()
        .map_err(|_| FrameError::BadBody("round frame body must be 4 bytes"))?;
    Ok(u32::from_le_bytes(b))
}

/// Process-mode worker entry point (the `ckprobe net-worker`
/// subcommand): connect to the coordinator and serve.
pub fn worker_main(addr: &str, index: u32) -> Result<(), String> {
    let stream = connect_with_retry(addr, 8, 20).map_err(|e| e.to_string())?;
    worker_serve(stream, index, true).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

struct WorkerLink {
    reader: TcpStream,
    writer: ChaosTransport<TcpStream>,
    // ck-lint: allow(determinism, reason = "liveness bookkeeping only; see the use-declaration allow")
    last_beat: Instant,
    child: Option<std::process::Child>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WorkerLink {
    fn shutdown(&mut self) {
        let _ = self.reader.shutdown(Shutdown::Both);
    }

    fn reap(&mut self) {
        self.shutdown();
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        if let Some(join) = self.thread.take() {
            let _ = join.join();
        }
    }
}

struct Coordinator {
    links: Vec<WorkerLink>,
    net: NetOptions,
    report_net: NetReport,
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        for link in &mut self.links {
            link.reap();
        }
    }
}

impl Coordinator {
    /// Best-effort broadcast of `Abort`, then teardown (also performed
    /// by `Drop` on every early exit).
    fn abort_all(&mut self) {
        for link in &mut self.links {
            let _ = write_framed(&mut link.writer, FrameKind::Abort, &[]);
        }
    }

    /// Sends one frame to worker `w`; a write failure is the link
    /// observing that worker's death.
    fn send_to(
        &mut self,
        w: usize,
        kind: FrameKind,
        body: &[u8],
        round: u32,
    ) -> Result<(), NetError> {
        write_framed(&mut self.links[w].writer, kind, body).map_err(|_| {
            self.links[w].shutdown();
            NetError::WorkerLost { worker: w as u32, round, cause: LostCause::Death }
        })
    }

    /// Reads the next protocol frame from worker `w`, consuming (and
    /// counting) heartbeats, bounded by `deadline`.
    fn read_protocol(
        &mut self,
        w: usize,
        deadline: &Deadline,
        round: u32,
    ) -> Result<Frame, NetError> {
        loop {
            match read_frame(&mut self.links[w].reader, deadline) {
                Ok(f) if f.kind == FrameKind::Heartbeat => {
                    // ck-lint: allow(determinism, reason = "heartbeat timestamping; liveness only")
                    self.links[w].last_beat = Instant::now();
                    self.report_net.heartbeats += 1;
                }
                Ok(f) if f.kind == FrameKind::Error => {
                    return Err(NetError::Worker {
                        worker: w as u32,
                        detail: String::from_utf8_lossy(&f.body).into_owned(),
                    });
                }
                Ok(f) => return Ok(f),
                Err(FrameError::TimedOut) => {
                    // The deadline decides *that* the worker is lost;
                    // heartbeat freshness decides *why*.
                    let fresh = self.links[w].last_beat.elapsed()
                        <= Duration::from_millis(self.net.heartbeat_ms.saturating_mul(3).max(50));
                    let cause =
                        if fresh { LostCause::Deadline } else { LostCause::MissedHeartbeat };
                    return Err(NetError::WorkerLost { worker: w as u32, round, cause });
                }
                Err(FrameError::Truncated | FrameError::Io(_)) => {
                    return Err(NetError::WorkerLost {
                        worker: w as u32,
                        round,
                        cause: LostCause::Death,
                    });
                }
                Err(e) => {
                    return Err(NetError::Frame { worker: w as u32, round, err: e });
                }
            }
        }
    }
}

fn write_framed(
    w: &mut ChaosTransport<TcpStream>,
    kind: FrameKind,
    body: &[u8],
) -> std::io::Result<()> {
    ck_congest::net::frame::write_frame(w, kind, body)?;
    w.flush()
}

/// Runs the full tester distributed over `workers` partitions;
/// `engine.max_rounds` must already hold the schedule's total round
/// count (as [`crate::tester`] resolves it). On success the outcome is
/// bit-identical to the in-process sequential oracle — verdicts, round
/// statistics, and fault accounting included — plus the transport's
/// own [`NetReport`].
pub fn run_distributed(
    g: &Graph,
    cfg: &TesterConfig,
    engine: &EngineConfig,
    workers: u32,
) -> Result<RunOutcome<NodeVerdict>, DistError> {
    let w_count = workers.max(1);
    let net = engine.net.clone();
    let n = g.n();

    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| DistError::Net(NetError::Spawn(e.to_string())))?;
    let addr = listener
        .local_addr()
        .map_err(|e| DistError::Net(NetError::Spawn(e.to_string())))?
        .to_string();
    listener.set_nonblocking(true).map_err(|e| DistError::Net(NetError::Spawn(e.to_string())))?;

    // Spawn: worker processes when a command is configured, protocol-
    // identical worker threads over real sockets otherwise.
    let mut children: Vec<Option<std::process::Child>> = Vec::new();
    let mut threads: Vec<Option<std::thread::JoinHandle<()>>> = Vec::new();
    for i in 0..w_count {
        match &net.worker_cmd {
            Some(argv) => {
                let (head, rest) = argv
                    .split_first()
                    .ok_or(DistError::Net(NetError::Spawn("empty worker command".to_string())))?;
                let child = std::process::Command::new(head)
                    .args(rest)
                    .arg(&addr)
                    .arg(i.to_string())
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .spawn()
                    .map_err(|e| DistError::Net(NetError::Spawn(e.to_string())))?;
                children.push(Some(child));
                threads.push(None);
            }
            None => {
                let addr = addr.clone();
                let (retries, backoff) = (net.connect_retries, net.connect_backoff_ms);
                threads.push(Some(std::thread::spawn(move || {
                    if let Ok(stream) = connect_with_retry(&addr, retries, backoff) {
                        let _ = worker_serve(stream, i, false);
                    }
                })));
                children.push(None);
            }
        }
    }

    // Accept + Hello: workers self-identify, so process handles and
    // links stay index-aligned regardless of connect order.
    let mut slots: Vec<Option<WorkerLink>> = (0..w_count).map(|_| None).collect();
    let accept_deadline = Deadline::after_ms(net.connect_timeout_ms);
    let mut accepted = 0u32;
    while accepted < w_count {
        if accept_deadline.expired() {
            let missing = slots.iter().position(|s| s.is_none()).unwrap_or(0) as u32;
            teardown_partial(&mut slots, &mut children, &mut threads);
            return Err(DistError::Net(NetError::Connect {
                worker: missing,
                detail: "accept deadline passed before the handshake".to_string(),
            }));
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(e) => {
                teardown_partial(&mut slots, &mut children, &mut threads);
                return Err(DistError::Net(NetError::Spawn(e.to_string())));
            }
        };
        let _ = stream.set_nodelay(true);
        let index = match handshake(&stream, &accept_deadline, w_count, &slots) {
            Ok(i) => i,
            Err(e) => {
                teardown_partial(&mut slots, &mut children, &mut threads);
                return Err(DistError::Net(e));
            }
        };
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(e) => {
                teardown_partial(&mut slots, &mut children, &mut threads);
                return Err(DistError::Net(NetError::Connect {
                    worker: index,
                    detail: e.to_string(),
                }));
            }
        };
        let _ = reader.set_read_timeout(Some(Duration::from_millis(20)));
        let plan = match net.chaos {
            Some(c) if c.worker == index => c,
            _ => ChaosPlan::for_worker(index),
        };
        slots[index as usize] = Some(WorkerLink {
            reader,
            writer: ChaosTransport::new(stream, &plan),
            // ck-lint: allow(determinism, reason = "liveness baseline for the heartbeat monitor")
            last_beat: Instant::now(),
            child: children[index as usize].take(),
            thread: threads[index as usize].take(),
        });
        accepted += 1;
    }
    let links: Vec<WorkerLink> = slots.into_iter().flatten().collect();
    if links.len() != w_count as usize {
        // Unreachable while the accept loop above insists on
        // `accepted == workers`, but a typed error keeps the invariant
        // local instead of trusting it across the function.
        return Err(DistError::Net(NetError::Connect {
            worker: 0,
            detail: "accept loop finished with unfilled worker slots".to_string(),
        }));
    }
    let mut coord = Coordinator {
        links,
        net: net.clone(),
        report_net: NetReport { workers: w_count, ..NetReport::default() },
    };

    // Spec out, Ready back.
    for i in 0..w_count as usize {
        let abort_at_round = match net.chaos {
            Some(c) if c.worker == i as u32 => c.abort_at_round,
            _ => None,
        };
        let spec = JobSpec {
            graph: g.clone(),
            cfg: *cfg,
            engine: engine.clone(),
            workers: w_count,
            worker: i as u32,
            abort_at_round,
            heartbeat_ms: net.heartbeat_ms,
            round_deadline_ms: net.round_deadline_ms,
        };
        coord.send_to(i, FrameKind::Spec, &spec.to_bytes(), 0).map_err(DistError::Net)?;
    }
    let ready_deadline = Deadline::after_ms(net.connect_timeout_ms);
    for i in 0..w_count as usize {
        let f = coord.read_protocol(i, &ready_deadline, 0).map_err(DistError::Net)?;
        if f.kind != FrameKind::Ready {
            return Err(DistError::Net(NetError::WorkerLost {
                worker: i as u32,
                round: 0,
                cause: LostCause::Protocol,
            }));
        }
    }

    let ranges: Vec<std::ops::Range<u32>> =
        (0..w_count).map(|i| partition_range(n, w_count, i)).collect();
    let mut report =
        RunReport { executor: "distributed", threads: w_count as usize, ..RunReport::default() };
    let mut active = n;
    let mut round = 0u32;
    // Buffered per round: `(owner, body)` of every routed delivery.
    let mut routed: Vec<(usize, Vec<u8>)> = Vec::new();
    while round < engine.max_rounds {
        if active == 0 {
            break;
        }
        // Scheduled coordinator-side chaos fires at the round boundary.
        if let Some((kw, kr)) = net.kill_worker {
            if kr == round && (kw as usize) < coord.links.len() {
                let link = &mut coord.links[kw as usize];
                match link.child.take() {
                    Some(mut child) => {
                        // The real thing: SIGKILL, no cleanup handlers.
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                    // Thread mode has no process to kill; severing the
                    // link is the same observable (EOF ⇒ Death).
                    None => link.shutdown(),
                }
            }
        }
        if let Some(c) = net.chaos {
            if c.disconnect_at_round == Some(round) && (c.worker as usize) < coord.links.len() {
                coord.links[c.worker as usize].shutdown();
            }
        }

        for i in 0..w_count as usize {
            coord.send_to(i, FrameKind::Go, &round.to_le_bytes(), round).map_err(DistError::Net)?;
        }

        // Collect this round: Msg frames buffer for routing, Done
        // frames carry the partition digests; merged in ascending
        // worker (= node-range) order so the leftmost-violation rule
        // matches the sequential fold.
        let deadline = Deadline::after_ms(net.round_deadline_ms);
        routed.clear();
        let mut digest = RoundDigest::default();
        for i in 0..w_count as usize {
            loop {
                let frame = coord.read_protocol(i, &deadline, round).map_err(DistError::Net)?;
                match frame.kind {
                    FrameKind::Msg => {
                        let (header, _) = decode_msg_body(&frame.body).map_err(|err| {
                            DistError::Net(NetError::Frame { worker: i as u32, round, err })
                        })?;
                        let owner = ranges
                            .iter()
                            .position(|r| r.contains(&header.receiver))
                            .ok_or(DistError::Net(NetError::Frame {
                                worker: i as u32,
                                round,
                                err: FrameError::BadBody("receiver outside the graph"),
                            }))?;
                        routed.push((owner, frame.body));
                    }
                    FrameKind::Done => {
                        if frame.body.len() < 4 || frame.body[0..4] != round.to_le_bytes() {
                            return Err(DistError::Net(NetError::WorkerLost {
                                worker: i as u32,
                                round,
                                cause: LostCause::Protocol,
                            }));
                        }
                        let part = RoundDigest::from_bytes(&frame.body[4..]).map_err(|err| {
                            DistError::Net(NetError::Frame { worker: i as u32, round, err })
                        })?;
                        digest = RoundDigest::merge(digest, part);
                        break;
                    }
                    _ => {
                        return Err(DistError::Net(NetError::WorkerLost {
                            worker: i as u32,
                            round,
                            cause: LostCause::Protocol,
                        }));
                    }
                }
            }
        }

        // Exactly the engine loop's post-round order: violation first
        // (the round's stats and faults are never recorded), then
        // fault totals, then the per-round report row.
        if let Some((node, port, bits)) = digest.violation {
            let limit = match engine.bandwidth {
                BandwidthPolicy::Enforce { bits } => bits,
                BandwidthPolicy::Measure => 0,
            };
            coord.abort_all();
            return Err(DistError::Engine(EngineError::BandwidthExceeded {
                round,
                node,
                port,
                bits,
                limit,
            }));
        }
        active -= digest.halted as usize;
        digest.add_faults_to(&mut report.faults);
        if engine.record_rounds {
            report.per_round.push(digest.to_stats(round, active + digest.halted as usize));
        }

        // Route, then barrier: a worker that saw `Barrier(r)` has, by
        // FIFO, already received every delivery of round `r`.
        for (owner, body) in routed.drain(..) {
            coord.report_net.frames_routed += 1;
            coord.report_net.frame_bytes += body.len() as u64;
            coord.send_to(owner, FrameKind::Msg, &body, round).map_err(DistError::Net)?;
        }
        for i in 0..w_count as usize {
            coord
                .send_to(i, FrameKind::Barrier, &round.to_le_bytes(), round)
                .map_err(DistError::Net)?;
            coord.report_net.barriers += 1;
        }
        round += 1;
    }

    // Verdict collection, in worker order = node order.
    let mut verdicts: Vec<NodeVerdict> = Vec::with_capacity(n);
    for i in 0..w_count as usize {
        coord.send_to(i, FrameKind::Finish, &[], round).map_err(DistError::Net)?;
    }
    let final_deadline = Deadline::after_ms(net.round_deadline_ms);
    for (i, range) in ranges.iter().enumerate() {
        let frame = coord.read_protocol(i, &final_deadline, round).map_err(DistError::Net)?;
        if frame.kind != FrameKind::Verdicts {
            return Err(DistError::Net(NetError::WorkerLost {
                worker: i as u32,
                round,
                cause: LostCause::Protocol,
            }));
        }
        let part = decode_verdicts(&frame.body)
            .map_err(|err| DistError::Net(NetError::Frame { worker: i as u32, round, err }))?;
        if part.len() != range.len() {
            return Err(DistError::Net(NetError::WorkerLost {
                worker: i as u32,
                round,
                cause: LostCause::Protocol,
            }));
        }
        verdicts.extend(part);
    }

    report.rounds = round;
    report.all_halted = active == 0;
    report.faults.crashed_nodes = engine.faults.crashed_by(round, n);
    report.net = Some(coord.report_net.clone());
    drop(coord); // Clean teardown before returning.
    Ok(RunOutcome { report, verdicts })
}

/// Reads and validates a Hello frame on a fresh connection.
fn handshake(
    stream: &TcpStream,
    deadline: &Deadline,
    workers: u32,
    slots: &[Option<WorkerLink>],
) -> Result<u32, NetError> {
    let mut reader =
        stream.try_clone().map_err(|e| NetError::Connect { worker: 0, detail: e.to_string() })?;
    let _ = reader.set_read_timeout(Some(Duration::from_millis(20)));
    let hello = read_frame(&mut reader, deadline)
        .map_err(|e| NetError::Connect { worker: 0, detail: format!("bad hello: {e}") })?;
    if hello.kind != FrameKind::Hello || hello.body.len() != 8 || &hello.body[0..4] != MAGIC {
        return Err(NetError::Connect {
            worker: 0,
            detail: "hello frame failed validation".to_string(),
        });
    }
    // The slice is exactly 4 bytes (hello.body.len() == 8 was just
    // validated), so the copy cannot fail.
    let mut idx_bytes = [0u8; 4];
    idx_bytes.copy_from_slice(&hello.body[4..8]);
    let index = u32::from_le_bytes(idx_bytes);
    if index >= workers || slots[index as usize].is_some() {
        return Err(NetError::Connect {
            worker: index,
            detail: "worker index out of range or duplicated".to_string(),
        });
    }
    Ok(index)
}

fn teardown_partial(
    slots: &mut [Option<WorkerLink>],
    children: &mut [Option<std::process::Child>],
    threads: &mut [Option<std::thread::JoinHandle<()>>],
) {
    for link in slots.iter_mut().flatten() {
        link.reap();
    }
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
        let _ = child.wait();
    }
    for join in threads.iter_mut().filter_map(Option::take) {
        let _ = join.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        let g = ck_congest::graph::GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 0)
            .build()
            .unwrap();
        JobSpec {
            graph: g,
            cfg: TesterConfig::new(4, 0.3, 7),
            engine: EngineConfig {
                executor: Executor::Sequential,
                max_rounds: 44,
                bandwidth: BandwidthPolicy::Enforce { bits: 4096 },
                ..EngineConfig::default()
            },
            workers: 3,
            worker: 1,
            abort_at_round: Some(9),
            heartbeat_ms: 50,
            round_deadline_ms: 2000,
        }
    }

    #[test]
    fn job_spec_roundtrip() {
        let spec = sample_spec();
        let bytes = spec.to_bytes();
        let back = JobSpec::from_bytes(&bytes).unwrap();
        assert_eq!(back.graph.to_edge_list(), spec.graph.to_edge_list());
        assert_eq!(back.cfg.k, spec.cfg.k);
        assert_eq!(back.cfg.seed, spec.cfg.seed);
        assert_eq!(back.engine.max_rounds, spec.engine.max_rounds);
        assert_eq!(back.engine.bandwidth, spec.engine.bandwidth);
        assert_eq!(back.workers, 3);
        assert_eq!(back.worker, 1);
        assert_eq!(back.abort_at_round, Some(9));
    }

    #[test]
    fn job_spec_every_prefix_fails_typed() {
        let bytes = sample_spec().to_bytes();
        for cut in 0..bytes.len() {
            assert!(JobSpec::from_bytes(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(JobSpec::from_bytes(&long).is_err(), "trailing byte");
    }

    #[test]
    fn verdict_roundtrip_including_witness() {
        let verdicts = vec![
            NodeVerdict::default(),
            NodeVerdict {
                rejected: true,
                first_rejection: Some(Box::new(Rejection {
                    repetition: 3,
                    tag: EdgeTag { rank: 17, lo: 2, hi: 9 },
                    witness: RejectWitness {
                        l1: IdSeq::from_slice(&[2, 5]),
                        l2: IdSeq::from_slice(&[9, 4]),
                        myid: 5,
                        k: 5,
                    },
                })),
                max_sent_seqs: 11,
                pool_outstanding: 2,
            },
        ];
        let body = encode_verdicts(&verdicts);
        assert_eq!(decode_verdicts(&body).unwrap(), verdicts);
        for cut in 0..body.len() {
            assert!(decode_verdicts(&body[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn msg_frame_roundtrip_via_context_handshake() {
        let g = ck_congest::graph::GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build()
            .unwrap();
        let params = WireParams::for_graph(&g);
        let msgs = [
            CkMsg::Rank(5),
            CkMsg::Abort,
            CkMsg::Seqs {
                tag: EdgeTag { rank: 1, lo: 0, hi: 2 },
                seqs: crate::msg::SeqBundle(vec![
                    IdSeq::from_slice(&[1, 2]),
                    IdSeq::from_slice(&[0, 2]),
                ]),
            },
        ];
        for msg in msgs {
            let out = OutFrame { receiver: 1, port: 0, msg: msg.clone() };
            let body = encode_out_frame(&out, &params).unwrap();
            let (header, back) = decode_in_frame(&body, &params).unwrap();
            assert_eq!(header.receiver, 1);
            assert_eq!(back, msg);
        }
    }
}
