//! A common interface over distributed property testers.
//!
//! The paper situates its algorithm in the distributed property-testing
//! framework of \[6, 7\]: a randomized distributed algorithm whose
//! network-level verdict (every node accepts / someone rejects) satisfies
//! the (1-sided) 2/3 guarantees. This module captures that contract as a
//! trait so the `Ck` tester, the prior-work baselines, and future testers
//! run under one harness — plus the standard *amplification* combinator
//! ("one can boost any success guarantee by repetition", §1.1).

use ck_congest::graph::Graph;

/// Network-level outcome of one tester execution, with the cost metrics
/// the CONGEST model cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// True if at least one node output reject.
    pub reject: bool,
    /// Synchronous rounds executed.
    pub rounds: u32,
    /// Messages sent in total.
    pub messages: u64,
    /// Bits sent in total.
    pub bits: u64,
    /// Worst per-directed-link load in one round, in bits.
    pub max_link_bits: u64,
}

/// A distributed property tester in the sense of \[7\]: given a network
/// and a seed, produce a network-level accept/reject.
///
/// Implementations promise 1-sidedness (their `reject` implies the
/// property is violated) unless documented otherwise; the ε-far
/// detection probability is tester-specific.
pub trait DistributedTester {
    /// Short machine-friendly name (`ck`, `triangle`, `c4`, `forest`).
    fn name(&self) -> &'static str;

    /// Human description of the tested property.
    fn property(&self) -> String;

    /// Executes once on `g` with the given seed.
    fn probe(&self, g: &Graph, seed: u64) -> ProbeOutcome;
}

/// Outcome of an amplified (repeated) run.
#[derive(Clone, Debug)]
pub struct AmplifiedOutcome {
    /// Per-trial outcomes.
    pub trials: Vec<ProbeOutcome>,
    /// Network-level decision after amplification: reject iff any trial
    /// rejected (sound for 1-sided testers).
    pub reject: bool,
}

impl AmplifiedOutcome {
    /// Fraction of trials that rejected.
    pub fn reject_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| t.reject).count() as f64 / self.trials.len() as f64
    }

    /// Total rounds across trials (sequential composition cost).
    pub fn total_rounds(&self) -> u64 {
        self.trials.iter().map(|t| u64::from(t.rounds)).sum()
    }
}

/// Runs `tester` `trials` times with derived seeds and ORs the verdicts —
/// for a 1-sided tester with per-run detection probability `p`, the
/// amplified failure probability is `(1−p)^trials` while soundness is
/// preserved exactly.
pub fn amplify(
    tester: &dyn DistributedTester,
    g: &Graph,
    base_seed: u64,
    trials: u32,
) -> AmplifiedOutcome {
    let trials: Vec<ProbeOutcome> = (0..trials)
        .map(|t| tester.probe(g, base_seed.wrapping_add(u64::from(t).wrapping_mul(0x9E37_79B9))))
        .collect();
    let reject = trials.iter().any(|t| t.reject);
    AmplifiedOutcome { trials, reject }
}

/// The paper's tester as a [`DistributedTester`].
pub struct CkFreenessTester {
    pub k: usize,
    pub eps: f64,
    /// Optional repetition override (None = the paper's schedule).
    pub repetitions: Option<u32>,
}

impl DistributedTester for CkFreenessTester {
    fn name(&self) -> &'static str {
        "ck"
    }

    fn property(&self) -> String {
        format!("C{}-freeness (ε = {})", self.k, self.eps)
    }

    fn probe(&self, g: &Graph, seed: u64) -> ProbeOutcome {
        let cfg = crate::tester::TesterConfig {
            repetitions: self.repetitions,
            ..crate::tester::TesterConfig::new(self.k, self.eps, seed)
        };
        let run = crate::session::TesterSession::from_config(
            cfg,
            ck_congest::engine::EngineConfig::default(),
        )
        // ck-lint: allow(no-panic, reason = "probe configs derive from a validated base; rejection here is a harness bug")
        .unwrap_or_else(|e| panic!("{e}"))
        .test(g)
        // ck-lint: allow(no-panic, reason = "default engine config has no faults, net, or bandwidth cap — the only EngineError sources")
        .expect("engine run");
        ProbeOutcome {
            reject: run.reject,
            rounds: run.outcome.report.rounds,
            messages: run.outcome.report.total_messages(),
            bits: run.outcome.report.total_bits(),
            max_link_bits: run.outcome.report.max_link_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::cycle;
    use ck_graphgen::planted::matched_free_instance;

    #[test]
    fn ck_tester_through_the_trait() {
        let t = CkFreenessTester { k: 5, eps: 0.1, repetitions: Some(2) };
        assert_eq!(t.name(), "ck");
        assert!(t.property().contains("C5"));
        let free = matched_free_instance(30, 5);
        let out = t.probe(&free, 1);
        assert!(!out.reject);
        assert!(out.rounds > 0 && out.messages > 0);
        let c5 = cycle(5);
        assert!(t.probe(&c5, 1).reject);
    }

    #[test]
    fn amplification_is_sound_and_boosts() {
        let t = CkFreenessTester { k: 4, eps: 0.2, repetitions: Some(1) };
        let free = matched_free_instance(24, 4);
        let amp = amplify(&t, &free, 9, 6);
        assert!(!amp.reject, "amplification preserves 1-sidedness");
        assert_eq!(amp.reject_rate(), 0.0);
        let c4 = cycle(4);
        let amp = amplify(&t, &c4, 9, 6);
        assert!(amp.reject);
        assert!(amp.reject_rate() > 0.0);
        assert_eq!(amp.trials.len(), 6);
        assert!(amp.total_rounds() >= 6);
    }
}
