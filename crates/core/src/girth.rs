//! Derived applications of the tester: multi-`k` sweeps and distributed
//! girth estimation.
//!
//! Theorem 1 gives a tester per fixed `k`; running the single-edge
//! detector for `k = 3, 4, …` from every edge (or the randomized tester
//! with enough repetitions) yields a *distributed girth probe*: the
//! smallest `k` whose detector rejects. Because the single-edge detector
//! is exact (Lemma 2), sweeping it over all edges computes the girth
//! exactly in `O(g·m)` sequential simulations — the distributed analog
//! of the classical BFS girth algorithm, and a natural "extension"
//! experiment for the paper's machinery.

use crate::prune::PrunerKind;
use crate::session::TesterSession;
use crate::single::detect_ck_through_edge;
use crate::tester::TesterConfig;
use ck_congest::engine::EngineConfig;
use ck_congest::graph::Graph;

/// Result of a multi-`k` freeness sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreenessProfile {
    /// Smallest `k` probed.
    pub k_min: usize,
    /// Per-`k` verdicts (`true` = a `Ck` was detected), indexed from
    /// `k_min`.
    pub detected: Vec<bool>,
}

impl FreenessProfile {
    /// Smallest detected cycle length, if any: with the exact sweep this
    /// *is* the girth (when ≤ the probed maximum).
    pub fn shortest_detected(&self) -> Option<usize> {
        self.detected.iter().position(|&d| d).map(|i| self.k_min + i)
    }
}

/// Exact sweep: runs the Lemma-2 single-edge detector for every
/// `k ∈ [3, k_max]` over every edge. Deterministic; `detected[k]` is
/// exactly "`g` contains a `Ck`".
pub fn exact_freeness_profile(g: &Graph, k_max: usize) -> FreenessProfile {
    assert!(k_max >= 3);
    let cfg = EngineConfig::default();
    let detected = (3..=k_max)
        .map(|k| {
            g.edges().iter().any(|&e| {
                detect_ck_through_edge(g, k, e, PrunerKind::Representative, &cfg)
                    // ck-lint: allow(no-panic, reason = "default engine config has no faults, net, or bandwidth cap — the only EngineError sources")
                    .expect("engine run")
                    .reject
            })
        })
        .collect();
    FreenessProfile { k_min: 3, detected }
}

/// Exact distributed girth (up to `k_max`): smallest cycle length
/// detected by the sweep, `None` if the graph has girth > `k_max` (or is
/// a forest).
pub fn girth_via_detectors(g: &Graph, k_max: usize) -> Option<usize> {
    exact_freeness_profile(g, k_max).shortest_detected()
}

/// Randomized sweep using the full tester (constant rounds per `k`,
/// detection probabilistic): the profile a real CONGEST deployment would
/// obtain in `O(k_max/ε)` rounds total.
pub fn sampled_freeness_profile(g: &Graph, k_max: usize, eps: f64, seed: u64) -> FreenessProfile {
    assert!(k_max >= 3);
    let detected = (3..=k_max)
        .map(|k| {
            let cfg = TesterConfig::new(k, eps, seed.wrapping_add(k as u64));
            TesterSession::from_config(cfg, EngineConfig::default())
                // ck-lint: allow(no-panic, reason = "k >= 3 is asserted above and eps comes from the caller contract; config rejection is a harness bug")
                .unwrap_or_else(|e| panic!("{e}"))
                .test(g)
                // ck-lint: allow(no-panic, reason = "default engine config has no faults, net, or bandwidth cap — the only EngineError sources")
                .expect("engine run")
                .reject
        })
        .collect();
    FreenessProfile { k_min: 3, detected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{complete_bipartite, cycle_cactus, grid, heawood, petersen};
    use ck_graphgen::random::random_tree;

    #[test]
    fn girth_matches_bfs_oracle() {
        let cases: Vec<Graph> =
            vec![petersen(), heawood(), grid(3, 4), cycle_cactus(3, 5), complete_bipartite(3, 3)];
        for g in &cases {
            let expected = g.girth().map(|x| x as usize);
            let got = girth_via_detectors(g, 8);
            assert_eq!(got, expected, "girth mismatch");
        }
    }

    #[test]
    fn forest_has_no_detected_cycles() {
        let t = random_tree(24, 5);
        let profile = exact_freeness_profile(&t, 7);
        assert!(profile.detected.iter().all(|&d| !d));
        assert_eq!(profile.shortest_detected(), None);
        assert_eq!(girth_via_detectors(&t, 7), None);
    }

    #[test]
    fn profile_matches_membership_per_k() {
        use ck_graphgen::farness::contains_ck;
        let g = petersen();
        let profile = exact_freeness_profile(&g, 9);
        for (i, &d) in profile.detected.iter().enumerate() {
            let k = 3 + i;
            assert_eq!(d, contains_ck(&g, k), "k={k}");
        }
    }

    #[test]
    fn sampled_profile_is_sound() {
        // Whatever the sampled profile claims detected must be real.
        use ck_graphgen::farness::contains_ck;
        let g = cycle_cactus(4, 4);
        let profile = sampled_freeness_profile(&g, 7, 0.1, 3);
        for (i, &d) in profile.detected.iter().enumerate() {
            if d {
                assert!(contains_ck(&g, 3 + i));
            }
        }
        // The cactus brims with C4s: the k=4 tester should catch one.
        assert!(profile.detected[1], "C4 missed on a C4 cactus");
    }
}
