//! # ck-core — distributed detection of cycles (SPAA 2017)
//!
//! Implementation of *Distributed Detection of Cycles* by Pierre
//! Fraigniaud and Dennis Olivetti (SPAA 2017): for every `k ≥ 3`, a
//! 1-sided-error distributed property-testing algorithm for
//! `Ck`-freeness running in `O(1/ε)` rounds of the CONGEST model.
//!
//! The crate decomposes the algorithm the way the paper does:
//!
//! * [`seq`] — the ordered ID-sequences exchanged by Phase 2;
//! * [`mod@prune`] — the representative-family pruning rule (Instructions
//!   13–24 of Algorithm 1), in a literal and an efficient implementation
//!   with identical semantics;
//! * [`decide`] — the final reject predicate (Instructions 31–42);
//! * [`single`] — `DetectCk(u, v)`: Phase 2 for one designated edge,
//!   deterministic, rejects **iff** a `Ck` passes through the edge
//!   (Lemma 2);
//! * [`scan`] — the collision-scan kernels: Phase-2 rejection and
//!   pruning as branchless batch sweeps over a lane-major sequence
//!   block (optionally `core::arch` SIMD via the `simd` feature), with
//!   the scalar paths preserved as the reference;
//! * [`rank`] — Phase 1: edge ranks, arbitration keys, repetition
//!   schedule (Lemmas 4 and 5);
//! * [`tester`] — the full tester: concurrent rank-arbitrated checks,
//!   `⌈(e²/ε)·ln 3⌉` repetitions (Theorem 1);
//! * [`session`] — the composable entry point: a
//!   [`session::TesterSession`] validates its configuration at build
//!   time and recycles engine workspace + per-node scratch across its
//!   `test` runs (batches recycle per-shard state internally);
//! * [`batch`] — the sharded multi-graph batch runner: whole instance
//!   families through reusable per-shard engine workspaces, bit-identical
//!   to one-by-one runs.
//!
//! ## Quick start
//!
//! ```
//! use ck_core::session::TesterSession;
//! use ck_graphgen::basic::cycle;
//! use ck_graphgen::planted::matched_free_instance;
//!
//! let mut session = TesterSession::builder(5, 0.1).seed(42).build().unwrap();
//!
//! // A graph that IS C5-free is accepted with probability 1 …
//! let free = matched_free_instance(30, 5);
//! assert!(!session.test(&free).unwrap().reject);
//!
//! // … while a 5-cycle is rejected.
//! let c5 = cycle(5);
//! assert!(session.test(&c5).unwrap().reject);
//! ```

pub mod ablation;
pub mod batch;
pub mod cost;
pub mod decide;
pub mod dist;
pub mod framework;
pub mod girth;
pub mod listing;
pub mod msg;
pub mod prune;
pub mod rank;
pub mod robust;
pub mod scan;
pub mod seq;
pub mod session;
pub mod single;
pub mod soa;
pub mod tester;

pub use batch::{BatchError, BatchFailure, BatchJob, BatchOptions};
// The legacy free-function entry points, kept importable at the crate
// root for out-of-tree callers mid-migration.
#[allow(deprecated)]
// ck-lint: allow(legacy-entry, reason = "the one sanctioned re-export keeping the deprecated name importable for out-of-tree callers mid-migration")
pub use batch::run_tester_batch;
pub use decide::{decide_reject, RejectWitness};
pub use msg::{CkCodec, CkMsg, EdgeTag, SeqBundle, SeqPool};
pub use prune::{
    build_send_set, build_send_set_into, build_send_set_scanned, lemma3_bound, prune, PrunerKind,
    SendSetScratch,
};
pub use rank::{repetitions_for, rounds_per_repetition, total_rounds, try_repetitions_for};
pub use scan::{
    decide_all_rejects_scanned, decide_reject_scanned, ScanBackend, ScanScratch, SeqBlock,
};
pub use seq::{IdSeq, MAX_K, MAX_SEQ_LEN};
pub use session::{TesterSession, TesterSessionBuilder};
pub use single::{detect_ck_through_edge, DetectSingle, SingleRun, SingleVerdict};
pub use soa::SoaArena;
#[allow(deprecated)]
// ck-lint: allow(legacy-entry, reason = "the one sanctioned re-export keeping deprecated names importable for out-of-tree callers mid-migration")
pub use tester::{run_tester, run_tester_reusing};
pub use tester::{
    test_ck_freeness, CkTester, CkTesterCore, ConfigError, NodeLayout, NodeScratch, NodeVerdict,
    TesterConfig, TesterRun, TesterScratch,
};
