//! From detection to *listing*: enumerate `Ck` copies with the paper's
//! machinery.
//!
//! Detection asks for one bit; listing asks for the copies themselves.
//! Because the single-edge detector is exact (Lemma 2) and its witnesses
//! are genuine cycles (Lemma 1 + the final predicate), sweeping it over
//! every edge and canonicalizing the recovered witnesses yields a sound
//! `Ck` lister. It is *not* complete in one pass — Lemma 3's pruning
//! deliberately drops same-remainder duplicates — so the lister iterates:
//! after each sweep the cycles found are "erased" (one edge of each is
//! removed from the working copy) and the sweep repeats until no more
//! copies surface. The result is a maximal set of cycles in the
//! edge-erasure sense, bounded below by the greedy packing number.

use crate::prune::PrunerKind;
use crate::single::detect_ck_through_edge;
use ck_congest::engine::EngineConfig;
use ck_congest::graph::{Edge, Graph, NodeIndex};
use ck_graphgen::farness::is_valid_ck;
use ck_graphgen::mutate::remove_edges;

/// A canonical cycle: vertex indices rotated to start at the minimum,
/// direction fixed by the smaller second element.
pub fn canonicalize_cycle(cycle: &[NodeIndex]) -> Vec<NodeIndex> {
    let k = cycle.len();
    // ck-lint: allow(no-panic, reason = "callers pass detector witnesses, which are k >= 3 cycles by construction")
    let (pos, _) = cycle.iter().enumerate().min_by_key(|&(_, &v)| v).expect("nonempty");
    let fwd: Vec<NodeIndex> = (0..k).map(|i| cycle[(pos + i) % k]).collect();
    let bwd: Vec<NodeIndex> = (0..k).map(|i| cycle[(pos + k - i) % k]).collect();
    if fwd[1..] <= bwd[1..] {
        fwd
    } else {
        bwd
    }
}

/// Outcome of a listing run.
#[derive(Clone, Debug)]
pub struct ListingOutcome {
    /// Canonicalized distinct cycles found.
    pub cycles: Vec<Vec<NodeIndex>>,
    /// Number of detector sweeps executed.
    pub sweeps: usize,
}

/// Lists `Ck` copies by iterated witness-sweeping (see module docs).
/// Every returned cycle is validated against the graph; the count is at
/// least the greedy edge-disjoint packing number.
pub fn list_ck(g: &Graph, k: usize) -> ListingOutcome {
    let cfg = EngineConfig::default();
    let mut working = g.clone();
    let mut seen: std::collections::BTreeSet<Vec<NodeIndex>> = std::collections::BTreeSet::new();
    let mut sweeps = 0;
    loop {
        sweeps += 1;
        let mut found_this_sweep: Vec<Vec<NodeIndex>> = Vec::new();
        for &e in working.edges() {
            let run = detect_ck_through_edge(&working, k, e, PrunerKind::Representative, &cfg)
                // ck-lint: allow(no-panic, reason = "default engine config has no faults, net, or bandwidth cap — the only EngineError sources")
                .expect("engine run");
            for v in &run.outcome.verdicts {
                for w in &v.all_witnesses {
                    let idx: Vec<NodeIndex> = w
                        .cycle_ids()
                        .iter()
                        // ck-lint: allow(no-panic, reason = "witness ids were emitted by verdicts over this same graph")
                        .map(|&id| working.index_of(id).expect("witness IDs exist"))
                        .collect();
                    debug_assert!(is_valid_ck(&working, k, &idx));
                    let canon = canonicalize_cycle(&idx);
                    if seen.insert(canon.clone()) {
                        found_this_sweep.push(canon);
                    }
                }
            }
        }
        if found_this_sweep.is_empty() {
            break;
        }
        // Erase one edge per newly found cycle (if still present) so the
        // next sweep can surface copies the pruning had shadowed.
        let mut to_remove: Vec<u32> = Vec::new();
        for c in &found_this_sweep {
            for i in 0..k {
                let e = Edge::new(c[i], c[(i + 1) % k]);
                if let Ok(idx) = working.edges().binary_search(&e) {
                    if !to_remove.contains(&(idx as u32)) {
                        to_remove.push(idx as u32);
                        break;
                    }
                }
            }
        }
        if to_remove.is_empty() {
            break;
        }
        working = remove_edges(&working, &to_remove);
    }
    ListingOutcome { cycles: seen.into_iter().collect(), sweeps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ck_graphgen::basic::{book, cycle, cycle_cactus, fan, petersen};
    use ck_graphgen::farness::{count_ck, greedy_ck_packing};

    #[test]
    fn canonical_form_is_rotation_and_reflection_invariant() {
        let base = vec![3u32, 1, 4, 2, 5];
        let canon = canonicalize_cycle(&base);
        assert_eq!(canon[0], 1);
        for rot in 0..5 {
            let rotated: Vec<u32> = (0..5).map(|i| base[(rot + i) % 5]).collect();
            assert_eq!(canonicalize_cycle(&rotated), canon);
            let reflected: Vec<u32> = rotated.iter().rev().copied().collect();
            assert_eq!(canonicalize_cycle(&reflected), canon);
        }
    }

    #[test]
    fn lists_the_lone_cycle() {
        for k in 3..8 {
            let g = cycle(k);
            let out = list_ck(&g, k);
            assert_eq!(out.cycles.len(), 1, "C{k}");
            assert!(is_valid_ck(&g, k, &out.cycles[0]));
        }
    }

    #[test]
    fn lists_all_cactus_blocks() {
        let g = cycle_cactus(5, 5);
        let out = list_ck(&g, 5);
        assert_eq!(out.cycles.len(), 5);
    }

    #[test]
    fn listing_covers_at_least_the_packing() {
        let graphs: Vec<(Graph, usize)> = vec![(petersen(), 5), (fan(3), 5), (book(4, 4), 4)];
        for (g, k) in graphs {
            let packing = greedy_ck_packing(&g, k).len();
            let listed = list_ck(&g, k).cycles.len();
            let exact = count_ck(&g, k) as usize;
            assert!(listed >= packing, "listed {listed} < packing {packing}");
            assert!(listed <= exact, "listed {listed} > exact {exact} — duplicates?");
            for c in &list_ck(&g, k).cycles {
                assert!(is_valid_ck(&g, k, c));
            }
        }
    }

    #[test]
    fn petersen_c5_listing_is_substantial() {
        // Petersen has 12 C5s; edge-erasure listing cannot get them all
        // (erasing edges kills overlapping copies) but must exceed the
        // packing (= 2: 15 edges / 5 per copy, overlapping).
        let g = petersen();
        let out = list_ck(&g, 5);
        let packing = greedy_ck_packing(&g, 5).len();
        assert!(out.cycles.len() >= packing);
        assert!(out.cycles.len() >= 3, "expected several C5s, got {}", out.cycles.len());
        assert!(out.sweeps >= 2);
    }

    #[test]
    fn ck_free_graph_lists_nothing() {
        let g = cycle_cactus(4, 6);
        let out = list_ck(&g, 5);
        assert!(out.cycles.is_empty());
        assert_eq!(out.sweeps, 1);
    }
}
