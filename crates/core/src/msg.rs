//! Message types of the tester protocols, with CONGEST wire accounting.

use crate::seq::IdSeq;
use ck_congest::graph::NodeId;
use ck_congest::message::{bits_for, WireMessage, WireParams};

/// Identity of a Phase-2 check: the edge under test and its Phase-1 rank.
/// Total order = (rank, endpoints): the arbitration key of Phase 1
/// ("ties are broken arbitrarily, e.g., based on the ID of extremities").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeTag {
    /// Phase-1 rank `r(e) ∈ [1, m²]`.
    pub rank: u64,
    /// Smaller endpoint identity.
    pub lo: NodeId,
    /// Larger endpoint identity.
    pub hi: NodeId,
}

impl EdgeTag {
    /// Builds a tag with canonical endpoint order.
    pub fn new(rank: u64, a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "an edge tag needs two distinct endpoints");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        EdgeTag { rank, lo, hi }
    }

    /// True if `id` is an endpoint of the tagged edge.
    pub fn is_endpoint(&self, id: NodeId) -> bool {
        id == self.lo || id == self.hi
    }
}

/// A bundle of sequences, the Phase-2 payload of the single-edge detector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqBundle(pub Vec<IdSeq>);

/// Encoded size of a sequence list: count prefix plus `len · id_bits` per
/// sequence (the receiver learns lengths from the round number; a
/// conservative per-sequence length field would not change the asymptotics
/// tracked by Lemma 3).
pub fn seqs_wire_bits(seqs: &[IdSeq], params: &WireParams) -> u64 {
    let ids: u64 = seqs.iter().map(|s| s.len() as u64).sum();
    u64::from(bits_for(seqs.len().max(1) as u64)) + ids * u64::from(params.id_bits)
}

impl WireMessage for SeqBundle {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        seqs_wire_bits(&self.0, params)
    }
}

/// Full-tester messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkMsg {
    /// Phase 1: the edge owner ships the rank to the other endpoint.
    Rank(u64),
    /// Phase 2: sequences for the check identified by `tag`.
    Seqs { tag: EdgeTag, seqs: Vec<IdSeq> },
    /// Early-abort extension: a node has rejected; the flag floods so
    /// everyone can skip the remaining repetitions (sound because only a
    /// genuine reject originates it).
    Abort,
}

impl WireMessage for CkMsg {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        match self {
            // One rank value (plus a 1-bit discriminant).
            CkMsg::Rank(_) => 1 + u64::from(params.rank_bits),
            // Tag (rank + both endpoint IDs) plus the sequence payload.
            CkMsg::Seqs { seqs, .. } => {
                1 + u64::from(params.rank_bits)
                    + 2 * u64::from(params.id_bits)
                    + seqs_wire_bits(seqs, params)
            }
            // A bare flag (discriminant only).
            CkMsg::Abort => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WireParams {
        WireParams { n: 64, m: 128, id_bits: 12, rank_bits: 14 }
    }

    #[test]
    fn edge_tag_orders_by_rank_then_endpoints() {
        let a = EdgeTag::new(5, 9, 3);
        assert_eq!((a.lo, a.hi), (3, 9));
        let b = EdgeTag::new(5, 1, 2);
        let c = EdgeTag::new(4, 100, 200);
        assert!(c < b && b < a);
        assert!(a.is_endpoint(3) && a.is_endpoint(9) && !a.is_endpoint(5));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn edge_tag_rejects_loops() {
        let _ = EdgeTag::new(1, 4, 4);
    }

    #[test]
    fn bundle_bits_scale_with_content() {
        let p = params();
        let small = SeqBundle(vec![IdSeq::from_slice(&[1])]);
        let big = SeqBundle(vec![IdSeq::from_slice(&[1, 2, 3]), IdSeq::from_slice(&[4, 5, 6])]);
        assert!(small.wire_bits(&p) < big.wire_bits(&p));
        assert_eq!(big.wire_bits(&p), bits_for(2) as u64 + 6 * 12);
    }

    #[test]
    fn ck_msg_bits() {
        let p = params();
        assert_eq!(CkMsg::Rank(7).wire_bits(&p), 15);
        let m = CkMsg::Seqs {
            tag: EdgeTag::new(7, 1, 2),
            seqs: vec![IdSeq::from_slice(&[1, 2])],
        };
        assert_eq!(m.wire_bits(&p), 1 + 14 + 24 + (1 + 24));
    }
}
