//! Message types of the tester protocols, with CONGEST wire accounting,
//! plus the recycling pool that makes heavy Phase-2 payloads
//! allocation-free in steady state.

use crate::seq::IdSeq;
use ck_congest::graph::NodeId;
use ck_congest::message::{bits_for, WireMessage, WireParams};

/// Identity of a Phase-2 check: the edge under test and its Phase-1 rank.
/// Total order = (rank, endpoints): the arbitration key of Phase 1
/// ("ties are broken arbitrarily, e.g., based on the ID of extremities").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeTag {
    /// Phase-1 rank `r(e) ∈ [1, m²]`.
    pub rank: u64,
    /// Smaller endpoint identity.
    pub lo: NodeId,
    /// Larger endpoint identity.
    pub hi: NodeId,
}

impl EdgeTag {
    /// Builds a tag with canonical endpoint order.
    pub fn new(rank: u64, a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "an edge tag needs two distinct endpoints");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        EdgeTag { rank, lo, hi }
    }

    /// True if `id` is an endpoint of the tagged edge.
    pub fn is_endpoint(&self, id: NodeId) -> bool {
        id == self.lo || id == self.hi
    }
}

/// A bundle of sequences — the Phase-2 payload. The backing `Vec` is
/// meant to circulate through a [`SeqPool`]: protocols build bundles
/// from pooled buffers, broadcast them by value (the engine parks the
/// payload in the sender's broadcast slot), and return the buffer to
/// the pool when the slot evicts it two rounds later. In steady state
/// no bundle construction allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqBundle(pub Vec<IdSeq>);

impl SeqBundle {
    /// The sequences, in the sender's canonical order.
    pub fn as_slice(&self) -> &[IdSeq] {
        &self.0
    }

    /// Number of sequences bundled.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no sequence is bundled.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Take/return recycling pool for the `Vec<IdSeq>` backings of
/// [`SeqBundle`]s, one per node program.
///
/// The cycle: `take` a buffer (reusing a returned one's capacity),
/// fill it, ship it inside a broadcast; when the engine's broadcast
/// slot evicts the payload two rounds later, `put` it back. After the
/// first two rounds every `take` is served from the free list — zero
/// steady-state allocation. The taken/returned counters make leaks
/// observable: `outstanding()` is bounded by the number of engine
/// slots that can hold this node's payloads (two — one per arena
/// generation) for a leak-free protocol.
#[derive(Debug, Default)]
pub struct SeqPool {
    free: Vec<Vec<IdSeq>>,
    taken: u64,
    returned: u64,
}

impl SeqPool {
    /// An empty pool.
    pub fn new() -> Self {
        SeqPool::default()
    }

    /// Takes a cleared buffer, recycling capacity when available.
    pub fn take(&mut self) -> Vec<IdSeq> {
        self.taken += 1;
        self.free.pop().unwrap_or_default()
    }

    /// Builds a bundle holding a copy of `seqs` in a pooled buffer.
    pub fn bundle_from(&mut self, seqs: &[IdSeq]) -> SeqBundle {
        let mut buf = self.take();
        buf.extend_from_slice(seqs);
        SeqBundle(buf)
    }

    /// Returns a bundle's buffer to the pool (cleared, capacity kept).
    pub fn put(&mut self, bundle: SeqBundle) {
        self.put_vec(bundle.0);
    }

    /// Returns a raw buffer to the pool (cleared, capacity kept).
    pub fn put_vec(&mut self, mut buf: Vec<IdSeq>) {
        buf.clear();
        self.returned += 1;
        self.free.push(buf);
    }

    /// Buffers taken and not (yet) returned — the leak indicator. For a
    /// slot-recycling protocol this never exceeds the number of arena
    /// generations (2), no matter how many rounds run.
    pub fn outstanding(&self) -> u64 {
        self.taken - self.returned
    }

    /// Total buffers ever taken.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Buffers currently resting in the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Resets the take/return accounting while keeping the free list —
    /// for pools recycled across independent runs (batch shards). The
    /// previous run's in-flight buffers (the ≤ 2 parked in engine
    /// broadcast slots) are dropped by the engine's workspace reset, so
    /// carrying their `outstanding` count into the next run would
    /// misreport a leak that is not there.
    pub fn reset_accounting(&mut self) {
        self.taken = 0;
        self.returned = 0;
    }
}

/// Encoded size of a sequence list: count prefix plus `len · id_bits` per
/// sequence (the receiver learns lengths from the round number; a
/// conservative per-sequence length field would not change the asymptotics
/// tracked by Lemma 3).
pub fn seqs_wire_bits(seqs: &[IdSeq], params: &WireParams) -> u64 {
    let ids: u64 = seqs.iter().map(|s| s.len() as u64).sum();
    u64::from(bits_for(seqs.len().max(1) as u64)) + ids * u64::from(params.id_bits)
}

impl WireMessage for SeqBundle {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        seqs_wire_bits(&self.0, params)
    }
}

/// Full-tester messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkMsg {
    /// Phase 1: the edge owner ships the rank to the other endpoint.
    Rank(u64),
    /// Phase 2: sequences for the check identified by `tag`, carried in
    /// a pooled bundle.
    Seqs { tag: EdgeTag, seqs: SeqBundle },
    /// Early-abort extension: a node has rejected; the flag floods so
    /// everyone can skip the remaining repetitions (sound because only a
    /// genuine reject originates it).
    Abort,
}

impl WireMessage for CkMsg {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        match self {
            // One rank value (plus a 1-bit discriminant).
            CkMsg::Rank(_) => 1 + u64::from(params.rank_bits),
            // Tag (rank + both endpoint IDs) plus the sequence payload.
            CkMsg::Seqs { seqs, .. } => {
                1 + u64::from(params.rank_bits)
                    + 2 * u64::from(params.id_bits)
                    + seqs.wire_bits(params)
            }
            // A bare flag (discriminant only).
            CkMsg::Abort => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WireParams {
        WireParams { n: 64, m: 128, id_bits: 12, rank_bits: 14 }
    }

    #[test]
    fn edge_tag_orders_by_rank_then_endpoints() {
        let a = EdgeTag::new(5, 9, 3);
        assert_eq!((a.lo, a.hi), (3, 9));
        let b = EdgeTag::new(5, 1, 2);
        let c = EdgeTag::new(4, 100, 200);
        assert!(c < b && b < a);
        assert!(a.is_endpoint(3) && a.is_endpoint(9) && !a.is_endpoint(5));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn edge_tag_rejects_loops() {
        let _ = EdgeTag::new(1, 4, 4);
    }

    #[test]
    fn bundle_bits_scale_with_content() {
        let p = params();
        let small = SeqBundle(vec![IdSeq::from_slice(&[1])]);
        let big = SeqBundle(vec![IdSeq::from_slice(&[1, 2, 3]), IdSeq::from_slice(&[4, 5, 6])]);
        assert!(small.wire_bits(&p) < big.wire_bits(&p));
        assert_eq!(big.wire_bits(&p), bits_for(2) as u64 + 6 * 12);
    }

    #[test]
    fn ck_msg_bits() {
        let p = params();
        assert_eq!(CkMsg::Rank(7).wire_bits(&p), 15);
        let m = CkMsg::Seqs {
            tag: EdgeTag::new(7, 1, 2),
            seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2])]),
        };
        assert_eq!(m.wire_bits(&p), 1 + 14 + 24 + (1 + 24));
    }

    #[test]
    fn pool_recycles_capacity_and_counts_leaks() {
        let mut pool = SeqPool::new();
        let b = pool.bundle_from(&[IdSeq::single(1), IdSeq::single(2)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(pool.outstanding(), 1);
        let cap = b.0.capacity();
        pool.put(b);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.pooled(), 1);
        // The recycled buffer comes back cleared with its capacity.
        let reused = pool.take();
        assert!(reused.is_empty());
        assert!(reused.capacity() >= cap);
        assert_eq!(pool.taken(), 2);
        assert_eq!(pool.outstanding(), 1);
        pool.put_vec(reused);
        assert_eq!(pool.outstanding(), 0);
    }
}
