//! Message types of the tester protocols, with CONGEST wire accounting,
//! plus the recycling pool that makes heavy Phase-2 payloads
//! allocation-free in steady state.

use crate::seq::{IdSeq, MAX_SEQ_LEN};
use ck_congest::graph::NodeId;
use ck_congest::message::{
    bits_for, flip_frame_bits, flips_for_entropy, BitReader, BitWriter, CodecError, ContextCodec,
    WireCodec, WireMessage, WireParams,
};

/// Identity of a Phase-2 check: the edge under test and its Phase-1 rank.
/// Total order = (rank, endpoints): the arbitration key of Phase 1
/// ("ties are broken arbitrarily, e.g., based on the ID of extremities").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EdgeTag {
    /// Phase-1 rank `r(e) ∈ [1, m²]`.
    pub rank: u64,
    /// Smaller endpoint identity.
    pub lo: NodeId,
    /// Larger endpoint identity.
    pub hi: NodeId,
}

impl EdgeTag {
    /// Builds a tag with canonical endpoint order.
    pub fn new(rank: u64, a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "an edge tag needs two distinct endpoints");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        EdgeTag { rank, lo, hi }
    }

    /// True if `id` is an endpoint of the tagged edge.
    pub fn is_endpoint(&self, id: NodeId) -> bool {
        id == self.lo || id == self.hi
    }
}

/// A bundle of sequences — the Phase-2 payload. The backing `Vec` is
/// meant to circulate through a [`SeqPool`]: protocols build bundles
/// from pooled buffers, broadcast them by value (the engine parks the
/// payload in the sender's broadcast slot), and return the buffer to
/// the pool when the slot evicts it two rounds later. In steady state
/// no bundle construction allocates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqBundle(pub Vec<IdSeq>);

impl SeqBundle {
    /// The sequences, in the sender's canonical order.
    pub fn as_slice(&self) -> &[IdSeq] {
        &self.0
    }

    /// Number of sequences bundled.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no sequence is bundled.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Take/return recycling pool for the `Vec<IdSeq>` backings of
/// [`SeqBundle`]s, one per node program.
///
/// The cycle: `take` a buffer (reusing a returned one's capacity),
/// fill it, ship it inside a broadcast; when the engine's broadcast
/// slot evicts the payload two rounds later, `put` it back. After the
/// first two rounds every `take` is served from the free list — zero
/// steady-state allocation. The taken/returned counters make leaks
/// observable: `outstanding()` is bounded by the number of engine
/// slots that can hold this node's payloads (two — one per arena
/// generation) for a leak-free protocol.
#[derive(Debug, Default)]
pub struct SeqPool {
    free: Vec<Vec<IdSeq>>,
    taken: u64,
    returned: u64,
}

impl SeqPool {
    /// An empty pool.
    pub fn new() -> Self {
        SeqPool::default()
    }

    /// Takes a cleared buffer, recycling capacity when available.
    pub fn take(&mut self) -> Vec<IdSeq> {
        self.taken += 1;
        self.free.pop().unwrap_or_default()
    }

    /// Builds a bundle holding a copy of `seqs` in a pooled buffer.
    pub fn bundle_from(&mut self, seqs: &[IdSeq]) -> SeqBundle {
        let mut buf = self.take();
        buf.extend_from_slice(seqs);
        SeqBundle(buf)
    }

    /// Returns a bundle's buffer to the pool (cleared, capacity kept).
    pub fn put(&mut self, bundle: SeqBundle) {
        self.put_vec(bundle.0);
    }

    /// Returns a raw buffer to the pool (cleared, capacity kept).
    pub fn put_vec(&mut self, mut buf: Vec<IdSeq>) {
        buf.clear();
        self.returned += 1;
        self.free.push(buf);
    }

    /// Buffers taken and not (yet) returned — the leak indicator. For a
    /// slot-recycling protocol this never exceeds the number of arena
    /// generations (2), no matter how many rounds run.
    pub fn outstanding(&self) -> u64 {
        self.taken - self.returned
    }

    /// Total buffers ever taken.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Buffers currently resting in the free list.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Resets the take/return accounting while keeping the free list —
    /// for pools recycled across independent runs (batch shards). The
    /// previous run's in-flight buffers (the ≤ 2 parked in engine
    /// broadcast slots) are dropped by the engine's workspace reset, so
    /// carrying their `outstanding` count into the next run would
    /// misreport a leak that is not there.
    pub fn reset_accounting(&mut self) {
        self.taken = 0;
        self.returned = 0;
    }
}

/// Encoded size of a sequence list: count prefix plus `len · id_bits` per
/// sequence (the receiver learns lengths from the round number; a
/// conservative per-sequence length field would not change the asymptotics
/// tracked by Lemma 3).
pub fn seqs_wire_bits(seqs: &[IdSeq], params: &WireParams) -> u64 {
    let ids: u64 = seqs.iter().map(|s| s.len() as u64).sum();
    u64::from(bits_for(seqs.len().max(1) as u64)) + ids * u64::from(params.id_bits)
}

impl WireMessage for SeqBundle {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        seqs_wire_bits(&self.0, params)
    }
}

/// Full-tester messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkMsg {
    /// Phase 1: the edge owner ships the rank to the other endpoint.
    Rank(u64),
    /// Phase 2: sequences for the check identified by `tag`, carried in
    /// a pooled bundle.
    Seqs { tag: EdgeTag, seqs: SeqBundle },
    /// Early-abort extension: a node has rejected; the flag floods so
    /// everyone can skip the remaining repetitions (sound because only a
    /// genuine reject originates it).
    Abort,
}

impl WireMessage for CkMsg {
    fn wire_bits(&self, params: &WireParams) -> u64 {
        match self {
            // One rank value (plus a 1-bit discriminant).
            CkMsg::Rank(_) => 1 + u64::from(params.rank_bits),
            // Tag (rank + both endpoint IDs) plus the sequence payload.
            CkMsg::Seqs { seqs, .. } => {
                1 + u64::from(params.rank_bits)
                    + 2 * u64::from(params.id_bits)
                    + seqs.wire_bits(params)
            }
            // A bare flag (discriminant only).
            CkMsg::Abort => 2,
        }
    }

    /// Tampers with this message *as bytes on the wire*: the frame is
    /// re-encoded through [`CkCodec`], `entropy`-selected bits are
    /// flipped, and the damaged frame is decoded under the same round
    /// context — exactly what a corrupting link does to a real frame.
    /// `None` (the codec rejected the damage) is a detected-and-dropped
    /// frame; `Some` garbage is delivered and must be survivable by the
    /// protocol's own validation.
    fn corrupt_frame(&self, params: &WireParams, entropy: u64) -> Option<Self> {
        // The round context is recoverable from the message itself: all
        // sequences in a bundle share one length by construction.
        let seq_len = match self {
            CkMsg::Seqs { seqs, .. } => seqs.as_slice().first().map(|s| s.len()).unwrap_or(0),
            _ => 0,
        };
        let codec = CkCodec::new(seq_len);
        let Ok(buf) = codec.encode_to_buf(self, params) else {
            return None;
        };
        let mut bytes = buf.as_bytes().to_vec();
        flip_frame_bits(&mut bytes, buf.len_bits(), entropy, flips_for_entropy(entropy));
        let mut reader = BitReader::new(&bytes, buf.len_bits());
        codec.decode(params, &mut reader).ok()
    }
}

/// The canonical byte codec for [`CkMsg`] — the [`WireCodec`] instance
/// backing [`CkMsg::wire_bits`] with real bits: for every message,
/// `encode` writes exactly `wire_bits` bits and `decode` inverts it.
///
/// Layout (all fields MSB-first):
///
/// | variant | bits |
/// |---|---|
/// | `Rank(r)` | `0`, then `r` in `rank_bits` |
/// | `Abort` | `1`, then `1` |
/// | `Seqs`  | `1`, then `tag.rank` (`rank_bits`), `tag.lo`, `tag.hi` (`id_bits` each), the sequence count `c` in `bits_for(max(c,1))` bits, then `c · seq_len` IDs (`id_bits` each) |
///
/// The first bit separates `Rank` from the rest; `Abort` and `Seqs`
/// separate by frame length (an `Abort` frame has exactly one bit after
/// the discriminant, a `Seqs` frame always more). Exactly like the
/// accounting in [`seqs_wire_bits`], the encoding carries **no
/// per-sequence length fields**: the CONGEST receiver knows every
/// sequence's length from the round number ("the receiver learns
/// lengths from the round number"), so that context — [`CkCodec::seq_len`]
/// — is codec state, set per round by a network executor, not payload
/// bits. Within that context the count prefix is self-delimiting:
/// `bits_for(max(c,1)) + c·seq_len·id_bits` is strictly increasing in
/// `c`, so the frame length determines `c` uniquely and the prefix
/// value is verified against it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CkCodec {
    /// Length of every sequence in a `Seqs` bundle under this round's
    /// context (`1..=MAX_SEQ_LEN`; irrelevant for `Rank`/`Abort`).
    pub seq_len: usize,
}

impl CkCodec {
    /// A codec for bundles of `seq_len`-ID sequences.
    ///
    /// # Panics
    /// Panics when `seq_len` exceeds [`MAX_SEQ_LEN`] (no protocol round
    /// ships longer sequences).
    pub fn new(seq_len: usize) -> Self {
        assert!(seq_len <= MAX_SEQ_LEN, "seq_len {seq_len} exceeds MAX_SEQ_LEN");
        CkCodec { seq_len }
    }
}

/// The codec-state handshake of the distributed executor: a `Msg` frame
/// ships `seq_len` as its context word, so a receiving worker — which
/// has no shared round counter to derive the Phase-2 sequence length
/// from — rebuilds the exact sender-side codec before touching the
/// payload bits. `Rank`/`Abort` frames (and empty bundles) travel under
/// context `0`; any word above [`MAX_SEQ_LEN`] is rejected as a typed
/// protocol error rather than trusted.
impl ContextCodec for CkCodec {
    fn context(&self) -> u16 {
        self.seq_len as u16
    }

    fn from_context(ctx: u16) -> Option<Self> {
        if usize::from(ctx) > MAX_SEQ_LEN {
            return None;
        }
        Some(CkCodec::new(usize::from(ctx)))
    }

    fn context_for(&self, msg: &CkMsg) -> u16 {
        match msg {
            // Bundle frames need the round's sequence length to split
            // the ID stream; control frames decode under any context.
            CkMsg::Seqs { seqs, .. } if !seqs.is_empty() => self.seq_len as u16,
            _ => 0,
        }
    }
}

impl WireCodec for CkCodec {
    type Msg = CkMsg;

    fn encode(
        &self,
        msg: &CkMsg,
        params: &WireParams,
        out: &mut BitWriter,
    ) -> Result<u64, CodecError> {
        // Validate everything *before* the first bit lands: an error
        // must leave `out` untouched, so callers packing several
        // messages into one frame never end up mis-framed.
        let fits = |value: u64, width: u32| -> Result<(), CodecError> {
            if width < 64 && value >> width != 0 {
                return Err(CodecError::Overflow { value, width });
            }
            Ok(())
        };
        match msg {
            CkMsg::Rank(r) => fits(*r, params.rank_bits)?,
            CkMsg::Abort => {}
            CkMsg::Seqs { tag, seqs } => {
                fits(tag.rank, params.rank_bits)?;
                fits(tag.lo, params.id_bits)?;
                fits(tag.hi, params.id_bits)?;
                if !seqs.is_empty() && self.seq_len == 0 {
                    return Err(CodecError::Invalid("a bundle of empty sequences is not framable"));
                }
                for s in seqs.as_slice() {
                    if s.len() != self.seq_len {
                        return Err(CodecError::Invalid(
                            "sequence length differs from the codec's round context",
                        ));
                    }
                    for id in s.iter() {
                        fits(id, params.id_bits)?;
                    }
                }
            }
        }

        let start = out.len_bits();
        match msg {
            CkMsg::Rank(r) => {
                out.push_bits(0, 1)?;
                out.push_bits(*r, params.rank_bits)?;
            }
            CkMsg::Abort => {
                out.push_bits(1, 1)?;
                out.push_bits(1, 1)?;
            }
            CkMsg::Seqs { tag, seqs } => {
                out.push_bits(1, 1)?;
                out.push_bits(tag.rank, params.rank_bits)?;
                out.push_bits(tag.lo, params.id_bits)?;
                out.push_bits(tag.hi, params.id_bits)?;
                let c = seqs.len();
                out.push_bits(c as u64, bits_for(c.max(1) as u64))?;
                for s in seqs.as_slice() {
                    for id in s.iter() {
                        out.push_bits(id, params.id_bits)?;
                    }
                }
            }
        }
        let bits = out.len_bits() - start;
        debug_assert_eq!(bits, msg.wire_bits(params), "encoded bits must equal wire_bits");
        Ok(bits)
    }

    fn decode(&self, params: &WireParams, r: &mut BitReader<'_>) -> Result<CkMsg, CodecError> {
        if r.read_bits(1)? == 0 {
            let rank = r.read_bits(params.rank_bits)?;
            if r.remaining_bits() != 0 {
                return Err(CodecError::TrailingBits { remaining: r.remaining_bits() });
            }
            return Ok(CkMsg::Rank(rank));
        }
        if r.remaining_bits() == 1 {
            if r.read_bits(1)? != 1 {
                return Err(CodecError::Invalid("abort flag bit must be set"));
            }
            return Ok(CkMsg::Abort);
        }
        let rank = r.read_bits(params.rank_bits)?;
        let lo = r.read_bits(params.id_bits)?;
        let hi = r.read_bits(params.id_bits)?;
        if lo >= hi {
            return Err(CodecError::Invalid("edge tag endpoints must satisfy lo < hi"));
        }
        let rem = r.remaining_bits();
        let per_seq = self.seq_len as u64 * u64::from(params.id_bits);
        // Solve `rem = bits_for(max(c,1)) + c·per_seq` for the unique c
        // (strictly increasing once per_seq ≥ 1; c = 0 is the rem = 1
        // case).
        let count = if rem == 1 {
            0u64
        } else {
            if per_seq == 0 {
                return Err(CodecError::Invalid("a bundle of empty sequences is not framable"));
            }
            let mut c = 1u64;
            loop {
                let need = u64::from(bits_for(c)) + c * per_seq;
                if need == rem {
                    break c;
                }
                if need > rem {
                    return Err(CodecError::Invalid("frame length matches no sequence count"));
                }
                c += 1;
            }
        };
        let prefix = r.read_bits(bits_for(count.max(1)))?;
        if prefix != count {
            return Err(CodecError::Invalid("non-canonical bundle count prefix"));
        }
        let mut ids = [0 as NodeId; MAX_SEQ_LEN];
        let mut seqs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            for slot in ids.iter_mut().take(self.seq_len) {
                *slot = r.read_bits(params.id_bits)?;
            }
            // Lemma 1: the wire only ever carries *simple* paths, so a
            // sequence repeating an identity is not a well-formed frame.
            // Rejecting it here keeps corrupted-but-parseable frames from
            // smuggling non-paths into the scan kernels.
            for i in 1..self.seq_len {
                if ids[..i].contains(&ids[i]) {
                    return Err(CodecError::Invalid(
                        "sequence repeats an identity (paths are simple)",
                    ));
                }
            }
            seqs.push(IdSeq::from_slice(&ids[..self.seq_len]));
        }
        debug_assert_eq!(r.remaining_bits(), 0, "count inference consumes the frame exactly");
        Ok(CkMsg::Seqs { tag: EdgeTag { rank, lo, hi }, seqs: SeqBundle(seqs) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WireParams {
        WireParams { n: 64, m: 128, id_bits: 12, rank_bits: 14 }
    }

    #[test]
    fn edge_tag_orders_by_rank_then_endpoints() {
        let a = EdgeTag::new(5, 9, 3);
        assert_eq!((a.lo, a.hi), (3, 9));
        let b = EdgeTag::new(5, 1, 2);
        let c = EdgeTag::new(4, 100, 200);
        assert!(c < b && b < a);
        assert!(a.is_endpoint(3) && a.is_endpoint(9) && !a.is_endpoint(5));
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn edge_tag_rejects_loops() {
        let _ = EdgeTag::new(1, 4, 4);
    }

    #[test]
    fn bundle_bits_scale_with_content() {
        let p = params();
        let small = SeqBundle(vec![IdSeq::from_slice(&[1])]);
        let big = SeqBundle(vec![IdSeq::from_slice(&[1, 2, 3]), IdSeq::from_slice(&[4, 5, 6])]);
        assert!(small.wire_bits(&p) < big.wire_bits(&p));
        assert_eq!(big.wire_bits(&p), bits_for(2) as u64 + 6 * 12);
    }

    #[test]
    fn ck_msg_bits() {
        let p = params();
        assert_eq!(CkMsg::Rank(7).wire_bits(&p), 15);
        let m = CkMsg::Seqs {
            tag: EdgeTag::new(7, 1, 2),
            seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2])]),
        };
        assert_eq!(m.wire_bits(&p), 1 + 14 + 24 + (1 + 24));
    }

    #[test]
    fn codec_roundtrips_every_variant_at_wire_bits() {
        let p = params();
        let codec = CkCodec::new(2);
        let msgs = [
            CkMsg::Rank(7),
            CkMsg::Rank((1 << 14) - 1),
            CkMsg::Abort,
            CkMsg::Seqs { tag: EdgeTag::new(7, 1, 2), seqs: SeqBundle(vec![]) },
            CkMsg::Seqs {
                tag: EdgeTag::new(200, 40, 3),
                seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2]), IdSeq::from_slice(&[9, 4])]),
            },
        ];
        for msg in &msgs {
            let buf = codec.encode_to_buf(msg, &p).unwrap();
            assert_eq!(buf.len_bits(), msg.wire_bits(&p), "{msg:?}");
            let back = codec.decode(&p, &mut buf.reader()).unwrap();
            assert_eq!(&back, msg);
        }
    }

    #[test]
    fn codec_rejects_unframable_and_malformed_messages() {
        let p = params();
        let codec = CkCodec::new(2);
        // A sequence whose length disagrees with the round context.
        let mixed = CkMsg::Seqs {
            tag: EdgeTag::new(1, 1, 2),
            seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2, 3])]),
        };
        assert!(matches!(codec.encode_to_buf(&mixed, &p), Err(CodecError::Invalid(_))));
        // An ID wider than id_bits cannot be framed.
        let fat = CkMsg::Seqs {
            tag: EdgeTag::new(1, 1, 1 << 12),
            seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2])]),
        };
        assert!(matches!(codec.encode_to_buf(&fat, &p), Err(CodecError::Overflow { .. })));
        // A failed encode leaves the writer untouched (multi-message
        // frames must never be mis-framed by a rejected append).
        let mut frame = codec.encode_to_buf(&CkMsg::Rank(3), &p).unwrap();
        let before = frame.clone();
        assert!(codec.encode(&mixed, &p, &mut frame).is_err());
        assert!(codec.encode(&fat, &p, &mut frame).is_err());
        assert_eq!(frame, before, "rejected appends must not write partial bits");
        // Truncated frame.
        let ok = CkMsg::Seqs {
            tag: EdgeTag::new(1, 1, 2),
            seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2])]),
        };
        let buf = codec.encode_to_buf(&ok, &p).unwrap();
        let mut short = BitReader::new(buf.as_bytes(), buf.len_bits() - 3);
        assert!(codec.decode(&p, &mut short).is_err());
        // Decoding under the wrong round context trips the frame-length
        // or canonical-prefix check (context is part of the frame's
        // addressing, like any schema'd wire format).
        let wrong = CkCodec::new(3).decode(&p, &mut buf.reader());
        assert!(wrong.is_err(), "{wrong:?}");
    }

    #[test]
    fn decode_rejects_sequences_that_repeat_an_identity() {
        let p = params();
        let codec = CkCodec::new(2);
        // Forge a frame whose single sequence repeats an ID; the honest
        // encoder refuses nothing about widths here, so build the frame
        // bit-by-bit the way the codec lays it out.
        let mut w = BitWriter::new();
        w.push_bits(1, 1).unwrap(); // not-Rank discriminant
        w.push_bits(5, p.rank_bits).unwrap();
        w.push_bits(1, p.id_bits).unwrap(); // lo
        w.push_bits(2, p.id_bits).unwrap(); // hi
        w.push_bits(1, bits_for(1)).unwrap(); // count = 1
        w.push_bits(9, p.id_bits).unwrap();
        w.push_bits(9, p.id_bits).unwrap(); // duplicate identity
        let err = codec.decode(&p, &mut w.reader());
        assert!(
            matches!(err, Err(CodecError::Invalid(m)) if m.contains("repeats an identity")),
            "{err:?}"
        );
    }

    #[test]
    fn corrupt_frame_tampers_or_rejects_every_variant() {
        let p = params();
        let msgs = [
            CkMsg::Rank(7),
            CkMsg::Abort,
            CkMsg::Seqs { tag: EdgeTag::new(7, 1, 2), seqs: SeqBundle(vec![]) },
            CkMsg::Seqs {
                tag: EdgeTag::new(200, 3, 40),
                seqs: SeqBundle(vec![IdSeq::from_slice(&[1, 2]), IdSeq::from_slice(&[9, 4])]),
            },
        ];
        let mut delivered = 0u32;
        let mut rejected = 0u32;
        let mut tampered = 0u32;
        for msg in &msgs {
            for entropy in 1..64u64 {
                let once = msg.corrupt_frame(&p, entropy);
                let twice = msg.corrupt_frame(&p, entropy);
                assert_eq!(once, twice, "corruption must be a pure function of entropy");
                match once {
                    Some(garbled) => {
                        delivered += 1;
                        if &garbled != msg {
                            tampered += 1;
                        }
                        // Whatever decoded is a structurally valid CkMsg:
                        // re-encoding it under its own context succeeds.
                        let seq_len = match &garbled {
                            CkMsg::Seqs { seqs, .. } => {
                                seqs.as_slice().first().map(|s| s.len()).unwrap_or(0)
                            }
                            _ => 0,
                        };
                        assert!(CkCodec::new(seq_len).encode_to_buf(&garbled, &p).is_ok());
                    }
                    None => rejected += 1,
                }
            }
        }
        assert!(delivered > 0, "some corrupted frames must still decode");
        assert!(rejected > 0, "some corrupted frames must be codec-rejected");
        assert!(tampered > 0, "delivered corrupted frames must include real garbage");
    }

    #[test]
    fn pool_recycles_capacity_and_counts_leaks() {
        let mut pool = SeqPool::new();
        let b = pool.bundle_from(&[IdSeq::single(1), IdSeq::single(2)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(pool.outstanding(), 1);
        let cap = b.0.capacity();
        pool.put(b);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.pooled(), 1);
        // The recycled buffer comes back cleared with its capacity.
        let reused = pool.take();
        assert!(reused.is_empty());
        assert!(reused.capacity() >= cap);
        assert_eq!(pool.taken(), 2);
        assert_eq!(pool.outstanding(), 1);
        pool.put_vec(reused);
        assert_eq!(pool.outstanding(), 0);
    }
}
