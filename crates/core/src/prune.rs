//! The sequence-pruning rule of Algorithm 1 (Instructions 13–24).
//!
//! At round `t` a node has received a set `R` of ordered sequences of
//! `t−1` IDs. It must forward *few* of them (Lemma 3: at most
//! `(k−t+1)^(t−1)` survive) while keeping *enough*: whenever a received
//! sequence lies on a completable `Ck`, some forwarded sequence lies on a
//! `Ck` completable by the same remainder (Lemma 2's invariant). The rule:
//!
//! ```text
//! I ← all IDs in R, plus k−t fake IDs          (fakes occur in no sequence)
//! X ← all (k−t)-subsets of I
//! for L ∈ R:  C ← {X ∈ X : X ∩ L = ∅}
//!             if C ≠ ∅ then accept L; X ← X ∖ C
//! ```
//!
//! This is a distributed implementation of the Erdős–Hajnal–Moon
//! representative-family lemma. Two interchangeable implementations:
//!
//! * [`prune_literal`] — enumerates `X` exactly as written. Exponential in
//!   `|I|`; used for fidelity cross-checks on small inputs.
//! * [`prune_representative`] — decides each acceptance by bounded-depth
//!   branching, using the invariant *"X survives ⟺ X intersects every
//!   accepted sequence"*: `L` is accepted iff some `T ⊆ I∖L` with
//!   `|T| ≤ k−t` hits every previously accepted sequence (fake IDs pad the
//!   remaining slots — they occur in no sequence, so they can neither hit
//!   nor be blocked). Depth ≤ `k−t`, fan-out ≤ `t−1`: polynomial for
//!   constant `k`, and *provably identical output* to the literal rule for
//!   the same iteration order (property-tested below).

use crate::scan::{ScanBackend, ScanScratch, SeqBlock};
use crate::seq::IdSeq;
use ck_congest::graph::NodeId;

/// Which pruning implementation a protocol uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrunerKind {
    /// Exact transcription of Instructions 13–24 (small inputs only).
    Literal,
    /// Bounded-branching representative-family implementation.
    #[default]
    Representative,
}

/// Upper bound of Lemma 3 on the number of sequences accepted at round
/// `t`: `(k−t+1)^(t−1)`.
pub fn lemma3_bound(k: usize, t: usize) -> u128 {
    assert!(t >= 1 && t <= k);
    (k as u128 - t as u128 + 1).pow(t as u32 - 1)
}

/// Cap on `|X|` for the literal pruner; beyond this the caller should use
/// the representative pruner (identical results).
const LITERAL_ENUM_CAP: u128 = 1 << 22;

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
    }
    acc
}

/// Literal Instructions 13–24: returns the indices of accepted sequences,
/// scanning `seqs` in the given order.
///
/// `t` is the Phase-2 round (`2 ≤ t ≤ ⌊k/2⌋`); each sequence must have
/// exactly `t−1` IDs and must not contain the executing node's ID (the
/// caller applies Instruction 12 first).
///
/// # Panics
/// Panics when the subset enumeration would exceed an internal cap — use
/// [`prune_representative`] for such inputs.
pub fn prune_literal(seqs: &[IdSeq], k: usize, t: usize) -> Vec<usize> {
    validate(seqs, k, t);
    let budget = k - t; // |X| for X ∈ 𝒳, and the number of fake IDs.

    // Ground set: distinct real IDs (sorted for determinism), then fakes.
    let mut real: Vec<NodeId> = seqs.iter().flat_map(|s| s.iter()).collect();
    real.sort_unstable();
    real.dedup();
    let ground = real.len() + budget; // fakes occupy indices real.len()..

    let combos = binomial(ground as u128, budget as u128);
    assert!(
        combos <= LITERAL_ENUM_CAP,
        "literal pruner would enumerate {combos} subsets; use the representative pruner"
    );

    // Enumerate all (k−t)-subsets of the ground set as sorted index vectors.
    let mut all_x: Vec<Vec<usize>> = Vec::with_capacity(combos as usize);
    let mut combo: Vec<usize> = (0..budget).collect();
    if budget == 0 {
        all_x.push(Vec::new());
    } else if budget <= ground {
        loop {
            all_x.push(combo.clone());
            // Next combination in lexicographic order.
            let mut i = budget;
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                if combo[i] != i + ground - budget {
                    combo[i] += 1;
                    for j in i + 1..budget {
                        combo[j] = combo[j - 1] + 1;
                    }
                    break;
                }
                if i == 0 {
                    combo.clear();
                    break;
                }
            }
            if combo.is_empty() {
                break;
            }
        }
    }

    // Per-sequence membership over ground indices (fakes never belong).
    let seq_index_sets: Vec<Vec<usize>> = seqs
        .iter()
        // ck-lint: allow(no-panic, reason = "real was built from exactly these sequences' ids and sorted just above")
        .map(|s| s.iter().map(|id| real.binary_search(&id).expect("id collected above")).collect())
        .collect();

    let mut alive = vec![true; all_x.len()];
    let mut accepted = Vec::new();
    for (i, members) in seq_index_sets.iter().enumerate() {
        let disjoint = |x: &[usize]| x.iter().all(|gi| !members.contains(gi));
        let c: Vec<usize> =
            (0..all_x.len()).filter(|&xi| alive[xi] && disjoint(&all_x[xi])).collect();
        if !c.is_empty() {
            accepted.push(i);
            for xi in c {
                alive[xi] = false;
            }
        }
    }
    debug_assert!(accepted.len() as u128 <= lemma3_bound(k, t), "Lemma 3 violated");
    accepted
}

/// Representative-family implementation: identical accept/reject decisions
/// to [`prune_literal`] for the same scan order, without enumerating `X`.
pub fn prune_representative(seqs: &[IdSeq], k: usize, t: usize) -> Vec<usize> {
    let mut accepted = Vec::new();
    let mut transversal = Vec::new();
    prune_representative_into(seqs, k, t, &mut accepted, &mut transversal);
    accepted
}

/// As [`prune_representative`], writing the accepted indices into a
/// caller-provided buffer (cleared first) — the hot-path form the
/// tester's per-round loop uses so steady state allocates nothing.
/// `transversal` is branching scratch, also caller-recycled.
fn prune_representative_into(
    seqs: &[IdSeq],
    k: usize,
    t: usize,
    accepted: &mut Vec<usize>,
    transversal: &mut Vec<NodeId>,
) {
    validate(seqs, k, t);
    let budget = k - t;
    accepted.clear();
    for (i, l) in seqs.iter().enumerate() {
        transversal.clear();
        if admits_transversal(seqs, accepted, l, budget, transversal) {
            accepted.push(i);
        }
    }
    debug_assert!(accepted.len() as u128 <= lemma3_bound(k, t), "Lemma 3 violated");
}

/// Decides whether some `T ⊆ (IDs ∖ L)` with `|T| ≤ budget` intersects
/// every accepted sequence (`accepted` holds indices into `seqs`) —
/// equivalently, whether a surviving witness set `X` (T padded with fake
/// IDs) disjoint from `L` remains.
///
/// Branches on the first accepted sequence not yet hit: every valid `T`
/// must contain one of its eligible elements, so trying each is complete.
fn admits_transversal(
    seqs: &[IdSeq],
    accepted: &[usize],
    l: &IdSeq,
    budget: usize,
    transversal: &mut Vec<NodeId>,
) -> bool {
    let unhit =
        accepted.iter().map(|&i| &seqs[i]).find(|a| !transversal.iter().any(|&x| a.contains(x)));
    let Some(a) = unhit else {
        return true; // everything hit; pad with fakes
    };
    if budget == 0 {
        return false;
    }
    for id in a.iter() {
        if l.contains(id) {
            continue; // T must avoid L
        }
        transversal.push(id);
        if admits_transversal(seqs, accepted, l, budget - 1, transversal) {
            return true;
        }
        transversal.pop();
    }
    false
}

fn validate(seqs: &[IdSeq], k: usize, t: usize) {
    assert!(k >= 3, "k must be at least 3");
    assert!(t >= 2 && t <= k / 2, "round t={t} outside 2..=⌊k/2⌋ for k={k}");
    for s in seqs {
        assert_eq!(s.len(), t - 1, "round-{t} sequences must have {} IDs", t - 1);
    }
}

/// Dispatch by [`PrunerKind`].
pub fn prune(kind: PrunerKind, seqs: &[IdSeq], k: usize, t: usize) -> Vec<usize> {
    match kind {
        PrunerKind::Literal => prune_literal(seqs, k, t),
        PrunerKind::Representative => prune_representative(seqs, k, t),
    }
}

/// Reusable buffers for allocation-free repeated send-set construction
/// (one per node program; every field keeps its capacity across rounds).
#[derive(Debug, Default)]
pub struct SendSetScratch {
    /// Canonicalized received collection (filtered, sorted, deduped).
    filtered: Vec<IdSeq>,
    /// Accepted indices into `filtered`.
    accepted: Vec<usize>,
    /// Branching scratch of the representative pruner.
    transversal: Vec<NodeId>,
}

/// Full per-round send-set construction (Instructions 11–24) into a
/// caller-provided buffer: canonicalize the received collection (set
/// semantics: sort + dedup), drop sequences containing `myid`
/// (Instruction 12), prune, and append `myid` (Instruction 24). `out`
/// (cleared first) receives the sequences to broadcast at round `t`;
/// with the representative pruner the whole call is allocation-free
/// once the scratch buffers have warmed up.
pub fn build_send_set_into(
    kind: PrunerKind,
    received: &[IdSeq],
    myid: NodeId,
    k: usize,
    t: usize,
    scratch: &mut SendSetScratch,
    out: &mut Vec<IdSeq>,
) {
    out.clear();
    if !canonicalize_received(received, myid, scratch) {
        return;
    }
    match kind {
        PrunerKind::Literal => {
            scratch.accepted.clear();
            scratch.accepted.extend(prune_literal(&scratch.filtered, k, t));
        }
        PrunerKind::Representative => prune_representative_into(
            &scratch.filtered,
            k,
            t,
            &mut scratch.accepted,
            &mut scratch.transversal,
        ),
    }
    out.extend(scratch.accepted.iter().map(|&i| scratch.filtered[i].appended(myid)));
}

/// As [`build_send_set_into`], running the representative pruner's
/// membership scans on the [`SeqBlock`] batch kernels: the transversal
/// hit test over the accepted family becomes one maintained hit row
/// (updated by a whole-block `contains` sweep per branching step)
/// instead of per-pair scalar scans. Identical accept/reject decisions
/// and output to the scalar path for every input (property-tested in
/// `tests/scan_differential.rs`); with `backend` resolving to
/// [`ScanBackend::Scalar`] — or for the literal pruner, which stays a
/// fidelity reference — this delegates to [`build_send_set_into`].
///
/// [`ScanBackend::Hybrid`] (the production default) *always* takes the
/// scalar branch here: the scalar transversal search touches only the
/// ≤ `lemma3_bound` accepted sequences and exits each membership probe
/// on the first hit, while the hit row pays two whole-block sweeps per
/// branch push/backtrack — measured 1.4–5× slower across k ∈ 5..=13 at
/// every realistic set size. The forced kernel backends keep the
/// scanned pruner exercised so its equivalence cannot bitrot.
#[allow(clippy::too_many_arguments)]
pub fn build_send_set_scanned(
    kind: PrunerKind,
    backend: ScanBackend,
    received: &[IdSeq],
    myid: NodeId,
    k: usize,
    t: usize,
    scratch: &mut SendSetScratch,
    scan: &mut ScanScratch,
    out: &mut Vec<IdSeq>,
) {
    let backend = backend.resolve();
    if backend == ScanBackend::Scalar
        || backend == ScanBackend::Hybrid
        || kind == PrunerKind::Literal
    {
        build_send_set_into(kind, received, myid, k, t, scratch, out);
        return;
    }
    out.clear();
    if !canonicalize_received(received, myid, scratch) {
        return;
    }
    prune_representative_scanned(&scratch.filtered, k, t, backend, scan, &mut scratch.accepted);
    out.extend(scratch.accepted.iter().map(|&i| scratch.filtered[i].appended(myid)));
}

/// Instructions 11–12 shared by every send-set builder: canonicalize
/// the received collection into `scratch.filtered` (set semantics:
/// sort + dedup) and drop sequences containing `myid`. Returns false
/// when nothing survives. One implementation on purpose — the scalar
/// and scanned builders must keep identical inputs to their pruners.
fn canonicalize_received(received: &[IdSeq], myid: NodeId, scratch: &mut SendSetScratch) -> bool {
    scratch.filtered.clear();
    scratch.filtered.extend(received.iter().filter(|s| !s.contains(myid)).copied());
    scratch.filtered.sort_unstable();
    scratch.filtered.dedup();
    !scratch.filtered.is_empty()
}

/// The representative pruner on the block kernels; same scan order —
/// and therefore the same accepted indices — as
/// [`prune_representative`].
fn prune_representative_scanned(
    seqs: &[IdSeq],
    k: usize,
    t: usize,
    backend: ScanBackend,
    scan: &mut ScanScratch,
    accepted: &mut Vec<usize>,
) {
    validate(seqs, k, t);
    let budget = k - t;
    accepted.clear();
    let ScanScratch { block, hits, row, .. } = scan;
    block.load(seqs);
    for i in 0..seqs.len() {
        // Transversal empty at the top of every candidate: zero the
        // maintained hit row (a successful branch returns without
        // unwinding its pushes).
        hits.clear();
        hits.resize(seqs.len(), 0);
        if admits_transversal_scanned(block, seqs, accepted, &seqs[i], budget, backend, hits, row) {
            accepted.push(i);
        }
    }
    debug_assert!(accepted.len() as u128 <= lemma3_bound(k, t), "Lemma 3 violated");
}

/// [`admits_transversal`] on the maintained hit row: `hits[s]` counts
/// the transversal elements contained in sequence `s`, updated by one
/// whole-block contains sweep per push/backtrack, so the "first
/// accepted sequence not yet hit" query is a row lookup instead of a
/// nested membership scan.
#[allow(clippy::too_many_arguments)]
fn admits_transversal_scanned(
    block: &SeqBlock,
    seqs: &[IdSeq],
    accepted: &[usize],
    l: &IdSeq,
    budget: usize,
    backend: ScanBackend,
    hits: &mut Vec<u64>,
    row: &mut Vec<u64>,
) -> bool {
    let unhit = accepted.iter().copied().find(|&i| hits[i] == 0);
    let Some(a) = unhit else {
        return true; // everything hit; pad with fakes
    };
    if budget == 0 {
        return false;
    }
    for id in seqs[a].iter() {
        if l.contains(id) {
            continue; // T must avoid L
        }
        block.contains_row(id, backend, row);
        for (h, r) in hits.iter_mut().zip(row.iter()) {
            *h += *r;
        }
        if admits_transversal_scanned(block, seqs, accepted, l, budget - 1, backend, hits, row) {
            return true;
        }
        // Backtrack: re-derive the same containment row (the recursion
        // clobbered the scratch) and subtract it.
        block.contains_row(id, backend, row);
        for (h, r) in hits.iter_mut().zip(row.iter()) {
            *h -= *r;
        }
    }
    false
}

/// As [`build_send_set_into`], allocating fresh buffers — the
/// convenience form for one-shot callers and tests.
pub fn build_send_set(
    kind: PrunerKind,
    received: &[IdSeq],
    myid: NodeId,
    k: usize,
    t: usize,
) -> Vec<IdSeq> {
    let mut scratch = SendSetScratch::default();
    let mut out = Vec::new();
    build_send_set_into(kind, received, myid, k, t, &mut scratch, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(raw: &[&[u64]]) -> Vec<IdSeq> {
        raw.iter().map(|s| IdSeq::from_slice(s)).collect()
    }

    #[test]
    fn lemma3_bound_values() {
        assert_eq!(lemma3_bound(9, 2), 8); // (9-2+1)^1
        assert_eq!(lemma3_bound(9, 3), 49); // 7^2
        assert_eq!(lemma3_bound(9, 4), 216); // 6^3
        assert_eq!(lemma3_bound(4, 2), 3);
        assert_eq!(lemma3_bound(5, 2), 4);
    }

    #[test]
    fn first_sequence_is_always_accepted() {
        // The all-fakes set is always disjoint from the first L — this is
        // exactly the paper's §3.3 point about fake IDs.
        for (k, t) in [(5, 2), (6, 3), (9, 3), (9, 4), (12, 5)] {
            let input = seqs(&[&(0..t as u64 - 1).collect::<Vec<_>>()]);
            assert_eq!(prune_literal(&input, k, t), vec![0], "k={k} t={t}");
            assert_eq!(prune_representative(&input, k, t), vec![0]);
        }
    }

    #[test]
    fn paper_c9_worked_example() {
        // §3.3: C9 with IDs 1..9, detection from edge {1,9}. When node 3
        // receives (1,2) at t=3, I = {1,2} ∪ fakes {−1..−6}; without fakes
        // X would be empty and (1,2) would be dropped; with them it is
        // kept, so (1,2,3) is forwarded.
        let input = seqs(&[&[1, 2]]);
        assert_eq!(prune_literal(&input, 9, 3), vec![0]);
        assert_eq!(prune_representative(&input, 9, 3), vec![0]);
        let sent = build_send_set(PrunerKind::Representative, &input, 3, 9, 3);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn same_set_different_order_collapses() {
        // Two orderings of the same ID set: the first accepted removes all
        // sets disjoint from it, so the second is rejected (Lemma 3's P0).
        let input = seqs(&[&[1, 2], &[2, 1]]);
        assert_eq!(prune_literal(&input, 9, 3), vec![0]);
        assert_eq!(prune_representative(&input, 9, 3), vec![0]);
    }

    #[test]
    fn figure1_both_hub_seeds_survive() {
        // Figure 1's pitfall: x and y each received IDs u=100, v=200; if
        // either forwarded only the u-sequence, z would miss the C5. At
        // t=2, k=5 the pruner must keep both (100) and (200).
        let input = seqs(&[&[100], &[200]]);
        assert_eq!(prune_literal(&input, 5, 2), vec![0, 1]);
        assert_eq!(prune_representative(&input, 5, 2), vec![0, 1]);
    }

    #[test]
    fn k4_t2_keeps_at_most_three() {
        // Lemma 3: at round 2 with k=4 at most (4−2+1)^1 = 3 survive.
        let input = seqs(&[&[1], &[2], &[3], &[4], &[5]]);
        let lit = prune_literal(&input, 4, 2);
        assert_eq!(lit.len(), 3);
        assert_eq!(lit, prune_representative(&input, 4, 2));
    }

    #[test]
    fn saturation_respects_lemma3_bound() {
        // Round t=3, k=6 (budget 3): flood with pairwise-disjoint pairs;
        // bound is (6-3+1)^2 = 16 but with 10 disjoint pairs the
        // acceptance pattern must stop once every surviving X intersects
        // all accepted sequences.
        let input: Vec<IdSeq> =
            (0..10u64).map(|i| IdSeq::from_slice(&[2 * i, 2 * i + 1])).collect();
        let lit = prune_literal(&input, 6, 3);
        let rep = prune_representative(&input, 6, 3);
        assert_eq!(lit, rep);
        assert!(lit.len() as u128 <= lemma3_bound(6, 3));
        assert!(lit.len() >= 4, "must keep enough witnesses, kept {}", lit.len());
    }

    #[test]
    fn build_send_set_drops_own_id_and_dedupes() {
        let input = seqs(&[&[1, 2], &[1, 2], &[3, 7], &[4, 5]]);
        // myid = 7: the sequence containing 7 is removed (Instruction 12).
        let sent = build_send_set(PrunerKind::Representative, &input, 7, 9, 3);
        assert!(sent.iter().all(|s| s.last() == Some(7)));
        assert!(sent.iter().all(|s| s.as_slice() != [3, 7, 7]));
        // (1,2) survives once (dedup), (4,5) survives.
        let bodies: Vec<&[u64]> = sent.iter().map(|s| s.as_slice()).collect();
        assert!(bodies.contains(&[1, 2, 7].as_slice()));
        assert!(bodies.contains(&[4, 5, 7].as_slice()));
        assert_eq!(sent.len(), 2);
    }

    #[test]
    fn empty_input_sends_nothing() {
        assert!(build_send_set(PrunerKind::Literal, &[], 1, 8, 3).is_empty());
    }

    #[test]
    fn validation_rejects_bad_rounds() {
        let input = seqs(&[&[1]]);
        assert!(std::panic::catch_unwind(|| prune_representative(&input, 3, 2)).is_err());
        assert!(std::panic::catch_unwind(|| prune_representative(&input, 8, 1)).is_err());
        // Wrong sequence length for the round.
        assert!(std::panic::catch_unwind(|| prune_representative(&input, 8, 3)).is_err());
    }

    /// Reference invariant of Lemma 2: for every (k−t)-set C over the IDs
    /// seen (plus arbitrary outside IDs — outside IDs only make
    /// disjointness easier, so testing over seen IDs suffices), if some
    /// input sequence is disjoint from C then some *accepted* sequence is
    /// disjoint from C.
    fn preserves_witnesses(input: &[IdSeq], accepted: &[usize], k: usize, t: usize) -> bool {
        let mut ids: Vec<u64> = input.iter().flat_map(|s| s.iter()).collect();
        ids.sort_unstable();
        ids.dedup();
        let budget = k - t;
        // Enumerate all C ⊆ ids with |C| ≤ budget (including smaller C:
        // models cycles whose remainder reuses outside IDs).
        fn rec(
            ids: &[u64],
            start: usize,
            c: &mut Vec<u64>,
            budget: usize,
            input: &[IdSeq],
            accepted: &[usize],
        ) -> bool {
            let c_ok = {
                let disj = |s: &IdSeq| c.iter().all(|&x| !s.contains(x));
                !input.iter().any(disj) || accepted.iter().any(|&i| disj(&input[i]))
            };
            if !c_ok {
                return false;
            }
            if c.len() == budget {
                return true;
            }
            for i in start..ids.len() {
                c.push(ids[i]);
                if !rec(ids, i + 1, c, budget, input, accepted) {
                    return false;
                }
                c.pop();
            }
            true
        }
        rec(&ids, 0, &mut Vec::new(), budget, input, accepted)
    }

    #[test]
    fn scanned_pruner_matches_scalar() {
        use crate::scan::{ScanBackend, ScanScratch};
        let cases: Vec<(Vec<IdSeq>, u64, usize, usize)> = vec![
            (seqs(&[&[1, 2]]), 3, 9, 3),
            (seqs(&[&[1, 2], &[2, 1]]), 9, 9, 3),
            (seqs(&[&[100], &[200]]), 7, 5, 2),
            (seqs(&[&[1], &[2], &[3], &[4], &[5]]), 7, 4, 2),
            ((0..10u64).map(|i| IdSeq::from_slice(&[2 * i, 2 * i + 1])).collect(), 50, 6, 3),
            (seqs(&[&[1, 2], &[1, 2], &[3, 7], &[4, 5]]), 7, 9, 3),
            (Vec::new(), 1, 8, 3),
        ];
        let mut scan = ScanScratch::new();
        let mut scratch = SendSetScratch::default();
        let mut got = Vec::new();
        let mut backends = vec![ScanBackend::Lanes, ScanBackend::Scalar, ScanBackend::Hybrid];
        if ScanBackend::simd_compiled() {
            backends.push(ScanBackend::Simd);
        }
        for (input, myid, k, t) in &cases {
            let expect = build_send_set(PrunerKind::Representative, input, *myid, *k, *t);
            for &backend in &backends {
                build_send_set_scanned(
                    PrunerKind::Representative,
                    backend,
                    input,
                    *myid,
                    *k,
                    *t,
                    &mut scratch,
                    &mut scan,
                    &mut got,
                );
                assert_eq!(got, expect, "{backend:?} k={k} t={t} input={input:?}");
            }
            // The literal pruner always takes the scalar reference path.
            build_send_set_scanned(
                PrunerKind::Literal,
                ScanBackend::Lanes,
                input,
                *myid,
                *k,
                *t,
                &mut scratch,
                &mut scan,
                &mut got,
            );
            assert_eq!(got, build_send_set(PrunerKind::Literal, input, *myid, *k, *t));
        }
    }

    #[test]
    fn witness_preservation_small_cases() {
        let cases: Vec<(Vec<IdSeq>, usize, usize)> = vec![
            (seqs(&[&[1], &[2], &[3], &[4]]), 5, 2),
            (seqs(&[&[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 6]]), 7, 3),
            (seqs(&[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]), 6, 3),
            (seqs(&[&[1, 2, 3], &[2, 3, 4], &[5, 6, 7]]), 8, 4),
        ];
        for (input, k, t) in cases {
            for kind in [PrunerKind::Literal, PrunerKind::Representative] {
                let acc = prune(kind, &input, k, t);
                assert!(
                    preserves_witnesses(&input, &acc, k, t),
                    "witness lost: kind={kind:?} k={k} t={t} input={input:?} acc={acc:?}"
                );
            }
        }
    }
}
