//! Phase 1 machinery: edge ranks, arbitration keys, and the repetition
//! schedule.
//!
//! Every edge is owned by its smaller-identity endpoint, which draws a
//! uniform rank in `[1, m²]` and ships it across the edge; every node then
//! adopts its incident edge of minimum `(rank, endpoints)` key and starts
//! Phase 2 for it. Lemma 5: with ranks from `[1, m²]` the minimum is
//! unique with probability ≥ 1/e², so a graph that is ε-far (hence has
//! ≥ εm edges on edge-disjoint `Ck` copies, Lemma 4) yields a useful
//! Phase-2 run with probability ≥ ε/e² per repetition; `⌈(e²/ε)·ln 3⌉`
//! repetitions push the detection probability to ≥ 2/3.

use crate::tester::ConfigError;
use ck_congest::graph::NodeId;
use ck_congest::rngs::{derive_seed_from_prefix, derive_seed_prefix, derived_rng, labels};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Euler's constant squared, the `1/e²` of Lemma 5.
pub const E_SQUARED: f64 = std::f64::consts::E * std::f64::consts::E;

/// Number of Phase-1+2 repetitions the paper prescribes for detection
/// probability ≥ 2/3 on ε-far inputs: `⌈(e²/ε)·ln 3⌉`.
///
/// # Panics
/// Panics when `eps` lies outside `(0, 1)`. Callers holding unvalidated
/// user input (CLI flags, spec strings) should use
/// [`try_repetitions_for`] and surface the error instead.
pub fn repetitions_for(eps: f64) -> u32 {
    // ck-lint: allow(no-panic, reason = "documented '# Panics' contract; try_repetitions_for is the checked path")
    try_repetitions_for(eps).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`repetitions_for`]: returns a [`ConfigError`] for
/// `eps` outside `(0, 1)` (including NaN) instead of aborting — the
/// same error type the session builders surface, so every unvalidated
/// input path (CLI flags, spec strings, batch jobs) reports uniformly.
pub fn try_repetitions_for(eps: f64) -> Result<u32, ConfigError> {
    if !(eps > 0.0 && eps < 1.0) {
        return Err(ConfigError::EpsOutOfRange { eps });
    }
    Ok(((E_SQUARED / eps) * 3f64.ln()).ceil() as u32)
}

/// Loss-aware repetition inflation factor: `⌈1 / (1−p)^{k·⌊k/2⌋}⌉`.
///
/// Derivation: a repetition detects a planted cycle when the traffic of
/// the winning edge survives end to end. The Phase-2 flow consists of at
/// most `k` sequence broadcasts per round over `⌊k/2⌋` forwarding rounds,
/// so `k·⌊k/2⌋` message deliveries must all survive; under i.i.d.
/// per-message loss `p` that happens with probability `(1−p)^{k·⌊k/2⌋}`.
/// Running `⌈1/(1−p)^{k·⌊k/2⌋}⌉` times as many repetitions restores the
/// expected number of *clean* repetitions to the paper's schedule, hence
/// the ≥ 2/3 detection bound (a first-order bound: it ignores partially
/// damaged repetitions that still detect, so it is conservative).
///
/// # Panics
/// Panics when `loss` lies outside `[0, 1)` (use [`try_loss_inflation`]
/// for unvalidated input).
pub fn loss_inflation(k: usize, loss: f64) -> u32 {
    // ck-lint: allow(no-panic, reason = "documented '# Panics' contract; try_loss_inflation is the checked path")
    try_loss_inflation(k, loss).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked form of [`loss_inflation`]: a [`ConfigError`] for `loss`
/// outside `[0, 1)` (including NaN) instead of a panic. The cast
/// saturates, so extreme-but-valid losses yield `u32::MAX` rather than
/// overflow.
pub fn try_loss_inflation(k: usize, loss: f64) -> Result<u32, ConfigError> {
    if !(0.0..1.0).contains(&loss) {
        return Err(ConfigError::LossOutOfRange { loss });
    }
    let survive = (1.0 - loss).powi((k * (k / 2)) as i32);
    Ok((1.0 / survive).ceil() as u32)
}

/// Engine rounds per repetition: one rank-exchange round, the seed round
/// (paper round 1), paper rounds `2..⌊k/2⌋`, and the decision round.
pub fn rounds_per_repetition(k: usize) -> u32 {
    (k / 2) as u32 + 2
}

/// Total engine rounds of the full tester.
pub fn total_rounds(k: usize, reps: u32) -> u32 {
    reps * rounds_per_repetition(k)
}

/// The rank RNG of a node for one repetition. Keyed by the node's
/// *identity* (not simulator index) so logically identical networks
/// draw identical ranks regardless of index labeling.
pub fn rank_rng(master_seed: u64, node_id: NodeId, repetition: u32) -> StdRng {
    derived_rng(master_seed, labels::CK_RANKS, node_id, u64::from(repetition))
}

/// A node's cached Phase-1 rank stream: the (seed, label, node) prefix
/// of the seed derivation, hoisted out of the per-repetition loop. The
/// prefix is computed once per node per run; each repetition finishes
/// it with the repetition coordinate, yielding an RNG bit-identical to
/// [`rank_rng`] — tester profiles at n = 1e5 show the rederivation in
/// every Phase-1 round, which this removes.
#[derive(Clone, Copy, Debug)]
pub struct RankStream {
    prefix: u64,
}

impl RankStream {
    /// Caches the rank-stream prefix for one node.
    pub fn new(master_seed: u64, node_id: NodeId) -> Self {
        RankStream { prefix: derive_seed_prefix(master_seed, labels::CK_RANKS, node_id) }
    }

    /// The repetition's rank RNG — equals
    /// `rank_rng(master_seed, node_id, repetition)` exactly.
    pub fn rng(&self, repetition: u32) -> StdRng {
        StdRng::seed_from_u64(derive_seed_from_prefix(self.prefix, u64::from(repetition)))
    }
}

/// Draws one rank uniformly from `[1, m²]`.
pub fn draw_rank(rng: &mut StdRng, m: usize) -> u64 {
    let m = m as u64;
    let hi = m.saturating_mul(m).max(1);
    rng.random_range(1..=hi)
}

/// Empirical check helper for Lemma 5: draws `m` ranks and reports
/// whether the minimum is unique.
pub fn minimum_is_unique(ranks: &[u64]) -> bool {
    match ranks.iter().min() {
        None => false,
        Some(min) => ranks.iter().filter(|&&r| r == *min).count() == 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_stream_matches_fresh_derivation() {
        // The cached prefix must reproduce rank_rng bit-for-bit: same
        // seed, same draws, across a grid of (seed, node, rep, m).
        for seed in [0u64, 7, u64::MAX] {
            for node in [0u64, 3, 1 << 33] {
                let stream = RankStream::new(seed, node);
                for rep in [0u32, 1, 250] {
                    let mut fresh = rank_rng(seed, node, rep);
                    let mut cached = stream.rng(rep);
                    for m in [1usize, 10, 100_000] {
                        assert_eq!(draw_rank(&mut fresh, m), draw_rank(&mut cached, m));
                    }
                }
            }
        }
    }

    #[test]
    fn repetition_schedule_is_o_one_over_eps() {
        let r1 = repetitions_for(0.1);
        let r2 = repetitions_for(0.05);
        let r4 = repetitions_for(0.025);
        // Halving ε roughly doubles the repetitions.
        assert!(r2 >= 2 * r1 - 2 && r2 <= 2 * r1 + 2, "{r1} vs {r2}");
        assert!(r4 >= 2 * r2 - 2 && r4 <= 2 * r2 + 2);
        // Paper constant: e²·ln3 ≈ 8.12.
        assert_eq!(repetitions_for(0.5), 17);
    }

    #[test]
    #[should_panic(expected = "must lie in (0,1)")]
    fn repetitions_rejects_bad_eps() {
        let _ = repetitions_for(0.0);
    }

    #[test]
    fn try_repetitions_matches_and_reports() {
        assert_eq!(try_repetitions_for(0.1), Ok(repetitions_for(0.1)));
        for bad in [0.0, -0.2, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let err = try_repetitions_for(bad).unwrap_err();
            assert!(matches!(err, ConfigError::EpsOutOfRange { .. }), "{bad}: {err}");
            assert!(err.to_string().contains("must lie in (0,1)"), "{bad}: {err}");
        }
    }

    #[test]
    fn loss_inflation_values_and_domain() {
        // No loss: the schedule is untouched.
        for k in 3..=9 {
            assert_eq!(loss_inflation(k, 0.0), 1, "k={k}");
        }
        // k = 4, p = 0.3: 1/0.7⁸ ≈ 17.8 → 18.
        assert_eq!(loss_inflation(4, 0.3), 18);
        // k = 4, p = 0.4: 1/0.6⁸ ≈ 59.5 → 60.
        assert_eq!(loss_inflation(4, 0.4), 60);
        // Monotone in both arguments.
        assert!(loss_inflation(4, 0.2) < loss_inflation(4, 0.3));
        assert!(loss_inflation(4, 0.3) < loss_inflation(6, 0.3));
        for bad in [-0.1, 1.0, 2.0, f64::NAN] {
            let err = try_loss_inflation(4, bad).unwrap_err();
            assert!(matches!(err, ConfigError::LossOutOfRange { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn rounds_per_repetition_values() {
        assert_eq!(rounds_per_repetition(3), 3);
        assert_eq!(rounds_per_repetition(4), 4);
        assert_eq!(rounds_per_repetition(5), 4);
        assert_eq!(rounds_per_repetition(9), 6);
        assert_eq!(total_rounds(5, 10), 40);
    }

    #[test]
    fn ranks_are_in_range_and_deterministic() {
        let mut a = rank_rng(7, 42, 3);
        let mut b = rank_rng(7, 42, 3);
        for _ in 0..100 {
            let x = draw_rank(&mut a, 50);
            assert!((1..=2500).contains(&x));
            assert_eq!(x, draw_rank(&mut b, 50));
        }
        let mut c = rank_rng(7, 42, 4);
        let differs = (0..100).any(|_| draw_rank(&mut a, 50) != draw_rank(&mut c, 50));
        assert!(differs, "different repetitions must draw different ranks");
    }

    #[test]
    fn lemma5_empirical_rate() {
        // Pr[unique min] ≥ 1/e² ≈ 0.135; with m = 50 the no-collision
        // probability is ≈ (1 − 1/m)^m ≈ 0.364, and unique-min holds even
        // more often. Check the empirical rate clears the bound.
        let m = 50;
        let trials = 2000;
        let mut unique = 0;
        for t in 0..trials {
            let mut rng = rank_rng(99, 0, t);
            let ranks: Vec<u64> = (0..m).map(|_| draw_rank(&mut rng, m)).collect();
            if minimum_is_unique(&ranks) {
                unique += 1;
            }
        }
        let rate = f64::from(unique) / f64::from(trials);
        assert!(rate >= 1.0 / E_SQUARED, "unique-min rate {rate} below Lemma 5 bound");
    }

    #[test]
    fn minimum_uniqueness_detection() {
        assert!(minimum_is_unique(&[3, 1, 2]));
        assert!(!minimum_is_unique(&[1, 1, 2]));
        assert!(!minimum_is_unique(&[]));
        assert!(minimum_is_unique(&[5]));
    }
}
