//! Behavior under message loss.
//!
//! The paper assumes a reliable synchronous network. A useful systems
//! question the simulator can answer is what each guarantee degrades
//! into under loss:
//!
//! * **1-sidedness is loss-proof.** A reject is assembled from sequences
//!   that *arrived*; by Lemma 1 every arrived sequence is a genuine
//!   simple path, so any assembled `Ck` is real no matter which messages
//!   vanished. Dropping messages can suppress detections, never invent
//!   them.
//! * **Detection degrades gracefully.** Each repetition needs the
//!   `O(k)` messages along one cycle to survive; with per-message loss
//!   rate `p`, a repetition succeeds with probability ≳ `(1−p)^{k·⌊k/2⌋}`
//!   and independent repetitions recover the 2/3 bound at the cost of a
//!   constant-factor schedule inflation.
//!
//! [`loss_detection_curve`] measures the detection rate as a function of
//! the loss rate; the experiment harness and tests consume it.

use crate::session::TesterSession;
use crate::tester::TesterConfig;
use ck_congest::engine::EngineConfig;
use ck_congest::fault::FaultPlan;
use ck_congest::graph::Graph;

/// One point of the loss-vs-detection curve.
#[derive(Clone, Copy, Debug)]
pub struct LossPoint {
    /// Per-message loss probability.
    pub loss: f64,
    /// Trials run.
    pub trials: u32,
    /// Trials in which the network rejected.
    pub rejects: u32,
}

impl LossPoint {
    /// Empirical detection rate.
    pub fn rate(&self) -> f64 {
        f64::from(self.rejects) / f64::from(self.trials.max(1))
    }
}

/// Measures the detection rate of the full tester on `g` under the given
/// per-message loss probabilities.
pub fn loss_detection_curve(
    g: &Graph,
    k: usize,
    eps: f64,
    losses: &[f64],
    trials: u32,
    seed: u64,
) -> Vec<LossPoint> {
    // One session for the whole sweep: seeds and fault plans vary per
    // trial through the unvalidated setters, so every trial after the
    // first runs on warm arenas and scratch.
    let mut session =
        TesterSession::from_config(TesterConfig::new(k, eps, seed), EngineConfig::default())
            .unwrap_or_else(|e| panic!("{e}"));
    losses
        .iter()
        .map(|&loss| {
            let mut rejects = 0;
            for t in 0..trials {
                session.engine_mut().faults =
                    FaultPlan::none().random_loss(loss, seed ^ (u64::from(t) << 17));
                session.set_seed(seed.wrapping_add(u64::from(t)));
                if session.test(g).expect("engine run").reject {
                    rejects += 1;
                }
            }
            LossPoint { loss, trials, rejects }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tests' single-run entry: a fresh session per call (shadows
    /// the deprecated free function).
    fn run_tester(
        g: &ck_congest::graph::Graph,
        cfg: &TesterConfig,
        engine: &EngineConfig,
    ) -> Result<crate::tester::TesterRun, ck_congest::engine::EngineError> {
        crate::session::TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
    }

    use ck_graphgen::basic::cycle;
    use ck_graphgen::farness::{contains_ck, is_valid_ck};
    use ck_graphgen::planted::{eps_far_instance, matched_free_instance};

    #[test]
    fn one_sidedness_survives_arbitrary_loss() {
        // Heavy random loss on a Ck-free graph: still never a reject.
        let g = matched_free_instance(40, 5);
        for seed in 0..4u64 {
            let engine = EngineConfig {
                faults: FaultPlan::none().random_loss(0.3, seed),
                ..EngineConfig::default()
            };
            let cfg = TesterConfig { repetitions: Some(4), ..TesterConfig::new(5, 0.1, seed) };
            assert!(!run_tester(&g, &cfg, &engine).unwrap().reject);
        }
    }

    #[test]
    fn rejects_under_loss_are_still_sound() {
        // On a graph WITH cycles, whatever survives the loss and triggers
        // a reject must be a real cycle.
        let inst = eps_far_instance(40, 4, 0.05, 0);
        for seed in 0..4u64 {
            let engine = EngineConfig {
                faults: FaultPlan::none().random_loss(0.15, seed * 7 + 1),
                ..EngineConfig::default()
            };
            let cfg = TesterConfig { repetitions: Some(20), ..TesterConfig::new(4, 0.05, seed) };
            let run = run_tester(&inst.graph, &cfg, &engine).unwrap();
            if run.reject {
                assert!(contains_ck(&inst.graph, 4));
                for r in run.rejections() {
                    let idx: Vec<_> = r
                        .witness
                        .cycle_ids()
                        .iter()
                        .map(|&id| inst.graph.index_of(id).unwrap())
                        .collect();
                    assert!(is_valid_ck(&inst.graph, 4, &idx));
                }
            }
        }
    }

    #[test]
    fn detection_rate_decreases_with_loss() {
        let g = cycle(6);
        let curve = loss_detection_curve(&g, 6, 0.2, &[0.0, 0.9], 6, 3);
        assert_eq!(curve[0].rate(), 1.0, "lossless detection on a lone cycle is certain");
        assert!(curve[1].rate() <= curve[0].rate(), "90% loss cannot beat lossless detection");
    }

    #[test]
    fn clean_repetition_recovers_from_a_jammed_one() {
        // Jam every message of node 0 during repetition 0 (rounds 0..4
        // for k = 5). Repetition 1 runs untouched, and on a lone cycle a
        // clean repetition detects deterministically.
        let g = cycle(5);
        let mut plan = FaultPlan::none();
        for round in 0..4 {
            for port in 0..2 {
                plan = plan.drop_at(round, 0, port);
            }
        }
        let engine = EngineConfig { faults: plan, ..EngineConfig::default() };
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(5, 0.2, 11) };
        let run = run_tester(&g, &cfg, &engine).unwrap();
        assert!(run.reject, "the clean repetition must detect the cycle");
    }
}
