//! Behavior under message loss.
//!
//! The paper assumes a reliable synchronous network. A useful systems
//! question the simulator can answer is what each guarantee degrades
//! into under loss:
//!
//! * **1-sidedness is loss-proof.** A reject is assembled from sequences
//!   that *arrived*; by Lemma 1 every arrived sequence is a genuine
//!   simple path, so any assembled `Ck` is real no matter which messages
//!   vanished. Dropping messages can suppress detections, never invent
//!   them.
//! * **Detection degrades gracefully.** Each repetition needs the
//!   `O(k)` messages along one cycle to survive; with per-message loss
//!   rate `p`, a repetition succeeds with probability ≳ `(1−p)^{k·⌊k/2⌋}`
//!   and independent repetitions recover the 2/3 bound at the cost of a
//!   constant-factor schedule inflation.
//!
//! * **Corruption needs a verifier.** A tampered frame that still
//!   decodes carries sequences that never traversed the network, so
//!   Lemma 1's "every arrived sequence is a genuine path" premise
//!   breaks and a phantom cycle can be assembled. The
//!   [`TesterConfig::verify_witnesses`](crate::tester::TesterConfig::verify_witnesses)
//!   knob re-validates every rejection's cycle against the input graph
//!   and discards fabrications, restoring 1-sidedness.
//! * **The degradation knob has a closed form.** With per-message loss
//!   `p`, a repetition's `k·⌊k/2⌋` cycle-critical deliveries all
//!   survive with probability `(1−p)^{k·⌊k/2⌋}`, so inflating the
//!   schedule by `⌈1/(1−p)^{k·⌊k/2⌋}⌉`
//!   ([`crate::rank::loss_inflation`], via
//!   [`TesterConfig::assumed_loss`](crate::tester::TesterConfig::assumed_loss))
//!   keeps the expected number of clean repetitions at the paper's
//!   schedule and thereby the ≥ 2/3 detection bound.
//!
//! [`loss_detection_curve`], [`crash_detection_curve`], and
//! [`adaptive_vs_fixed`] measure these degradations; the experiment
//! harness (`BENCH_engine.json`'s `robust` block) and tests consume
//! them.

use crate::rank::loss_inflation;
use crate::session::TesterSession;
use crate::tester::TesterConfig;
use ck_congest::engine::EngineConfig;
use ck_congest::fault::FaultPlan;
use ck_congest::graph::Graph;

/// One point of the loss-vs-detection curve.
#[derive(Clone, Copy, Debug)]
pub struct LossPoint {
    /// Per-message loss probability.
    pub loss: f64,
    /// Trials run.
    pub trials: u32,
    /// Trials in which the network rejected.
    pub rejects: u32,
}

impl LossPoint {
    /// Empirical detection rate.
    pub fn rate(&self) -> f64 {
        f64::from(self.rejects) / f64::from(self.trials.max(1))
    }
}

/// Measures the detection rate of the full tester on `g` under the given
/// per-message loss probabilities.
pub fn loss_detection_curve(
    g: &Graph,
    k: usize,
    eps: f64,
    losses: &[f64],
    trials: u32,
    seed: u64,
) -> Vec<LossPoint> {
    // One session for the whole sweep: seeds and fault plans vary per
    // trial through the unvalidated setters, so every trial after the
    // first runs on warm arenas and scratch.
    let mut session =
        TesterSession::from_config(TesterConfig::new(k, eps, seed), EngineConfig::default())
            // ck-lint: allow(no-panic, reason = "k and eps were validated by the sweep's caller contract; config rejection here is a harness bug")
            .unwrap_or_else(|e| panic!("{e}"));
    losses
        .iter()
        .map(|&loss| {
            let mut rejects = 0;
            for t in 0..trials {
                session.engine_mut().faults =
                    FaultPlan::none().random_loss(loss, seed ^ (u64::from(t) << 17));
                session.set_seed(seed.wrapping_add(u64::from(t)));
                // ck-lint: allow(no-panic, reason = "fault plans injected here drop messages, which the tester tolerates by design; EngineError is unreachable without net/bandwidth config")
                if session.test(g).expect("engine run").reject {
                    rejects += 1;
                }
            }
            LossPoint { loss, trials, rejects }
        })
        .collect()
}

/// One point of the crash-count-vs-detection sweep.
#[derive(Clone, Copy, Debug)]
pub struct CrashPoint {
    /// Nodes crash-stopped from round 0.
    pub crashed: usize,
    /// Trials run.
    pub trials: u32,
    /// Trials in which the network rejected.
    pub rejects: u32,
}

impl CrashPoint {
    /// Empirical detection rate.
    pub fn rate(&self) -> f64 {
        f64::from(self.rejects) / f64::from(self.trials.max(1))
    }
}

/// Measures the detection rate of the full tester on `g` when `counts`
/// nodes crash-stop from round 0 (send-omission: the crashed nodes stay
/// silent for the whole run). The crashed set rotates deterministically
/// per trial so no fixed subgraph is privileged.
pub fn crash_detection_curve(
    g: &Graph,
    k: usize,
    eps: f64,
    counts: &[usize],
    trials: u32,
    seed: u64,
) -> Vec<CrashPoint> {
    let n = g.n();
    let mut session =
        TesterSession::from_config(TesterConfig::new(k, eps, seed), EngineConfig::default())
            // ck-lint: allow(no-panic, reason = "k and eps were validated by the sweep's caller contract; config rejection here is a harness bug")
            .unwrap_or_else(|e| panic!("{e}"));
    counts
        .iter()
        .map(|&crashed| {
            let mut rejects = 0;
            for t in 0..trials {
                // Deterministic rotating offset: trials sample different
                // crashed sets without an RNG dependency.
                let offset = (seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(t).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    % n as u64) as usize;
                let mut plan = FaultPlan::none();
                for i in 0..crashed.min(n) {
                    plan = plan.crash(((offset + i) % n) as u32, 0);
                }
                session.engine_mut().faults = plan;
                session.set_seed(seed.wrapping_add(u64::from(t)));
                // ck-lint: allow(no-panic, reason = "fault plans injected here drop messages, which the tester tolerates by design; EngineError is unreachable without net/bandwidth config")
                if session.test(g).expect("engine run").reject {
                    rejects += 1;
                }
            }
            CrashPoint { crashed, trials, rejects }
        })
        .collect()
}

/// Outcome of an adaptive-vs-fixed schedule comparison on one lossy
/// network: the fixed arm runs the paper schedule as-is; the adaptive
/// arm sets [`TesterConfig::assumed_loss`] and pays the
/// [`loss_inflation`]-inflated schedule to buy its detection rate back.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveComparison {
    /// Per-message loss rate both arms ran under.
    pub loss: f64,
    /// Trials per arm.
    pub trials: u32,
    /// Schedule inflation factor the adaptive arm paid.
    pub inflation: u32,
    /// Fixed-schedule rejects.
    pub fixed_rejects: u32,
    /// Adaptive-schedule rejects.
    pub adaptive_rejects: u32,
}

impl AdaptiveComparison {
    /// Detection rate of the fixed (paper-schedule) arm.
    pub fn fixed_rate(&self) -> f64 {
        f64::from(self.fixed_rejects) / f64::from(self.trials.max(1))
    }

    /// Detection rate of the loss-aware adaptive arm.
    pub fn adaptive_rate(&self) -> f64 {
        f64::from(self.adaptive_rejects) / f64::from(self.trials.max(1))
    }
}

/// Runs the fixed and the loss-aware schedules side by side on `g`
/// under i.i.d. per-message loss `loss`, with identical fault plans and
/// Phase-1 seeds per trial — the measured counterpart of the
/// [`loss_inflation`] derivation.
pub fn adaptive_vs_fixed(
    g: &Graph,
    k: usize,
    eps: f64,
    loss: f64,
    trials: u32,
    seed: u64,
) -> AdaptiveComparison {
    let base = TesterConfig::new(k, eps, seed);
    let mut fixed =
        // ck-lint: allow(no-panic, reason = "k and eps were validated by the sweep's caller contract; config rejection here is a harness bug")
        TesterSession::from_config(base, EngineConfig::default()).unwrap_or_else(|e| panic!("{e}"));
    let mut adaptive = TesterSession::from_config(
        TesterConfig { assumed_loss: Some(loss), ..base },
        EngineConfig::default(),
    )
    // ck-lint: allow(no-panic, reason = "same validated base config as the fixed session above")
    .unwrap_or_else(|e| panic!("{e}"));
    let mut fixed_rejects = 0;
    let mut adaptive_rejects = 0;
    for t in 0..trials {
        let plan = FaultPlan::none().random_loss(loss, seed ^ (u64::from(t) << 17) | 1);
        for (session, rejects) in
            [(&mut fixed, &mut fixed_rejects), (&mut adaptive, &mut adaptive_rejects)]
        {
            session.engine_mut().faults = plan.clone();
            session.set_seed(seed.wrapping_add(u64::from(t)));
            // ck-lint: allow(no-panic, reason = "loss plans drop messages, which the tester tolerates by design; EngineError is unreachable without net/bandwidth config")
            if session.test(g).expect("engine run").reject {
                *rejects += 1;
            }
        }
    }
    AdaptiveComparison {
        loss,
        trials,
        inflation: loss_inflation(k, loss),
        fixed_rejects,
        adaptive_rejects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tests' single-run entry: a fresh session per call (shadows
    /// the deprecated free function).
    fn run_tester(
        g: &ck_congest::graph::Graph,
        cfg: &TesterConfig,
        engine: &EngineConfig,
    ) -> Result<crate::tester::TesterRun, ck_congest::engine::EngineError> {
        crate::session::TesterSession::from_config(*cfg, engine.clone()).unwrap().test(g)
    }

    use ck_graphgen::basic::cycle;
    use ck_graphgen::farness::{contains_ck, is_valid_ck};
    use ck_graphgen::planted::{eps_far_instance, matched_free_instance};

    #[test]
    fn one_sidedness_survives_arbitrary_loss() {
        // Heavy random loss on a Ck-free graph: still never a reject.
        let g = matched_free_instance(40, 5);
        for seed in 0..4u64 {
            let engine = EngineConfig {
                faults: FaultPlan::none().random_loss(0.3, seed),
                ..EngineConfig::default()
            };
            let cfg = TesterConfig { repetitions: Some(4), ..TesterConfig::new(5, 0.1, seed) };
            assert!(!run_tester(&g, &cfg, &engine).unwrap().reject);
        }
    }

    #[test]
    fn rejects_under_loss_are_still_sound() {
        // On a graph WITH cycles, whatever survives the loss and triggers
        // a reject must be a real cycle.
        let inst = eps_far_instance(40, 4, 0.05, 0);
        for seed in 0..4u64 {
            let engine = EngineConfig {
                faults: FaultPlan::none().random_loss(0.15, seed * 7 + 1),
                ..EngineConfig::default()
            };
            let cfg = TesterConfig { repetitions: Some(20), ..TesterConfig::new(4, 0.05, seed) };
            let run = run_tester(&inst.graph, &cfg, &engine).unwrap();
            if run.reject {
                assert!(contains_ck(&inst.graph, 4));
                for r in run.rejections() {
                    let idx: Vec<_> = r
                        .witness
                        .cycle_ids()
                        .iter()
                        .map(|&id| inst.graph.index_of(id).unwrap())
                        .collect();
                    assert!(is_valid_ck(&inst.graph, 4, &idx));
                }
            }
        }
    }

    #[test]
    fn detection_rate_decreases_with_loss() {
        let g = cycle(6);
        let curve = loss_detection_curve(&g, 6, 0.2, &[0.0, 0.9], 6, 3);
        assert_eq!(curve[0].rate(), 1.0, "lossless detection on a lone cycle is certain");
        assert!(curve[1].rate() <= curve[0].rate(), "90% loss cannot beat lossless detection");
    }

    #[test]
    fn crash_curve_spans_certain_to_silent() {
        let g = cycle(6);
        let curve = crash_detection_curve(&g, 6, 0.2, &[0, 6], 4, 5);
        assert_eq!(curve[0].rate(), 1.0, "no crashes: a lone cycle is always detected");
        assert_eq!(curve[1].rate(), 0.0, "every node crashed: the network is silent");
        assert_eq!((curve[0].crashed, curve[1].crashed), (0, 6));
    }

    #[test]
    fn crashes_cannot_fabricate_rejects() {
        // Crash-stop is a loss pattern; 1-sidedness is loss-proof.
        let g = matched_free_instance(30, 4);
        let curve = crash_detection_curve(&g, 4, 0.1, &[0, 3, 10], 3, 7);
        assert!(curve.iter().all(|p| p.rejects == 0), "{curve:?}");
    }

    #[test]
    fn adaptive_schedule_recovers_the_detection_floor() {
        // k = 4 on a lone C4 at 40% i.i.d. loss: the paper schedule
        // detects well under 2/3 of the time, the loss-aware schedule
        // (inflation ⌈1/0.6⁸⌉ = 60) clears the floor.
        let g = cycle(4);
        let cmp = adaptive_vs_fixed(&g, 4, 0.3, 0.4, 6, 2);
        assert_eq!(cmp.inflation, 60);
        assert!(
            cmp.adaptive_rejects * 3 >= cmp.trials * 2,
            "adaptive rate {} below 2/3",
            cmp.adaptive_rate()
        );
        assert!(
            cmp.adaptive_rejects >= cmp.fixed_rejects,
            "inflation must not lose detections: {cmp:?}"
        );
    }

    #[test]
    fn clean_repetition_recovers_from_a_jammed_one() {
        // Jam every message of node 0 during repetition 0 (rounds 0..4
        // for k = 5). Repetition 1 runs untouched, and on a lone cycle a
        // clean repetition detects deterministically.
        let g = cycle(5);
        let mut plan = FaultPlan::none();
        for round in 0..4 {
            for port in 0..2 {
                plan = plan.drop_at(round, 0, port);
            }
        }
        let engine = EngineConfig { faults: plan, ..EngineConfig::default() };
        let cfg = TesterConfig { repetitions: Some(2), ..TesterConfig::new(5, 0.2, 11) };
        let run = run_tester(&g, &cfg, &engine).unwrap();
        assert!(run.reject, "the clean repetition must detect the cycle");
    }
}
