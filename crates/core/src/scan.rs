//! The collision-scan kernel subsystem: Phase-2 rejection and pruning
//! as branchless batch scans over a lane-major sequence block.
//!
//! Profiles after the arena/broadcast/batch work (PRs 1–3) put the
//! remaining tester cost in `decide_reject`'s pairwise
//! disjointness/union checks and the pruner's transversal membership
//! scans — branchy scalar loops over inline [`IdSeq`]s, executed
//! O(rep²) candidate pairs per node per decision. This module replaces
//! those per-pair calls with *batch* scans:
//!
//! * [`SeqBlock`] packs a node's candidate sequence set into a
//!   lane-major structure-of-arrays view — [`crate::seq::MAX_SEQ_LEN`] ID lanes ×
//!   sequences, plus a length row and a validity row — so "does ID `x`
//!   occur in sequence `s`" becomes one equality sweep along a
//!   contiguous lane for **every** `s` at once;
//! * the fixed-width kernels ([`SeqBlock::overlap_counts`],
//!   [`SeqBlock::contains_row`], [`SeqBlock::pairwise_disjoint`],
//!   [`SeqBlock::union_size_with`]) are branchless bitmask reductions
//!   over whole lanes that auto-vectorize on stable Rust; the optional
//!   `simd` cargo feature swaps in arch-specific SSE2/AVX2 variants via
//!   `core::arch` (runtime-dispatched, SSE2 being the x86-64 baseline);
//! * [`decide_all_rejects_scanned`] and the pruner's scanned form
//!   (`prune::build_send_set_scanned`) rebuild the final-round decision
//!   and the representative-family acceptance on those kernels, with
//!   output **identical** to the scalar reference — same witnesses, in
//!   the same order (property-tested in `tests/scan_differential.rs`).
//!
//! The scalar `IdSeq` methods remain the reference implementation and
//! the `--no-default-features` build dispatches everything through
//! them; [`ScanBackend`] selects the path at runtime so one binary can
//! compare all of them (the bench harness and the differential suite
//! do exactly that).
//!
//! Block packing has a real fixed cost, so the kernels only pay off
//! past a measured block size ([`KERNEL_MIN_SEQS`]) — and
//! protocol-realistic runs keep most per-node candidate blocks *under*
//! it by design (Lemma 3 pruning bounds each neighbor's contribution,
//! rank arbitration activates one check per neighborhood). The
//! production default is therefore [`ScanBackend::Hybrid`]: per-call
//! size dispatch for the decide path, scalar for the pruner, with the
//! forced kernel backends kept for benching and differential testing.
//!
//! ## Correctness preconditions
//!
//! The kernels count matching `(position, position)` pairs, so they
//! compute set intersections only for **duplicate-free** sequences —
//! which is an invariant of every protocol sequence (they are vertex
//! paths) and is `debug_assert`ed at [`SeqBlock::load`]. The scalar
//! reference tolerates duplicates; the differential suite therefore
//! generates duplicate-free inputs, matching the protocol contract.

use crate::decide::{decide_all_rejects, RejectWitness};
use crate::seq::IdSeq;
use ck_congest::graph::NodeId;

/// Smallest candidate-set size at which the decide kernels pay for
/// their block packing: below this the scalar loops' early exits beat
/// the branchless sweeps (measured break-even on the committed C5
/// sweeps sits at 4–8 sequences; kernels win 1.1–2.1× above it).
/// [`ScanBackend::Hybrid`] dispatches on this bound.
pub const KERNEL_MIN_SEQS: usize = 8;

/// Which implementation the Phase-2 collision scans run on.
///
/// All backends produce bit-identical results; the choice is purely a
/// performance/coverage knob. The CI feature matrix pins the *default*
/// per build (`--no-default-features` → [`ScanBackend::Scalar`],
/// default features and `--features simd` → [`ScanBackend::Hybrid`]
/// over the respective kernels) so no path can bitrot unnoticed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScanBackend {
    /// The scalar [`IdSeq`] reference loops.
    Scalar,
    /// Portable branchless lane kernels (auto-vectorized), forced for
    /// every input size.
    Lanes,
    /// Arch-specific (`core::arch` SSE2/AVX2) lane kernels, forced for
    /// every input size. Resolves to [`ScanBackend::Lanes`] when the
    /// `simd` feature is not compiled or the target is not x86-64.
    Simd,
    /// Size-aware production dispatch: the decide path runs the best
    /// compiled kernel when the candidate block has at least
    /// [`KERNEL_MIN_SEQS`] sequences and the scalar reference below
    /// that; the pruner always takes the scalar branch (its early-exit
    /// transversal scans beat hit-row maintenance in every
    /// protocol-realistic regime — see `prune::build_send_set_scanned`).
    Hybrid,
}

impl ScanBackend {
    /// The best backend this build provides — what protocols use unless
    /// explicitly overridden.
    pub fn auto() -> ScanBackend {
        if Self::simd_compiled() || cfg!(feature = "block-scan") {
            ScanBackend::Hybrid
        } else {
            ScanBackend::Scalar
        }
    }

    /// True when the arch-specific kernels are compiled into this build
    /// (`simd` feature on an x86-64 target).
    pub fn simd_compiled() -> bool {
        cfg!(all(feature = "simd", target_arch = "x86_64"))
    }

    /// The fastest forced kernel this build compiles — what
    /// [`ScanBackend::Hybrid`] dispatches large blocks to.
    pub fn best_kernel() -> ScanBackend {
        if Self::simd_compiled() {
            ScanBackend::Simd
        } else {
            ScanBackend::Lanes
        }
    }

    /// Downgrades [`ScanBackend::Simd`] to [`ScanBackend::Lanes`] when
    /// the intrinsics are not compiled; identity otherwise.
    pub fn resolve(self) -> ScanBackend {
        match self {
            ScanBackend::Simd if !Self::simd_compiled() => ScanBackend::Lanes,
            b => b,
        }
    }

    /// The concrete backend the decide path runs for a candidate block
    /// of `seqs` sequences: resolves [`ScanBackend::Hybrid`] by size,
    /// forced backends by [`ScanBackend::resolve`].
    pub fn for_block(self, seqs: usize) -> ScanBackend {
        match self {
            ScanBackend::Hybrid if seqs >= KERNEL_MIN_SEQS => Self::best_kernel(),
            ScanBackend::Hybrid => ScanBackend::Scalar,
            b => b.resolve(),
        }
    }
}

impl Default for ScanBackend {
    fn default() -> Self {
        ScanBackend::auto()
    }
}

/// One equality sweep along a lane: `acc[s] += (ids[s] == e) & valid[s]`
/// for every sequence `s`. This is the single primitive every kernel
/// reduces to; the portable form is written to auto-vectorize, and the
/// `simd` feature swaps in `core::arch` variants.
#[inline]
fn eq_add_row(backend: ScanBackend, ids: &[NodeId], valid: &[u64], e: NodeId, acc: &mut [u64]) {
    debug_assert!(ids.len() == acc.len() && valid.len() == acc.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if backend == ScanBackend::Simd {
        // SAFETY: the three rows have equal length (asserted above);
        // SSE2 is the x86-64 baseline and AVX2 is runtime-detected.
        unsafe { x86::eq_add_row(ids, valid, e, acc) };
        return;
    }
    let _ = backend;
    for ((&id, &v), a) in ids.iter().zip(valid).zip(acc.iter_mut()) {
        *a += u64::from(id == e) & v;
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    //! `core::arch` lane sweeps. AVX2 processes 4 IDs per step with a
    //! native 64-bit compare; the SSE2 fallback (always available on
    //! x86-64) processes 2, emulating the 64-bit compare with two
    //! 32-bit compares ANDed across each half.

    use core::arch::x86_64::*;

    /// # Safety
    /// `ids`, `valid`, and `acc` must have equal lengths.
    pub(super) unsafe fn eq_add_row(ids: &[u64], valid: &[u64], e: u64, acc: &mut [u64]) {
        if std::arch::is_x86_feature_detected!("avx2") {
            eq_add_row_avx2(ids, valid, e, acc)
        } else {
            eq_add_row_sse2(ids, valid, e, acc)
        }
    }

    /// # Safety
    /// As [`eq_add_row`]; additionally requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn eq_add_row_avx2(ids: &[u64], valid: &[u64], e: u64, acc: &mut [u64]) {
        let n = acc.len();
        let ev = _mm256_set1_epi64x(e as i64);
        let mut s = 0usize;
        while s + 4 <= n {
            let id = _mm256_loadu_si256(ids.as_ptr().add(s).cast());
            let vm = _mm256_loadu_si256(valid.as_ptr().add(s).cast());
            // valid is 0/1 per entry, the compare mask is all-ones per
            // match: AND yields exactly the per-sequence increment.
            let hit = _mm256_and_si256(_mm256_cmpeq_epi64(id, ev), vm);
            let a = _mm256_loadu_si256(acc.as_ptr().add(s).cast());
            _mm256_storeu_si256(acc.as_mut_ptr().add(s).cast(), _mm256_add_epi64(a, hit));
            s += 4;
        }
        tail(ids, valid, e, acc, s);
    }

    /// # Safety
    /// As [`eq_add_row`] (SSE2 is the x86-64 baseline).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn eq_add_row_sse2(ids: &[u64], valid: &[u64], e: u64, acc: &mut [u64]) {
        let n = acc.len();
        let ev = _mm_set1_epi64x(e as i64);
        let mut s = 0usize;
        while s + 2 <= n {
            let id = _mm_loadu_si128(ids.as_ptr().add(s).cast());
            let vm = _mm_loadu_si128(valid.as_ptr().add(s).cast());
            // No 64-bit equality below SSE4.1: compare 32-bit halves,
            // then AND each half with its swapped partner.
            let eq32 = _mm_cmpeq_epi32(id, ev);
            let eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b1011_0001));
            let hit = _mm_and_si128(eq64, vm);
            let a = _mm_loadu_si128(acc.as_ptr().add(s).cast());
            _mm_storeu_si128(acc.as_mut_ptr().add(s).cast(), _mm_add_epi64(a, hit));
            s += 2;
        }
        tail(ids, valid, e, acc, s);
    }

    fn tail(ids: &[u64], valid: &[u64], e: u64, acc: &mut [u64], from: usize) {
        for s in from..acc.len() {
            acc[s] += u64::from(ids[s] == e) & valid[s];
        }
    }
}

/// A lane-major structure-of-arrays view of a sequence set.
///
/// Lane `l` of all sequences lives contiguously (`stride` apart per
/// lane), so a membership probe touches `max_len` contiguous rows
/// instead of hopping between inline sequences. Rows are padded to the
/// stride; a parallel validity row (`1` for a real entry, `0` for
/// padding) keeps the sweeps branchless — a padded slot can never
/// contribute a match, whatever its residual ID value.
///
/// The backing storage is grow-only and recycled across [`SeqBlock::load`]s
/// (`SeqBlock::load`): the tester carries one block per node in its
/// scratch, so steady-state rounds repack without allocating.
#[derive(Debug, Default)]
pub struct SeqBlock {
    /// Lane-major IDs: entry `(l, s)` at `ids[l * stride + s]`.
    ids: Vec<NodeId>,
    /// 1 where `(l, s)` holds a real ID, 0 for padding; same layout.
    valid: Vec<u64>,
    /// Per-sequence lengths.
    lens: Vec<u8>,
    /// Number of sequences loaded.
    count: usize,
    /// Row stride (≥ `count`, kept across loads so rows never shrink).
    stride: usize,
    /// Longest loaded sequence: the sweeps stop at this lane.
    max_len: usize,
}

impl SeqBlock {
    /// An empty block (allocates nothing until the first load).
    pub fn new() -> Self {
        SeqBlock::default()
    }

    /// Number of sequences currently loaded.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no sequence is loaded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Length of sequence `s`.
    pub fn seq_len(&self, s: usize) -> usize {
        self.lens[s] as usize
    }

    /// Packs `seqs` into the block, recycling the backing storage.
    ///
    /// Each sequence must be duplicate-free (the protocol invariant —
    /// sequences are vertex paths); `debug_assert`ed here because the
    /// counting kernels rely on it.
    pub fn load(&mut self, seqs: &[IdSeq]) {
        self.count = seqs.len();
        self.max_len = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
        if self.stride < self.count {
            self.stride = self.count.next_multiple_of(8);
        }
        let need = self.stride * self.max_len;
        if self.ids.len() < need {
            self.ids.resize(need, 0);
            self.valid.resize(need, 0);
        }
        self.lens.clear();
        self.lens.extend(seqs.iter().map(|q| q.len() as u8));
        for (s, q) in seqs.iter().enumerate() {
            let sl = q.as_slice();
            debug_assert!(
                (0..sl.len()).all(|i| !sl[i + 1..].contains(&sl[i])),
                "SeqBlock sequences must be duplicate-free: {q:?}"
            );
            for l in 0..self.max_len {
                let idx = l * self.stride + s;
                let real = l < sl.len();
                self.ids[idx] = if real { sl[l] } else { 0 };
                self.valid[idx] = u64::from(real);
            }
        }
    }

    /// `counts[s] = |probe ∩ seq_s|` for every loaded sequence — the
    /// whole-block form of the scalar pairwise intersection scan.
    pub fn overlap_counts(&self, probe: &IdSeq, backend: ScanBackend, counts: &mut Vec<u64>) {
        counts.clear();
        counts.resize(self.count, 0);
        for &e in probe.as_slice() {
            self.sweep(e, backend, counts);
        }
    }

    /// `row[s] = 1` iff sequence `s` contains `id` (0 otherwise) — the
    /// whole-block form of [`IdSeq::contains`].
    pub fn contains_row(&self, id: NodeId, backend: ScanBackend, row: &mut Vec<u64>) {
        row.clear();
        row.resize(self.count, 0);
        self.sweep(id, backend, row);
    }

    /// True when any loaded sequence contains `id`; `row` is scratch.
    pub fn contains_any(&self, id: NodeId, backend: ScanBackend, row: &mut Vec<u64>) -> bool {
        self.contains_row(id, backend, row);
        row.iter().any(|&r| r != 0)
    }

    /// `flags[s] = 1` iff `probe` and sequence `s` are disjoint — the
    /// whole-block form of [`IdSeq::disjoint_with`].
    pub fn pairwise_disjoint(&self, probe: &IdSeq, backend: ScanBackend, flags: &mut Vec<u64>) {
        self.overlap_counts(probe, backend, flags);
        for f in flags.iter_mut() {
            *f = u64::from(*f == 0);
        }
    }

    /// `out[s] = |probe ∪ seq_s ∪ {extra}|` for every loaded sequence —
    /// the whole-block form of [`IdSeq::union_size_with`] (Instruction
    /// 37's quantity), computed as `|probe| + |seq_s| − |probe ∩ seq_s|
    /// + [extra ∉ probe ∪ seq_s]`. `marks` is scratch.
    pub fn union_size_with(
        &self,
        probe: &IdSeq,
        extra: NodeId,
        backend: ScanBackend,
        marks: &mut Vec<u64>,
        out: &mut Vec<u64>,
    ) {
        self.overlap_counts(probe, backend, out);
        self.contains_row(extra, backend, marks);
        let extra_in_probe = u64::from(probe.contains(extra));
        for s in 0..self.count {
            out[s] = probe.len() as u64 + u64::from(self.lens[s]) - out[s]
                + ((1 - extra_in_probe) & (1 - marks[s]));
        }
    }

    /// One ID's equality sweep over every populated lane.
    #[inline]
    fn sweep(&self, e: NodeId, backend: ScanBackend, acc: &mut [u64]) {
        // Row-level calls always run a kernel: a `Hybrid` caller that
        // reached the block already decided the block is worth packing.
        let backend =
            if backend == ScanBackend::Hybrid { ScanBackend::best_kernel() } else { backend };
        for l in 0..self.max_len {
            let base = l * self.stride;
            eq_add_row(
                backend,
                &self.ids[base..base + self.count],
                &self.valid[base..base + self.count],
                e,
                acc,
            );
        }
    }
}

/// The recyclable buffers of the scanned Phase-2 hot paths: the packed
/// block plus the count/mark/hit rows the kernels write. One per node
/// program, threaded through the tester's scratch pool so batch runs
/// reuse it across jobs.
#[derive(Debug, Default)]
pub struct ScanScratch {
    pub(crate) block: SeqBlock,
    pub(crate) counts: Vec<u64>,
    pub(crate) marks: Vec<u64>,
    pub(crate) hits: Vec<u64>,
    pub(crate) row: Vec<u64>,
    pub(crate) wits: Vec<RejectWitness>,
}

impl ScanScratch {
    /// An empty scratch (allocates nothing until first use).
    pub fn new() -> Self {
        ScanScratch::default()
    }
}

/// The batch-scan form of [`decide_all_rejects`]: identical witnesses
/// in identical order, but every candidate pair is resolved from one
/// overlap row per probe sequence plus a single `myid` containment row
/// over the whole block, instead of per-pair scalar union scans.
///
/// `received` sequences must be duplicate-free (protocol invariant;
/// see the module docs). With `backend` resolving to
/// [`ScanBackend::Scalar`] — which [`ScanBackend::Hybrid`] does for
/// blocks under [`KERNEL_MIN_SEQS`] sequences, where the scalar
/// early exits beat the packing cost — this delegates to the scalar
/// reference.
pub fn decide_all_rejects_scanned(
    backend: ScanBackend,
    k: usize,
    myid: NodeId,
    own_sent: &[IdSeq],
    received: &[IdSeq],
    scratch: &mut ScanScratch,
    out: &mut Vec<RejectWitness>,
) {
    out.clear();
    let backend = backend.for_block(received.len());
    if backend == ScanBackend::Scalar {
        out.extend(decide_all_rejects(k, myid, own_sent, received));
        return;
    }
    assert!(k >= 3);
    let half = k / 2;
    let ScanScratch { block, counts, marks, .. } = scratch;
    block.load(received);
    block.contains_row(myid, backend, marks);
    if k % 2 == 1 {
        // Both sequences received, length ⌊k/2⌋ each.
        for (i, l1) in received.iter().enumerate() {
            if l1.len() != half {
                continue;
            }
            block.overlap_counts(l1, backend, counts);
            for (j, l2) in received.iter().enumerate().skip(i + 1) {
                if l2.len() != half {
                    continue;
                }
                let union = (2 * half) as u64 - counts[j] + ((1 - marks[i]) & (1 - marks[j]));
                if union == k as u64 {
                    out.push(RejectWitness { l1: *l1, l2: *l2, myid, k });
                }
            }
        }
    } else {
        // Exactly one sequence from own S (contains myid), one received.
        for l1 in own_sent {
            if l1.len() != half {
                continue;
            }
            debug_assert_eq!(l1.last(), Some(myid), "own sequences end with myid");
            block.overlap_counts(l1, backend, counts);
            let myid_in_l1 = u64::from(l1.contains(myid));
            for (j, l2) in received.iter().enumerate() {
                if l2.len() != half {
                    continue;
                }
                let union = (2 * half) as u64 - counts[j] + ((1 - myid_in_l1) & (1 - marks[j]));
                if union == k as u64 {
                    out.push(RejectWitness { l1: *l1, l2: *l2, myid, k });
                }
            }
        }
    }
}

/// First-witness form of [`decide_all_rejects_scanned`] — the batch-scan
/// counterpart of [`crate::decide::decide_reject`], allocation-free in
/// steady state (the witness buffer lives in the scratch).
pub fn decide_reject_scanned(
    backend: ScanBackend,
    k: usize,
    myid: NodeId,
    own_sent: &[IdSeq],
    received: &[IdSeq],
    scratch: &mut ScanScratch,
) -> Option<RejectWitness> {
    let mut wits = std::mem::take(&mut scratch.wits);
    decide_all_rejects_scanned(backend, k, myid, own_sent, received, scratch, &mut wits);
    let first = wits.drain(..).next();
    scratch.wits = wits;
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::decide_reject;

    fn seq(ids: &[u64]) -> IdSeq {
        IdSeq::from_slice(ids)
    }

    /// Backends whose kernels actually run in this build.
    fn kernel_backends() -> Vec<ScanBackend> {
        let mut v = vec![ScanBackend::Lanes];
        if ScanBackend::simd_compiled() {
            v.push(ScanBackend::Simd);
        }
        v
    }

    #[test]
    fn backend_resolution() {
        assert_eq!(ScanBackend::Scalar.resolve(), ScanBackend::Scalar);
        assert_eq!(ScanBackend::Lanes.resolve(), ScanBackend::Lanes);
        if ScanBackend::simd_compiled() {
            assert_eq!(ScanBackend::Simd.resolve(), ScanBackend::Simd);
            assert_eq!(ScanBackend::best_kernel(), ScanBackend::Simd);
        } else {
            assert_eq!(ScanBackend::Simd.resolve(), ScanBackend::Lanes);
            assert_eq!(ScanBackend::best_kernel(), ScanBackend::Lanes);
        }
        if cfg!(feature = "block-scan") {
            assert_eq!(ScanBackend::auto(), ScanBackend::Hybrid);
        } else {
            assert_eq!(ScanBackend::auto(), ScanBackend::Scalar);
        }
        assert_eq!(ScanBackend::default(), ScanBackend::auto());
        // Size dispatch: hybrid goes scalar under the break-even bound,
        // kernel at and above it; forced backends ignore the size.
        assert_eq!(ScanBackend::Hybrid.for_block(KERNEL_MIN_SEQS - 1), ScanBackend::Scalar);
        assert_eq!(ScanBackend::Hybrid.for_block(KERNEL_MIN_SEQS), ScanBackend::best_kernel());
        assert_eq!(ScanBackend::Lanes.for_block(0), ScanBackend::Lanes);
        assert_eq!(ScanBackend::Simd.for_block(0), ScanBackend::Simd.resolve());
        assert_eq!(ScanBackend::Scalar.for_block(1 << 20), ScanBackend::Scalar);
    }

    #[test]
    fn rows_match_scalar_reference() {
        let seqs = vec![seq(&[1, 2, 3]), seq(&[4, 5]), seq(&[]), seq(&[3, 6, 9, 12]), seq(&[7])];
        let probes = [seq(&[2, 4, 9]), seq(&[]), seq(&[8]), seq(&[1, 2, 3])];
        let mut block = SeqBlock::new();
        block.load(&seqs);
        assert_eq!(block.len(), 5);
        assert_eq!(block.seq_len(3), 4);
        let (mut counts, mut marks, mut out) = (Vec::new(), Vec::new(), Vec::new());
        for backend in kernel_backends() {
            for probe in &probes {
                block.overlap_counts(probe, backend, &mut counts);
                for (s, q) in seqs.iter().enumerate() {
                    let expect = probe.iter().filter(|&e| q.contains(e)).count() as u64;
                    assert_eq!(counts[s], expect, "{backend:?} overlap s={s} probe={probe:?}");
                }
                block.pairwise_disjoint(probe, backend, &mut counts);
                for (s, q) in seqs.iter().enumerate() {
                    assert_eq!(counts[s] == 1, probe.disjoint_with(q), "{backend:?} disjoint");
                }
                for extra in [0u64, 3, 7, 42] {
                    block.union_size_with(probe, extra, backend, &mut marks, &mut out);
                    for (s, q) in seqs.iter().enumerate() {
                        assert_eq!(
                            out[s],
                            probe.union_size_with(q, extra) as u64,
                            "{backend:?} union s={s} probe={probe:?} extra={extra}"
                        );
                    }
                }
            }
            for id in [0u64, 1, 5, 9, 100] {
                let mut row = Vec::new();
                block.contains_row(id, backend, &mut row);
                for (s, q) in seqs.iter().enumerate() {
                    assert_eq!(row[s] == 1, q.contains(id), "{backend:?} contains");
                }
                assert_eq!(
                    block.contains_any(id, backend, &mut row),
                    seqs.iter().any(|q| q.contains(id))
                );
            }
        }
    }

    #[test]
    fn block_reload_reuses_storage() {
        let mut block = SeqBlock::new();
        block.load(&[seq(&[1, 2]), seq(&[3, 4]), seq(&[5, 6])]);
        let mut row = Vec::new();
        assert!(block.contains_any(5, ScanBackend::Lanes, &mut row));
        // Shrinking reload: stale entries of the bigger load must not
        // leak into the sweeps.
        block.load(&[seq(&[9])]);
        assert_eq!(block.len(), 1);
        assert!(!block.contains_any(5, ScanBackend::Lanes, &mut row));
        assert!(block.contains_any(9, ScanBackend::Lanes, &mut row));
        // Growing reload past the first stride.
        let many: Vec<IdSeq> = (0..37u64).map(|i| seq(&[i, i + 100])).collect();
        block.load(&many);
        let mut counts = Vec::new();
        block.overlap_counts(&seq(&[5, 136]), ScanBackend::Lanes, &mut counts);
        for (s, q) in many.iter().enumerate() {
            let expect = u64::from(q.contains(5)) + u64::from(q.contains(136));
            assert_eq!(counts[s], expect);
        }
    }

    #[test]
    fn scanned_decide_matches_scalar_on_fixed_cases() {
        // The decide.rs unit-test cases, replayed through every backend.
        let cases: Vec<(usize, u64, Vec<IdSeq>, Vec<IdSeq>)> = vec![
            (5, 50, vec![], vec![seq(&[10, 11]), seq(&[20, 21])]),
            (5, 50, vec![], vec![seq(&[10, 11]), seq(&[20, 11])]),
            (5, 50, vec![], vec![seq(&[10, 50]), seq(&[20, 21])]),
            (4, 50, vec![seq(&[10, 50])], vec![seq(&[20, 21])]),
            (4, 50, vec![], vec![seq(&[10, 11]), seq(&[20, 21])]),
            (4, 50, vec![seq(&[10, 50])], vec![seq(&[10, 21])]),
            (3, 9, vec![], vec![seq(&[1]), seq(&[2])]),
            (5, 9, vec![], vec![seq(&[1]), seq(&[2]), seq(&[3, 4])]),
            (7, 50, vec![], vec![seq(&[10, 11, 12]), seq(&[20, 21, 22])]),
        ];
        let mut scratch = ScanScratch::new();
        let mut got = Vec::new();
        for (k, myid, own, recv) in &cases {
            let expect = decide_all_rejects(*k, *myid, own, recv);
            for backend in kernel_backends() {
                decide_all_rejects_scanned(backend, *k, *myid, own, recv, &mut scratch, &mut got);
                assert_eq!(got, expect, "{backend:?} k={k} myid={myid}");
                assert_eq!(
                    decide_reject_scanned(backend, *k, *myid, own, recv, &mut scratch),
                    decide_reject(*k, *myid, own, recv),
                );
            }
        }
    }

    /// Both intrinsic widths against the portable sweep, on every
    /// length class (vector body + scalar tail), including the
    /// boundary IDs whose 32-bit halves collide — the case the SSE2
    /// emulated 64-bit compare must get right.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn intrinsic_rows_match_portable() {
        let tricky: Vec<u64> = vec![
            0,
            1,
            u64::MAX,
            0xFFFF_FFFF_0000_0000,
            0x0000_0000_FFFF_FFFF,
            0xAAAA_AAAA_AAAA_AAAA,
            7,
            0xFFFF_FFFF_0000_0001,
            1 << 32,
            (1 << 32) | 1,
        ];
        for n in 0..=10usize {
            let ids = &tricky[..n];
            let valid: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            for &e in &tricky {
                let mut portable = vec![3u64; n];
                super::eq_add_row(ScanBackend::Lanes, ids, &valid, e, &mut portable);
                let mut sse2 = vec![3u64; n];
                // SAFETY: equal lengths; SSE2 is the x86-64 baseline.
                unsafe { super::x86::eq_add_row_sse2(ids, &valid, e, &mut sse2) };
                assert_eq!(sse2, portable, "sse2 n={n} e={e:#x}");
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut avx2 = vec![3u64; n];
                    // SAFETY: as above, plus the runtime AVX2 check.
                    unsafe { super::x86::eq_add_row_avx2(ids, &valid, e, &mut avx2) };
                    assert_eq!(avx2, portable, "avx2 n={n} e={e:#x}");
                }
            }
        }
    }

    #[test]
    fn scalar_backend_delegates_to_reference() {
        let recv = vec![seq(&[10, 11]), seq(&[20, 21])];
        let mut scratch = ScanScratch::new();
        let mut got = Vec::new();
        decide_all_rejects_scanned(ScanBackend::Scalar, 5, 50, &[], &recv, &mut scratch, &mut got);
        assert_eq!(got, decide_all_rejects(5, 50, &[], &recv));
    }
}
