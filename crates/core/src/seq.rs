//! Ordered ID sequences — the unit of Phase-2 communication.
//!
//! Algorithm 1 exchanges ordered sequences of at most `⌊k/2⌋` node IDs.
//! `IdSeq` stores them inline (no heap) with capacity [`MAX_SEQ_LEN`],
//! which supports every `k ≤ 2·MAX_SEQ_LEN + 1 = 33` — far beyond the
//! constant-`k` regime of the paper.

use ck_congest::graph::NodeId;

/// Maximum sequence length (`⌊k/2⌋` for the largest supported `k`).
pub const MAX_SEQ_LEN: usize = 16;

/// Largest cycle length the implementation accepts.
pub const MAX_K: usize = 2 * MAX_SEQ_LEN + 1;

/// An ordered sequence of distinct node IDs, stored inline.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdSeq {
    len: u8,
    ids: [NodeId; MAX_SEQ_LEN],
}

impl IdSeq {
    /// The empty sequence.
    pub fn empty() -> Self {
        IdSeq { len: 0, ids: [0; MAX_SEQ_LEN] }
    }

    /// A one-element sequence (the Phase-2 seed `(myid)`).
    pub fn single(id: NodeId) -> Self {
        let mut s = Self::empty();
        // ck-lint: allow(index-literal, reason = "ids is a fixed [NodeId; MAX_SEQ_LEN] array and MAX_SEQ_LEN >= 1")
        s.ids[0] = id;
        s.len = 1;
        s
    }

    /// Builds from a slice (panics if it exceeds capacity).
    pub fn from_slice(ids: &[NodeId]) -> Self {
        assert!(ids.len() <= MAX_SEQ_LEN, "sequence too long: {}", ids.len());
        let mut s = Self::empty();
        s.ids[..ids.len()].copy_from_slice(ids);
        s.len = ids.len() as u8;
        s
    }

    /// Number of IDs.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when no IDs are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The IDs as a slice, in order.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.ids[..self.len as usize]
    }

    /// First ID (the extremity at `u` or `v` per Lemma 1), if nonempty.
    pub fn first(&self) -> Option<NodeId> {
        // ck-lint: allow(index-literal, reason = "guarded by len > 0 and ids is a fixed-size array")
        (self.len > 0).then(|| self.ids[0])
    }

    /// Last ID (the sender extremity per Lemma 1), if nonempty.
    pub fn last(&self) -> Option<NodeId> {
        (self.len > 0).then(|| self.ids[self.len as usize - 1])
    }

    /// Membership test (linear scan; sequences are tiny).
    pub fn contains(&self, id: NodeId) -> bool {
        self.as_slice().contains(&id)
    }

    /// Returns the sequence extended by `id` at the tail (Instruction 24:
    /// "append myid at the tail of each L ∈ S").
    pub fn appended(&self, id: NodeId) -> Self {
        assert!((self.len as usize) < MAX_SEQ_LEN, "append past capacity");
        let mut s = *self;
        s.ids[s.len as usize] = id;
        s.len += 1;
        s
    }

    /// True if `self` and `other` share no ID.
    pub fn disjoint_with(&self, other: &IdSeq) -> bool {
        self.as_slice().iter().all(|id| !other.contains(*id))
    }

    /// `|self ∪ other ∪ {extra}|` — the quantity of Instruction 37.
    pub fn union_size_with(&self, other: &IdSeq, extra: NodeId) -> usize {
        let mut buf = [0 as NodeId; 2 * MAX_SEQ_LEN + 1];
        let mut n = 0;
        for &id in self.as_slice() {
            buf[n] = id;
            n += 1;
        }
        for &id in other.as_slice() {
            buf[n] = id;
            n += 1;
        }
        buf[n] = extra;
        n += 1;
        let buf = &mut buf[..n];
        buf.sort_unstable();
        // ck-lint: allow(index-literal, reason = "windows(2) yields exactly-two-element slices")
        1 + buf.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Iterator over IDs.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.as_slice().iter().copied()
    }
}

impl std::fmt::Debug for IdSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Seq{:?}", self.as_slice())
    }
}

impl PartialOrd for IdSeq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IdSeq {
    /// Lexicographic over contents (shorter prefixes first) — the
    /// canonical deterministic iteration order used by the pruner.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<'a> IntoIterator for &'a IdSeq {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let s = IdSeq::single(7);
        assert_eq!(s.len(), 1);
        assert_eq!(s.first(), Some(7));
        assert_eq!(s.last(), Some(7));
        let t = s.appended(9).appended(11);
        assert_eq!(t.as_slice(), &[7, 9, 11]);
        assert_eq!(t.first(), Some(7));
        assert_eq!(t.last(), Some(11));
        assert!(t.contains(9));
        assert!(!t.contains(8));
        assert!(IdSeq::empty().is_empty());
        assert_eq!(IdSeq::empty().first(), None);
    }

    #[test]
    fn from_slice_round_trip() {
        let s = IdSeq::from_slice(&[1, 2, 3]);
        assert_eq!(s.as_slice(), &[1, 2, 3]);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "append past capacity")]
    fn append_past_capacity_panics() {
        let mut s = IdSeq::empty();
        for i in 0..=MAX_SEQ_LEN as u64 {
            s = s.appended(i);
        }
    }

    #[test]
    fn disjointness() {
        let a = IdSeq::from_slice(&[1, 2, 3]);
        let b = IdSeq::from_slice(&[4, 5]);
        let c = IdSeq::from_slice(&[3, 4]);
        assert!(a.disjoint_with(&b));
        assert!(b.disjoint_with(&a));
        assert!(!a.disjoint_with(&c));
        assert!(a.disjoint_with(&IdSeq::empty()));
    }

    #[test]
    fn union_size() {
        let a = IdSeq::from_slice(&[1, 2]);
        let b = IdSeq::from_slice(&[3, 4]);
        assert_eq!(a.union_size_with(&b, 5), 5);
        assert_eq!(a.union_size_with(&b, 4), 4);
        let c = IdSeq::from_slice(&[2, 3]);
        assert_eq!(a.union_size_with(&c, 1), 3);
        assert_eq!(a.union_size_with(&a, 9), 3);
    }

    /// Boundary coverage at full capacity: `MAX_SEQ_LEN`-long sequences
    /// (every lane populated) and unions reaching exactly `MAX_K`.
    #[test]
    fn full_capacity_sequences_scalar() {
        let a = IdSeq::from_slice(&(0..MAX_SEQ_LEN as u64).collect::<Vec<_>>());
        let b =
            IdSeq::from_slice(&(MAX_SEQ_LEN as u64..2 * MAX_SEQ_LEN as u64).collect::<Vec<_>>());
        assert_eq!(a.len(), MAX_SEQ_LEN);
        assert!(a.disjoint_with(&b) && b.disjoint_with(&a));
        // Two full disjoint sequences plus a fresh extra: exactly MAX_K.
        assert_eq!(a.union_size_with(&b, 2 * MAX_SEQ_LEN as u64), MAX_K);
        // Extra already present on either side: MAX_K − 1.
        assert_eq!(a.union_size_with(&b, 0), MAX_K - 1);
        assert_eq!(a.union_size_with(&b, MAX_SEQ_LEN as u64), MAX_K - 1);
        // Self-union stays at capacity regardless of the extra.
        assert_eq!(a.union_size_with(&a, 3), MAX_SEQ_LEN);
        assert_eq!(a.union_size_with(&a, 99), MAX_SEQ_LEN + 1);
        for id in a.iter() {
            assert!(a.contains(id) && !b.contains(id));
        }
        // One shared ID at the last lane breaks disjointness.
        let mut c_ids: Vec<u64> = (100..100 + MAX_SEQ_LEN as u64 - 1).collect();
        c_ids.push(MAX_SEQ_LEN as u64 - 1);
        let c = IdSeq::from_slice(&c_ids);
        assert!(!a.disjoint_with(&c));
        assert_eq!(a.union_size_with(&c, 200), 2 * MAX_SEQ_LEN);
    }

    #[test]
    fn empty_sequence_edge_cases() {
        let e = IdSeq::empty();
        assert!(e.disjoint_with(&e));
        assert!(!e.contains(0));
        assert_eq!(e.union_size_with(&e, 5), 1);
        let a = IdSeq::from_slice(&[1, 2]);
        assert_eq!(e.union_size_with(&a, 1), 2);
        assert_eq!(a.union_size_with(&e, 9), 3);
    }

    /// The kernel forms of `contains`/`disjoint_with`/`union_size_with`
    /// at the same boundaries: full lanes, empty sequences, extras on
    /// either side — every compiled backend against the scalar methods.
    #[test]
    fn full_capacity_sequences_kernel_forms() {
        use crate::scan::{ScanBackend, SeqBlock};
        let full_a = IdSeq::from_slice(&(0..MAX_SEQ_LEN as u64).collect::<Vec<_>>());
        let full_b =
            IdSeq::from_slice(&(MAX_SEQ_LEN as u64..2 * MAX_SEQ_LEN as u64).collect::<Vec<_>>());
        let mut overlap_ids: Vec<u64> = (100..100 + MAX_SEQ_LEN as u64 - 1).collect();
        overlap_ids.push(0);
        let seqs =
            vec![full_a, full_b, IdSeq::empty(), IdSeq::single(7), IdSeq::from_slice(&overlap_ids)];
        let mut block = SeqBlock::new();
        block.load(&seqs);
        let mut backends = vec![ScanBackend::Lanes];
        if ScanBackend::simd_compiled() {
            backends.push(ScanBackend::Simd);
        }
        let (mut row, mut marks, mut out) = (Vec::new(), Vec::new(), Vec::new());
        for &backend in &backends {
            for probe in &seqs {
                block.pairwise_disjoint(probe, backend, &mut row);
                for (s, q) in seqs.iter().enumerate() {
                    assert_eq!(row[s] == 1, probe.disjoint_with(q), "{backend:?}");
                }
                for extra in [0u64, 7, MAX_SEQ_LEN as u64, 2 * MAX_SEQ_LEN as u64, 999] {
                    block.union_size_with(probe, extra, backend, &mut marks, &mut out);
                    for (s, q) in seqs.iter().enumerate() {
                        assert_eq!(
                            out[s],
                            probe.union_size_with(q, extra) as u64,
                            "{backend:?} s={s} extra={extra}"
                        );
                    }
                }
            }
            for id in [0u64, 7, 15, 16, 100, 999] {
                block.contains_row(id, backend, &mut row);
                for (s, q) in seqs.iter().enumerate() {
                    assert_eq!(row[s] == 1, q.contains(id), "{backend:?} id={id}");
                }
            }
        }
    }

    /// The kernels require duplicate-free sequences (the protocol
    /// invariant); the block enforces it in debug builds.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate-free")]
    fn kernel_block_rejects_duplicates() {
        let mut block = crate::scan::SeqBlock::new();
        block.load(&[IdSeq::from_slice(&[3, 3])]);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [
            IdSeq::from_slice(&[2, 1]),
            IdSeq::from_slice(&[1, 2]),
            IdSeq::from_slice(&[1]),
            IdSeq::from_slice(&[1, 2, 3]),
        ];
        v.sort();
        let rendered: Vec<Vec<u64>> = v.iter().map(|s| s.as_slice().to_vec()).collect();
        assert_eq!(rendered, vec![vec![1], vec![1, 2], vec![1, 2, 3], vec![2, 1]]);
    }
}
