//! The composable entry point over the full `Ck` tester: build a
//! [`TesterSession`] once — parameters validated at build time — and
//! test graphs through it repeatedly.
//!
//! Four PRs of tester work grew three free-function entry points
//! (`run_tester`, `run_tester_reusing`, `run_tester_batch`) whose
//! signatures widened with every capability — caller-threaded
//! [`ck_congest::engine::EngineWorkspace`]s,
//! [`TesterScratch`] pools, batch option structs. A `TesterSession`
//! folds them into one builder over [`TesterConfig`] with validated
//! setters (`k ∈ 3..=MAX_K`, `ε ∈ (0, 1)` via
//! [`crate::rank::try_repetitions_for`]), owning the engine workspace
//! and scratch pool so the fast path — arena, slot-array, and per-node
//! buffer reuse across runs — is the default rather than an expert
//! opt-in.
//!
//! Outputs are bit-identical to the legacy entry points by the
//! engine's reuse contracts — property-tested in
//! `tests/session_parity.rs`.

use crate::batch::{batch_exec, BatchError, BatchJob};
use crate::msg::CkMsg;
use crate::prune::PrunerKind;
use crate::scan::ScanBackend;
use crate::tester::{
    tester_exec, tester_exec_into, ConfigError, NodeLayout, TesterConfig, TesterRun, TesterScratch,
};
use ck_congest::engine::{EngineConfig, EngineError, EngineWorkspace, Executor, SlotStats};
use ck_congest::graph::Graph;

/// Builder for a [`TesterSession`]; every setter records, [`build`]
/// validates.
///
/// [`build`]: TesterSessionBuilder::build
pub struct TesterSessionBuilder {
    cfg: TesterConfig,
    engine: EngineConfig,
}

impl TesterSessionBuilder {
    fn new(k: usize, eps: f64) -> Self {
        TesterSessionBuilder { cfg: TesterConfig::new(k, eps, 0), engine: EngineConfig::default() }
    }

    /// Master seed for all Phase-1 randomness (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Overrides the paper's `⌈(e²/ε)·ln 3⌉` repetition schedule.
    pub fn repetitions(mut self, repetitions: u32) -> Self {
        self.cfg.repetitions = Some(repetitions);
        self
    }

    /// Pruning implementation (identical semantics across kinds).
    pub fn pruner(mut self, pruner: PrunerKind) -> Self {
        self.cfg.pruner = pruner;
        self
    }

    /// Collision-scan backend for the Phase-2 hot paths.
    pub fn scan(mut self, scan: ScanBackend) -> Self {
        self.cfg.scan = scan;
        self
    }

    /// Enables the early-abort extension (1-bit abort flood on the
    /// first rejection).
    pub fn early_abort(mut self, early_abort: bool) -> Self {
        self.cfg.early_abort = early_abort;
        self
    }

    /// Node-state memory layout (identical outputs across layouts;
    /// [`NodeLayout::Soa`] is the default fast path, `Boxed` the
    /// reference layout).
    pub fn layout(mut self, layout: NodeLayout) -> Self {
        self.cfg.layout = layout;
        self
    }

    /// Assumes a per-message loss rate in `[0, 1)` and inflates the
    /// repetition schedule by `⌈1/(1−p)^{k·⌊k/2⌋}⌉`
    /// ([`crate::rank::loss_inflation`]) to recover the ≥ 2/3 detection
    /// bound on lossy networks. Validated at build time.
    pub fn assume_loss(mut self, loss: f64) -> Self {
        self.cfg.assumed_loss = Some(loss);
        self
    }

    /// Re-validates every rejection's witness cycle against the input
    /// graph after the run, discarding fabricated witnesses — restores
    /// 1-sidedness under frame corruption.
    pub fn verify_witnesses(mut self, verify: bool) -> Self {
        self.cfg.verify_witnesses = verify;
        self
    }

    /// Replaces the engine template every run executes under.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the executor without replacing the whole engine template.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.engine.executor = executor;
        self
    }

    /// Runs every test distributed across `workers` cross-process
    /// partitions (see [`crate::dist`]); transport tuning comes from
    /// the engine template's [`ck_congest::net::NetOptions`]. On any
    /// transport failure the run degrades to the in-process sequential
    /// oracle within the configured deadlines, recording the fallback
    /// in the report's `net` block.
    pub fn distributed(mut self, workers: u16) -> Self {
        self.engine.executor = Executor::Distributed { workers };
        self
    }

    /// Validates the configuration (`k ∈ 3..=MAX_K`, `ε ∈ (0, 1)`) and
    /// builds the session.
    pub fn build(self) -> Result<TesterSession, ConfigError> {
        TesterSession::from_config(self.cfg, self.engine)
    }
}

/// A reusable execution context for the full `Ck`-freeness tester:
/// validated [`TesterConfig`], engine template, and internally owned
/// engine workspace + [`TesterScratch`] pool, all recycled on every
/// [`test`](TesterSession::test).
///
/// # Examples
///
/// ```
/// use ck_core::session::TesterSession;
/// use ck_graphgen::basic::cycle;
/// use ck_graphgen::planted::matched_free_instance;
///
/// let mut session = TesterSession::builder(5, 0.1)
///     .seed(42)
///     .repetitions(2)
///     .build()
///     .unwrap();
///
/// // A C5-free graph is accepted with probability 1 …
/// let free = matched_free_instance(30, 5);
/// assert!(!session.test(&free).unwrap().reject);
///
/// // … while a 5-cycle is rejected; the second run reuses the
/// // session's arenas and per-node scratch.
/// let c5 = cycle(5);
/// assert!(session.test(&c5).unwrap().reject);
///
/// // Out-of-range parameters fail at build time, not mid-run.
/// assert!(TesterSession::builder(2, 0.1).build().is_err());
/// assert!(TesterSession::builder(5, 1.5).build().is_err());
/// ```
pub struct TesterSession {
    cfg: TesterConfig,
    engine: EngineConfig,
    ws: EngineWorkspace<CkMsg>,
    scratch: TesterScratch,
}

impl std::fmt::Debug for TesterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The workspace and scratch are opaque recycled storage; the
        // configs are the session's identity.
        f.debug_struct("TesterSession")
            .field("cfg", &self.cfg)
            .field("engine", &self.engine)
            .field("slot_stats", &self.ws.slot_stats())
            .finish_non_exhaustive()
    }
}

impl TesterSession {
    /// Starts a builder for cycle length `k` at property-testing
    /// parameter `eps`.
    pub fn builder(k: usize, eps: f64) -> TesterSessionBuilder {
        TesterSessionBuilder::new(k, eps)
    }

    /// Builds a session from an already-assembled configuration pair,
    /// validating it.
    pub fn from_config(cfg: TesterConfig, engine: EngineConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(TesterSession { cfg, engine, ws: EngineWorkspace::new(), scratch: TesterScratch::new() })
    }

    /// The validated tester configuration.
    pub fn config(&self) -> &TesterConfig {
        &self.cfg
    }

    /// The engine template every run executes under.
    pub fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// Changes the Phase-1 master seed for subsequent tests. Seeds are
    /// not part of validation, so sweeping seeds through one session
    /// keeps the workspace and scratch warm instead of rebuilding a
    /// session per trial.
    pub fn set_seed(&mut self, seed: u64) {
        self.cfg.seed = seed;
    }

    /// Swaps the full tester configuration, keeping the warm workspace
    /// and scratch pool. This is the session-pool seam for long-running
    /// services: a worker holds one session across *heterogeneous*
    /// jobs (different `k`/`ε`/seed per client) and revalidates each
    /// incoming configuration here — a bad job is a [`ConfigError`] for
    /// that job only, and the arenas stay warm for the next one. On
    /// error the session's previous configuration is untouched.
    pub fn reconfigure(&mut self, cfg: TesterConfig) -> Result<(), ConfigError> {
        cfg.validate()?;
        self.cfg = cfg;
        Ok(())
    }

    /// Mutable access to the engine template (faults, bandwidth policy,
    /// executor — none of it validated state); takes effect on the next
    /// test. Lets loss/robustness sweeps vary the fault plan per trial
    /// without giving up session reuse.
    pub fn engine_mut(&mut self) -> &mut EngineConfig {
        &mut self.engine
    }

    /// Slot-array reuse counters of the owned workspace (after the
    /// first test, further tests allocate no per-run slot array).
    pub fn slot_stats(&self) -> SlotStats {
        self.ws.slot_stats()
    }

    /// Runs the full tester on `g`, recycling the session's workspace
    /// and scratch pool. Output is bit-identical to a fresh-state run.
    pub fn test(&mut self, g: &Graph) -> Result<TesterRun, EngineError> {
        tester_exec(g, &self.cfg, &self.engine, &mut self.ws, &mut self.scratch)
    }

    /// As [`test`](TesterSession::test), writing the result into a
    /// caller-owned [`TesterRun`] (reset in place, allocations kept)
    /// instead of returning a fresh one. Rotating one run buffer
    /// through repeated tests makes the warm accept-path rerun fully
    /// allocation-free under the sequential executor — the claim the
    /// `ck_lint::alloc_gate` regression tests turn into a CI gate. On
    /// error the run's contents are unspecified.
    pub fn test_into(&mut self, g: &Graph, run: &mut TesterRun) -> Result<(), EngineError> {
        tester_exec_into(g, &self.cfg, &self.engine, &mut self.ws, &mut self.scratch, run)
    }

    /// Runs a family of jobs through the sharded batch runner (one
    /// engine workspace + scratch pool per shard; results in input
    /// order, bit-identical to one-by-one [`test`](TesterSession::test)
    /// calls under the sequential executor). `shards = None` uses the
    /// thread pool's width.
    ///
    /// Batches are heterogeneous by design (sweeps mix `k`/`ε`/seeds
    /// per cell): each job carries and is governed by its **own**
    /// [`TesterConfig`] — the session contributes the engine template
    /// and nothing else; its `(k, ε)` govern only
    /// [`test`](TesterSession::test) and [`job`](TesterSession::job).
    /// Every job's configuration is validated up front, so the first
    /// (lowest-index) out-of-range job is a
    /// [`BatchFailure`](crate::batch::BatchFailure)`::Config` before
    /// anything runs.
    pub fn test_batch(
        &self,
        jobs: &[BatchJob<'_>],
        shards: Option<usize>,
    ) -> Result<Vec<TesterRun>, BatchError> {
        batch_exec(jobs, &self.engine, shards)
    }

    /// A batch job running this session's configuration on `graph` with
    /// a different Phase-1 seed — the trials-fan-out building block.
    pub fn job<'a>(&self, graph: &'a Graph, seed: u64) -> BatchJob<'a> {
        BatchJob::new(graph, TesterConfig { seed, ..self.cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchFailure;
    use ck_graphgen::basic::cycle;
    use ck_graphgen::planted::eps_far_instance;

    #[test]
    fn builder_validates_k_and_eps() {
        for k in [0usize, 1, 2, crate::seq::MAX_K + 1, 100] {
            let err = TesterSession::builder(k, 0.1).build().unwrap_err();
            assert_eq!(err, ConfigError::KOutOfRange { k }, "{k}");
            assert!(err.to_string().contains("outside supported range"), "{err}");
        }
        for eps in [0.0, -0.5, 1.0, 2.0, f64::NAN] {
            let err = TesterSession::builder(5, eps).build().unwrap_err();
            assert!(matches!(err, ConfigError::EpsOutOfRange { .. }), "{eps}");
            assert!(err.to_string().contains("must lie in (0,1)"), "{err}");
        }
        assert!(TesterSession::builder(3, 0.99).build().is_ok());
        assert!(TesterSession::builder(crate::seq::MAX_K, 0.01).build().is_ok());
        for loss in [-0.1, 1.0, 1.5, f64::NAN] {
            let err = TesterSession::builder(5, 0.1).assume_loss(loss).build().unwrap_err();
            assert!(matches!(err, ConfigError::LossOutOfRange { .. }), "{loss}");
            assert!(err.to_string().contains("must lie in [0,1)"), "{err}");
        }
        assert!(TesterSession::builder(5, 0.1).assume_loss(0.0).build().is_ok());
    }

    #[test]
    fn builder_setters_land_in_the_config() {
        let mut session = TesterSession::builder(7, 0.2)
            .seed(9)
            .repetitions(4)
            .pruner(PrunerKind::Literal)
            .scan(ScanBackend::Scalar)
            .layout(NodeLayout::Boxed)
            .early_abort(true)
            .assume_loss(0.1)
            .verify_witnesses(true)
            .executor(Executor::Sequential)
            .build()
            .unwrap();
        let cfg = session.config();
        assert_eq!((cfg.k, cfg.seed, cfg.repetitions), (7, 9, Some(4)));
        assert_eq!(cfg.pruner, PrunerKind::Literal);
        assert_eq!(cfg.scan, ScanBackend::Scalar);
        assert_eq!(cfg.layout, NodeLayout::Boxed);
        assert!(cfg.early_abort);
        assert_eq!(cfg.assumed_loss, Some(0.1));
        assert!(cfg.verify_witnesses);
        // The schedule is inflated by ⌈1/0.9²¹⌉ = 10 for k = 7.
        assert_eq!(cfg.effective_repetitions(), 4 * 10);
        assert_eq!(session.engine().executor, Executor::Sequential);
        // Per-run knobs (unvalidated state) mutate in place.
        session.set_seed(77);
        session.engine_mut().record_rounds = false;
        assert_eq!(session.config().seed, 77);
        assert!(!session.engine().record_rounds);
    }

    #[test]
    fn session_reuse_is_warm_and_deterministic() {
        let inst = eps_far_instance(36, 5, 0.1, 1);
        let mut session = TesterSession::builder(5, 0.1).seed(3).repetitions(2).build().unwrap();
        let first = session.test(&inst.graph).unwrap();
        assert!(first.reject);
        for _ in 0..3 {
            let again = session.test(&inst.graph).unwrap();
            assert_eq!(first.outcome.verdicts, again.outcome.verdicts);
            assert_eq!(first.outcome.report.per_round, again.outcome.report.per_round);
        }
        let stats = session.slot_stats();
        assert_eq!(stats.takes, 4);
        assert_eq!(stats.misses, 1, "reused tests must not reallocate the slot array");
    }

    #[test]
    fn batch_surfaces_config_errors_before_running() {
        let g = cycle(5);
        let good = TesterConfig { repetitions: Some(1), ..TesterConfig::new(5, 0.1, 0) };
        let bad = TesterConfig { repetitions: Some(1), ..TesterConfig::new(99, 0.1, 0) };
        let session = TesterSession::builder(5, 0.1).build().unwrap();
        let jobs = vec![BatchJob::labeled(&g, good, "good"), BatchJob::labeled(&g, bad, "bad")];
        let err = session.test_batch(&jobs, None).unwrap_err();
        assert_eq!(err.job, 1);
        assert_eq!(err.label, "bad");
        assert_eq!(err.error, BatchFailure::Config(ConfigError::KOutOfRange { k: 99 }));
        assert!(err.to_string().contains("outside supported range"), "{err}");
    }

    #[test]
    fn reconfigure_keeps_arenas_warm_and_rejects_bad_configs() {
        let inst = eps_far_instance(36, 5, 0.1, 1);
        let mut session = TesterSession::builder(5, 0.1).seed(3).repetitions(2).build().unwrap();
        let five = session.test(&inst.graph).unwrap();
        assert!(five.reject, "the eps-far instance must reject under the original config");
        // A heterogeneous job (different k/ε/seed) through the same
        // session matches a fresh session bit for bit.
        let mut four = TesterConfig::new(4, 0.15, 11);
        four.repetitions = Some(2);
        session.reconfigure(four).unwrap();
        let warm = session.test(&inst.graph).unwrap();
        let cold = TesterSession::from_config(four, EngineConfig::default())
            .unwrap()
            .test(&inst.graph)
            .unwrap();
        assert_eq!(warm.outcome.verdicts, cold.outcome.verdicts);
        assert_eq!(warm.outcome.report.per_round, cold.outcome.report.per_round);
        // Both tests shared one slot array: reconfigure kept the arenas.
        let stats = session.slot_stats();
        assert_eq!((stats.takes, stats.misses), (2, 1));
        // A bad configuration is rejected and leaves the old one live.
        let err = session.reconfigure(TesterConfig::new(99, 0.15, 0)).unwrap_err();
        assert_eq!(err, ConfigError::KOutOfRange { k: 99 });
        assert_eq!(session.config().k, 4);
        let again = session.test(&inst.graph).unwrap();
        assert_eq!(again.outcome.verdicts, warm.outcome.verdicts);
    }

    #[test]
    fn session_jobs_fan_out_seeds() {
        let g = cycle(5);
        let session = TesterSession::builder(5, 0.1).repetitions(1).build().unwrap();
        let jobs: Vec<BatchJob> = (0..3).map(|t| session.job(&g, 100 + t)).collect();
        assert_eq!(jobs[2].cfg.seed, 102);
        assert_eq!(jobs[0].cfg.k, 5);
        let runs = session.test_batch(&jobs, Some(2)).unwrap();
        assert!(runs.iter().all(|r| r.reject), "C5 rejects for every seed");
    }
}
